"""Sandboxing native code without recompilation (paper §6.4):
the NGINX + OpenSSL scenario.

Shows the two costs of HFI's *native* sandbox and their baselines:

1. system-call interposition — HFI's decode-stage redirect vs a
   seccomp-bpf filter (§6.4.1), and
2. protection-domain switching around crypto calls — HFI vs Intel MPK
   vs no protection (§6.4.2, Fig. 5), including MPK's 15-domain wall
   that HFI does not have.

Run:  python examples/native_sandboxing.py
"""

from repro.mpk import MpkDomainManager, MpkError, USABLE_KEYS
from repro.os import AddressSpace, FileSystem, Kernel, SeccompFilter, Sys
from repro.params import MachineParams
from repro.runtime import SandboxManager, TransitionKind
from repro.telemetry import Telemetry
from repro.workloads import FILE_SIZES, NginxModel


def syscall_interposition(params):
    print("=== §6.4.1: trapping syscalls (open/read/close) ===")
    kernel = Kernel(params, FileSystem({"tls.key": b"k" * 512}))
    Kernel.register_name(1, "tls.key")

    def one_pass(proc, extra):
        cost = extra
        res = kernel.syscall(proc, Sys.OPEN, 1)
        cost += res.cycles + extra
        res2 = kernel.syscall(proc, Sys.READ, res.value, 512)
        cost += res2.cycles + extra
        cost += kernel.syscall(proc, Sys.CLOSE, res.value).cycles
        return cost

    hfi_proc = kernel.spawn()
    hfi_cost = one_pass(hfi_proc, params.hfi_syscall_check_cycles
                        + params.hfi_exit_cycles
                        + params.hfi_enter_cycles)
    sec_proc = kernel.spawn()
    sec_proc.seccomp = SeccompFilter.interpose_all(params)
    sec_cost = one_pass(sec_proc, 0)
    print(f"  HFI redirect:  {hfi_cost:6,} cycles per iteration")
    print(f"  seccomp-bpf:   {sec_cost:6,} cycles per iteration "
          f"(+{100 * (sec_cost / hfi_cost - 1):.1f}%)\n")


def domain_switching(params):
    print("=== §6.4.2: NGINX throughput with sandboxed OpenSSL ===")
    model = NginxModel(params)
    print(f"  {'file':>6}  {'unprotected':>12}  {'HFI':>10}  "
          f"{'MPK':>10}   overhead (HFI / MPK)")
    for size in FILE_SIZES:
        rps = {s: model.throughput_rps(size, s)
               for s in ("unprotected", "hfi", "mpk")}
        print(f"  {size >> 10:4d}kb  {rps['unprotected']:10,.0f}/s  "
              f"{rps['hfi']:8,.0f}/s  {rps['mpk']:8,.0f}/s   "
              f"{model.overhead_pct(size, 'hfi'):.1f}% / "
              f"{model.overhead_pct(size, 'mpk'):.1f}%")
    print()


def scaling_wall(params):
    print("=== MPK's 15-domain wall vs HFI's unbounded sandboxes ===")
    space = AddressSpace(params)
    mpk = MpkDomainManager(space)
    allocated = 0
    try:
        while True:
            mpk.pkey_alloc(f"tenant{allocated}")
            allocated += 1
    except MpkError as err:
        print(f"  MPK: {allocated} domains allocated, then: {err}")
    assert allocated == USABLE_KEYS

    manager = SandboxManager(params)
    for i in range(1000):
        manager.create_sandbox(heap_bytes=1 << 20)
    print(f"  HFI: {manager.live_sandboxes} sandboxes live in one "
          "process (on-chip state stays constant; nothing ran out)")


def invoke_with_telemetry(params):
    print("\n=== typed invocations + per-sandbox telemetry ===")
    telemetry = Telemetry()
    manager = SandboxManager(params, telemetry=telemetry)
    ssl = manager.create_sandbox(heap_bytes=1 << 20)
    zlib = manager.create_sandbox(heap_bytes=1 << 18)
    result = manager.invoke(ssl, service_cycles=50_000,
                            transition=TransitionKind.SPRINGBOARD)
    # invoke() returns a typed InvokeResult; the field names match
    # cpu.machine.RunResult so analysis code can consume either.
    print(f"  invocation of sandbox {result.sandbox_id}: "
          f"{result.cycles:,} cycles "
          f"(enter {result.enter_cycles}, exit {result.exit_cycles}, "
          f"springboards {result.software_cycles}, "
          f"service {result.service_cycles:,})")
    manager.invoke(zlib, service_cycles=8_000)
    attribution = telemetry.attribution()
    total = sum(attribution.values())
    assert total == manager.total_cycles
    for sandbox_id, cycles in sorted(attribution.items()):
        print(f"  sandbox {sandbox_id}: {cycles:,} cycles "
              f"({100 * cycles / total:.1f}% of the runtime's total)")


if __name__ == "__main__":
    machine = MachineParams()
    syscall_interposition(machine)
    domain_switching(machine)
    scaling_wall(machine)
    invoke_with_telemetry(machine)
