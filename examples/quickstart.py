"""Quickstart: build and run an HFI *native* sandbox on the simulator.

Demonstrates the core HFI flow from paper §3.3:

1. the trusted runtime stages region descriptors in memory,
2. ``hfi_set_region`` + ``hfi_enter`` start a native sandbox,
3. in-bounds loads/stores just work (checks ride the data path),
4. a system call is converted into a jump to the exit handler,
5. an out-of-bounds access traps, the cause lands in the MSR, and the
   runtime's SIGSEGV handler reads it.

Run:  python examples/quickstart.py
"""

from repro.core import FaultCause, ImplicitCodeRegion, ImplicitDataRegion, SandboxFlags
from repro.core.encoding import encode_region, encode_sandbox
from repro.cpu import Cpu
from repro.isa import Assembler, Imm, Mem, Reg
from repro.os import AddressSpace, FileSystem, Kernel, Prot, Signal
from repro.params import MachineParams

CODE = 0x40_0000
HEAP = 0x10_0000
STACK = 0x0F_0000
DESC = 0x0E_0000
HANDLER = 0x41_0000


def build_machine():
    params = MachineParams()
    kernel = Kernel(params, FileSystem({"data.txt": b"hello sandbox"}))
    proc = kernel.spawn()
    space = proc.address_space
    for base, size in ((HEAP, 1 << 16), (STACK, 1 << 16),
                       (DESC, 1 << 12)):
        space.mmap(size, Prot.rw(), addr=base)
    cpu = Cpu(params, process=proc, kernel=kernel)
    cpu.regs.write(Reg.RSP, STACK + (1 << 16) - 64)
    return cpu, proc, space


def stage_descriptors(space):
    """The runtime describes what the sandbox may touch."""
    code = ImplicitCodeRegion.covering(CODE, 1 << 17)   # incl. handler
    heap = ImplicitDataRegion.covering(HEAP, 1 << 16, read=True,
                                       write=True)
    stack = ImplicitDataRegion.covering(STACK, 1 << 16, read=True,
                                        write=True)
    sandbox = SandboxFlags(is_hybrid=False, is_serialized=True)
    space.write_bytes(DESC + 0, encode_region(code))
    space.write_bytes(DESC + 24, encode_region(heap))
    space.write_bytes(DESC + 48, encode_region(stack))
    space.write_bytes(DESC + 72, encode_sandbox(sandbox,
                                                exit_handler=HANDLER))


def build_program():
    asm = Assembler(base=CODE)
    # --- trusted runtime: install regions, enter the sandbox ---
    for i, region_number in enumerate((0, 2, 3)):
        asm.mov(Reg.RDI, Imm(DESC + 24 * i))
        asm.hfi_set_region(region_number, Reg.RDI)
    asm.mov(Reg.RDI, Imm(DESC + 72))
    asm.hfi_enter(Reg.RDI)
    # --- sandboxed (untrusted) code ---
    asm.mov(Reg.RBX, Imm(HEAP))
    asm.mov(Reg.RAX, Imm(1234))
    asm.mov(Mem(base=Reg.RBX, disp=64), Reg.RAX)     # in-bounds store
    asm.mov(Reg.RCX, Mem(base=Reg.RBX, disp=64))     # in-bounds load
    asm.mov(Reg.RAX, Imm(39))                        # getpid
    asm.syscall()                                    # -> exit handler!
    asm.hlt()

    handler = Assembler(base=HANDLER)
    # the runtime's exit handler: perform the call on the sandbox's
    # behalf, then stop (a real runtime would hfi_reenter)
    handler.mov(Reg.RAX, Imm(39))
    handler.syscall()
    handler.hlt()
    return asm.assemble(), handler.assemble()


def main():
    cpu, proc, space = build_machine()
    stage_descriptors(space)
    program, handler = build_program()
    cpu.load_program(program)
    cpu.load_program(handler)

    segv_causes = []
    proc.signals.register(
        Signal.SIGSEGV, lambda info: segv_causes.append(info.hfi_cause))

    print("running sandboxed program ...")
    result = cpu.run(program.base)
    print(f"  stopped: {result.reason} after "
          f"{result.stats.instructions} instructions, "
          f"{result.stats.cycles} cycles")
    print(f"  in-bounds load result: {cpu.regs.read(Reg.RCX)}")
    print(f"  syscall interposed by HFI: "
          f"{cpu.stats.interposed_syscalls} time(s); handler ran "
          f"getpid -> {cpu.regs.read(Reg.RAX)}")
    print(f"  exit cause MSR: {cpu.hfi.read_cause_msr().name}")

    # --- now an out-of-bounds access ---
    print("\nout-of-bounds attempt ...")
    oob = Assembler(base=CODE + 0x8000)
    asm = oob
    asm.mov(Reg.RDI, Imm(DESC + 0))
    asm.hfi_set_region(0, Reg.RDI)
    asm.mov(Reg.RDI, Imm(DESC + 24))
    asm.hfi_set_region(2, Reg.RDI)
    asm.mov(Reg.RDI, Imm(DESC + 72))
    asm.hfi_enter(Reg.RDI)
    asm.mov(Reg.RBX, Imm(DESC))          # the descriptor page: outside!
    asm.mov(Reg.RAX, Mem(base=Reg.RBX))
    asm.hlt()
    oob_prog = oob.assemble()
    cpu.load_program(oob_prog)
    result = cpu.run(oob_prog.base)
    print(f"  stopped: {result.reason} "
          f"({result.fault.hfi_cause.name} at {result.fault.addr:#x})")
    print(f"  SIGSEGV delivered with HFI cause: "
          f"{FaultCause(segv_causes[-1]).name}")
    print(f"  sandbox disabled: {not cpu.hfi.enabled}")


if __name__ == "__main__":
    main()
