"""A miniature FaaS platform on HFI — the paper's §6.3 scenario.

Shows the lifecycle economics that motivate HFI for FaaS providers:

* instance creation with and without 8 GiB guard reservations,
* heap growth: mprotect vs a single hfi_set_region,
* running the same tenant function under both isolation strategies,
* batched teardown, which only pays off once guards are elided.

Run:  python examples/wasm_faas.py
"""

from repro.params import MachineParams
from repro.wasm import GuardPagesStrategy, HfiStrategy, WasmRuntime
from repro.workloads.faas_apps import templated_html

N_TENANTS = 50


def lifecycle(strategy_cls, label):
    params = MachineParams()
    runtime = WasmRuntime(params)
    module = templated_html()

    # one "real" tenant we actually execute
    instance = runtime.instantiate(module, strategy_cls())
    result = runtime.run(instance)
    assert result.reason == "hlt"
    run_cycles = result.stats.cycles

    grow_cycles = runtime.memory_grow(instance, pages=16)

    # many memory-only tenants to measure footprint + teardown
    tenants = [runtime.reserve_instance(strategy_cls(), 1 << 20,
                                        touch_pages=4)
               for _ in range(N_TENANTS)]
    reserved_gib = runtime.space.reserved_bytes / (1 << 30)
    per_instance_teardown = [runtime.teardown(t) for t in
                             tenants[:N_TENANTS // 2]]
    stock = sum(per_instance_teardown) / len(per_instance_teardown)
    batched = (runtime.teardown_batch(tenants[N_TENANTS // 2:])
               / (N_TENANTS - N_TENANTS // 2))

    print(f"--- {label} ---")
    print(f"  tenant function run:        {run_cycles:>10,} cycles")
    print(f"  memory_grow(1 MiB):         {grow_cycles:>10,} cycles")
    print(f"  address space for {N_TENANTS} idle tenants: "
          f"{reserved_gib:8.1f} GiB reserved")
    print(f"  teardown, one madvise each: {stock:>10,.0f} cycles/tenant")
    print(f"  teardown, batched madvise:  {batched:>10,.0f} cycles/tenant")
    print()
    return stock, batched


def main():
    print("FaaS lifecycle under the stock guard-page scheme vs HFI\n")
    g_stock, g_batched = lifecycle(GuardPagesStrategy, "guard pages")
    h_stock, h_batched = lifecycle(HfiStrategy, "HFI")
    print("observations (paper §6.3):")
    print(f"  * batching without HFI is a LOSS "
          f"({g_batched / g_stock:.2f}x stock) — the guard regions get "
          "swept too;")
    print(f"  * batching with HFI wins ({h_batched / h_stock:.2f}x "
          "stock) because adjacent heaps have no guards between them.")


if __name__ == "__main__":
    main()
