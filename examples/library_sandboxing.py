"""Firefox-style library sandboxing (paper §6.2): render an "image"
with libjpeg inside a Wasm sandbox, comparing isolation strategies.

For each strategy the example reports decode cycles, sandbox
transitions, and binary size — the trade-offs a browser vendor weighs.
It then shows the security payoff: the same decoder with a corrupted
input tries to write outside its heap, and each strategy reacts
differently (MMU trap / trap block / precise HFI trap).

Run:  python examples/library_sandboxing.py
"""

from repro.core import FaultCause
from repro.isa import Reg
from repro.wasm import (
    TRAP_MAGIC,
    BoundsCheckStrategy,
    GuardPagesStrategy,
    HfiStrategy,
    WasmRuntime,
)
from repro.wasm.ir import Const, Function, Load, Module, Store, StoreGlobal
from repro.workloads import jpeg_decode

STRATEGIES = [GuardPagesStrategy, BoundsCheckStrategy, HfiStrategy]


def render_benchmark():
    print("decoding a 480p 'default'-compression JPEG in a sandbox:\n")
    module = jpeg_decode("480p", "default")
    baseline = None
    for strategy_cls in STRATEGIES:
        runtime = WasmRuntime()
        instance = runtime.instantiate(module, strategy_cls())
        result = runtime.run(instance)
        assert result.reason == "hlt"
        cycles = result.stats.cycles
        if baseline is None:
            baseline = cycles
        print(f"  {strategy_cls.name:13s} {cycles:>9,} cycles "
              f"({100 * cycles / baseline:5.1f}% of guard pages), "
              f"binary {instance.compiled.binary_size:,} B, "
              f"{result.stats.serializations} serializations")
    print()


def exploit_attempt():
    print("a corrupted image makes the decoder write out of bounds:\n")
    heap = 16 * 65536
    evil = Module("evil-image", [Function("main", [
        Const("addr", heap + 8 * 4096),   # past the end of the heap
        Const("payload", 0x41414141),
        Store("addr", "payload"),
        Load("x", "addr"),
        StoreGlobal("result", "x"),
    ])], globals=["result"])

    for strategy_cls in STRATEGIES:
        runtime = WasmRuntime()
        instance = runtime.instantiate(evil, strategy_cls())
        result = runtime.run(instance)
        if result.reason == "fault":
            kind = (result.fault.hfi_cause.name
                    if result.fault.kind == "hfi" else "SIGSEGV (MMU)")
            print(f"  {strategy_cls.name:13s} BLOCKED -> {kind}")
        elif runtime.cpu.regs.read(Reg.RAX) == TRAP_MAGIC:
            print(f"  {strategy_cls.name:13s} BLOCKED -> "
                  "inline bounds-check trap")
        else:
            print(f"  {strategy_cls.name:13s} NOT BLOCKED (!)")
    print()
    print("HFI's trap is precise (HMOV_OUT_OF_BOUNDS in the cause MSR),")
    print("so the browser can disambiguate sandbox faults from its own.")


if __name__ == "__main__":
    render_benchmark()
    exploit_attempt()
