"""Spectre demo: leak a secret through speculation, then stop it with
HFI — the paper's §5.3 security story, end to end.

The victim is the SafeSide bounds-check-bypass gadget; the attacker
trains the branch predictor, supplies an out-of-bounds index, and
reads the secret out of the cache with flush+reload.  With HFI's
implicit regions installed (secret excluded), the speculative load is
refused *before any cache fill*, and the side channel goes dark.

Run:  python examples/spectre_demo.py
"""

from repro.attacks import SpectrePhtAttack
from repro.params import MachineParams

SECRET_TEXT = "HFI!"


def ascii_plot(latencies, threshold, around, width=60):
    """A tiny latency plot around the interesting byte values."""
    lines = []
    for value in around:
        lat = latencies[value]
        bar = "#" * max(1, int(width * min(lat, 250) / 250))
        mark = " <-- cached (leaked!)" if lat <= threshold else ""
        label = repr(chr(value)) if 32 <= value < 127 else str(value)
        lines.append(f"  {label:>5} | {lat:4d} cy {bar[:20]}{mark}")
    return "\n".join(lines)


def leak(protect: bool) -> str:
    recovered = []
    for ch in SECRET_TEXT:
        attack = SpectrePhtAttack(MachineParams(),
                                  protect_with_hfi=protect)
        result = attack.attack(secret_value=ord(ch))
        recovered.append(chr(result.leaked_value)
                         if result.leaked else "?")
        if ch == SECRET_TEXT[0]:
            window = [v for v in range(ord(ch) - 3, ord(ch) + 4)]
            print(ascii_plot(result.latencies, result.threshold, window))
            print(f"  (hit threshold: {result.threshold} cycles)\n")
    return "".join(recovered)


def main():
    print("=== Spectre-PHT without HFI ===")
    got = leak(protect=False)
    print(f"attacker recovered: {got!r}  (secret was {SECRET_TEXT!r})\n")

    print("=== Spectre-PHT with HFI regions protecting the secret ===")
    got = leak(protect=True)
    print(f"attacker recovered: {got!r}  (no byte below threshold — "
          "the speculative load never reached the cache)")


if __name__ == "__main__":
    main()
