"""Unit tests for the trusted-runtime layer: transitions, the sandbox
manager, and the FaaS queueing model."""

import pytest

from repro.core import FaultCause
from repro.params import MachineParams
from repro.runtime import (
    FaasServer,
    SandboxManager,
    TransitionKind,
    TransitionModel,
    percentile,
)


@pytest.fixture
def params():
    return MachineParams()


class TestTransitionModel:
    def test_springboard_dearer_than_zero_cost(self, params):
        model = TransitionModel(params)
        assert (model.software_cost(TransitionKind.SPRINGBOARD)
                > model.software_cost(TransitionKind.ZERO_COST))

    def test_serialization_adds_drain(self, params):
        model = TransitionModel(params)
        fast = model.hfi_enter_cost(serialized=False)
        slow = model.hfi_enter_cost(serialized=True)
        assert slow - fast == params.serialize_drain_cycles

    def test_round_trip_composition(self, params):
        model = TransitionModel(params)
        rt = model.round_trip(TransitionKind.ZERO_COST, serialized=True)
        assert rt == (2 * model.software_cost(TransitionKind.ZERO_COST)
                      + model.hfi_enter_cost(serialized=True)
                      + model.hfi_exit_cost(serialized=True))

    def test_more_regions_cost_more(self, params):
        model = TransitionModel(params)
        assert (model.hfi_enter_cost(serialized=False, regions_installed=6)
                > model.hfi_enter_cost(serialized=False,
                                       regions_installed=2))

    def test_zero_cost_wasm_transition_is_call_like(self, params):
        """The paper's headline: context switches on the order of a
        function call (10s of cycles)."""
        model = TransitionModel(params)
        rt = model.round_trip(TransitionKind.ZERO_COST, serialized=False)
        assert rt < 120


class TestSandboxManager:
    def test_create_and_invoke(self, params):
        manager = SandboxManager(params)
        handle = manager.create_sandbox(heap_bytes=1 << 20)
        result = manager.invoke(handle, service_cycles=10_000)
        assert result.cycles > 10_000
        assert result.reason == "hlt"
        assert result.sandbox_id == handle.sandbox_id
        assert result.cycles == (result.enter_cycles + result.exit_cycles
                                 + result.software_cycles
                                 + result.service_cycles)
        # Typed results still compare/add like the raw totals they
        # replaced.
        assert result > 10_000
        assert result == result.cycles
        assert handle.invocations == 1
        assert manager.hfi.cause_msr is FaultCause.EXIT_INSTRUCTION

    def test_many_sandboxes_no_limit(self, params):
        manager = SandboxManager(params)
        for _ in range(200):
            manager.create_sandbox(heap_bytes=1 << 16)
        assert manager.live_sandboxes == 200

    def test_grow_heap_is_register_update_cheap(self, params):
        manager = SandboxManager(params)
        handle = manager.create_sandbox(heap_bytes=1 << 20)
        cost = manager.grow_heap(handle, 2 << 20)
        assert cost < 100                      # no syscall anywhere
        region = dict(handle.descriptor.regions)[6]
        assert region.bound == 2 << 20

    def test_destroy_returns_memory_cost(self, params):
        manager = SandboxManager(params)
        handle = manager.create_sandbox(heap_bytes=1 << 20)
        manager.space.write(handle.heap_base, 7)
        cost = manager.destroy_sandbox(handle)
        assert cost > params.syscall_cycles
        assert manager.live_sandboxes == 0

    def test_hybrid_sandbox_descriptor(self, params):
        manager = SandboxManager(params)
        handle = manager.create_sandbox(heap_bytes=1 << 20, hybrid=True,
                                        serialized=False)
        assert handle.descriptor.flags.is_hybrid
        assert not handle.descriptor.flags.is_serialized

    def test_serialized_invocation_costs_more(self, params):
        manager = SandboxManager(params)
        fast = manager.create_sandbox(heap_bytes=1 << 16,
                                      serialized=False)
        slow = manager.create_sandbox(heap_bytes=1 << 16,
                                      serialized=True)
        c_fast = manager.invoke(fast, service_cycles=0).cycles
        c_slow = manager.invoke(slow, service_cycles=0).cycles
        assert c_slow >= c_fast + 2 * params.serialize_drain_cycles


class TestFaasServer:
    def test_latency_at_least_service_time(self, params):
        server = FaasServer(params=params, n_workers=2)
        metrics = server.simulate("x", service_cycles=1_000_000,
                                  n_requests=500)
        service_s = params.cycles_to_seconds(1_000_000)
        assert metrics.avg_latency_s >= service_s
        assert metrics.p99_latency_s >= metrics.avg_latency_s

    def test_higher_load_longer_tail(self, params):
        server = FaasServer(params=params, n_workers=2)
        light = server.simulate("l", 1_000_000, n_requests=800,
                                offered_utilization=0.3)
        heavy = server.simulate("h", 1_000_000, n_requests=800,
                                offered_utilization=0.9)
        assert heavy.p99_latency_s > light.p99_latency_s

    def test_slower_service_inflates_tail_disproportionately(
            self, params):
        """The Table 1 mechanism: at fixed offered load, a service-time
        increase produces a super-linear tail-latency increase."""
        server = FaasServer(params=params, n_workers=2)
        base_cycles = 1_000_000
        service_s = params.cycles_to_seconds(base_cycles)
        rate = 0.7 * server.n_workers / service_s
        base = server.simulate("base", base_cycles, n_requests=1500,
                               arrival_rate_rps=rate)
        slow = server.simulate("slow", int(base_cycles * 1.2),
                               n_requests=1500, arrival_rate_rps=rate)
        service_increase = 0.2
        tail_increase = slow.p99_latency_s / base.p99_latency_s - 1
        assert tail_increase > service_increase

    def test_deterministic_with_seed(self, params):
        a = FaasServer(params=params, seed=5).simulate("a", 500_000,
                                                       n_requests=300)
        b = FaasServer(params=params, seed=5).simulate("a", 500_000,
                                                       n_requests=300)
        assert a.p99_latency_s == b.p99_latency_s

    def test_throughput_bounded_by_capacity(self, params):
        server = FaasServer(params=params, n_workers=2)
        metrics = server.simulate("x", 1_000_000, n_requests=1000,
                                  offered_utilization=5.0)  # overload
        capacity = 2 / params.cycles_to_seconds(1_000_000)
        assert metrics.throughput_rps <= capacity * 1.01


class TestFaasFailureSurfacing:
    def test_failed_requests_are_reported_distinctly(self, params):
        server = FaasServer(params=params, n_workers=2)
        metrics = server.simulate("x", 1_000_000, n_requests=1000,
                                  failure_rate=0.2)
        assert 100 < metrics.failed < 300          # ~20% of 1000
        assert metrics.succeeded == 1000 - metrics.failed
        assert metrics.goodput_rps < metrics.throughput_rps

    def test_failures_do_not_count_toward_success_latency(self, params):
        """A failed invocation aborts early (shorter occupancy); if it
        leaked into the percentiles it would *improve* them.  The
        success-latency distribution must not shift down."""
        server = FaasServer(params=params, n_workers=2)
        rate = 0.5 * 2 / params.cycles_to_seconds(1_000_000)
        clean = server.simulate("c", 1_000_000, n_requests=1000,
                                arrival_rate_rps=rate)
        faulty = server.simulate("f", 1_000_000, n_requests=1000,
                                 arrival_rate_rps=rate,
                                 failure_rate=0.3,
                                 failure_service_fraction=0.01)
        service_s = params.cycles_to_seconds(1_000_000)
        # every surviving sample is a full-service completion
        assert faulty.avg_latency_s >= service_s
        assert faulty.p99_latency_s >= clean.p99_latency_s * 0.5
        assert clean.failed == 0 and clean.goodput_rps == pytest.approx(
            clean.throughput_rps)

    def test_zero_failure_rate_is_bit_identical(self, params):
        a = FaasServer(params=params, seed=5).simulate(
            "a", 500_000, n_requests=300)
        b = FaasServer(params=params, seed=5).simulate(
            "a", 500_000, n_requests=300, failure_rate=0.0)
        assert a == b

    def test_all_failures_yield_no_latency_samples(self, params):
        server = FaasServer(params=params, n_workers=2)
        metrics = server.simulate("x", 1_000_000, n_requests=200,
                                  failure_rate=1.0)
        assert metrics.failed == 200
        assert metrics.goodput_rps == 0.0
        assert metrics.avg_latency_s == 0.0
        assert metrics.p99_latency_s == 0.0


class TestPercentile:
    def test_simple(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_empty(self):
        assert percentile([], 99) == 0.0

    def test_single(self):
        assert percentile([7.0], 99) == 7.0