"""Integration tests: wir modules compiled under every isolation
strategy must compute the same answers, and each strategy must enforce
(or fail to enforce) out-of-bounds accesses exactly as the paper
describes in §2 and §3."""

import pytest

from repro.core import FaultCause
from repro.isa import Reg
from repro.wasm import (
    TRAP_MAGIC,
    BoundsCheckStrategy,
    GuardPagesStrategy,
    HfiEmulationStrategy,
    HfiStrategy,
    MaskingStrategy,
    NativeHfiStrategy,
    NativeUnsafeStrategy,
    SwivelStrategy,
    WasmRuntime,
)
from repro.wasm.ir import (
    BinOp,
    BinaryOp,
    Call,
    Cmp,
    Const,
    Function,
    HostCall,
    If,
    Load,
    LoadGlobal,
    Loop,
    Module,
    Move,
    Store,
    StoreGlobal,
    ValidationError,
    validate,
)

ALL_STRATEGIES = [
    NativeUnsafeStrategy, GuardPagesStrategy, BoundsCheckStrategy,
    MaskingStrategy, HfiStrategy, HfiEmulationStrategy, SwivelStrategy,
    NativeHfiStrategy,
]


def checksum_module(n=40):
    """Writes i*3 at mem[i*8], reads back, sums into global 'result'."""
    body = [
        Const("i", 0),
        Const("acc", 0),
        Loop(n, [
            BinOp(BinaryOp.SHL, "addr", "i", 3),
            BinOp(BinaryOp.MUL, "val", "i", 3),
            Store("addr", "val"),
            Load("back", "addr"),
            BinOp(BinaryOp.ADD, "acc", "acc", "back"),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        StoreGlobal("result", "acc"),
        HostCall(host_cycles=4),
        LoadGlobal("out", "result"),
        BinOp(BinaryOp.ADD, "out", "out", 1),
        StoreGlobal("result", "out"),
    ]
    return Module(name="checksum", functions=[Function("main", body)],
                  globals=["result"], memory_pages=8)


def oob_module(offset):
    """Stores then loads at a fixed out-of-range address."""
    body = [
        Const("addr", offset),
        Const("v", 7),
        Store("addr", "v"),
        Load("r", "addr"),
        StoreGlobal("result", "r"),
    ]
    return Module(name="oob", functions=[Function("main", body)],
                  globals=["result"], memory_pages=8)


def read_global(runtime, instance, index=0):
    return runtime.space.read(instance.layout.globals_base + index * 8)


def expected_checksum(n=40):
    return sum(i * 3 for i in range(n)) + 1


class TestStrategyEquivalence:
    @pytest.mark.parametrize("strategy_cls", ALL_STRATEGIES,
                             ids=lambda s: s.name)
    def test_same_answer_under_every_strategy(self, strategy_cls):
        runtime = WasmRuntime()
        instance = runtime.instantiate(checksum_module(), strategy_cls())
        result = runtime.run(instance)
        assert result.reason == "hlt", result
        assert read_global(runtime, instance) == expected_checksum()

    def test_hfi_disabled_after_run(self):
        runtime = WasmRuntime()
        instance = runtime.instantiate(checksum_module(), HfiStrategy())
        runtime.run(instance)
        assert not runtime.cpu.hfi.enabled  # exited cleanly


class TestOutOfBoundsBehaviour:
    HEAP = 8 * 65536

    def test_guard_pages_trap_via_mmu(self):
        runtime = WasmRuntime()
        instance = runtime.instantiate(oob_module(self.HEAP + 4096),
                                       GuardPagesStrategy())
        result = runtime.run(instance)
        assert result.reason == "fault"
        assert result.fault.kind == "page"

    def test_bounds_check_reaches_trap_code(self):
        runtime = WasmRuntime()
        instance = runtime.instantiate(oob_module(self.HEAP + 4096),
                                       BoundsCheckStrategy())
        result = runtime.run(instance)
        assert result.reason == "hlt"
        assert runtime.cpu.regs.read(Reg.RAX) == TRAP_MAGIC

    def test_hfi_traps_precisely(self):
        runtime = WasmRuntime()
        instance = runtime.instantiate(oob_module(self.HEAP + 4096),
                                       HfiStrategy())
        result = runtime.run(instance)
        assert result.reason == "fault"
        assert result.fault.kind == "hfi"
        assert result.fault.hfi_cause is FaultCause.HMOV_OUT_OF_BOUNDS

    def test_masking_corrupts_instead_of_trapping(self):
        """§2: masking converts OOB accesses into wraparound corruption."""
        runtime = WasmRuntime()
        instance = runtime.instantiate(oob_module(self.HEAP + 64),
                                       MaskingStrategy())
        result = runtime.run(instance)
        assert result.reason == "hlt"              # no trap!
        # the store wrapped to offset 64 inside the heap
        assert runtime.space.read(instance.heap_base + 64) == 7

    def test_native_unsafe_reaches_host_memory(self):
        """Without isolation an OOB access that lands on mapped host
        memory silently succeeds — the vulnerability all of this
        exists to prevent."""
        runtime = WasmRuntime()
        instance = runtime.instantiate(oob_module(self.HEAP + 4096),
                                       NativeUnsafeStrategy())
        target = instance.heap_base + self.HEAP + 4096
        vma = runtime.space.find_vma(target)
        assert vma is not None and vma.name.endswith("support"), \
            "test layout assumption: support area directly follows heap"
        result = runtime.run(instance)
        assert result.reason == "hlt"
        assert read_global(runtime, instance) == 7
        # the stray write corrupted the host's support area
        assert runtime.space.read(target) == 7


class TestCompilerMechanics:
    def test_spilling_kicks_in_with_many_locals(self):
        ops = [Const(f"v{i}", i) for i in range(16)]
        acc = [BinOp(BinaryOp.ADD, "v0", "v0", f"v{i}") for i in range(1, 16)]
        module = Module("spilly",
                        [Function("main", ops + acc
                                  + [StoreGlobal("result", "v0")])],
                        globals=["result"])
        runtime = WasmRuntime()
        instance = runtime.instantiate(module, NativeUnsafeStrategy())
        assert instance.compiled.spilled_locals > 0
        runtime.run(instance)
        assert read_global(runtime, instance) == sum(range(16))

    def test_reserving_registers_increases_spills(self):
        """The §6.1 register-pressure experiment's mechanism."""
        ops = [Const(f"v{i}", i) for i in range(10)]
        module = Module("p", [Function("main", ops)], globals=[])
        runtime = WasmRuntime()
        base = runtime.instantiate(module, NativeUnsafeStrategy())
        squeezed = runtime.instantiate(module, NativeUnsafeStrategy(),
                                       reserve_extra_regs=2)
        assert squeezed.compiled.spilled_locals \
            >= base.compiled.spilled_locals

    def test_function_calls(self):
        callee = Function("callee", [
            LoadGlobal("x", "result"),
            BinOp(BinaryOp.ADD, "x", "x", 5),
            StoreGlobal("result", "x"),
        ])
        main = Function("main", [
            Const("z", 1),
            StoreGlobal("result", "z"),
            Call("callee"),
            Call("callee"),
        ])
        module = Module("calls", [main, callee], globals=["result"])
        runtime = WasmRuntime()
        instance = runtime.instantiate(module, GuardPagesStrategy())
        result = runtime.run(instance)
        assert result.reason == "hlt"
        assert read_global(runtime, instance) == 11

    def test_if_else(self):
        module = Module("cond", [Function("main", [
            Const("a", 10),
            If("a", Cmp.GT, 5,
               [Const("r", 1)],
               [Const("r", 2)]),
            StoreGlobal("result", "r"),
            If("a", Cmp.LT, 5,
               [StoreGlobal("result", "a")],
               []),
        ])], globals=["result"])
        runtime = WasmRuntime()
        instance = runtime.instantiate(module, NativeUnsafeStrategy())
        runtime.run(instance)
        assert read_global(runtime, instance) == 1

    def test_nested_loops(self):
        module = Module("nest", [Function("main", [
            Const("acc", 0),
            Loop(5, [
                Loop(7, [
                    BinOp(BinaryOp.ADD, "acc", "acc", 1),
                ]),
            ]),
            StoreGlobal("result", "acc"),
        ])], globals=["result"])
        runtime = WasmRuntime()
        instance = runtime.instantiate(module, HfiStrategy())
        runtime.run(instance)
        assert read_global(runtime, instance) == 35

    def test_zero_trip_loop(self):
        module = Module("zt", [Function("main", [
            Const("acc", 99),
            Loop(0, [Const("acc", 0)]),
            StoreGlobal("result", "acc"),
        ])], globals=["result"])
        runtime = WasmRuntime()
        instance = runtime.instantiate(module, NativeUnsafeStrategy())
        runtime.run(instance)
        assert read_global(runtime, instance) == 99

    def test_binary_size_orders(self):
        """Swivel bloats binaries; HFI's hmov is longer than mov but adds
        no extra instructions (Table 1 bin-size column, §6.1 gobmk)."""
        module = checksum_module()
        runtime = WasmRuntime()
        plain = runtime.instantiate(module, GuardPagesStrategy())
        swivel = runtime.instantiate(module, SwivelStrategy())
        bounds = runtime.instantiate(module, BoundsCheckStrategy())
        assert swivel.compiled.binary_size > plain.compiled.binary_size
        assert bounds.compiled.binary_size > plain.compiled.binary_size


class TestValidation:
    def test_undefined_local_rejected(self):
        module = Module("bad", [Function("main", [
            Move("x", "never_defined"),
        ])])
        with pytest.raises(ValidationError):
            validate(module)

    def test_undefined_global_rejected(self):
        module = Module("bad", [Function("main", [
            StoreGlobal("nope", 1),
        ])])
        with pytest.raises(ValidationError):
            validate(module)

    def test_undefined_function_rejected(self):
        module = Module("bad", [Function("main", [Call("ghost")])])
        with pytest.raises(ValidationError):
            validate(module)
