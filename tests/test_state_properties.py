"""Hypothesis properties over random HfiState operation sequences.

Whatever a (possibly adversarial) runtime does, the state machine must
maintain its architectural invariants: native sandboxes keep their
region registers locked; exits either disable HFI or land in the
shadow bank; snapshots round-trip; the cause MSR always reflects the
last leave.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExplicitDataRegion,
    FaultCause,
    HfiFault,
    HfiState,
    ImplicitDataRegion,
    SandboxFlags,
)
from repro.params import MachineParams

_REGIONS = [
    None,
    ImplicitDataRegion(0x10_0000, 0xFFFF, permission_read=True,
                       permission_write=True),
    ImplicitDataRegion(0x20_0000, 0xFFF, permission_read=True),
]
_EXPLICIT = [
    None,
    ExplicitDataRegion(0x40_0000, 1 << 16, permission_read=True,
                       permission_write=True),
]

_ops = st.lists(st.one_of(
    st.tuples(st.just("enter"), st.booleans(), st.booleans(),
              st.booleans()),
    st.tuples(st.just("exit")),
    st.tuples(st.just("reenter")),
    st.tuples(st.just("syscall")),
    st.tuples(st.just("set_data"), st.sampled_from(range(2, 6)),
              st.sampled_from(range(len(_REGIONS)))),
    st.tuples(st.just("set_explicit"), st.sampled_from(range(6, 10)),
              st.sampled_from(range(len(_EXPLICIT)))),
    st.tuples(st.just("snapshot_roundtrip")),
), min_size=1, max_size=40)


def _apply(state: HfiState, op) -> None:
    kind = op[0]
    try:
        if kind == "enter":
            state.enter(SandboxFlags(is_hybrid=op[1],
                                     is_serialized=op[2],
                                     switch_on_exit=op[3]),
                        exit_handler=0x7000)
        elif kind == "exit":
            state.exit()
        elif kind == "reenter":
            state.reenter()
        elif kind == "syscall":
            state.syscall_attempt(nr=1)
        elif kind == "set_data":
            state.set_region(op[1], _REGIONS[op[2]])
        elif kind == "set_explicit":
            state.set_region(op[1], _EXPLICIT[op[2]])
        elif kind == "snapshot_roundtrip":
            if not state.regs.locked:
                saved = state.snapshot()
                state.restore(saved)
    except HfiFault:
        pass  # architectural traps are legal outcomes


@given(ops=_ops)
@settings(max_examples=300, deadline=None)
def test_native_sandboxes_never_mutate_regions(ops):
    """Whenever HFI is enabled in native mode, region registers are
    frozen — no operation sequence can change them until an exit."""
    state = HfiState(MachineParams())
    frozen = None
    for op in ops:
        before_native = state.enabled and not state.flags.is_hybrid
        if before_native and frozen is None:
            frozen = state.snapshot()
        _apply(state, op)
        still_native = state.enabled and not state.flags.is_hybrid
        if before_native and still_native and frozen is not None:
            for number in range(10):
                assert state.regs.get(number) == frozen.get(number)
        if not still_native:
            frozen = None


@given(ops=_ops)
@settings(max_examples=300, deadline=None)
def test_cause_msr_is_never_stale_after_leave(ops):
    """After any exit/syscall-leave, the MSR holds a leave cause; after
    any successful enter, it is cleared."""
    state = HfiState(MachineParams())
    for op in ops:
        was_enabled = state.enabled
        _apply(state, op)
        if op[0] == "enter" and state.enabled:
            assert state.read_cause_msr() is FaultCause.NONE
        if op[0] == "syscall" and was_enabled \
                and not state.flags.is_hybrid and not state.enabled:
            assert state.read_cause_msr() in (FaultCause.SYSCALL,
                                              FaultCause.INT80)


@given(ops=_ops)
@settings(max_examples=200, deadline=None)
def test_serialization_counter_monotonic(ops):
    state = HfiState(MachineParams())
    last = 0
    for op in ops:
        _apply(state, op)
        assert state.serializations >= last
        last = state.serializations


@given(ops=_ops)
@settings(max_examples=200, deadline=None)
def test_snapshot_restore_is_identity_when_unlocked(ops):
    """restore(snapshot()) leaves observable state unchanged."""
    state = HfiState(MachineParams())
    for op in ops:
        _apply(state, op)
    if state.regs.locked:
        return
    before = state.snapshot()
    state.restore(state.snapshot())
    after = state.snapshot()
    assert before == after


@given(ops=_ops)
@settings(max_examples=200, deadline=None)
def test_disabled_state_checks_nothing(ops):
    """With HFI disabled, data/code checks are inert no matter what
    configuration was left behind."""
    state = HfiState(MachineParams())
    for op in ops:
        _apply(state, op)
    while state.enabled:
        outcome = state.exit()
        if outcome.cause is FaultCause.NONE:
            break
    state.check_data_access(0xDEAD_0000, 8, is_write=True)
    state.check_code_fetch(0xDEAD_0000)