"""Wasm-proposal extensions the paper calls out (§2, §3.3.1):

* **multi-memory**: HFI gives each memory its own explicit region
  (no per-access base loads, no extra 8 GiB reservations);
* **Memory64**: >4 GiB heaps are impossible for the guard-page scheme
  but natural for HFI's 2^48-byte large regions.
"""

import pytest

from repro.core import FaultCause
from repro.wasm import (
    BoundsCheckStrategy,
    CompatibilityError,
    GuardPagesStrategy,
    HfiEmulationStrategy,
    HfiStrategy,
    NativeUnsafeStrategy,
    WasmRuntime,
)
from repro.wasm.ir import (
    BinOp,
    BinaryOp,
    Const,
    Function,
    Load,
    Loop,
    Module,
    Store,
    StoreGlobal,
    ValidationError,
    validate,
)

MULTI_STRATEGIES = [GuardPagesStrategy, BoundsCheckStrategy,
                    HfiStrategy, HfiEmulationStrategy,
                    NativeUnsafeStrategy]


def multi_memory_module(n_iters=30):
    """Copies data from memory 1 into memory 2, summing through the
    default memory."""
    body = [
        Const("i", 0),
        Const("acc", 0),
        Loop(n_iters, [
            BinOp(BinaryOp.SHL, "a", "i", 3),
            BinOp(BinaryOp.MUL, "v", "i", 17),
            Store("a", "v", memory=1),
            Load("x", "a", memory=1),
            Store("a", "x", memory=2),
            Load("y", "a", memory=2),
            Store("a", "y", memory=0),
            BinOp(BinaryOp.ADD, "acc", "acc", "y"),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        StoreGlobal("result", "acc"),
    ]
    return Module("multi-mem", [Function("main", body)],
                  globals=["result"], memory_pages=2,
                  extra_memories=[2, 2])


class TestMultiMemory:
    @pytest.mark.parametrize("strategy_cls", MULTI_STRATEGIES,
                             ids=lambda s: s.name)
    def test_same_answer_everywhere(self, strategy_cls):
        runtime = WasmRuntime()
        instance = runtime.instantiate(multi_memory_module(),
                                       strategy_cls())
        result = runtime.run(instance)
        assert result.reason == "hlt", (strategy_cls.name, result.fault)
        got = runtime.space.read(instance.layout.globals_base)
        assert got == sum(i * 17 for i in range(30))

    def test_data_lands_in_distinct_memories(self):
        runtime = WasmRuntime()
        instance = runtime.instantiate(multi_memory_module(),
                                       HfiStrategy())
        runtime.run(instance)
        mem1, _ = instance.layout.extra_memories[0]
        mem2, _ = instance.layout.extra_memories[1]
        assert runtime.space.read(mem1 + 8) == 17
        assert runtime.space.read(mem2 + 8) == 17
        assert runtime.space.read(instance.heap_base + 8) == 17

    def test_hfi_avoids_per_access_base_loads(self):
        """Non-HFI strategies pay instance-struct loads per extra-memory
        access; HFI's explicit regions don't."""
        runtime = WasmRuntime()
        hfi = runtime.instantiate(multi_memory_module(), HfiStrategy())
        r_hfi = runtime.run(hfi)
        runtime2 = WasmRuntime()
        guard = runtime2.instantiate(multi_memory_module(),
                                     GuardPagesStrategy())
        r_guard = runtime2.run(guard)
        assert r_hfi.stats.loads < r_guard.stats.loads

    def test_guard_scheme_footprint_grows_8gib_per_memory(self):
        runtime = WasmRuntime()
        runtime.instantiate(multi_memory_module(), GuardPagesStrategy())
        assert runtime.space.reserved_bytes >= 3 * (8 << 30)
        runtime2 = WasmRuntime()
        runtime2.instantiate(multi_memory_module(), HfiStrategy())
        assert runtime2.space.reserved_bytes < 1 << 30

    def test_oob_in_extra_memory_traps_under_hfi(self):
        module = Module("oob-extra", [Function("main", [
            Const("a", 4 * 65536),      # beyond memory 1's 2 pages
            Load("x", "a", memory=1),
            StoreGlobal("result", "x"),
        ])], globals=["result"], extra_memories=[2])
        runtime = WasmRuntime()
        instance = runtime.instantiate(module, HfiStrategy())
        result = runtime.run(instance)
        assert result.reason == "fault"
        assert result.fault.hfi_cause is FaultCause.HMOV_OUT_OF_BOUNDS

    def test_validation_rejects_bad_memory_index(self):
        module = Module("bad", [Function("main", [
            Load("x", 0, memory=3),
        ])], extra_memories=[2])
        with pytest.raises(ValidationError):
            validate(module)

    def test_hfi_region_budget(self):
        """HFI has 4 explicit regions; a 5th memory needs multiplexing
        (not modelled) and is rejected loudly."""
        module = Module("many", [Function("main", [
            Load("x", 0, memory=4),
        ])], extra_memories=[1, 1, 1, 1])
        runtime = WasmRuntime()
        with pytest.raises(CompatibilityError):
            runtime.instantiate(module, HfiStrategy())


def memory64_module():
    """Touches linear memory beyond the 4 GiB boundary."""
    five_gib_off = (4 << 30) + (1 << 20)
    body = [
        Const("lo", 64),
        Const("hi", five_gib_off),
        Const("v", 0xC0FFEE),
        Store("hi", "v"),
        Store("lo", "v"),
        Load("a", "hi"),
        Load("b", "lo"),
        BinOp(BinaryOp.ADD, "a", "a", "b"),
        StoreGlobal("result", "a"),
    ]
    pages = ((4 << 30) + (2 << 20)) // 65536
    return Module("memory64", [Function("main", body)],
                  globals=["result"], memory_pages=pages)


class TestMemory64:
    def test_hfi_large_regions_support_64bit_heaps(self):
        runtime = WasmRuntime()
        instance = runtime.instantiate(memory64_module(), HfiStrategy())
        result = runtime.run(instance)
        assert result.reason == "hlt"
        got = runtime.space.read(instance.layout.globals_base)
        assert got == 2 * 0xC0FFEE
        # sparse: a >4 GiB heap must not materialize pages
        assert runtime.space.present_pages < 1000

    def test_guard_page_scheme_cannot(self):
        """§2: 'The approach above only supports 32-bit address spaces
        on 64-bit architectures.'"""
        runtime = WasmRuntime()
        with pytest.raises(CompatibilityError):
            runtime.instantiate(memory64_module(), GuardPagesStrategy())

    def test_bounds_checks_can_but_pay(self):
        """Old-school SFI conditionals still work for Memory64 — at
        their usual cost (§2)."""
        runtime = WasmRuntime()
        instance = runtime.instantiate(memory64_module(),
                                       BoundsCheckStrategy())
        result = runtime.run(instance)
        assert result.reason == "hlt"
        got = runtime.space.read(instance.layout.globals_base)
        assert got == 2 * 0xC0FFEE

    def test_hfi_still_traps_past_the_64bit_bound(self):
        module = memory64_module()
        oob = module.memory_bytes + 4096
        module.functions[0].body.insert(0, Const("oob", oob))
        module.functions[0].body.insert(1, Load("z", "oob"))
        runtime = WasmRuntime()
        instance = runtime.instantiate(module, HfiStrategy())
        result = runtime.run(instance)
        assert result.reason == "fault"
        assert result.fault.hfi_cause is FaultCause.HMOV_OUT_OF_BOUNDS