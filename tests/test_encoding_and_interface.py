"""Unit tests for descriptor encoding and the high-level Hfi facade."""

import pytest

from repro.core import (
    ExplicitDataRegion,
    FaultCause,
    Hfi,
    HfiFault,
    ImplicitCodeRegion,
    ImplicitDataRegion,
    SandboxDescriptor,
    SandboxFlags,
)
from repro.core.encoding import (
    REGION_DESCRIPTOR_BYTES,
    SANDBOX_DESCRIPTOR_BYTES,
    decode_region,
    decode_sandbox,
    encode_region,
    encode_sandbox,
)
from repro.params import MachineParams


class TestRegionEncoding:
    CASES = [
        ImplicitCodeRegion(0x40_0000, 0xFFFF, permission_exec=True),
        ImplicitCodeRegion(0x0, 0x0, permission_exec=False),
        ImplicitDataRegion(0x10_0000, 0xFFF, permission_read=True,
                           permission_write=False),
        ImplicitDataRegion(0x0, (1 << 32) - 1, permission_read=True,
                           permission_write=True),
        ExplicitDataRegion(0x7FFF_0000, 1 << 16, permission_read=True,
                           permission_write=True, is_large_region=True),
        ExplicitDataRegion(0x1234, 999, permission_read=False,
                           permission_write=True, is_large_region=False),
    ]

    @pytest.mark.parametrize("region", CASES, ids=lambda r: repr(r)[:40])
    def test_roundtrip(self, region):
        data = encode_region(region)
        assert len(data) == REGION_DESCRIPTOR_BYTES
        assert decode_region(data) == region

    def test_bad_type_rejected(self):
        with pytest.raises(ValueError):
            decode_region(b"\x03" + b"\x00" * 23)

    def test_not_a_region(self):
        with pytest.raises(TypeError):
            encode_region("nope")


class TestSandboxEncoding:
    @pytest.mark.parametrize("flags", [
        SandboxFlags(),
        SandboxFlags(is_hybrid=True),
        SandboxFlags(is_serialized=True),
        SandboxFlags(switch_on_exit=True),
        SandboxFlags(is_hybrid=True, is_serialized=True,
                     switch_on_exit=True),
    ])
    def test_roundtrip(self, flags):
        data = encode_sandbox(flags, exit_handler=0xCAFE_BABE)
        assert len(data) == SANDBOX_DESCRIPTOR_BYTES
        got_flags, handler = decode_sandbox(data)
        assert got_flags == flags
        assert handler == 0xCAFE_BABE


class TestHfiFacade:
    def _descriptor(self, hybrid=False):
        regions = [
            (0, ImplicitCodeRegion.covering(0x40_0000, 1 << 16)),
            (2, ImplicitDataRegion.covering(0x10_0000, 1 << 16,
                                            read=True, write=True)),
            (6, ExplicitDataRegion(0x10_0000, 1 << 16,
                                   permission_read=True,
                                   permission_write=True)),
        ]
        if hybrid:
            return SandboxDescriptor.hybrid(regions)
        return SandboxDescriptor.native(0x7000, regions)

    def test_enter_charges_cycles(self):
        hfi = Hfi(MachineParams())
        cost = hfi.enter(self._descriptor())
        assert cost > 0
        assert hfi.cycles == cost
        assert hfi.state.enabled

    def test_exit_and_reenter(self):
        hfi = Hfi(MachineParams())
        hfi.enter(self._descriptor())
        outcome = hfi.exit()
        assert outcome.redirect_to == 0x7000
        assert not hfi.state.enabled
        hfi.reenter()
        assert hfi.state.enabled

    def test_native_descriptor_defaults_serialized(self):
        desc = self._descriptor()
        assert desc.flags.is_serialized
        assert not desc.flags.is_hybrid

    def test_hybrid_descriptor(self):
        desc = self._descriptor(hybrid=True)
        assert desc.flags.is_hybrid
        assert not desc.flags.is_serialized

    def test_syscall_in_native_interposed(self):
        hfi = Hfi(MachineParams())
        hfi.enter(self._descriptor())
        outcome = hfi.syscall(nr=2)
        assert outcome is not None
        assert outcome.redirect_to == 0x7000
        assert hfi.cause_msr is FaultCause.SYSCALL

    def test_syscall_in_hybrid_passes(self):
        hfi = Hfi(MachineParams())
        hfi.enter(self._descriptor(hybrid=True))
        assert hfi.syscall(nr=2) is None

    def test_resize_region(self):
        hfi = Hfi(MachineParams())
        hfi.install_regions(self._descriptor().regions)
        hfi.resize_region(6, 4 << 16)
        region, _ = hfi.state.get_region(6)
        assert region.bound == 4 << 16

    def test_resize_unconfigured_region_raises(self):
        hfi = Hfi(MachineParams())
        with pytest.raises(ValueError):
            hfi.resize_region(7, 1 << 16)

    def test_region_update_locked_in_native(self):
        hfi = Hfi(MachineParams())
        hfi.enter(self._descriptor())
        with pytest.raises(HfiFault):
            hfi.set_region(2, None)

    def test_clear_all(self):
        hfi = Hfi(MachineParams())
        hfi.install_regions(self._descriptor().regions)
        hfi.clear_all_regions()
        assert hfi.state.regs.get(0) is None
        assert hfi.state.regs.get(6) is None

    def test_cycle_ledger_monotonic(self):
        hfi = Hfi(MachineParams())
        checkpoints = [hfi.cycles]
        hfi.enter(self._descriptor(hybrid=True))
        checkpoints.append(hfi.cycles)
        hfi.set_region(6, ExplicitDataRegion(0x20_0000, 1 << 16,
                                             permission_read=True))
        checkpoints.append(hfi.cycles)
        hfi.exit()
        checkpoints.append(hfi.cycles)
        assert checkpoints == sorted(checkpoints)
        assert checkpoints[-1] > 0