"""Conformance against the paper's appendix A.1 software interface.

The appendix (Fig. 6) lists the complete HFI interface; this suite
checks that every listed instruction and structure field exists with
the documented shape, so the reproduction can honestly claim to
implement the published ISA surface.
"""

import dataclasses

import pytest

from repro.core import (
    REGISTER_COUNT,
    ExplicitDataRegion,
    HfiState,
    ImplicitCodeRegion,
    ImplicitDataRegion,
    NUM_CODE_REGIONS,
    NUM_EXPLICIT_REGIONS,
    NUM_IMPLICIT_DATA_REGIONS,
    SandboxFlags,
)
from repro.isa import Opcode


class TestInstructionSurface:
    """Fig. 6's functions, one opcode each (+ the four hmov variants)."""

    APPENDIX_INSTRUCTIONS = [
        "hfi_enter", "hfi_reenter", "hfi_exit",
        "hfi_clear_all_regions", "hfi_clear_region",
        "hfi_set_region", "hfi_get_region",
    ]

    @pytest.mark.parametrize("name", APPENDIX_INSTRUCTIONS)
    def test_instruction_exists(self, name):
        assert Opcode(name) is not None

    def test_eight_hfi_instructions_total(self):
        """§4: 'HFI's architecture adds: 8 instructions' — the seven
        appendix functions; hmov is counted as the eighth (with four
        register-selecting encodings)."""
        hfi_ops = [op for op in Opcode if op.value.startswith("hfi_")]
        assert len(hfi_ops) == 7
        hmovs = [op for op in Opcode if op.value.startswith("hmov")]
        assert len(hmovs) == 4

    def test_state_machine_methods(self):
        state = HfiState()
        for method in ("enter", "exit", "reenter", "set_region",
                       "get_region", "clear_region",
                       "clear_all_regions"):
            assert callable(getattr(state, method))


class TestStructures:
    def test_sandbox_t_fields(self):
        """sandbox_t: is_hybrid, is_serialized, switch_on_exit (+ the
        exit handler travels as an hfi_enter parameter)."""
        names = {f.name for f in dataclasses.fields(SandboxFlags)}
        assert names == {"is_hybrid", "is_serialized", "switch_on_exit"}

    def test_implicit_code_region_t_fields(self):
        names = {f.name for f in dataclasses.fields(ImplicitCodeRegion)}
        assert names == {"base_prefix", "lsb_mask", "permission_exec"}

    def test_implicit_data_region_t_fields(self):
        names = {f.name for f in dataclasses.fields(ImplicitDataRegion)}
        assert names == {"base_prefix", "lsb_mask", "permission_read",
                         "permission_write"}

    def test_explicit_data_region_t_fields(self):
        names = {f.name for f in dataclasses.fields(ExplicitDataRegion)}
        assert names == {"base_address", "bound", "permission_read",
                         "permission_write", "is_large_region"}


class TestRegionBudget:
    def test_region_counts_match_paper(self):
        """§3.2: six implicit regions (2 code + 4 data) and four
        explicit regions."""
        assert NUM_CODE_REGIONS == 2
        assert NUM_IMPLICIT_DATA_REGIONS == 4
        assert NUM_EXPLICIT_REGIONS == 4

    def test_register_count_is_22(self):
        """§4: '22 internal 64-bit registers (10 regions specified by
        2 registers each, 1 exit handler register and 1 configuration
        register)'."""
        assert REGISTER_COUNT == 22