"""Tests for the production-traffic scenario matrix
(``repro.workloads.scenarios``): NGINX connection churn, render
pipelines, and the measured lifecycle costs they feed into the
serving loop."""

import pytest

from repro.runtime import (
    ServingConfig,
    ServingSimulator,
    TransitionModel,
    connection_lifecycle_costs,
)
from repro.params import MachineParams
from repro.workloads import (
    CHURN_SCHEMES,
    RENDER_JOBS,
    RENDER_SCHEMES,
    NginxModel,
    build_connection_profiles,
    churn_requests,
    churn_scheme_costs,
    connection_service_cycles,
    measure_render_jobs,
    render_requests,
    render_scheme_costs,
)


@pytest.fixture
def params():
    return MachineParams()


class TestLifecycleCosts:
    def test_measured_and_positive(self):
        for strategy in ("native-unsafe", "native-hfi"):
            setup, teardown = connection_lifecycle_costs(strategy)
            assert setup > 0 and teardown > 0

    def test_pkey_tagging_costs_extra_syscalls(self, params):
        plain = connection_lifecycle_costs("native-unsafe",
                                           params=params)
        tagged = connection_lifecycle_costs("native-unsafe",
                                            tag_pkey=True, params=params)
        assert tagged[0] >= plain[0] + params.syscall_cycles
        assert tagged[1] >= plain[1] + params.syscall_cycles

    def test_churn_scheme_costs_ordering(self):
        costs = {s: churn_scheme_costs(s) for s in CHURN_SCHEMES}
        # MPK's per-connection pkey tag/untag dominates the lifecycle
        assert (costs["mpk"].setup_cycles
                > costs["hfi"].setup_cycles
                >= costs["unprotected"].setup_cycles)
        assert (costs["mpk"].teardown_cycles
                > costs["unprotected"].teardown_cycles)
        # transitions are priced inside the service cycles, not here
        assert all(c.transition_cycles == 0 for c in costs.values())

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            churn_scheme_costs("seccomp")
        with pytest.raises(ValueError):
            render_scheme_costs("mpk")


class TestConnectionChurn:
    def test_profiles_deterministic_and_scheme_independent(self):
        a = build_connection_profiles(50, seed=9, load=0.7)
        b = build_connection_profiles(50, seed=9, load=0.7)
        assert a == b
        assert build_connection_profiles(50, seed=10, load=0.7) != a

    def test_streams_share_arrivals_differ_in_service(self):
        profiles = build_connection_profiles(40, seed=3, load=0.6)
        streams = {s: churn_requests(profiles, s) for s in CHURN_SCHEMES}
        for scheme, reqs in streams.items():
            assert [r.arrival_cycle for r in reqs] == [
                p.arrival_cycle for p in profiles]
        hfi = sum(r.service_cycles for r in streams["hfi"])
        mpk = sum(r.service_cycles for r in streams["mpk"])
        plain = sum(r.service_cycles for r in streams["unprotected"])
        # Fig. 5: per-switch MPK is slightly cheaper than HFI (nothing
        # loaded from memory); MPK loses on the pkey lifecycle instead
        assert plain < mpk < hfi

    def test_keepalive_amortizes_handshake(self, params):
        model = NginxModel(params)
        profiles = build_connection_profiles(200, seed=1, load=0.5)
        one = next(p for p in profiles if p.keepalive_requests == 1)
        cycles = connection_service_cycles(model, one, "hfi")
        assert cycles == model.request_cycles(one.file_bytes, "hfi")
        many = profiles[0]
        per_request = model.request_cycles(many.file_bytes, "hfi")
        assert (connection_service_cycles(model, many, "hfi")
                <= many.keepalive_requests * per_request)

    def test_simulates_end_to_end(self):
        profiles = build_connection_profiles(120, seed=5, load=0.6)
        config = ServingConfig(n_cores=4)
        for scheme in CHURN_SCHEMES:
            sim = ServingSimulator(churn_scheme_costs(scheme), config,
                                   seed=5)
            metrics = sim.run(churn_requests(profiles, scheme))
            assert metrics.accounted
            assert metrics.succeeded + metrics.shed == 120


class TestRenderPipelines:
    #: two cheap cells keep the executed-Wasm test inside tier-1 budget
    TRIMMED = ("image/240p-none", "image/240p-default")

    def test_measured_cells_ordered_and_agreeing(self):
        jobs = {name: RENDER_JOBS[name] for name in self.TRIMMED}
        table = measure_render_jobs(jobs=jobs)
        for name in self.TRIMMED:
            per = table[name]
            assert set(per) == set(RENDER_SCHEMES)
            # Fig. 4 direction: hfi codegen beats the software schemes
            assert per["hfi"] < per["guard-pages"]
            assert per["hfi"] < per["bounds-check"]

    def test_streams_share_arrivals_use_measured_columns(self):
        table = {"a": {"hfi": 1000, "guard-pages": 1500,
                       "bounds-check": 2000},
                 "b": {"hfi": 3000, "guard-pages": 4000,
                       "bounds-check": 6000}}
        streams = render_requests(table, 30, seed=2, load=0.5)
        arrivals = [r.arrival_cycle for r in streams["hfi"]]
        for scheme in RENDER_SCHEMES:
            assert [r.arrival_cycle for r in streams[scheme]] == arrivals
            for r in streams[scheme]:
                assert r.service_cycles in (table["a"][scheme],
                                            table["b"][scheme])

    def test_render_costs_teardown_shape(self):
        # §6.3.1: only guard-page slots must madvise immediately
        assert not render_scheme_costs("guard-pages").batch_teardown
        assert render_scheme_costs("hfi").batch_teardown
        assert render_scheme_costs("bounds-check").batch_teardown
