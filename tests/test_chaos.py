"""Tests for the chaos subsystem: seeded planners and the soak gate."""

import pytest

from repro.chaos import (
    CHAOS_KINDS,
    ChaosConfig,
    ChaosInjector,
    build_workload,
    run_soak,
)
from repro.chaos.soak import run_seed
from repro.runtime import FaultKind, Priority, Request


class TestInjectorDeterminism:
    def test_same_seed_same_plan(self):
        plans = []
        for _ in range(2):
            injector = ChaosInjector(seed=42)
            plans.append([(i.request_index, i.kind)
                          for i in injector.plan(500)])
        assert plans[0] == plans[1]
        assert plans[0]      # 5% of 500: statistically non-empty

    def test_different_seeds_differ(self):
        a = [(i.request_index, i.kind)
             for i in ChaosInjector(seed=1).plan(500)]
        b = [(i.request_index, i.kind)
             for i in ChaosInjector(seed=2).plan(500)]
        assert a != b

    def test_replanning_is_rejected(self):
        injector = ChaosInjector(seed=0)
        injector.plan(10)
        with pytest.raises(RuntimeError):
            injector.plan(10)

    def test_fault_rate_scales_the_plan(self):
        low = ChaosInjector(0, ChaosConfig(fault_rate=0.01)).plan(2000)
        high = ChaosInjector(0, ChaosConfig(fault_rate=0.20)).plan(2000)
        assert len(high) > 5 * len(low)

    def test_zero_rate_injects_nothing(self):
        assert ChaosInjector(0, ChaosConfig(fault_rate=0.0)).plan(500) == []

    def test_mix_respects_zero_weight(self):
        config = ChaosConfig(fault_rate=0.5,
                             mix={FaultKind.GUEST_HANG: 1.0})
        plan = ChaosInjector(3, config).plan(200)
        assert plan and all(i.kind is FaultKind.GUEST_HANG
                            for i in plan)

    def test_catalog_covers_every_fault_kind(self):
        assert set(CHAOS_KINDS) == set(FaultKind)


class TestBurstSynthesis:
    def build(self):
        config = ChaosConfig(fault_rate=1.0,
                             mix={FaultKind.BURST_OVERLOAD: 1.0})
        injector = ChaosInjector(9, config)
        injector.plan(1)
        return injector

    def test_burst_exceeds_the_admission_limit(self):
        injector = self.build()
        trigger = Request(index=0, tenant="t", service_cycles=10_000)
        extra = injector.burst_requests(trigger, queue_limit=16,
                                        next_index=100)
        assert len(extra) == 16 + injector.config.burst_margin
        assert all(r.priority == Priority.LOW for r in extra)
        assert all(r.injection is injector.injection_for(0)
                   for r in extra)
        assert all(r.arrival_cycle == trigger.arrival_cycle
                   for r in extra)
        assert [r.index for r in extra] == list(
            range(100, 100 + len(extra)))

    def test_non_burst_trigger_yields_nothing(self):
        injector = ChaosInjector(
            5, ChaosConfig(fault_rate=1.0,
                           mix={FaultKind.GUEST_FAULT: 1.0}))
        injector.plan(1)
        trigger = Request(index=0, tenant="t", service_cycles=10_000)
        assert injector.burst_requests(trigger, 16, 100) == []


class TestWorkload:
    def test_workload_is_deterministic_and_ordered(self):
        a = build_workload(11, 100)
        b = build_workload(11, 100)
        assert ([(r.tenant, r.service_cycles, r.arrival_cycle,
                  r.priority) for r in a]
                == [(r.tenant, r.service_cycles, r.arrival_cycle,
                     r.priority) for r in b])
        arrivals = [r.arrival_cycle for r in a]
        assert arrivals == sorted(arrivals)

    def test_workload_mixes_priorities(self):
        priorities = {r.priority for r in build_workload(1, 200)}
        assert priorities == {Priority.LOW, Priority.NORMAL,
                              Priority.HIGH}


class TestSoakGate:
    def test_seeded_run_is_clean_and_fully_accounted(self):
        outcome = run_seed(3, n_requests=120, fault_rate=0.10)
        assert outcome.clean, outcome.failures
        assert outcome.injected > 0
        assert outcome.unaccounted == 0
        assert outcome.leaked_slots == 0
        assert outcome.zombie_sandboxes == 0
        assert sum(outcome.breakdown.values()) == outcome.injected
        assert set(outcome.breakdown) <= {"retried", "shed",
                                          "quarantined", "killed"}

    def test_soak_run_is_reproducible(self):
        a = run_seed(8, n_requests=80, fault_rate=0.08)
        b = run_seed(8, n_requests=80, fault_rate=0.08)
        assert a.as_dict() == b.as_dict()

    def test_soak_report_aggregates_and_retains_goodput(self):
        report = run_soak(range(3), n_requests=80, fault_rate=0.05)
        assert report.clean
        assert report.runs == 3
        assert report.injected == sum(o.injected
                                      for o in report.outcomes)
        retained = report.goodput_retained
        assert retained is not None
        assert 0.5 < retained <= 1.05
        payload = report.as_dict()
        assert payload["clean"] is True
        assert payload["unaccounted"] == 0
        assert len(payload["seeds"]) == 3

    def test_guard_pages_strategy_also_survives(self):
        outcome = run_seed(2, n_requests=60, fault_rate=0.10,
                           strategy="guard-pages")
        assert outcome.clean, outcome.failures

    def test_stress_rate_stays_clean(self):
        outcome = run_seed(1, n_requests=100, fault_rate=0.30)
        assert outcome.clean, outcome.failures
        assert outcome.injected > 15
