"""Every shipped example must run clean — they are the quickstart
documentation, so they get CI coverage like everything else."""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")

EXAMPLES = [
    "quickstart.py",
    "spectre_demo.py",
    "wasm_faas.py",
    "library_sandboxing.py",
    "native_sandboxing.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script, capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, script),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_demonstrates_the_trap(capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, "quickstart.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "DATA_OUT_OF_BOUNDS" in out
    assert "sandbox disabled: True" in out


def test_spectre_demo_shows_both_outcomes(capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, "spectre_demo.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "'HFI!'" in out          # recovered without protection
    assert "never reached the cache" in out


def test_native_sandboxing_shows_mpk_wall(capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, "native_sandboxing.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "15 domains" in out
    assert "1000 sandboxes" in out