"""The discrete-event serving simulator (repro.runtime.serving).

Covers the pieces separately — arrival processes, the sharded
work-stealing pool, scheme cost derivation — then the assembled event
loop: accounting partitions, supervisor-policy integration (admission
shedding, breakers, watchdog), fault-ledger classification, and the
telemetry snapshot.
"""

import pytest

from repro.params import MachineParams
from repro.runtime import (
    SERVING_SCHEMES,
    FaultKind,
    Injection,
    MmppArrivals,
    PoissonArrivals,
    Priority,
    Request,
    ServingConfig,
    ServingSimulator,
    ShardedInstancePool,
    TraceArrivals,
    build_requests,
    load_trace,
    save_trace,
    scheme_costs,
    simulate_serving,
)
from repro.os import AddressSpace
from repro.telemetry import ServingStats, Telemetry
from repro.wasm import HfiStrategy


@pytest.fixture
def params():
    return MachineParams()


class FakeInjector:
    """Chaos planner stub: one FaultKind per chosen request index."""

    def __init__(self, plan):
        self.plan = {index: Injection(injection_id=k, request_index=index,
                                      kind=kind)
                     for k, (index, kind) in enumerate(sorted(plan.items()))}

    def injection_for(self, index):
        return self.plan.get(index)

    def unaccounted(self):
        return [i for i in self.plan.values() if i.classified is None]


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
class TestArrivals:
    def test_poisson_is_seed_deterministic(self):
        a = list(PoissonArrivals(1000.0, seed=3).interarrivals(50))
        b = list(PoissonArrivals(1000.0, seed=3).interarrivals(50))
        assert a == b
        assert a != list(PoissonArrivals(1000.0, seed=4).interarrivals(50))

    def test_poisson_mean_tracks_parameter(self):
        gaps = list(PoissonArrivals(5000.0, seed=1).interarrivals(4000))
        mean = sum(gaps) / len(gaps)
        assert 4200 < mean < 5800
        assert all(g >= 1 for g in gaps)

    def test_mmpp_is_burstier_than_poisson(self):
        """Same mean-rate knob: the MMPP's gap variance must exceed
        Poisson's — that's the whole point of the burst state."""
        def cv2(gaps):
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / (mean * mean)

        poisson = list(PoissonArrivals(2000.0, seed=9).interarrivals(5000))
        mmpp = list(MmppArrivals(2000.0, seed=9).interarrivals(5000))
        assert cv2(mmpp) > cv2(poisson)

    def test_trace_replays_and_wraps(self):
        trace = TraceArrivals([5, 10, 15])
        assert list(trace.interarrivals(5)) == [5, 10, 15, 5, 10]

    def test_build_requests_sorted_and_prioritized(self):
        requests = build_requests(PoissonArrivals(1000.0, seed=2), 400,
                                  seed=2)
        assert [r.index for r in requests] == list(range(400))
        arrivals = [r.arrival_cycle for r in requests]
        assert arrivals == sorted(arrivals)
        priorities = {r.priority for r in requests}
        assert priorities == {Priority.LOW, Priority.NORMAL, Priority.HIGH}

    def test_trace_round_trips_through_file(self, tmp_path):
        requests = build_requests(PoissonArrivals(800.0, seed=5), 50,
                                  seed=5)
        path = str(tmp_path / "trace.json")
        save_trace(requests, path)
        replayed = load_trace(path)
        assert replayed == requests

    def test_load_trace_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else", "requests": []}')
        with pytest.raises(ValueError):
            load_trace(str(path))


# ----------------------------------------------------------------------
# the sharded work-stealing pool
# ----------------------------------------------------------------------
class TestShardedPool:
    def build(self, params, shards=4, slots=4, **kwargs):
        space = AddressSpace(params)
        return ShardedInstancePool(space, HfiStrategy(), shards=shards,
                                   slots_per_shard=slots,
                                   heap_bytes=1 << 14, params=params,
                                   **kwargs)

    def test_local_acquire_prefers_own_shard(self, params):
        pool = self.build(params)
        slot, owner, _ = pool.acquire(2)
        assert slot is not None and owner == 2
        assert pool.local_acquires == 1 and pool.steals == 0

    def test_steals_from_richest_when_local_dry(self, params):
        pool = self.build(params, shards=2, slots=2)
        held = [pool.acquire(0) for _ in range(2)]      # drain shard 0
        assert all(s is not None for s, _, _ in held)
        slot, owner, _ = pool.acquire(0)                # must steal
        assert slot is not None and owner == 1
        assert pool.steals == 1

    def test_exhausted_when_everything_held(self, params):
        pool = self.build(params, shards=2, slots=1)
        assert pool.acquire(0)[0] is not None
        assert pool.acquire(1)[0] is not None
        slot, _, _ = pool.acquire(0)
        assert slot is None
        assert pool.exhausted == 1

    def test_batched_discards_flushed_before_stealing(self, params):
        """A dry shard with pending batched discards recycles its own
        slots rather than stealing — local recycle beats a steal."""
        pool = self.build(params, shards=2, slots=1, batch_teardown=True)
        slot, owner, _ = pool.acquire(0)
        pool.release(slot, owner)       # batched: slot pending discard
        slot2, owner2, _ = pool.acquire(0)
        assert slot2 is not None and owner2 == 0
        assert pool.steals == 0 and pool.dry_flushes >= 1

    def test_release_and_quarantine_route_to_owner_shard(self, params):
        pool = self.build(params, shards=2, slots=2)
        held = [pool.acquire(0) for _ in range(2)]
        stolen, owner, _ = pool.acquire(0)
        assert owner == 1
        pool.quarantine(stolen, owner)
        for slot, own, _ in held:
            pool.release(slot, own)
        assert pool.quarantined == 1
        assert pool.shard_available()[1] == 1   # one lost to quarantine

    def test_scrub_rescues_a_fully_quarantined_pool(self, params):
        pool = self.build(params, shards=2, slots=1)
        for shard in range(2):
            slot, owner, _ = pool.acquire(shard)
            pool.quarantine(slot, owner)
        assert pool.available == 0
        slot, _, _ = pool.acquire(0)
        assert slot is not None
        assert pool.scrub_rescues == 1

    def test_stats_snapshot(self, params):
        pool = self.build(params, shards=2, slots=2)
        pool.acquire(0)
        stats = pool.stats()
        assert isinstance(stats, ServingStats) is False
        assert stats.shards == 2 and stats.slots == 4
        assert stats.local_acquires == 1
        assert 0.0 <= stats.steal_rate <= 1.0

    def test_registers_one_telemetry_component(self, params):
        telemetry = Telemetry()
        self.build(params, telemetry=telemetry)
        names = [name for name, _ in telemetry.components()] \
            if hasattr(telemetry, "components") else None
        snapshot = telemetry.snapshot()
        assert "sharded-pool" in str(snapshot) or names


# ----------------------------------------------------------------------
# scheme costs
# ----------------------------------------------------------------------
class TestSchemeCosts:
    def test_all_serving_schemes_derive(self, params):
        for name in SERVING_SCHEMES:
            costs = scheme_costs(name, params)
            assert costs.transition_cycles > 0
            assert costs.dispatch_cycles > 0

    def test_only_hfi_batches_teardown(self, params):
        assert scheme_costs("hfi", params).batch_teardown
        assert not scheme_costs("guard-pages", params).batch_teardown
        assert not scheme_costs("mpk", params).batch_teardown

    def test_mpk_transition_includes_wrpkru(self, params):
        mpk = scheme_costs("mpk", params)
        guard = scheme_costs("guard-pages", params)
        assert mpk.transition_cycles >= 2 * params.wrpkru_cycles
        assert mpk.transition_cycles > guard.transition_cycles

    def test_unknown_scheme_raises(self, params):
        with pytest.raises(ValueError):
            scheme_costs("enclave", params)


# ----------------------------------------------------------------------
# the event loop
# ----------------------------------------------------------------------
class TestServingLoop:
    def run(self, requests, injector=None, config=None, scheme="hfi",
            params=None, seed=0):
        params = params or MachineParams()
        config = config or ServingConfig(n_cores=2, slots_per_shard=4,
                                         max_inflight=8)
        sim = ServingSimulator(scheme, config, params, seed=seed)
        return sim, sim.run(requests, injector=injector)

    def requests(self, n, gap=50_000, service=30_000,
                 priority=Priority.NORMAL, tenant="t0"):
        return [Request(index=i, tenant=tenant, service_cycles=service,
                        priority=priority, arrival_cycle=(i + 1) * gap)
                for i in range(n)]

    def test_underload_everything_succeeds(self):
        sim, metrics = self.run(self.requests(40))
        assert metrics.succeeded == 40
        assert metrics.shed == metrics.failed == 0
        assert metrics.accounted
        assert len(sim.outcomes) == 40

    def test_latency_includes_queueing(self):
        """Two same-cycle arrivals on one core: the second waits."""
        reqs = [Request(0, "t0", 30_000, Priority.NORMAL, 1000),
                Request(2, "t0", 30_000, Priority.NORMAL, 1000)]
        config = ServingConfig(n_cores=1, slots_per_shard=4,
                               max_inflight=8)
        sim, metrics = self.run(reqs, config=config)
        assert metrics.succeeded == 2
        first, second = sorted(sim.latencies)
        assert second > first + 30_000 * 0.9

    def test_overload_sheds_and_accounts(self):
        config = ServingConfig(n_cores=1, slots_per_shard=2,
                               max_inflight=2)
        sim, metrics = self.run(self.requests(30, gap=100), config=config)
        assert metrics.shed > 0
        assert metrics.accounted
        shed_outcomes = [o for o in sim.outcomes if o.status == "shed"]
        assert len(shed_outcomes) == metrics.shed

    def test_overload_never_sheds_high_priority(self):
        lows = self.requests(20, gap=100, priority=Priority.LOW)
        highs = [Request(index=100 + i, tenant="vip",
                         service_cycles=30_000, priority=Priority.HIGH,
                         arrival_cycle=150 + i * 100) for i in range(10)]
        merged = sorted(lows + highs, key=lambda r: r.arrival_cycle)
        # the pool must be able to absorb every HIGH at once: HIGH is
        # admitted past max_inflight rather than shed, so only slot
        # exhaustion by HIGH traffic itself could ever drop one
        config = ServingConfig(n_cores=1, slots_per_shard=16,
                               max_inflight=2)
        sim, metrics = self.run(merged, config=config)
        assert metrics.shed > 0
        for outcome in sim.outcomes:
            if outcome.status == "shed":
                assert outcome.request.priority < Priority.HIGH

    def test_admission_prefers_shedding_newest_of_lowest(self):
        """With the queue full of LOW requests, a LOW newcomer is the
        newest lowest-priority candidate — it shovels itself."""
        config = ServingConfig(n_cores=1, slots_per_shard=8,
                               max_inflight=2)
        reqs = self.requests(6, gap=10, priority=Priority.LOW)
        sim, metrics = self.run(reqs, config=config)
        shed_indices = [o.request.index for o in sim.outcomes
                        if o.status == "shed"]
        kept = [o.request.index for o in sim.outcomes
                if o.status == "ok"]
        assert shed_indices and kept
        # the earliest arrivals survive; the late pile-on is shed
        assert min(kept) < min(shed_indices)

    def test_normal_newcomer_evicts_queued_low(self):
        config = ServingConfig(n_cores=1, slots_per_shard=8,
                               max_inflight=2)
        reqs = [Request(0, "t0", 200_000, Priority.LOW, 100),
                Request(1, "t0", 200_000, Priority.LOW, 120),
                Request(2, "t0", 200_000, Priority.NORMAL, 140)]
        sim, metrics = self.run(reqs, config=config)
        statuses = {o.request.index: o.status for o in sim.outcomes}
        assert statuses[1] == "shed"        # queued LOW evicted
        assert statuses[2] == "ok"          # NORMAL admitted

    def test_breaker_opens_and_sheds_tenant(self):
        """A tenant whose guests keep faulting trips its breaker; its
        later requests shed without holding slots."""
        n = 12
        plan = {i: FaultKind.GUEST_FAULT for i in range(6)}
        injector = FakeInjector(plan)
        config = ServingConfig(n_cores=1, slots_per_shard=16,
                               max_inflight=16, breaker_threshold=3,
                               breaker_cooldown_cycles=10**9)
        sim, metrics = self.run(self.requests(n), injector=injector,
                                config=config)
        assert metrics.breaker_shed > 0
        assert sim.breakers["t0"].trips >= 1
        assert metrics.accounted

    def test_watchdog_kills_hung_guest(self):
        injector = FakeInjector({3: FaultKind.GUEST_HANG})
        sim, metrics = self.run(self.requests(8), injector=injector)
        assert metrics.killed == 1
        assert metrics.failed == 1
        killed = [o for o in sim.outcomes if o.detail == "watchdog"]
        assert len(killed) == 1 and killed[0].request.index == 3
        assert injector.plan[3].classified == "killed"

    def test_transient_faults_retried_inline(self):
        injector = FakeInjector({2: FaultKind.TRANSIENT_KERNEL,
                                 5: FaultKind.HEAP_OOM})
        sim, metrics = self.run(self.requests(8), injector=injector)
        assert metrics.retried == 2
        assert metrics.succeeded == 8       # retries still succeed
        retried = [o for o in sim.outcomes if o.attempts == 2]
        assert {o.request.index for o in retried} == {2, 5}

    def test_slot_corruption_quarantines_but_succeeds(self):
        injector = FakeInjector({4: FaultKind.SLOT_CORRUPTION})
        sim, metrics = self.run(self.requests(8), injector=injector)
        assert metrics.succeeded == 8
        assert metrics.quarantined == 1
        assert sim.pool.quarantined == 1

    def test_every_injection_classified_exactly_once(self):
        plan = {1: FaultKind.GUEST_FAULT, 3: FaultKind.GUEST_HANG,
                5: FaultKind.TRANSIENT_KERNEL, 7: FaultKind.HEAP_OOM,
                9: FaultKind.SLOT_CORRUPTION}
        injector = FakeInjector(plan)
        sim, metrics = self.run(self.requests(12), injector=injector)
        assert injector.unaccounted() == []
        ledger = {i.classified for i in injector.plan.values()}
        assert ledger <= {"retried", "shed", "quarantined", "killed"}
        assert metrics.accounted

    def test_work_stealing_engages_under_skew(self):
        """All traffic hashed to core 0 must steal from shard 1."""
        reqs = [Request(index=i * 2, tenant="t0", service_cycles=40_000,
                        priority=Priority.NORMAL,
                        arrival_cycle=100 + i * 10)
                for i in range(8)]          # even indices -> core 0
        config = ServingConfig(n_cores=2, slots_per_shard=4,
                               max_inflight=16)
        sim, metrics = self.run(reqs, config=config)
        assert metrics.steals > 0
        assert metrics.accounted

    def test_hfi_cheaper_tail_than_guard_pages_same_load(self):
        """Identical workload: HFI's batched teardown must not yield a
        worse p99 than guard-pages' per-request madvise."""
        reqs = build_requests(PoissonArrivals(9_000.0, seed=3), 600,
                              seed=3)
        config = ServingConfig(n_cores=2, slots_per_shard=8,
                               max_inflight=16)
        outcomes = {}
        for scheme in ("hfi", "guard-pages"):
            _, metrics = self.run(reqs, config=config, scheme=scheme)
            outcomes[scheme] = metrics
        assert (outcomes["hfi"].p99_cycles
                <= outcomes["guard-pages"].p99_cycles)

    def test_stats_snapshot_matches_metrics(self):
        sim, metrics = self.run(self.requests(20))
        stats = sim.stats()
        assert isinstance(stats, ServingStats)
        assert stats.requests == 20
        assert stats.succeeded == metrics.succeeded
        assert stats.accounted

    def test_telemetry_component_registered(self):
        telemetry = Telemetry()
        config = ServingConfig(n_cores=2, slots_per_shard=4,
                               max_inflight=8)
        sim = ServingSimulator("hfi", config, MachineParams(), seed=0,
                               telemetry=telemetry)
        sim.run(self.requests(10))
        snapshot = telemetry.snapshot()
        assert "serving" in str(snapshot)


# ----------------------------------------------------------------------
# the convenience front door
# ----------------------------------------------------------------------
class TestSimulateServing:
    def test_reports_all_percentiles_ordered(self):
        metrics = simulate_serving("hfi", n_requests=300, seed=1,
                                   offered_load=0.9)
        assert (metrics.p50_cycles <= metrics.p99_cycles
                <= metrics.p999_cycles)
        assert metrics.p50_ms > 0
        assert metrics.accounted

    def test_rejects_unknown_arrival(self):
        with pytest.raises(ValueError):
            simulate_serving("hfi", n_requests=10, arrival="adversarial")

    def test_offered_load_scales_pressure(self):
        light = simulate_serving("hfi", n_requests=400, seed=4,
                                 offered_load=0.3)
        heavy = simulate_serving("hfi", n_requests=400, seed=4,
                                 offered_load=1.5)
        assert heavy.p99_cycles > light.p99_cycles
        assert heavy.utilization > light.utilization

    def test_explicit_requests_bypass_generation(self):
        reqs = build_requests(PoissonArrivals(20_000.0, seed=6), 50,
                              seed=6)
        metrics = simulate_serving("hfi", requests=reqs, seed=6)
        assert metrics.requests == 50
        assert metrics.arrival == "trace"
