"""Tests for function chaining, the pooling allocator, and the mix
profiler."""

import pytest

from repro.analysis import compare, profile
from repro.os import AddressSpace
from repro.params import MachineParams
from repro.runtime import ChainModel, InstancePool
from repro.wasm import GuardPagesStrategy, HfiStrategy
from repro.workloads.sightglass import minicsv


@pytest.fixture
def params():
    return MachineParams()


class TestChaining:
    def test_in_process_is_orders_of_magnitude_cheaper(self, params):
        """§2: in-process chaining is 'easily 1000x to 10000x' cheaper
        than IPC."""
        model = ChainModel(params)
        speedup = model.speedup(n_functions=4)
        assert 100 <= speedup <= 20_000
        # the un-serialized HFI hop is function-call-like
        assert model.in_process_hop().cycles < 100

    def test_ipc_scales_with_payload(self, params):
        model = ChainModel(params)
        small = model.ipc_hop(payload_bytes=1 << 10)
        big = model.ipc_hop(payload_bytes=1 << 20)
        assert big.cycles > small.cycles

    def test_in_process_is_zero_copy(self, params):
        model = ChainModel(params)
        assert model.in_process_hop().copies == 0
        assert model.ipc_hop().copies == 2

    def test_serialization_choice_visible(self, params):
        model = ChainModel(params)
        plain = model.chain_cycles(5, mechanism="in-process")
        hardened = model.chain_cycles(5,
                                      mechanism="in-process-serialized")
        assert hardened > plain

    def test_unknown_mechanism_rejected(self, params):
        with pytest.raises(ValueError):
            ChainModel(params).chain_cycles(3, mechanism="carrier-pigeon")


class TestInstancePool:
    def _pool(self, params, strategy, slots=8, batch=False):
        space = AddressSpace(params)
        return InstancePool(space, strategy, slots=slots,
                            heap_bytes=1 << 20, params=params,
                            batch_teardown=batch)

    def test_acquire_release_cycle(self, params):
        pool = self._pool(params, HfiStrategy())
        slot = pool.acquire()
        assert slot.in_use
        assert pool.available == 7
        cost = pool.release(slot)
        assert cost > 0
        assert pool.available == 8

    def test_exhaustion_returns_none(self, params):
        pool = self._pool(params, HfiStrategy(), slots=2)
        a, b = pool.acquire(), pool.acquire()
        assert pool.acquire() is None
        pool.release(a)
        assert pool.acquire() is not None

    def test_double_release_rejected(self, params):
        pool = self._pool(params, HfiStrategy())
        slot = pool.acquire()
        pool.release(slot)
        with pytest.raises(ValueError):
            pool.release(slot)

    def test_release_zeroes_slot_memory(self, params):
        pool = self._pool(params, HfiStrategy())
        slot = pool.acquire()
        pool.space.write(slot.heap_base, 0xABCD, 8, check=False)
        pool.release(slot)
        assert pool.space.read(slot.heap_base, 8, check=False) == 0

    def test_batched_discard_defers_cost(self, params):
        pool = self._pool(params, HfiStrategy(), batch=True)
        slots = [pool.acquire() for _ in range(4)]
        for slot in slots:
            pool.space.write(slot.heap_base, 1, 8, check=False)
            assert pool.release(slot) == 0     # deferred
        flush = pool.flush_discards()
        assert flush > 0
        assert all(not s.dirty for s in slots)

    def test_batched_release_keeps_slot_off_free_list(self, params):
        """Regression: a batched release must park the slot in the
        pending-discard queue, not on the free list."""
        pool = self._pool(params, HfiStrategy(), slots=2, batch=True)
        a, b = pool.acquire(), pool.acquire()
        pool.release(a)
        pool.release(b)
        assert pool.stats().pending_discards == 2
        # every slot is dead-until-flushed: nothing may be handed out
        assert pool.acquire() is None
        pool.flush_discards()
        assert pool.stats().pending_discards == 0
        assert pool.acquire() is not None

    def test_flush_does_not_discard_live_slot_heap(self, params):
        """Regression for the dirty-slot recycling bug: acquire after a
        batched release used to hand back the pending slot, and the
        later flush_discards zapped the *live* instance's heap."""
        pool = self._pool(params, HfiStrategy(), slots=2, batch=True)
        dead = pool.acquire()
        pool.release(dead)                       # pending discard
        live = pool.acquire()                    # must be the other slot
        assert live is not None
        assert live.index != dead.index
        pool.space.write(live.heap_base, 0xFEED, 8, check=False)
        pool.flush_discards()
        assert live.in_use
        assert pool.space.read(live.heap_base, 8, check=False) == 0xFEED
        assert pool.space.read(dead.heap_base, 8, check=False) == 0

    def test_hfi_batching_beats_guard_batching(self, params):
        """The §6.3.1 economics via the pool interface."""
        def recycled_cost(strategy):
            pool = self._pool(params, strategy, slots=16, batch=True)
            slots = [pool.acquire() for _ in range(16)]
            for slot in slots:
                for page in range(8):
                    pool.space.write(slot.heap_base + page * 4096, 1, 8,
                                     check=False)
                pool.release(slot)
            return pool.flush_discards()

        assert recycled_cost(HfiStrategy()) \
            < recycled_cost(GuardPagesStrategy())


class TestMixProfiler:
    def test_profile_shape(self, params):
        prof = profile(minicsv(1), "hfi", params)
        assert prof.instructions > 0
        assert prof.cycles > 0
        assert prof.hfi_ops >= 5      # set_region x3 + enter + exit
        assert prof.memory_ops > 0
        assert prof.branches > 0
        assert 0 < prof.ipc_proxy <= 1.0

    def test_mix_explains_strategy_difference(self, params):
        profiles = compare(minicsv(1), ["guard-pages", "bounds-check"],
                           params)
        guard, bounds = profiles["guard-pages"], profiles["bounds-check"]
        # bounds checks add a conditional branch per access
        assert bounds.branches > guard.branches
        assert bounds.instructions > guard.instructions
        assert bounds.binary_size > guard.binary_size

    def test_hmov_only_in_hfi_mix(self, params):
        profiles = compare(minicsv(1), ["guard-pages", "hfi"], params)
        assert "hmov0" not in profiles["guard-pages"].mix
        assert profiles["hfi"].mix.get("hmov0", 0) > 0

    def test_top_returns_sorted(self, params):
        prof = profile(minicsv(1), "guard-pages", params)
        top = prof.top(3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]