"""Unit tests for the kernel: syscalls, seccomp, signals, processes."""

import pytest

from repro.core import HfiState, ImplicitDataRegion
from repro.os import (
    EBADF,
    ENOENT,
    ENOSYS,
    EPERM,
    ContextSwitcher,
    FileSystem,
    Kernel,
    Prot,
    SeccompAction,
    SeccompFilter,
    SigInfo,
    Signal,
    Sys,
)
from repro.params import MachineParams


@pytest.fixture
def kernel():
    k = Kernel(MachineParams(),
               FileSystem({"a.txt": b"hello", "b.bin": b"\x00" * 100}))
    Kernel.register_name(1, "a.txt")
    Kernel.register_name(2, "b.bin")
    Kernel.register_name(9, "missing")
    return k


@pytest.fixture
def proc(kernel):
    return kernel.spawn()


class TestFileSyscalls:
    def test_open_read_close(self, kernel, proc):
        fd = kernel.syscall(proc, Sys.OPEN, 1).value
        assert fd >= 3
        got = kernel.syscall(proc, Sys.READ, fd, 5)
        assert got.value == 5
        assert kernel.syscall(proc, Sys.CLOSE, fd).value == 0

    def test_read_past_eof_returns_zero(self, kernel, proc):
        fd = kernel.syscall(proc, Sys.OPEN, 1).value
        kernel.syscall(proc, Sys.READ, fd, 100)
        assert kernel.syscall(proc, Sys.READ, fd, 100).value == 0

    def test_open_missing_file(self, kernel, proc):
        assert kernel.syscall(proc, Sys.OPEN, 9).value == ENOENT

    def test_bad_fd(self, kernel, proc):
        assert kernel.syscall(proc, Sys.READ, 99).value == EBADF
        assert kernel.syscall(proc, Sys.CLOSE, 99).value == EBADF

    def test_write_extends_file(self, kernel, proc):
        fd = kernel.syscall(proc, Sys.OPEN, 2).value
        assert kernel.syscall(proc, Sys.WRITE, fd, 200).value == 200

    def test_unknown_syscall(self, kernel, proc):
        assert kernel.syscall(proc, 999).value == ENOSYS

    def test_every_syscall_pays_ring_transition(self, kernel, proc):
        res = kernel.syscall(proc, Sys.GETPID)
        assert res.cycles >= kernel.params.syscall_cycles
        assert res.value == proc.pid


class TestMemorySyscalls:
    def test_mmap_mprotect_munmap(self, kernel, proc):
        addr = kernel.syscall(proc, Sys.MMAP, 8192, int(Prot.NONE)).value
        assert addr > 0
        kernel.syscall(proc, Sys.MPROTECT, addr, 4096, int(Prot.rw()))
        proc.address_space.write(addr, 42)
        kernel.syscall(proc, Sys.MUNMAP, addr, 8192)
        assert proc.address_space.find_vma(addr) is None

    def test_madvise_cost_returned(self, kernel, proc):
        addr = kernel.syscall(proc, Sys.MMAP, 65536, int(Prot.rw())).value
        proc.address_space.write(addr, 1)
        res = kernel.syscall(proc, Sys.MADVISE, addr, 65536)
        assert res.cycles > kernel.params.syscall_cycles


class TestSeccomp:
    def test_errno_rule_blocks(self, kernel, proc):
        proc.seccomp = SeccompFilter(params=kernel.params)
        proc.seccomp.add_rule(int(Sys.OPEN), SeccompAction.ERRNO)
        res = kernel.syscall(proc, Sys.OPEN, 1)
        assert res.value == EPERM
        assert res.action is SeccompAction.ERRNO

    def test_notify_diverts_to_supervisor(self, kernel, proc):
        proc.seccomp = SeccompFilter.interpose_all(
            kernel.params, supervised=(int(Sys.OPEN),))
        res = kernel.syscall(proc, Sys.OPEN, 1)
        assert res.action is SeccompAction.NOTIFY
        # the kernel did NOT service the call
        assert proc.fd_table == {}

    def test_allow_falls_through(self, kernel, proc):
        proc.seccomp = SeccompFilter.interpose_all(kernel.params)
        res = kernel.syscall(proc, Sys.GETPID)
        assert res.value == proc.pid

    def test_filter_cost_grows_with_rules(self):
        params = MachineParams()
        short = SeccompFilter.interpose_all(params, n_padding_rules=2)
        long = SeccompFilter.interpose_all(params, n_padding_rules=40)
        _, c_short = short.evaluate(int(Sys.GETPID))
        _, c_long = long.evaluate(int(Sys.GETPID))
        assert c_long > c_short

    def test_first_matching_rule_wins(self):
        filt = SeccompFilter(params=MachineParams())
        filt.add_rule(2, SeccompAction.ERRNO)
        filt.add_rule(2, SeccompAction.ALLOW)
        action, _ = filt.evaluate(2)
        assert action is SeccompAction.ERRNO


class TestSignals:
    def test_segv_delivery_invokes_handler(self, kernel, proc):
        seen = []
        proc.signals.register(Signal.SIGSEGV, seen.append)
        cost = kernel.deliver_segv(proc, 0xBAD, hfi_cause=16,
                                   description="oob")
        assert cost == kernel.params.signal_delivery_cycles
        assert seen[0].fault_addr == 0xBAD
        assert seen[0].hfi_cause == 16

    def test_unhandled_signal_recorded(self, kernel, proc):
        kernel.deliver_segv(proc, 0x1)
        assert len(proc.signals.delivered) == 1

    def test_handler_only_for_registered_signal(self):
        from repro.os.signals import SignalTable
        table = SignalTable()
        assert not table.deliver(SigInfo(Signal.SIGILL))


class TestContextSwitch:
    def test_registers_roundtrip(self, kernel):
        a, b = kernel.spawn(), kernel.spawn()
        switcher = ContextSwitcher(kernel.params)
        from repro.isa import Reg
        a.registers.write(Reg.RAX, 111)
        switcher.switch(a, b)           # a saved, b restored (empty)
        a.registers.write(Reg.RAX, 222)  # scheduler state mutates
        switcher.switch(b, a)           # a's state comes back
        assert a.registers.read(Reg.RAX) == 111

    def test_hfi_registers_travel_with_xsave(self, kernel):
        a, b = kernel.spawn(), kernel.spawn()
        a.hfi_state = HfiState(kernel.params)
        b.hfi_state = HfiState(kernel.params)
        region = ImplicitDataRegion(0x1_0000, 0xFFFF,
                                    permission_read=True)
        a.hfi_state.set_region(2, region)
        switcher = ContextSwitcher(kernel.params, save_hfi_regs=True)
        switcher.switch(a, b)
        a.hfi_state.set_region(2, None)   # clobbered while descheduled
        switcher.switch(b, a)
        assert a.hfi_state.regs.get(2) == region

    def test_without_flag_hfi_regs_not_saved(self, kernel):
        a, b = kernel.spawn(), kernel.spawn()
        a.hfi_state = HfiState(kernel.params)
        region = ImplicitDataRegion(0x1_0000, 0xFFFF,
                                    permission_read=True)
        a.hfi_state.set_region(2, region)
        switcher = ContextSwitcher(kernel.params, save_hfi_regs=False)
        switcher.switch(a, b)
        a.hfi_state.set_region(2, None)
        switcher.switch(b, a)
        assert a.hfi_state.regs.get(2) is None   # lost, as expected

    def test_switch_cost_includes_hfi_extra(self, kernel):
        a, b = kernel.spawn(), kernel.spawn()
        a.hfi_state = HfiState(kernel.params)
        b.hfi_state = HfiState(kernel.params)
        plain = ContextSwitcher(kernel.params, save_hfi_regs=False)
        with_hfi = ContextSwitcher(kernel.params, save_hfi_regs=True)
        assert with_hfi.switch(a, b) > plain.switch(b, a)