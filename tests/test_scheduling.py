"""Tests for the §2 single-process-vs-multi-process scheduling model
and the masking compatibility guard."""

import pytest

from repro.params import MachineParams
from repro.runtime import MultiplexModel
from repro.wasm import CompatibilityError, MaskingStrategy, WasmRuntime
from repro.wasm.ir import Const, Function, Module


@pytest.fixture
def params():
    return MachineParams()


class TestMultiplexModel:
    def test_single_process_beats_multi_process(self, params):
        model = MultiplexModel(params)
        assert model.advantage() > 1.0

    def test_switch_cost_drives_the_gap(self, params):
        model = MultiplexModel(params)
        single = model.single_process(256, 100_000, slice_cycles=10_000)
        multi = model.multi_process(256, 100_000, slice_cycles=10_000)
        assert single.switches == multi.switches     # same schedule
        assert multi.switch_cycles > 10 * single.switch_cycles

    def test_finer_slicing_widens_the_gap(self, params):
        model = MultiplexModel(params)
        coarse = model.advantage(slice_cycles=100_000)
        fine = model.advantage(slice_cycles=10_000)
        assert fine > coarse

    def test_serialized_switches_cost_more_but_stay_cheap(self, params):
        model = MultiplexModel(params)
        fast = model.single_process(128, 100_000)
        safe = model.single_process(128, 100_000, serialized=True)
        assert safe.total_cycles > fast.total_cycles
        multi = model.multi_process(128, 100_000)
        assert safe.total_cycles < multi.total_cycles

    def test_switch_share_bounded(self, params):
        model = MultiplexModel(params)
        outcome = model.single_process(64, 1_000_000)
        assert 0.0 < outcome.switch_share < 0.05


class TestMaskingCompatibility:
    def test_non_pow2_memory_rejected(self):
        module = Module("np2", [Function("main", [Const("x", 1)])],
                        memory_pages=3)     # 192 KiB: not a power of two
        runtime = WasmRuntime()
        with pytest.raises(CompatibilityError):
            runtime.instantiate(module, MaskingStrategy())

    def test_pow2_memory_accepted(self):
        module = Module("p2", [Function("main", [Const("x", 1)])],
                        memory_pages=4)
        runtime = WasmRuntime()
        instance = runtime.instantiate(module, MaskingStrategy())
        assert runtime.run(instance).reason == "hlt"