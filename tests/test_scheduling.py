"""Tests for the §2 single-process-vs-multi-process scheduling model
and the masking compatibility guard."""

import pytest

from repro.params import MachineParams
from repro.runtime import MultiplexModel, ScheduleOutcome
from repro.wasm import CompatibilityError, MaskingStrategy, WasmRuntime
from repro.wasm.ir import Const, Function, Module


@pytest.fixture
def params():
    return MachineParams()


class TestMultiplexModel:
    def test_single_process_beats_multi_process(self, params):
        model = MultiplexModel(params)
        assert model.advantage() > 1.0

    def test_switch_cost_drives_the_gap(self, params):
        model = MultiplexModel(params)
        single = model.single_process(256, 100_000, slice_cycles=10_000)
        multi = model.multi_process(256, 100_000, slice_cycles=10_000)
        assert single.switches == multi.switches     # same schedule
        assert multi.switch_cycles > 10 * single.switch_cycles

    def test_finer_slicing_widens_the_gap(self, params):
        model = MultiplexModel(params)
        coarse = model.advantage(slice_cycles=100_000)
        fine = model.advantage(slice_cycles=10_000)
        assert fine > coarse

    def test_serialized_switches_cost_more_but_stay_cheap(self, params):
        model = MultiplexModel(params)
        fast = model.single_process(128, 100_000)
        safe = model.single_process(128, 100_000, serialized=True)
        assert safe.total_cycles > fast.total_cycles
        multi = model.multi_process(128, 100_000)
        assert safe.total_cycles < multi.total_cycles

    def test_switch_share_bounded(self, params):
        model = MultiplexModel(params)
        outcome = model.single_process(64, 1_000_000)
        assert 0.0 < outcome.switch_share < 0.05

    def test_failed_invocations_are_surfaced_distinctly(self, params):
        model = MultiplexModel(params)
        clean = model.single_process(200, 100_000)
        faulty = model.single_process(200, 100_000, failure_rate=0.25)
        assert clean.failed == 0 and clean.completed == 200
        assert faulty.failed == 50 and faulty.completed == 150
        assert faulty.requests == 200
        # failures burn partial slices: cheaper than completing, but
        # not free — goodput per cycle must drop
        assert faulty.total_cycles < clean.total_cycles
        assert faulty.goodput_per_mcycle < clean.goodput_per_mcycle

    def test_zero_failure_rate_is_identical(self, params):
        model = MultiplexModel(params)
        assert (model.multi_process(128, 100_000)
                == model.multi_process(128, 100_000, failure_rate=0.0))

    def test_failures_still_pay_switch_overhead(self, params):
        model = MultiplexModel(params)
        faulty = model.multi_process(100, 100_000, slice_cycles=10_000,
                                     failure_rate=1.0)
        assert faulty.completed == 0
        assert faulty.switches > 0 and faulty.switch_cycles > 0
        assert faulty.goodput_per_mcycle == 0.0

    def test_switch_share_stays_a_fraction_under_heavy_switching(
            self, params):
        """Regression: switch_share divided the *aggregate* switch
        cycles by the *per-core* wall clock, so switch-heavy multi-core
        schedules reported shares above 1.0."""
        model = MultiplexModel(params, cores=8)
        for outcome in (model.multi_process(256, 20_000,
                                            slice_cycles=1_000),
                        model.single_process(256, 20_000,
                                             slice_cycles=1_000)):
            assert 0.0 <= outcome.switch_share <= 1.0
            assert outcome.busy_cycles >= outcome.total_cycles
            assert outcome.switch_share == pytest.approx(
                outcome.switch_cycles / outcome.busy_cycles)

    def test_switch_share_uses_busy_cycle_denominator(self):
        # aggregate switch work across 10 cores vs a 100-cycle wall
        # clock: the old per-core denominator reported 7.0
        outcome = ScheduleOutcome("hfi", total_cycles=100,
                                  switch_cycles=700, switches=7,
                                  busy_cycles=1_000)
        assert outcome.switch_share == pytest.approx(0.7)
        # legacy constructions without busy_cycles fall back to the
        # wall clock but are clamped into [0, 1]
        legacy = ScheduleOutcome("hfi", total_cycles=100,
                                 switch_cycles=700, switches=7)
        assert legacy.switch_share == 1.0
        idle = ScheduleOutcome("hfi", total_cycles=0, switch_cycles=0,
                               switches=0)
        assert idle.switch_share == 0.0


class TestMaskingCompatibility:
    def test_non_pow2_memory_rejected(self):
        module = Module("np2", [Function("main", [Const("x", 1)])],
                        memory_pages=3)     # 192 KiB: not a power of two
        runtime = WasmRuntime()
        with pytest.raises(CompatibilityError):
            runtime.instantiate(module, MaskingStrategy())

    def test_pow2_memory_accepted(self):
        module = Module("p2", [Function("main", [Const("x", 1)])],
                        memory_pages=4)
        runtime = WasmRuntime()
        instance = runtime.instantiate(module, MaskingStrategy())
        assert runtime.run(instance).reason == "hlt"