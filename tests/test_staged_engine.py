"""Staged execution engine: predecode cache, journal, and run-loop edges.

These pin down behaviours introduced by the split of the Cpu monolith
into decode / exec / timing / journal stages:

* the ``max_instructions`` boundary resolves a pending halt or fault
  instead of silently reporting ``instruction_limit``;
* patching code through ``cpu._code`` invalidates the decoded entry
  (self-modifying setups stay coherent with the predecode cache);
* speculation squashes via the undo journal — the register file and
  HFI state keep their object identity, and ``copy.deepcopy`` never
  runs on the speculation or snapshot paths.
"""

import copy
import unittest.mock

import pytest

from repro.cpu import Cpu
from repro.isa import Assembler, Imm, Mem, Reg
from repro.os import AddressSpace, Prot
from repro.params import MachineParams
from repro.telemetry import Telemetry

UNMAPPED = 0x66_0000


@pytest.fixture
def params():
    return MachineParams()


def make_cpu(params):
    mem = AddressSpace(params)
    cpu = Cpu(params, memory=mem)
    mem.mmap(1 << 16, Prot.rw(), addr=0x10_0000)
    stack = mem.mmap(1 << 16, Prot.rw(), addr=0x7F_0000)
    cpu.regs.write(Reg.RSP, stack + (1 << 16) - 64)
    return cpu


class TestInstructionLimitEdge:
    """The budget boundary must not swallow the last instruction's fate."""

    def test_halt_on_final_instruction(self, params):
        cpu = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(1))
        asm.mov(Reg.RBX, Imm(2))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base, max_instructions=3)
        assert result.reason == "hlt"

    def test_fault_on_final_instruction(self, params):
        cpu = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(1))
        asm.mov(Reg.RBX, Imm(2))
        asm.mov(Reg.RCX, Mem(disp=UNMAPPED))
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base, max_instructions=3)
        assert result.reason == "fault"
        assert result.fault is not None
        assert result.fault.kind == "page"
        assert result.fault.addr == UNMAPPED

    def test_fault_on_final_instruction_with_resume(self, params):
        cpu = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(1))
        asm.mov(Reg.RCX, Mem(disp=UNMAPPED))
        asm.label("recover")
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.fault_resume_address = program.labels["recover"]
        result = cpu.run(program.base, max_instructions=2)
        # The fault resolved into a redirect, but the budget is spent:
        # the caller sees the limit with rip already at the handler.
        assert result.reason == "instruction_limit"
        assert result.rip == program.labels["recover"]

    def test_limit_without_pending_event(self, params):
        cpu = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(1))
        asm.mov(Reg.RBX, Imm(2))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base, max_instructions=2)
        assert result.reason == "instruction_limit"
        assert cpu.regs.read(Reg.RBX) == 2


class TestPredecodeCache:
    def test_program_predecoded_once(self, params):
        cpu = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(7))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        stats = cpu.decode_stats()
        assert stats.predecoded == len(program.instructions)
        assert stats.cached_ops == len(program.instructions)
        result = cpu.run(program.base)
        assert result.reason == "hlt"
        assert cpu.decode_stats().lazy_decodes == 0

    def test_code_patch_invalidates_decoded_entry(self, params):
        cpu = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(1))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        assert cpu.run(program.base).reason == "hlt"
        assert cpu.regs.read(Reg.RAX) == 1

        patched = Assembler()
        patched.mov(Reg.RAX, Imm(2))
        patched.hlt()
        replacement = patched.assemble().instructions[0]
        cpu._code[program.base] = replacement
        assert cpu._code.invalidations == 1

        assert cpu.run(program.base).reason == "hlt"
        assert cpu.regs.read(Reg.RAX) == 2
        assert cpu.decode_stats().lazy_decodes >= 1

    def test_shared_program_reuses_decode_cache(self, params):
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(3))
        asm.hlt()
        program = asm.assemble()
        cpu_a = make_cpu(params)
        cpu_b = make_cpu(params)
        cpu_a.load_program(program)
        cpu_b.load_program(program)
        base = program.base
        assert cpu_a._decoded[base] is cpu_b._decoded[base]
        assert cpu_a.run(base).reason == "hlt"
        assert cpu_b.run(base).reason == "hlt"
        assert cpu_a.regs.read(Reg.RAX) == 3
        assert cpu_b.regs.read(Reg.RAX) == 3


def _mispredicting_program():
    """A counted loop: the backward branch mispredicts at loop exit."""
    asm = Assembler()
    asm.mov(Reg.RAX, Imm(0))
    asm.mov(Reg.RCX, Imm(0))
    asm.label("loop")
    asm.add(Reg.RAX, Reg.RCX)
    asm.inc(Reg.RCX)
    asm.cmp(Reg.RCX, Imm(50))
    asm.jne("loop")
    asm.hlt()
    return asm.assemble()


class TestJournaledSpeculation:
    def test_state_identity_survives_speculation(self, params):
        cpu = make_cpu(params)
        program = _mispredicting_program()
        cpu.load_program(program)
        regs_id = id(cpu.regs)
        gpr_id = id(cpu.regs.regs)
        hfi_id = id(cpu.hfi)
        hfi_regs_id = id(cpu.hfi.regs)
        result = cpu.run(program.base)
        assert result.reason == "hlt"
        assert cpu.stats.speculative_instructions > 0
        assert cpu.regs.read(Reg.RAX) == sum(range(50))
        assert id(cpu.regs) == regs_id
        assert id(cpu.regs.regs) == gpr_id
        assert id(cpu.hfi) == hfi_id
        assert id(cpu.hfi.regs) == hfi_regs_id

    def test_journal_stats_track_windows(self, params):
        cpu = make_cpu(params)
        program = _mispredicting_program()
        cpu.load_program(program)
        cpu.run(program.base)
        stats = cpu._journal.stats()
        assert stats.windows >= 1
        assert stats.rollbacks == stats.windows

    def test_no_deepcopy_during_speculation(self, params):
        cpu = make_cpu(params)
        program = _mispredicting_program()
        cpu.load_program(program)
        real_deepcopy = copy.deepcopy
        with unittest.mock.patch("copy.deepcopy",
                                 side_effect=real_deepcopy) as spy:
            result = cpu.run(program.base)
        assert result.reason == "hlt"
        assert cpu.stats.speculative_instructions > 0
        assert spy.call_count == 0

    def test_hfi_snapshot_restore_keeps_identity(self, params):
        cpu = make_cpu(params)
        bank = cpu.hfi.snapshot()
        regs_id = id(cpu.hfi.regs)
        cpu.hfi.regs.cause_msr = cpu.hfi.regs.cause_msr  # touch, no-op
        cpu.hfi.restore(bank)
        assert id(cpu.hfi.regs) == regs_id


class TestTelemetrySurface:
    def test_decode_and_journal_components_registered(self, params):
        tel = Telemetry()
        mem = AddressSpace(params)
        cpu = Cpu(params, memory=mem, telemetry=tel)
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(9))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        snap = tel.snapshot()
        assert {"decode", "journal"} <= set(snap["components"])
        decode = snap["components"]["decode"]
        assert decode["predecoded"] == len(program.instructions)
        assert decode["executed"] >= 2
        assert "hit_rate" in decode
        journal = snap["components"]["journal"]
        assert journal["windows"] == journal["rollbacks"]
