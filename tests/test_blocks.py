"""Superblock engine: backend conformance, formation, and coherence.

Pins down the ``blocks`` execution backend introduced with the
:class:`~repro.cpu.machine.ExecutionBackend` API:

* every named engine constructs through :func:`create_backend` and
  conforms to the protocol; unknown names are rejected;
* hot straight-line runs compile into superblocks whose architectural
  *and* timing effects are bit-identical to the staged interpreter,
  including mid-block faults;
* code writes through ``cpu._code`` drop every compiled block covering
  the patched address (self-modifying code stays coherent);
* speculation windows never open inside a block, and the blocks engine
  stays off the deepcopy path;
* the three-way fuzz matrix (staged / blocks / reference) agrees on
  full architectural state.
"""

import copy
import dataclasses
import unittest.mock

import pytest

import repro.cpu.blocks as blocks_mod
from repro.core import ImplicitCodeRegion
from repro.cpu import Cpu
from repro.cpu.blocks import Superblock
from repro.cpu.machine import (
    DEFAULT_ENGINE,
    ENGINES,
    ExecutionBackend,
    create_backend,
    default_engine,
)
from repro.isa import Assembler, Imm, Mem, Reg
from repro.os import AddressSpace, Prot
from repro.params import MachineParams
from repro.verify.fuzz_isa import run_seeds
from repro.verify.reference import ReferenceCpu

UNMAPPED = 0x66_0000
HEAP = 0x10_0000


@pytest.fixture
def params():
    return MachineParams()


@pytest.fixture
def eager(monkeypatch):
    """Compile on the second visit: no warmup, deterministic tests."""
    monkeypatch.setattr(blocks_mod, "HOT_THRESHOLD", 1)
    monkeypatch.setattr(blocks_mod, "COMPILE_VISIT_BUDGET", 0)


def make_cpu(params, engine="blocks"):
    mem = AddressSpace(params)
    cpu = Cpu(params, memory=mem, engine=engine)
    mem.mmap(1 << 16, Prot.rw(), addr=HEAP)
    stack = mem.mmap(1 << 16, Prot.rw(), addr=0x7F_0000)
    cpu.regs.write(Reg.RSP, stack + (1 << 16) - 64)
    return cpu


def _hot_loop(iterations=200):
    """A counted loop whose body is a straight block-safe run."""
    asm = Assembler()
    asm.mov(Reg.RAX, Imm(0))
    asm.mov(Reg.RBX, Imm(HEAP))
    asm.mov(Reg.RCX, Imm(iterations))
    asm.label("loop")
    asm.mov(Reg.RDX, Mem(base=Reg.RBX, disp=16))
    asm.add(Reg.RAX, Reg.RDX)
    asm.add(Reg.RAX, Imm(3))
    asm.mov(Mem(base=Reg.RBX, disp=16), Reg.RAX)
    asm.dec(Reg.RCX)
    asm.jne("loop")
    asm.hlt()
    return asm.assemble()


def _digest(cpu):
    f = cpu.regs.flags
    return {
        "regs": dict(cpu.regs.regs),
        "flags": (f.zf, f.sf, f.cf, f.of),
        "rip": cpu.regs.rip,
        "instructions": cpu.stats.instructions,
        "cycles": cpu.stats.cycles,
        "loads": cpu.stats.loads,
        "stores": cpu.stats.stores,
        "l1d_hits": cpu.caches.l1d._hits,
        "l1i_hits": cpu.caches.l1i._hits,
        "tlb_hits": cpu.tlb._hits,
    }


class TestBackendApi:
    def test_every_engine_conforms(self, params):
        for engine in ENGINES:
            backend = create_backend(engine, params=params)
            assert isinstance(backend, ExecutionBackend)
            assert backend.engine == engine

    def test_reference_engine_is_the_oracle(self, params):
        assert isinstance(create_backend("reference", params=params),
                          ReferenceCpu)
        assert not isinstance(create_backend("blocks", params=params),
                              ReferenceCpu)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            create_backend("threaded-jit")
        with pytest.raises(ValueError, match="unknown engine"):
            Cpu(engine="Staged")

    def test_default_engine_scoping(self, params):
        assert Cpu(params).engine == DEFAULT_ENGINE
        with default_engine("blocks"):
            assert Cpu(params).engine == "blocks"
            assert Cpu(params, engine="staged").engine == "staged"
        assert Cpu(params).engine == DEFAULT_ENGINE

    def test_staged_engine_has_no_block_cache(self, params):
        assert Cpu(params, engine="staged")._blocks is None
        assert Cpu(params, engine="blocks")._blocks is not None


class TestBlockFormation:
    def test_hot_loop_compiles_and_matches_staged(self, params):
        program = _hot_loop(1200)
        results = {}
        for engine in ("staged", "blocks"):
            cpu = make_cpu(params, engine)
            cpu.load_program(program)
            assert cpu.run(program.base).reason == "hlt"
            results[engine] = _digest(cpu)
            if engine == "blocks":
                stats = cpu._blocks.stats()
                assert stats.compiled >= 1
                assert stats.executions > 0
                assert stats.block_instructions > 0
        assert results["staged"] == results["blocks"]

    def test_cold_code_never_compiles(self, params):
        # 3 visits < HOT_THRESHOLD (4): formation never even walks.
        program = _hot_loop(3)
        cpu = make_cpu(params, "blocks")
        cpu.load_program(program)
        assert cpu.run(program.base).reason == "hlt"
        assert cpu._blocks.compiled == 0

    def test_short_runs_negative_cached(self, params, eager):
        # A 1-instruction body (below MIN_BLOCK_OPS) caches a None
        # sentinel instead of re-walking every visit.
        asm = Assembler()
        asm.mov(Reg.RCX, Imm(50))
        asm.label("loop")
        asm.dec(Reg.RCX)
        asm.jne("loop")
        asm.hlt()
        program = asm.assemble()
        cpu = make_cpu(params, "blocks")
        cpu.load_program(program)
        assert cpu.run(program.base).reason == "hlt"
        # The loop entry's run is a lone ``dec``: too short to compile,
        # so the table holds a None sentinel for it.
        entry = program.labels["loop"]
        assert cpu._blocks.table.get(entry, "absent") is None

    def test_mid_block_fault_matches_staged(self, params, eager):
        # rbx walks off the 64 KiB heap mapping: the load faults on a
        # later iteration, *inside* the compiled block under ``blocks``.
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(0))
        asm.mov(Reg.RBX, Imm(HEAP + (1 << 16) - 4 * 0x1000))
        asm.mov(Reg.RCX, Imm(64))
        asm.label("loop")
        asm.mov(Reg.RDX, Mem(base=Reg.RBX, disp=0))
        asm.add(Reg.RAX, Reg.RDX)
        asm.add(Reg.RBX, Imm(0x1000))
        asm.dec(Reg.RCX)
        asm.jne("loop")
        asm.hlt()
        program = asm.assemble()
        results = {}
        for engine in ("staged", "blocks"):
            cpu = make_cpu(params, engine)
            cpu.load_program(program)
            result = cpu.run(program.base)
            assert result.reason == "fault"
            assert result.fault.kind == "page"
            assert result.fault.addr == HEAP + (1 << 16)
            results[engine] = _digest(cpu)
        assert results["staged"] == results["blocks"]


class TestInvalidation:
    def test_code_patch_drops_covering_block(self, params, eager):
        program = _hot_loop(40)
        cpu = make_cpu(params, "blocks")
        cpu.load_program(program)
        assert cpu.run(program.base).reason == "hlt"
        cache = cpu._blocks
        assert cache.compiled >= 1
        entry = program.labels["loop"]
        assert isinstance(cache.table.get(entry), Superblock)

        # Patch an instruction *inside* the block (not its entry).
        patched = Assembler()
        patched.add(Reg.RAX, Imm(1000))
        replacement = patched.assemble().instructions[0]
        body_second = program.instructions[4].addr  # add rax, rdx
        cpu._code[body_second] = replacement
        assert cache.invalidated >= 1
        assert entry not in cache.table

        # Semantics after the patch still match a staged run of the
        # same patched program.
        staged = make_cpu(params, "staged")
        staged.load_program(program)
        staged._code[body_second] = replacement
        cpu.regs.write(Reg.RAX, 0)
        staged.regs.write(Reg.RAX, 0)
        assert cpu.run(program.base).reason == "hlt"
        assert staged.run(program.base).reason == "hlt"
        assert cpu.regs.read(Reg.RAX) == staged.regs.read(Reg.RAX)

    def test_clear_resets_warmup_state(self, params, eager):
        program = _hot_loop(40)
        cpu = make_cpu(params, "blocks")
        cpu.load_program(program)
        cpu.run(program.base)
        cache = cpu._blocks
        assert cache.table
        cache.clear()
        assert not cache.table and not cache.owners
        assert not cache.heat and not cache.goal


class TestSpeculationAndJournal:
    def test_journal_refuses_to_open_inside_block(self, params):
        cpu = make_cpu(params, "blocks")
        cpu._in_block = True
        with pytest.raises(RuntimeError):
            cpu._journal.open(cpu)

    def test_speculative_loop_matches_staged(self, params, eager):
        # A mispredicting loop speculates past the block's branch; the
        # wrong path must single-step and roll back identically.
        program = _hot_loop(300)
        results = {}
        for engine in ("staged", "blocks"):
            cpu = make_cpu(params, engine)
            cpu.load_program(program)
            assert cpu.run(program.base).reason == "hlt"
            assert cpu.stats.speculative_instructions > 0
            results[engine] = _digest(cpu)
        assert results["staged"] == results["blocks"]

    def test_no_deepcopy_in_blocks_engine(self, params, eager):
        cpu = make_cpu(params, "blocks")
        program = _hot_loop(300)
        cpu.load_program(program)
        real_deepcopy = copy.deepcopy
        with unittest.mock.patch("copy.deepcopy",
                                 side_effect=real_deepcopy) as spy:
            assert cpu.run(program.base).reason == "hlt"
        assert cpu._blocks.compiled >= 1
        assert spy.call_count == 0


class TestHfiCoverage:
    def test_covered_requires_full_single_region_match(self):
        blk = Superblock(run=None, n=3, first=0x40_0000, last=0x40_0010,
                         source="")
        covering = ImplicitCodeRegion.covering(0x40_0000, 1 << 16)
        assert blk.covered([covering])
        assert blk.covered([None, covering])
        # First-match semantics: an earlier partially-overlapping
        # region wins and forces single-stepping.
        partial = ImplicitCodeRegion.covering(0x40_0000, 8)
        assert not blk.covered([partial, covering])
        assert not blk.covered([])
        no_exec = dataclasses.replace(
            ImplicitCodeRegion.covering(0x40_0000, 1 << 16),
            permission_exec=False)
        assert not blk.covered([no_exec])


class TestDifferentialMatrix:
    def test_three_way_fuzz_agrees(self, params, eager):
        outcomes = run_seeds(range(25), params=params,
                             engines=("staged", "blocks", "reference"))
        bad = [o for o in outcomes if not o.ok]
        assert not bad, "\n".join(
            f"seed {o.seed}: {line}" for o in bad
            for line in o.divergences[:4])
