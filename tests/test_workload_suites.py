"""Workload-suite integrity: every module validates, runs, and gives
strategy-independent answers.

Running all 27 suite programs under all 8 strategies would be slow in
CI, so the full matrix lives in the benchmarks; here we validate every
module and sample the equivalence matrix deterministically.
"""

import pytest

from repro.wasm import (
    BoundsCheckStrategy,
    GuardPagesStrategy,
    HfiEmulationStrategy,
    HfiStrategy,
    MaskingStrategy,
    NativeHfiStrategy,
    NativeUnsafeStrategy,
    SwivelStrategy,
    WasmRuntime,
    make_strategy,
)
from repro.wasm.ir import validate
from repro.workloads import (
    APP_SCALES,
    COMPRESSION_ROUNDS,
    FAAS_APPS,
    RESOLUTIONS,
    SIGHTGLASS_BENCHMARKS,
    SPEC_BENCHMARKS,
    graphite_reflow,
    jpeg_decode,
)

ALL_BUILDERS = {}
ALL_BUILDERS.update(SIGHTGLASS_BENCHMARKS)
ALL_BUILDERS.update(SPEC_BENCHMARKS)
ALL_BUILDERS.update(FAAS_APPS)


def run_native(module):
    runtime = WasmRuntime()
    instance = runtime.instantiate(module, NativeUnsafeStrategy())
    result = runtime.run(instance)
    assert result.reason == "hlt", (module.name, result.reason,
                                    result.fault)
    return runtime.space.read(instance.layout.globals_base)


class TestSuiteIntegrity:
    @pytest.mark.parametrize("name", sorted(ALL_BUILDERS), ids=str)
    def test_module_validates_and_runs(self, name):
        module = ALL_BUILDERS[name](1)
        validate(module)
        value = run_native(module)
        # deterministic: same module, same answer
        assert run_native(ALL_BUILDERS[name](1)) == value

    @pytest.mark.parametrize("name", sorted(ALL_BUILDERS), ids=str)
    def test_scale_changes_work_not_answer_shape(self, name):
        small = ALL_BUILDERS[name](1)
        big = ALL_BUILDERS[name](2)
        validate(big)
        assert big.memory_pages == small.memory_pages

    def test_registries_match_paper(self):
        assert len(SIGHTGLASS_BENCHMARKS) == 16
        assert len(SPEC_BENCHMARKS) == 11
        assert set(FAAS_APPS) == set(APP_SCALES)
        assert len(RESOLUTIONS) == 3 and len(COMPRESSION_ROUNDS) == 3


class TestStrategyEquivalenceSampled:
    SAMPLE = ["sieve", "base64", "429.mcf", "445.gobmk", "xml-to-json"]
    STRATEGIES = [GuardPagesStrategy, BoundsCheckStrategy,
                  MaskingStrategy, HfiStrategy, HfiEmulationStrategy,
                  SwivelStrategy, NativeUnsafeStrategy,
                  NativeHfiStrategy]

    @pytest.mark.parametrize("name", SAMPLE, ids=str)
    def test_all_strategies_agree(self, name):
        module = ALL_BUILDERS[name](1)
        values = set()
        for strategy_cls in self.STRATEGIES:
            runtime = WasmRuntime()
            instance = runtime.instantiate(module, strategy_cls())
            result = runtime.run(instance)
            assert result.reason == "hlt", (name, strategy_cls.name)
            values.add(runtime.space.read(instance.layout.globals_base))
        assert len(values) == 1, (name, values)


class TestRenderingWorkloads:
    def test_font_module(self):
        module = graphite_reflow()
        validate(module)
        assert run_native(module) >= 0

    @pytest.mark.parametrize("resolution", sorted(RESOLUTIONS))
    @pytest.mark.parametrize("compression", sorted(COMPRESSION_ROUNDS))
    def test_image_grid_builds(self, resolution, compression):
        module = jpeg_decode(resolution, compression)
        validate(module)
        assert run_native(module) > 0

    def test_more_compression_means_more_work(self):
        def cycles(compression):
            runtime = WasmRuntime()
            instance = runtime.instantiate(
                jpeg_decode("480p", compression), NativeUnsafeStrategy())
            return runtime.run(instance).stats.cycles
        assert cycles("best") > cycles("default") > cycles("none")


class TestStrategyRegistry:
    def test_make_strategy_by_name(self):
        for name in ("guard-pages", "hfi", "swivel", "bounds-check"):
            assert make_strategy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("mystery")

    def test_spectre_safety_flags(self):
        assert make_strategy("hfi").spectre_safe
        assert make_strategy("swivel").spectre_safe
        assert make_strategy("native-hfi").spectre_safe
        assert not make_strategy("guard-pages").spectre_safe
        assert not make_strategy("bounds-check").spectre_safe