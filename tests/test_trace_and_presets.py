"""Tests for the tracer, machine presets, and springboard codegen."""

import pytest

from repro import skylake, tigerlake
from repro.cpu import Cpu, Tracer
from repro.isa import Assembler, Imm, Opcode, Reg
from repro.os import AddressSpace, Prot
from repro.params import MachineParams
from repro.wasm import NativeHfiStrategy, WasmRuntime
from repro.workloads.sightglass import fib2


class TestTracer:
    def _traced_run(self, tracer):
        params = MachineParams()
        cpu = Cpu(params, memory=AddressSpace(params))
        cpu.tracer = tracer
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(0))
        asm.label("loop")
        asm.add(Reg.RAX, Imm(1))
        asm.cmp(Reg.RAX, Imm(10))
        asm.jne("loop")
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        return cpu

    def test_mix_counts(self):
        tracer = Tracer()
        self._traced_run(tracer)
        assert tracer.mix[Opcode.ADD] == 10
        assert tracer.mix[Opcode.HLT] == 1
        assert tracer.total > 30

    def test_entries_bounded(self):
        tracer = Tracer(capacity=5)
        self._traced_run(tracer)
        assert len(tracer.entries) == 5
        assert tracer.dropped > 0
        assert tracer.total > 5           # mix still counts everything

    def test_summary_renders(self):
        tracer = Tracer()
        self._traced_run(tracer)
        text = tracer.summary()
        assert "add" in text and "instructions:" in text

    def test_transitions_counted_on_wasm_run(self):
        runtime = WasmRuntime()
        tracer = Tracer(record_entries=False)
        runtime.cpu.tracer = tracer
        from repro.wasm import HfiStrategy
        instance = runtime.instantiate(fib2(1), HfiStrategy())
        runtime.run(instance)
        assert tracer.transitions() >= 2  # enter + exit
        assert tracer.hfi_instruction_count() >= 5


class TestPresets:
    def test_skylake_is_4ghz(self):
        assert skylake().frequency_ghz == 4.0

    def test_tigerlake_differs(self):
        sky, tiger = skylake(), tigerlake()
        assert tiger.frequency_ghz < sky.frequency_ghz
        assert tiger.speculation_window > sky.speculation_window

    def test_cycles_to_seconds_scales_with_frequency(self):
        assert skylake().cycles_to_seconds(4_000_000_000) == \
            pytest.approx(1.0)
        assert tigerlake().cycles_to_seconds(2_800_000_000) == \
            pytest.approx(1.0)


class TestSpringboard:
    def test_springboard_clears_registers_at_entry(self):
        runtime = WasmRuntime()
        # leak a host value into a caller-saved register pre-entry
        runtime.cpu.regs.write(Reg.R9, 0x5EC4E7)
        instance = runtime.instantiate(
            fib2(1), NativeHfiStrategy(springboard=True))
        result = runtime.run(instance)
        assert result.reason == "hlt"

    def test_springboard_costs_instructions(self):
        plain = WasmRuntime()
        a = plain.instantiate(fib2(1), NativeHfiStrategy())
        r_plain = plain.run(a)
        boarded = WasmRuntime()
        b = boarded.instantiate(fib2(1),
                                NativeHfiStrategy(springboard=True))
        r_board = boarded.run(b)
        assert (r_board.stats.instructions
                > r_plain.stats.instructions)
        # same answer either way
        assert plain.space.read(a.layout.globals_base) == \
            boarded.space.read(b.layout.globals_base)