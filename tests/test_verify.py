"""Tests for the repro.verify differential-oracle + invariant subsystem."""

import pytest

from repro.core.faults import FaultCause
from repro.cpu import Cpu
from repro.isa import Assembler, Imm, Reg
from repro.os import AddressSpace
from repro.params import MachineParams
from repro.runtime import InstancePool
from repro.verify import (
    AGREE,
    UNCLASSIFIED,
    VA_WIDTH,
    InvariantViolation,
    PoisonedReadError,
    PoolInvariants,
    ReferenceCpu,
    SpeculationIdentityProbe,
    boundary_sweep,
    check_pool,
    classify,
    run_differential,
    run_seeds,
    run_verify,
    sweep,
)
from repro.verify.fuzz_checks import ExplicitDataRegion
from repro.wasm import HfiStrategy


@pytest.fixture
def params():
    return MachineParams()


# ----------------------------------------------------------------------
# the reference oracle
# ----------------------------------------------------------------------
class TestReferenceOracle:
    def test_reference_runs_a_simple_program(self):
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(40))
        asm.add(Reg.RAX, Imm(2))
        asm.hlt()
        program = asm.assemble()
        cpu = ReferenceCpu()
        cpu.load_program(program)
        result = cpu.run(program.base)
        assert result.reason == "hlt"
        assert cpu.regs.regs[Reg.RAX] == 42

    def test_fifty_seeds_agree_with_staged_engine(self):
        """The tentpole gate: 50 fuzzed programs, full architectural
        end-state equality (registers, flags, rip, memory, HFI bank,
        fault record) between the staged engine and the oracle."""
        outcomes = run_seeds(range(50))
        divergent = [o for o in outcomes if not o.ok]
        assert not divergent, "\n".join(
            f"seed {o.seed}: " + "; ".join(o.divergences[:4])
            for o in divergent)

    def test_fuzzer_exercises_both_halts_and_faults(self):
        reasons = {run_differential(seed).reason for seed in range(50)}
        assert "hlt" in reasons
        assert "fault" in reasons

    def test_divergence_reporting_names_the_state(self):
        """A deliberately perturbed staged run must be *reported*, not
        silently absorbed — poke the staged engine post-hoc and check
        the digest comparison sees it."""
        from repro.verify.fuzz_isa import architectural_digest, build_case
        case = build_case(0)
        space = AddressSpace(MachineParams())
        for base, length, prot, name in case.mappings:
            space.mmap(length, prot, addr=base, name=name)
        for addr, data in case.preload:
            space.write_bytes(addr, data, check=False)
        cpu = Cpu(memory=space)
        cpu.load_program(case.program)
        cpu.run(case.entry)
        digest_a = architectural_digest(cpu)
        cpu.regs.regs[Reg.RAX] ^= 1
        digest_b = architectural_digest(cpu)
        assert digest_a["regs"]["RAX"] != digest_b["regs"]["RAX"]


# ----------------------------------------------------------------------
# the comparator fuzzer
# ----------------------------------------------------------------------
class TestComparatorFuzzer:
    def test_zero_unclassified_on_legal_descriptor_space(self):
        """ISSUE gate: every disagreement inside the architecturally
        installable space must be classified (permission only)."""
        result = sweep(trials=10_000, seed=1, legal_va_only=True)
        assert result.counts.get(UNCLASSIFIED, 0) == 0, [
            t.describe() for t in result.unclassified[:5]]
        # legal-VA regions can never hit the va-width design limit
        assert result.counts.get(VA_WIDTH, 0) == 0

    def test_zero_unclassified_beyond_legal_space(self):
        result = sweep(trials=10_000, seed=2)
        assert result.counts.get(UNCLASSIFIED, 0) == 0, [
            t.describe() for t in result.unclassified[:5]]

    def test_boundary_sweep_fully_agrees(self):
        """Directed last-byte edge sweep: with read+write regions there
        is no permission class, so every trial must agree outright."""
        result = boundary_sweep()
        assert result.disagreements == 0
        assert result.counts.get(AGREE) == result.trials

    def test_size_aware_tail_rejected_by_both(self):
        """The fixed comparator bug: an 8-byte access whose first byte
        is in bounds but whose tail dangles past the bound (or wraps
        past 2^64) must be rejected by hardware and golden alike."""
        large = ExplicitDataRegion(0x10_0000, 1 << 16,
                                   permission_read=True,
                                   permission_write=True,
                                   is_large_region=True)
        trial = classify(large, 0, 1, (1 << 16) - 4, 8, False)
        assert trial.classification == AGREE
        assert not trial.hardware_ok
        assert trial.golden_cause is FaultCause.HMOV_OUT_OF_BOUNDS

        top = ExplicitDataRegion((1 << 64) - (1 << 32), 1 << 32,
                                 permission_read=True,
                                 permission_write=True,
                                 is_large_region=False)
        trial = classify(top, 0, 1, (1 << 32) - 4, 8, False)
        assert trial.classification == AGREE
        assert not trial.hardware_ok
        assert trial.golden_cause is FaultCause.HMOV_OVERFLOW


# ----------------------------------------------------------------------
# pool poison-on-discard
# ----------------------------------------------------------------------
class TestPoolPoison:
    def _pool(self, params, slots=4, batch=True):
        space = AddressSpace(params)
        return InstancePool(space, HfiStrategy(), slots=slots,
                            heap_bytes=1 << 16, params=params,
                            batch_teardown=batch)

    def test_poison_flags_planted_stale_read(self, params):
        """ISSUE gate: reading a released slot's heap must raise at
        the exact access."""
        pool = self._pool(params)
        probe = PoolInvariants().install(pool)
        try:
            slot = pool.acquire()
            pool.space.write(slot.heap_base + 8, 0xDEAD, check=False)
            pool.release(slot)
            with pytest.raises(PoisonedReadError):
                pool.space.read(slot.heap_base + 8)   # stale read
            assert probe.poison_hits == 1
        finally:
            probe.uninstall()

    def test_acquire_unpoisons_and_reads_clean(self, params):
        pool = self._pool(params)
        probe = PoolInvariants().install(pool)
        try:
            slot = pool.acquire()
            pool.space.write(slot.heap_base, 0x1234, check=False)
            pool.release(slot)
            pool.flush_discards()
            fresh = pool.acquire()
            assert pool.space.read(fresh.heap_base) == 0
            assert probe.violations == 0
        finally:
            probe.uninstall()

    def test_check_pool_detects_dirty_slot_recycling(self, params):
        """Plant the pre-fix bug shape by hand: a pending-discard slot
        sitting on the free list must be reported."""
        pool = self._pool(params)
        slot = pool.acquire()
        pool.release(slot)                 # batched: pending, off free
        assert check_pool(pool) == []
        pool._free.append(slot.index)      # the old buggy release did this
        problems = check_pool(pool)
        assert any("dirty-slot recycling" in p for p in problems)

    def test_on_acquire_rejects_pending_slot(self, params):
        pool = self._pool(params, slots=1)
        probe = PoolInvariants().install(pool)
        try:
            slot = pool.acquire()
            pool.release(slot)
            pool._free.append(slot.index)  # plant the old bug
            with pytest.raises(InvariantViolation):
                pool.acquire()
        finally:
            probe.uninstall()

    def test_uninstall_restores_read_paths(self, params):
        pool = self._pool(params)
        space = pool.space
        orig_read = space.read
        probe = PoolInvariants().install(pool)
        assert "read" in vars(space)
        probe.uninstall()
        assert "read" not in vars(space)
        assert space.read == orig_read
        assert pool.invariants is None


# ----------------------------------------------------------------------
# speculation identity probe
# ----------------------------------------------------------------------
class TestSpeculationIdentityProbe:
    def _mispredicting_cpu(self):
        asm = Assembler()
        asm.mov(Reg.RCX, Imm(32))
        asm.label("top")
        asm.add(Reg.RAX, Imm(1))
        asm.dec(Reg.RCX)
        asm.jne("top")
        asm.hlt()
        program = asm.assemble()
        cpu = Cpu()
        cpu.load_program(program)
        return cpu, program

    def test_identity_preserved_across_squash(self):
        cpu, program = self._mispredicting_cpu()
        probe = SpeculationIdentityProbe()
        cpu.install_invariant_probe(probe)
        result = cpu.run(program.base)
        assert result.reason == "hlt"
        assert probe.checks > 0        # a mispredicting loop must squash
        assert probe.violations == 0

    def test_probe_detects_rebinding(self):
        cpu, _ = self._mispredicting_cpu()
        probe = SpeculationIdentityProbe()
        probe.on_open(cpu)
        cpu.regs = cpu.regs.copy()     # the historical deepcopy-swap bug
        with pytest.raises(InvariantViolation):
            probe.on_rollback(cpu)
        assert probe.violations == 1


# ----------------------------------------------------------------------
# the bundled gate
# ----------------------------------------------------------------------
class TestRunVerify:
    def test_run_verify_is_clean(self):
        stats, report = run_verify(seeds=range(8),
                                   comparator_trials=2_000)
        assert report["failures"] == []
        assert stats.clean
        assert stats.oracle_runs == 8
        assert stats.comparator_trials > 2_000   # + boundary sweep
        assert stats.poison_writes > 0
        assert stats.invariant_checks > 0
        # the seeded-determinism smoke ran and found no mismatch
        assert stats.determinism_runs > 0
        assert stats.determinism_mismatches == 0
        assert report["determinism"]["runs"] == stats.determinism_runs
        assert report["determinism"]["mismatches"] == 0

    def test_verify_stats_clean_property(self):
        from repro.telemetry import VerifyStats
        assert VerifyStats().clean
        assert not VerifyStats(divergences=1).clean
        assert not VerifyStats(unclassified_disagreements=1).clean
        assert not VerifyStats(poison_hits=1).clean
        assert not VerifyStats(invariant_violations=1).clean
        assert not VerifyStats(determinism_mismatches=1).clean
        assert "clean" in VerifyStats().as_dict()
