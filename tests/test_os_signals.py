"""Delivery-ordering tests for the POSIX-style signal table.

The supervised runtime leans on three semantics here (paper §3.3.2
delivers HFI faults as SIGSEGV): blocked signals queue FIFO and drain
in arrival order, a handler implicitly masks its own signal
(sigaction), and ``delivered`` is a faithful dispatch-order audit log.
"""

import pytest

from repro.os.signals import SigInfo, Signal, SignalTable


def info(signal=Signal.SIGSEGV, addr=0, description=""):
    return SigInfo(signal, fault_addr=addr, description=description)


class TestBasicDispatch:
    def test_handler_runs_immediately_when_unmasked(self):
        table = SignalTable()
        seen = []
        table.register(Signal.SIGSEGV, seen.append)
        assert table.deliver(info(addr=0x10)) is True
        assert [s.fault_addr for s in seen] == [0x10]
        assert [s.fault_addr for s in table.delivered] == [0x10]

    def test_unhandled_signal_is_recorded_but_returns_false(self):
        table = SignalTable()
        assert table.deliver(info(Signal.SIGILL)) is False
        assert table.delivered[-1].signal is Signal.SIGILL

    def test_signals_do_not_cross_talk(self):
        table = SignalTable()
        seen = []
        table.register(Signal.SIGSEGV, seen.append)
        table.deliver(info(Signal.SIGTRAP))
        assert seen == []


class TestBlockingOrder:
    def test_blocked_signal_queues_instead_of_dispatching(self):
        table = SignalTable()
        seen = []
        table.register(Signal.SIGSEGV, seen.append)
        table.block(Signal.SIGSEGV)
        assert table.deliver(info(addr=1)) is False
        assert seen == [] and len(table.pending) == 1

    def test_unblock_drains_in_arrival_order(self):
        table = SignalTable()
        seen = []
        table.register(Signal.SIGSEGV, seen.append)
        table.block(Signal.SIGSEGV)
        for addr in (1, 2, 3):
            table.deliver(info(addr=addr))
        drained = table.unblock(Signal.SIGSEGV)
        assert [s.fault_addr for s in seen] == [1, 2, 3]
        assert [s.fault_addr for s in drained] == [1, 2, 3]
        assert table.pending == []

    def test_unblock_only_drains_the_unmasked_signal(self):
        table = SignalTable()
        seen = []
        table.register(Signal.SIGSEGV, seen.append)
        table.register(Signal.SIGTRAP, seen.append)
        table.block(Signal.SIGSEGV, Signal.SIGTRAP)
        table.deliver(info(Signal.SIGTRAP))
        table.deliver(info(Signal.SIGSEGV, addr=7))
        table.unblock(Signal.SIGSEGV)
        assert [s.signal for s in seen] == [Signal.SIGSEGV]
        assert [s.signal for s in table.pending] == [Signal.SIGTRAP]
        table.unblock(Signal.SIGTRAP)
        assert [s.signal for s in seen] == [Signal.SIGSEGV,
                                            Signal.SIGTRAP]

    def test_mixed_blocked_and_live_delivery_ordering(self):
        """Dispatch order is: everything deliverable at its arrival,
        then the blocked backlog in arrival order at unblock time."""
        table = SignalTable()
        table.register(Signal.SIGSEGV, lambda s: None)
        table.register(Signal.SIGTRAP, lambda s: None)
        table.block(Signal.SIGSEGV)
        table.deliver(info(Signal.SIGSEGV, addr=1))   # queued
        table.deliver(info(Signal.SIGTRAP, addr=2))   # live
        table.deliver(info(Signal.SIGSEGV, addr=3))   # queued
        table.unblock(Signal.SIGSEGV)
        assert [s.fault_addr for s in table.delivered] == [2, 1, 3]


class TestHandlerImplicitMask:
    def test_reraise_inside_handler_defers_until_return(self):
        """sigaction semantics: a signal cannot preempt its own
        handler; the nested raise queues and runs afterwards."""
        table = SignalTable()
        order = []

        def handler(sig):
            order.append(("enter", sig.fault_addr))
            if sig.fault_addr == 1:
                # Raised mid-handler: must NOT run reentrantly.
                table.deliver(info(addr=2))
                order.append(("exit", sig.fault_addr))

        table.register(Signal.SIGSEGV, handler)
        table.deliver(info(addr=1))
        assert order[:2] == [("enter", 1), ("exit", 1)]
        assert ("enter", 2) in order
        assert order.index(("exit", 1)) < order.index(("enter", 2))

    def test_nested_raise_of_other_signal_preempts(self):
        table = SignalTable()
        order = []
        table.register(Signal.SIGTRAP, lambda s: order.append("trap"))

        def segv(sig):
            table.deliver(info(Signal.SIGTRAP))
            order.append("segv")

        table.register(Signal.SIGSEGV, segv)
        table.deliver(info())
        # SIGTRAP is not masked by SIGSEGV's handler: it ran inline.
        assert order == ["trap", "segv"]

    def test_handler_mask_clears_after_dispatch(self):
        table = SignalTable()
        seen = []
        table.register(Signal.SIGSEGV, seen.append)
        table.deliver(info(addr=1))
        table.deliver(info(addr=2))
        assert [s.fault_addr for s in seen] == [1, 2]
        assert table.pending == []


class TestSupervisorCriticalSection:
    def test_fault_during_masked_reap_queues_and_drains(self):
        """The supervisor's reap pattern: mask SIGSEGV, tear down,
        unmask — a fault raised mid-teardown arrives afterwards, in
        order, instead of interleaving with recovery."""
        table = SignalTable()
        log = []
        table.register(Signal.SIGSEGV,
                       lambda s: log.append(s.description))
        table.block(Signal.SIGSEGV)
        log.append("reap-start")
        table.deliver(info(description="nested-fault"))
        log.append("reap-end")
        table.unblock(Signal.SIGSEGV)
        assert log == ["reap-start", "reap-end", "nested-fault"]
