"""Unit tests for HFI check logic: prefix matching and hmov semantics."""

import pytest

from repro.core import (
    ExplicitDataRegion,
    FaultCause,
    HfiFault,
    ImplicitCodeRegion,
    ImplicitDataRegion,
    hmov_check_hardware,
    hmov_effective_address,
    implicit_code_check,
    implicit_data_check,
)

RO = ImplicitDataRegion(0x1_0000, 0xFFFF, permission_read=True)
RW = ImplicitDataRegion(0x2_0000, 0xFFFF, permission_read=True,
                        permission_write=True)


class TestImplicitDataCheck:
    def test_in_bounds_read_ok(self):
        implicit_data_check([RO, None, None, None], 0x1_0000, 8, False)

    def test_out_of_bounds_faults(self):
        with pytest.raises(HfiFault) as excinfo:
            implicit_data_check([RO, None, None, None], 0x3_0000, 8, False)
        assert excinfo.value.cause is FaultCause.DATA_OUT_OF_BOUNDS

    def test_write_to_readonly_faults(self):
        with pytest.raises(HfiFault) as excinfo:
            implicit_data_check([RO, None, None, None], 0x1_0000, 8, True)
        assert excinfo.value.cause is FaultCause.DATA_PERMISSION

    def test_first_match_wins(self):
        """Overlapping regions: the first match's permissions govern (§3.2)."""
        wide_ro = ImplicitDataRegion(0x0, 0x3_FFFF, permission_read=True)
        narrow_rw = ImplicitDataRegion(0x2_0000, 0xFFFF,
                                       permission_read=True,
                                       permission_write=True)
        # RO region listed first: writes denied even inside narrow_rw.
        with pytest.raises(HfiFault):
            implicit_data_check([wide_ro, narrow_rw, None, None],
                                0x2_0000, 8, True)
        # RW region listed first: writes allowed.
        implicit_data_check([narrow_rw, wide_ro, None, None],
                            0x2_0000, 8, True)

    def test_access_straddling_region_edge_faults(self):
        with pytest.raises(HfiFault):
            implicit_data_check([RO, None, None, None], 0x1_FFFC, 8, False)

    def test_straddle_into_adjacent_region_ok(self):
        a = ImplicitDataRegion(0x1_0000, 0xFFFF, permission_read=True)
        b = ImplicitDataRegion(0x2_0000, 0xFFFF, permission_read=True)
        implicit_data_check([a, b, None, None], 0x1_FFFC, 8, False)

    def test_no_regions_always_faults(self):
        """By default a sandbox has no access to memory (§3.2)."""
        with pytest.raises(HfiFault):
            implicit_data_check([None, None, None, None], 0, 1, False)


class TestImplicitCodeCheck:
    CODE = ImplicitCodeRegion(0x40_0000, 0xFFFF)

    def test_fetch_inside_ok(self):
        implicit_code_check([self.CODE, None], 0x40_1234)

    def test_fetch_outside_faults(self):
        with pytest.raises(HfiFault) as excinfo:
            implicit_code_check([self.CODE, None], 0x50_0000)
        assert excinfo.value.cause is FaultCause.CODE_OUT_OF_BOUNDS

    def test_no_exec_permission_faults(self):
        nx = ImplicitCodeRegion(0x40_0000, 0xFFFF, permission_exec=False)
        with pytest.raises(HfiFault):
            implicit_code_check([nx, None], 0x40_0000)


LARGE = ExplicitDataRegion(0x10_0000, 4 << 16, permission_read=True,
                           permission_write=True, is_large_region=True)
SMALL = ExplicitDataRegion(0x5000_1003, 1000, permission_read=True,
                           permission_write=True, is_large_region=False)


class TestHmovSemantics:
    def test_offset_addressing_is_region_relative(self):
        ea = hmov_effective_address(LARGE, index=16, scale=8, disp=64,
                                    size=8, is_write=False)
        assert ea == LARGE.base_address + 16 * 8 + 64

    def test_negative_disp_traps(self):
        with pytest.raises(HfiFault) as excinfo:
            hmov_effective_address(LARGE, 0, 1, -8, 8, False)
        assert excinfo.value.cause is FaultCause.HMOV_NEGATIVE_OPERAND

    def test_negative_index_traps(self):
        neg = (1 << 64) - 8  # -8 as a register value
        with pytest.raises(HfiFault) as excinfo:
            hmov_effective_address(LARGE, neg, 1, 0, 8, False)
        assert excinfo.value.cause is FaultCause.HMOV_NEGATIVE_OPERAND

    def test_out_of_bounds_traps(self):
        with pytest.raises(HfiFault) as excinfo:
            hmov_effective_address(LARGE, 0, 1, LARGE.bound, 1, False)
        assert excinfo.value.cause is FaultCause.HMOV_OUT_OF_BOUNDS

    def test_last_byte_in_bounds_ok(self):
        hmov_effective_address(LARGE, 0, 1, LARGE.bound - 8, 8, False)

    def test_access_crossing_bound_traps(self):
        with pytest.raises(HfiFault):
            hmov_effective_address(LARGE, 0, 1, LARGE.bound - 4, 8, False)

    def test_unconfigured_region_traps(self):
        with pytest.raises(HfiFault) as excinfo:
            hmov_effective_address(None, 0, 1, 0, 8, False)
        assert excinfo.value.cause is FaultCause.HMOV_REGION_CLEAR

    def test_permission_checked(self):
        ro = ExplicitDataRegion(0x10_0000, 1 << 16, permission_read=True,
                                permission_write=False)
        with pytest.raises(HfiFault) as excinfo:
            hmov_effective_address(ro, 0, 1, 0, 8, True)
        assert excinfo.value.cause is FaultCause.HMOV_PERMISSION

    def test_effective_address_overflow_traps(self):
        big = ExplicitDataRegion((1 << 48) - (1 << 16), 1 << 16,
                                 permission_read=True)
        with pytest.raises(HfiFault):
            hmov_effective_address(big, (1 << 63) // 8, 8, 1 << 20, 8, False)


class TestHardwareComparator:
    """The §4.2 single-32-bit-comparator model agrees with the golden
    semantics over the legal space (full sweep in the ablation bench)."""

    @pytest.mark.parametrize("offset,expected", [
        (0, True),
        (100, True),
        (LARGE.bound - 1, True),
        (LARGE.bound, False),
        (LARGE.bound + (1 << 20), False),
    ])
    def test_large_region_agreement(self, offset, expected):
        ok, ea = hmov_check_hardware(LARGE, 0, 1, offset)
        assert ok is expected
        if ok:
            assert ea == LARGE.base_address + offset

    @pytest.mark.parametrize("offset,expected", [
        (0, True),
        (999, True),
        (1000, False),
        (1 << 33, False),  # would wrap the low-32 comparison
    ])
    def test_small_region_agreement(self, offset, expected):
        ok, _ = hmov_check_hardware(SMALL, 0, 1, offset)
        assert ok is expected

    def test_negative_operands_rejected(self):
        ok, _ = hmov_check_hardware(LARGE, (1 << 64) - 1, 1, 0)
        assert not ok

    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_last_byte_in_bounds_accepted(self, size):
        ok, ea = hmov_check_hardware(LARGE, 0, 1, LARGE.bound - size,
                                     size)
        assert ok
        assert ea == LARGE.base_address + LARGE.bound - size

    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_dangling_tail_rejected(self, size):
        """Regression: the comparator used to check only the access's
        first byte, admitting wide accesses whose tail crossed the
        bound."""
        ok, _ = hmov_check_hardware(LARGE, 0, 1, LARGE.bound - size + 1,
                                    size)
        assert not ok
        ok, _ = hmov_check_hardware(SMALL, 0, 1,
                                    SMALL.bound - size + 1, size)
        assert not ok

    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_small_region_last_byte(self, size):
        ok, _ = hmov_check_hardware(SMALL, 0, 1, SMALL.bound - size,
                                    size)
        assert ok

    def test_tail_wrap_past_2_64_rejected(self):
        """An access whose first byte computes but whose last byte
        wraps past 2^64 must be rejected, matching the golden
        HMOV_OVERFLOW."""
        top = ExplicitDataRegion((1 << 64) - (1 << 32), 1 << 32,
                                 permission_read=True,
                                 permission_write=True,
                                 is_large_region=False)
        ok, _ = hmov_check_hardware(top, 0, 1, (1 << 32) - 8, 8)
        assert ok                       # last byte is exactly 2^64 - 1
        ok, _ = hmov_check_hardware(top, 0, 1, (1 << 32) - 4, 8)
        assert not ok                   # tail wraps
        with pytest.raises(HfiFault) as excinfo:
            hmov_effective_address(top, 0, 1, (1 << 32) - 4, 8, False)
        assert excinfo.value.cause is FaultCause.HMOV_OVERFLOW

    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_sized_agreement_with_golden(self, size):
        """At every size the comparator and the golden model agree
        across the boundary of both region shapes."""
        for region in (LARGE, SMALL):
            for offset in range(region.bound - 2 * size,
                                region.bound + 2 * size):
                ok, _ = hmov_check_hardware(region, 0, 1, offset, size)
                try:
                    hmov_effective_address(region, 0, 1, offset, size,
                                           False)
                    golden_ok = True
                except HfiFault:
                    golden_ok = False
                assert ok is golden_ok, (region, offset, size)
