"""Seeded-determinism regression gate.

The differential oracle, the golden fixtures, and CI's seed-matrix
jobs all rest on one assumption: a seed fully determines a run.  These
tests pin that down for every stochastic subsystem — the FaaS model,
the multiplexing scheduler, and the serving simulator — and assert
the complementary invariant: changing the seed reshuffles *outcomes*
but never changes how many requests were offered (the workload shape
is a parameter, not a sample).

The same checks run inside ``repro-hfi verify``
(``repro.verify._determinism_smoke``) so the gate travels with the
battery; this file is the fast, focused version.
"""

import pytest

from repro.params import MachineParams
from repro.runtime import (
    FaasServer,
    MultiplexModel,
    ServingConfig,
    build_requests,
    simulate_serving,
)
from repro.runtime.serving import PoissonArrivals

SEEDS = (0, 7, 2023)


class TestServingDeterminism:
    def one(self, seed, **kwargs):
        kwargs.setdefault("n_requests", 150)
        kwargs.setdefault("offered_load", 1.1)
        kwargs.setdefault("config", ServingConfig(
            n_cores=2, slots_per_shard=4, max_inflight=8))
        return simulate_serving("hfi", seed=seed, **kwargs)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_bit_identical(self, seed):
        first, second = self.one(seed), self.one(seed)
        assert first.digest() == second.digest()
        assert first == second      # full dataclass, floats included

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_outcome_stream(self, seed):
        """Not just the aggregates: the per-request fates match."""
        from repro.runtime import ServingSimulator
        config = ServingConfig(n_cores=2, slots_per_shard=4,
                               max_inflight=8)
        reqs = build_requests(PoissonArrivals(4000.0, seed=seed), 120,
                              seed=seed)
        runs = []
        for _ in range(2):
            sim = ServingSimulator("hfi", config, MachineParams(),
                                   seed=seed)
            sim.run(list(reqs))
            runs.append([(o.request.index, o.status, o.cycles)
                         for o in sim.outcomes])
        assert runs[0] == runs[1]

    def test_different_seed_never_changes_request_count(self):
        runs = [self.one(seed) for seed in SEEDS]
        assert len({m.requests for m in runs}) == 1
        # ... but the seeds must actually matter somewhere
        assert len({m.digest() for m in runs}) == len(SEEDS)

    def test_mmpp_arrivals_deterministic_too(self):
        a = self.one(3, arrival="mmpp")
        b = self.one(3, arrival="mmpp")
        assert a.digest() == b.digest()


class TestFaasDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_identical_metrics(self, seed):
        a = FaasServer(seed=seed).simulate("hfi", 50_000, n_requests=400)
        b = FaasServer(seed=seed).simulate("hfi", 50_000, n_requests=400)
        assert a == b

    def test_seed_changes_latency_not_request_count(self):
        runs = [FaasServer(seed=s).simulate("hfi", 50_000,
                                            n_requests=400,
                                            failure_rate=0.05)
                for s in SEEDS]
        assert len({m.requests for m in runs}) == 1
        assert len({m.avg_latency_s for m in runs}) == len(SEEDS)


class TestSchedulerDeterminism:
    def test_schedule_outcome_reproducible(self):
        """MultiplexModel is closed-form: identical inputs must give
        bit-identical ScheduleOutcome (guards against anyone slipping
        unseeded randomness into the scheduler)."""
        outcomes = [MultiplexModel(MachineParams()).single_process(
            n_requests=500, service_cycles=80_000,
            failure_rate=0.1) for _ in range(2)]
        assert outcomes[0] == outcomes[1]
        assert outcomes[0].failed == 50
