"""Regression tests for the MPK key-lifecycle repairs (paper §6.4.2,
§7): key recycling under churn, stale-tag hygiene on free, and PKRU
save/restore across nested sandbox switches."""

import random

import pytest

from repro.mpk import (
    NUM_KEYS,
    USABLE_KEYS,
    MpkDomainManager,
    MpkError,
    MpkKeyVirtualizer,
    MpkSandboxSwitcher,
    pkru_allowing,
)
from repro.os import AddressSpace, Kernel, Prot
from repro.params import MachineParams


@pytest.fixture
def params():
    return MachineParams()


@pytest.fixture
def space(params):
    return AddressSpace(params)


class TestKeyRecycling:
    def test_thousand_cycle_churn_never_exhausts(self, space, params):
        """The headline bug: increment-only key handout exhausted the
        table at the 16th alloc even when every key had been freed."""
        manager = MpkDomainManager(space, params)
        for _ in range(1000):
            domain = manager.pkey_alloc("churn")
            assert 1 <= domain.key < NUM_KEYS
            manager.pkey_free(domain)
        stats = manager.stats()
        assert stats.allocs == 1000
        assert stats.frees == 1000
        assert stats.allocated == 0
        assert stats.leaked_keys == 0

    def test_free_returns_key_to_pool(self, space, params):
        manager = MpkDomainManager(space, params)
        first = manager.pkey_alloc("a")
        manager.pkey_free(first)
        second = manager.pkey_alloc("b")
        assert second.key == first.key      # lowest free key reused

    def test_double_free_is_noop(self, space, params):
        manager = MpkDomainManager(space, params)
        domain = manager.pkey_alloc("once")
        assert manager.pkey_free(domain) == 0   # no tagged ranges
        assert manager.pkey_free(domain) == 0   # second free: no-op
        # the key must not have been pushed twice
        a = manager.pkey_alloc("x")
        b = manager.pkey_alloc("y")
        assert a.key != b.key
        assert manager.stats().leaked_keys == 0

    def test_exhaustion_still_raises_when_all_live(self, space, params):
        manager = MpkDomainManager(space, params)
        live = [manager.pkey_alloc(f"d{i}") for i in range(USABLE_KEYS)]
        with pytest.raises(MpkError):
            manager.pkey_alloc("sixteenth")
        manager.pkey_free(live[7])
        assert manager.pkey_alloc("replacement").key == live[7].key

    def test_property_allocated_keys_unique_and_bounded(self, space,
                                                        params):
        """Seeded random alloc/free interleaving: at every step the
        live key set is duplicate-free and inside [1, NUM_KEYS)."""
        manager = MpkDomainManager(space, params)
        rng = random.Random(0xA110C)
        live = []
        for _ in range(2000):
            if live and (rng.random() < 0.5
                         or len(live) == USABLE_KEYS):
                manager.pkey_free(live.pop(rng.randrange(len(live))))
            else:
                live.append(manager.pkey_alloc())
            keys = [d.key for d in manager.allocated]
            assert len(keys) == len(set(keys))
            assert all(1 <= k < NUM_KEYS for k in keys)
            assert manager.stats().leaked_keys == 0


class TestStaleTagHygiene:
    def test_free_untags_recorded_ranges(self, space, params):
        """Freeing a key must retag its pages to the default domain —
        otherwise the next pkey_alloc hands out a key that already
        guards (or exposes) a stranger's pages."""
        manager = MpkDomainManager(space, params)
        addr = space.mmap(8192, Prot.rw())
        domain = manager.pkey_alloc("crypto")
        manager.pkey_mprotect(domain, addr, 8192)
        assert space.find_vma(addr).pkey == domain.key
        cost = manager.pkey_free(domain)
        assert cost >= params.syscall_cycles    # untag is kernel work
        assert space.find_vma(addr).pkey == 0
        assert manager.stats().stale_untags == 1

    def test_recycled_key_inherits_no_tags(self, space, params):
        """The reuse regression: alloc, tag, free, re-alloc the same
        key — no VMA may still carry it."""
        manager = MpkDomainManager(space, params)
        addr = space.mmap(4096, Prot.rw())
        victim = manager.pkey_alloc("victim")
        manager.pkey_mprotect(victim, addr, 4096)
        manager.pkey_free(victim)
        recycled = manager.pkey_alloc("stranger")
        assert recycled.key == victim.key
        assert space.find_vma(addr).pkey == 0
        # and the stale handle is dead: tagging through it must fail
        with pytest.raises(MpkError):
            manager.pkey_mprotect(victim, addr, 4096)


class TestPkruSaveRestore:
    def _switcher(self, params):
        return MpkSandboxSwitcher(Kernel(params).spawn(), params)

    def test_exit_restores_callers_pkru(self, params):
        switcher = self._switcher(params)
        caller_pkru = pkru_allowing({5})
        switcher.process.pkru = caller_pkru
        switcher.enter({3})
        assert switcher.process.pkru == pkru_allowing({3})
        switcher.exit()
        # the old bug: exit reset PKRU to allow EVERY key
        assert switcher.process.pkru == caller_pkru

    def test_nested_enter_exit_unwinds_like_a_stack(self, params):
        switcher = self._switcher(params)
        outer = pkru_allowing(set())
        switcher.process.pkru = outer
        switcher.enter({1})
        switcher.enter({2})
        assert switcher.depth == 2
        switcher.exit()
        assert switcher.process.pkru == pkru_allowing({1})
        switcher.exit()
        assert switcher.process.pkru == outer
        assert switcher.depth == 0

    def test_exit_without_enter_raises(self, params):
        switcher = self._switcher(params)
        with pytest.raises(MpkError):
            switcher.exit()

    def test_switch_cost_is_the_shared_formula(self, params):
        from repro.runtime import TransitionModel
        switcher = self._switcher(params)
        assert (switcher.switch_cost()
                == TransitionModel(params).mpk_switch_cost())


class TestKeyVirtualizer:
    def _virt(self, params, n_domains):
        space = AddressSpace(params)
        virt = MpkKeyVirtualizer(space, params)
        domains = []
        for i in range(n_domains):
            base = space.mmap(4096, Prot.rw(), name=f"dom{i}")
            domains.append(virt.create_domain(f"dom{i}", [(base, 4096)]))
        return virt, domains

    def test_below_key_limit_second_switch_is_bare_gate(self, params):
        virt, domains = self._virt(params, USABLE_KEYS)
        for d in domains:
            virt.switch_to(d)               # warm: first touch allocates
        from repro.runtime import TransitionModel
        expected = TransitionModel(params).mpk_switch_cost()
        assert all(virt.switch_to(d) == expected for d in domains)
        assert virt.stats().key_steals == 0

    def test_past_key_limit_steals_and_survives(self, params):
        """Thousands of steals churn pkey_free/pkey_alloc — the repaired
        lifecycle must neither exhaust nor leak."""
        virt, domains = self._virt(params, 40)
        rng = random.Random(0x5CA1E)
        for _ in range(1500):
            virt.switch_to(domains[rng.randrange(len(domains))])
        stats = virt.stats()
        assert stats.key_steals > USABLE_KEYS
        assert len(virt.resident) <= USABLE_KEYS
        manager = virt.manager.stats()
        assert manager.leaked_keys == 0
        assert manager.frees > USABLE_KEYS

    def test_miss_retags_with_recycled_key_only(self, params):
        virt, domains = self._virt(params, USABLE_KEYS + 1)
        for d in domains:
            virt.switch_to(d)
        keys = [d.physical.key for d in virt.resident]
        assert len(keys) == len(set(keys))
        assert all(1 <= k < NUM_KEYS for k in keys)

    def test_switch_to_destroyed_domain_raises(self, params):
        virt, domains = self._virt(params, 2)
        virt.switch_to(domains[0])
        virt.destroy_domain(domains[0])
        with pytest.raises(MpkError):
            virt.switch_to(domains[0])
        assert virt.manager.stats().leaked_keys == 0
