"""White-box tests for the wir compiler: allocation, lowering shapes,
calling convention, and error paths."""

import pytest

from repro.isa import Opcode, Reg
from repro.wasm import (
    CompileError,
    Compiler,
    GuardPagesStrategy,
    HfiStrategy,
    NativeUnsafeStrategy,
    WasmRuntime,
)
from repro.wasm.interp import interpret
from repro.wasm.ir import (
    BinOp,
    BinaryOp,
    Call,
    Const,
    Function,
    HostCall,
    Load,
    Loop,
    Module,
    Move,
    Return,
    Store,
    StoreGlobal,
)


def compile_and_run(module, strategy=None, **kwargs):
    runtime = WasmRuntime()
    instance = runtime.instantiate(
        module, strategy if strategy is not None
        else NativeUnsafeStrategy(), **kwargs)
    result = runtime.run(instance)
    assert result.reason == "hlt", result.fault
    return runtime, instance, result


def opcodes_of(instance):
    return [ins.opcode for ins in instance.compiled.program.instructions]


class TestLoweringShapes:
    def test_accumulator_binop_is_single_instruction(self):
        """``x = x + k`` with x in a register lowers to one ADD."""
        module = Module("acc", [Function("main", [
            Const("x", 1),
            BinOp(BinaryOp.ADD, "x", "x", 5),
            StoreGlobal("result", "x"),
        ])], globals=["result"])
        _, instance, _ = compile_and_run(module)
        adds = [i for i in instance.compiled.program.instructions
                if i.opcode is Opcode.ADD]
        assert len(adds) == 1

    def test_dst_aliasing_b_is_stashed(self):
        """``x = y - x`` must not clobber x before reading it."""
        module = Module("alias", [Function("main", [
            Const("x", 3),
            Const("y", 10),
            BinOp(BinaryOp.SUB, "x", "y", "x"),
            StoreGlobal("result", "x"),
        ])], globals=["result"])
        runtime, instance, _ = compile_and_run(module)
        assert runtime.space.read(instance.layout.globals_base) == 7
        assert interpret(module).global_value("result") == 7

    def test_trap_label_present(self):
        module = Module("t", [Function("main", [Const("x", 1)])])
        _, instance, _ = compile_and_run(module)
        assert "__trap" in instance.compiled.program.labels

    def test_host_call_emits_hfi_transitions(self):
        module = Module("hc", [Function("main", [HostCall(5)])])
        _, instance, _ = compile_and_run(module, HfiStrategy())
        ops = opcodes_of(instance)
        assert ops.count(Opcode.HFI_EXIT) >= 2   # host call + final exit
        assert Opcode.HFI_REENTER in ops

    def test_functions_preserve_registers(self):
        """Callee-saved convention: each function pushes/pops what it
        uses, so nested call loops terminate."""
        module = Module("cc", [
            Function("main", [
                Const("total", 0),
                Loop(4, [
                    Call("leaf"),
                    BinOp(BinaryOp.ADD, "total", "total", 1),
                ]),
                StoreGlobal("result", "total"),
            ]),
            Function("leaf", [
                Const("a", 1), Const("b", 2), Const("c", 3),
                BinOp(BinaryOp.ADD, "a", "a", "b"),
            ]),
        ], globals=["result"])
        runtime, instance, _ = compile_and_run(module)
        assert runtime.space.read(instance.layout.globals_base) == 4
        ops = opcodes_of(instance)
        assert Opcode.PUSH in ops and Opcode.POP in ops

    def test_early_return_runs_epilogue(self):
        """Return must restore callee-saved registers (jmp to the
        epilogue, not a bare ret)."""
        module = Module("ret", [
            Function("main", [
                Const("keep", 123),
                Call("quits"),
                StoreGlobal("result", "keep"),
            ]),
            Function("quits", [
                Const("x", 1),
                Return(),
                Const("x", 99),
            ]),
        ], globals=["result"])
        runtime, instance, _ = compile_and_run(module)
        assert runtime.space.read(instance.layout.globals_base) == 123


class TestAllocation:
    def test_reserving_entire_pool_still_works(self):
        module = Module("allspill", [Function("main", [
            Const("a", 2), Const("b", 40),
            BinOp(BinaryOp.ADD, "a", "a", "b"),
            StoreGlobal("result", "a"),
        ])], globals=["result"])
        runtime, instance, _ = compile_and_run(
            module, NativeUnsafeStrategy(), reserve_extra_regs=9)
        assert runtime.space.read(instance.layout.globals_base) == 42
        assert instance.compiled.register_locals == 0
        assert instance.compiled.spilled_locals >= 2

    def test_spill_slots_distinct_across_functions(self):
        many = [Const(f"v{i}", i) for i in range(14)]
        module = Module("two", [
            Function("main", many + [Call("other"),
                                     StoreGlobal("result", "v13")]),
            Function("other", many[:]),
        ], globals=["result"])
        compiler = Compiler(NativeUnsafeStrategy())
        runtime, instance, _ = compile_and_run(module)
        assert runtime.space.read(instance.layout.globals_base) == 13

    def test_deeply_nested_loops_get_counters(self):
        body = [Const("n", 0)]
        inner = [BinOp(BinaryOp.ADD, "n", "n", 1)]
        for _ in range(6):
            inner = [Loop(2, inner)]
        module = Module("deep", [Function("main",
                                          body + inner
                                          + [StoreGlobal("result", "n")])],
                        globals=["result"])
        runtime, instance, _ = compile_and_run(module)
        assert runtime.space.read(instance.layout.globals_base) == 64


class TestErrorPaths:
    def test_code_budget_exceeded(self):
        huge = [Const(f"x{i}", i) for i in range(200)]
        module = Module("huge", [Function("main", huge * 50)])
        runtime = WasmRuntime(code_budget=1 << 12)   # 4 KiB budget
        with pytest.raises(CompileError):
            runtime.instantiate(module, NativeUnsafeStrategy())

    def test_running_dead_instance_rejected(self):
        module = Module("dead", [Function("main", [Const("x", 1)])])
        runtime = WasmRuntime()
        instance = runtime.instantiate(module, HfiStrategy())
        runtime.teardown(instance)
        with pytest.raises(RuntimeError):
            runtime.run(instance)


class TestStrategyCodegenCounts:
    def test_bounds_adds_three_ops_per_access(self):
        module = Module("ct", [Function("main", [
            Const("a", 0),
            Store("a", 7),
            Load("x", "a"),
            StoreGlobal("result", "x"),
        ])], globals=["result"])
        from repro.wasm import BoundsCheckStrategy
        _, plain, _ = compile_and_run(module, GuardPagesStrategy())
        _, checked, _ = compile_and_run(module, BoundsCheckStrategy())
        extra = (len(checked.compiled.program.instructions)
                 - len(plain.compiled.program.instructions))
        # 2 accesses x (lea+cmp+ja) + 1 bound-register setup
        assert extra == 2 * 3 + 1

    def test_hfi_adds_no_per_access_instructions(self):
        module = Module("ct2", [Function("main", [
            Const("a", 0),
            Store("a", 7),
            Load("x", "a"),
            StoreGlobal("result", "x"),
        ])], globals=["result"])
        _, guard, _ = compile_and_run(module, GuardPagesStrategy())
        _, hfi, _ = compile_and_run(module, HfiStrategy())
        guard_body = [i for i in guard.compiled.program.instructions
                      if i.opcode in (Opcode.MOV, Opcode.HMOV0)]
        hfi_body = [i for i in hfi.compiled.program.instructions
                    if i.opcode in (Opcode.MOV, Opcode.HMOV0)]
        # same number of data-movement ops; HFI's are hmov
        hmovs = [i for i in hfi_body if i.opcode is Opcode.HMOV0]
        assert len(hmovs) == 2