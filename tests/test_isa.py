"""Unit tests for the ISA layer: assembler, layout, encodings."""

import pytest

from repro.isa import (
    Assembler,
    AssemblerError,
    Imm,
    Mem,
    Opcode,
    Reg,
    encoded_length,
)


class TestAssembler:
    def test_layout_assigns_monotonic_addresses(self):
        asm = Assembler(base=0x1000)
        asm.mov(Reg.RAX, Imm(1))
        asm.add(Reg.RAX, Imm(2))
        asm.hlt()
        program = asm.assemble()
        addrs = [ins.addr for ins in program.instructions]
        assert addrs[0] == 0x1000
        assert addrs == sorted(addrs)
        for a, b in zip(program.instructions, program.instructions[1:]):
            assert b.addr == a.addr + a.length

    def test_label_resolution(self):
        asm = Assembler()
        asm.jmp("end")
        asm.mov(Reg.RAX, Imm(1))
        asm.label("end")
        asm.hlt()
        program = asm.assemble()
        target = program.instructions[0].operands[0]
        assert isinstance(target, Imm)
        assert target.value == program.labels["end"]

    def test_undefined_label_raises(self):
        asm = Assembler()
        asm.jmp("nowhere")
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_duplicate_label_raises(self):
        asm = Assembler()
        asm.label("x")
        asm.nop()
        asm.label("x")
        asm.nop()
        with pytest.raises(AssemblerError):
            asm.assemble()

    def test_trailing_label_gets_anchor(self):
        asm = Assembler()
        asm.jmp("end")
        asm.label("end")
        program = asm.assemble()
        assert "end" in program.labels

    def test_program_at_lookup(self):
        asm = Assembler(base=0)
        asm.nop()
        asm.hlt()
        program = asm.assemble()
        assert program.at(0).opcode is Opcode.NOP
        assert program.at(program.instructions[1].addr).opcode is Opcode.HLT

    def test_program_size_counts_bytes(self):
        asm = Assembler(base=0x100)
        asm.mov(Reg.RAX, Imm(5))
        asm.hlt()
        program = asm.assemble()
        assert program.size == sum(i.length for i in program.instructions)


class TestEncodings:
    def test_hmov_longer_than_mov(self):
        """The 445.gobmk effect depends on hmov's longer encoding (§6.1)."""
        mem = Mem(base=Reg.RBX, index=Reg.RCX, scale=1, disp=8)
        mov_len = encoded_length(Opcode.MOV, (Reg.RAX, mem))
        hmov_len = encoded_length(Opcode.HMOV0, (Reg.RAX, mem))
        assert hmov_len == mov_len + 2

    def test_disp_width_affects_length(self):
        short = encoded_length(
            Opcode.MOV, (Reg.RAX, Mem(base=Reg.RBX, disp=8)))
        long = encoded_length(
            Opcode.MOV, (Reg.RAX, Mem(base=Reg.RBX, disp=0x1000)))
        assert long > short

    def test_imm_width_affects_length(self):
        small = encoded_length(Opcode.MOV, (Reg.RAX, Imm(1)))
        big = encoded_length(Opcode.MOV, (Reg.RAX, Imm(1 << 40)))
        assert big > small

    def test_all_lengths_positive(self):
        for opcode in Opcode:
            assert encoded_length(opcode, ()) >= 1


class TestOperands:
    def test_mem_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            Mem(base=Reg.RAX, scale=3)

    def test_mem_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Mem(base=Reg.RAX, size=16)
