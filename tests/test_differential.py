"""Differential testing: random programs, every strategy, one answer.

For each seeded random module, the reference interpreter's result and
final heap image must match the compiled module's under every
isolation strategy.  This is the end-to-end equivalence statement for
the whole toolchain (IR -> compiler -> strategy codegen -> CPU).
"""

import pytest

from repro.wasm import (
    BoundsCheckStrategy,
    GuardPagesStrategy,
    HfiEmulationStrategy,
    HfiStrategy,
    MaskingStrategy,
    SwivelStrategy,
    WasmRuntime,
)
from repro.wasm.fuzz import ProgramGenerator, generate
from repro.wasm.interp import Interpreter, InterpTrap, interpret

SEEDS = list(range(20))
STRATEGIES = [GuardPagesStrategy, BoundsCheckStrategy, MaskingStrategy,
              HfiStrategy, HfiEmulationStrategy, SwivelStrategy]


def run_compiled(module, strategy_cls):
    runtime = WasmRuntime()
    instance = runtime.instantiate(module, strategy_cls())
    result = runtime.run(instance)
    assert result.reason == "hlt", (module.name, strategy_cls.name,
                                    result.fault)
    value = runtime.space.read(instance.layout.globals_base)
    heap = runtime.space.read_bytes(instance.heap_base,
                                    module.memory_bytes, check=False)
    return value, heap


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_interpreter_vs_all_strategies(seed):
    module = generate(seed)
    reference = interpret(module)
    ref_value = reference.global_value("result")
    ref_heap = bytes(reference.memories[0])
    for strategy_cls in STRATEGIES:
        value, heap = run_compiled(module, strategy_cls)
        assert value == ref_value, (seed, strategy_cls.name)
        assert heap == ref_heap, (seed, strategy_cls.name)


class TestInterpreterSemantics:
    def test_interprets_workloads_same_as_compiled(self):
        from repro.workloads import SIGHTGLASS_BENCHMARKS
        for name in ("fib2", "sieve", "base64", "ratelimit"):
            module = SIGHTGLASS_BENCHMARKS[name](1)
            ref = interpret(module).global_value("result")
            value, _ = run_compiled(module, GuardPagesStrategy)
            assert value == ref, name

    def test_oob_access_traps(self):
        from repro.wasm.ir import Const, Function, Load, Module
        module = Module("oob", [Function("main", [
            Const("a", 1 << 40),
            Load("x", "a"),
        ])])
        with pytest.raises(InterpTrap):
            interpret(module)

    def test_division_by_zero_traps(self):
        from repro.wasm.ir import BinOp, BinaryOp, Const, Function, Module
        module = Module("div0", [Function("main", [
            Const("a", 1),
            Const("b", 0),
            BinOp(BinaryOp.DIV, "a", "a", "b"),
        ])])
        with pytest.raises(InterpTrap):
            interpret(module)

    def test_early_return(self):
        from repro.wasm.ir import (Const, Function, Module, Return,
                                   StoreGlobal)
        module = Module("ret", [Function("main", [
            Const("a", 5),
            StoreGlobal("result", "a"),
            Return(),
            StoreGlobal("result", 99),
        ])], globals=["result"])
        assert interpret(module).global_value("result") == 5

    def test_multi_memory_interpretation(self):
        from repro.wasm.ir import (Const, Function, Load, Module, Store,
                                   StoreGlobal)
        module = Module("mm", [Function("main", [
            Const("a", 8),
            Const("v", 77),
            Store("a", "v", memory=1),
            Load("x", "a", memory=1),
            Load("y", "a", memory=0),     # untouched: still zero
            StoreGlobal("result", "x"),
        ])], globals=["result"], extra_memories=[1])
        result = interpret(module)
        assert result.global_value("result") == 77
        assert result.memories[0][8] == 0
        assert result.memories[1][8] == 77

    def test_generator_is_deterministic(self):
        a = ProgramGenerator(42).module()
        b = ProgramGenerator(42).module()
        assert interpret(a).global_value("result") == \
            interpret(b).global_value("result")

    def test_ops_counted(self):
        module = generate(3)
        result = Interpreter(module).run()
        assert result.ops_executed > 0
