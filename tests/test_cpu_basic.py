"""Integration tests for the cycle-level CPU simulator."""

import pytest

from repro.core import (
    ExplicitDataRegion,
    FaultCause,
    ImplicitCodeRegion,
    ImplicitDataRegion,
    SandboxFlags,
)
from repro.core.encoding import encode_region, encode_sandbox
from repro.cpu import Cpu
from repro.isa import Assembler, Imm, Mem, Reg
from repro.os import AddressSpace, Prot
from repro.params import MachineParams


@pytest.fixture
def params():
    return MachineParams()


def make_cpu(params, heap_bytes=1 << 20):
    mem = AddressSpace(params)
    cpu = Cpu(params, memory=mem)
    heap = mem.mmap(heap_bytes, Prot.rw(), addr=0x10_0000)
    stack = mem.mmap(1 << 16, Prot.rw(), addr=0x7F_0000)
    cpu.regs.write(Reg.RSP, stack + (1 << 16) - 64)
    return cpu, heap


class TestArithmetic:
    def test_sum_loop(self, params):
        cpu, _ = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(0))
        asm.mov(Reg.RCX, Imm(0))
        asm.label("loop")
        asm.add(Reg.RAX, Reg.RCX)
        asm.inc(Reg.RCX)
        asm.cmp(Reg.RCX, Imm(100))
        asm.jne("loop")
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base)
        assert result.reason == "hlt"
        assert cpu.regs.read(Reg.RAX) == sum(range(100))

    def test_signed_comparisons(self, params):
        cpu, _ = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(0))
        asm.mov(Reg.RBX, Imm((1 << 64) - 5))  # -5
        asm.cmp(Reg.RBX, Imm(3))
        asm.jl("neg_less")
        asm.hlt()
        asm.label("neg_less")
        asm.mov(Reg.RAX, Imm(1))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        assert cpu.regs.read(Reg.RAX) == 1

    def test_mul_and_shifts(self, params):
        cpu, _ = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(7))
        asm.imul(Reg.RAX, Imm(6))
        asm.shl(Reg.RAX, Imm(2))
        asm.shr(Reg.RAX, Imm(1))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        assert cpu.regs.read(Reg.RAX) == 7 * 6 * 4 // 2


class TestMemory:
    def test_load_store_roundtrip(self, params):
        cpu, heap = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RBX, Imm(heap))
        asm.mov(Reg.RAX, Imm(0x1234))
        asm.mov(Mem(base=Reg.RBX, disp=64), Reg.RAX)
        asm.mov(Reg.RCX, Mem(base=Reg.RBX, disp=64))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        assert cpu.regs.read(Reg.RCX) == 0x1234

    def test_scaled_index_addressing(self, params):
        cpu, heap = make_cpu(params)
        cpu.mem.write(heap + 8 * 5, 99, 8)
        asm = Assembler()
        asm.mov(Reg.RBX, Imm(heap))
        asm.mov(Reg.RCX, Imm(5))
        asm.mov(Reg.RAX, Mem(base=Reg.RBX, index=Reg.RCX, scale=8))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        assert cpu.regs.read(Reg.RAX) == 99

    def test_push_pop(self, params):
        cpu, _ = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(0xAA))
        asm.push(Reg.RAX)
        asm.mov(Reg.RAX, Imm(0))
        asm.pop(Reg.RBX)
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        assert cpu.regs.read(Reg.RBX) == 0xAA

    def test_unmapped_access_faults(self, params):
        cpu, _ = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RBX, Imm(0x6666_0000))
        asm.mov(Reg.RAX, Mem(base=Reg.RBX))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base)
        assert result.reason == "fault"
        assert result.fault.kind == "page"

    def test_repeated_loads_hit_cache(self, params):
        """Second pass over the same array must be much faster (L1 hits)."""
        def run_pass(n_passes):
            cpu, heap = make_cpu(params)
            asm = Assembler()
            asm.mov(Reg.RBX, Imm(heap))
            asm.mov(Reg.RDX, Imm(0))           # pass counter
            asm.label("outer")
            asm.mov(Reg.RCX, Imm(0))
            asm.label("loop")
            asm.mov(Reg.RAX, Mem(base=Reg.RBX, index=Reg.RCX, scale=8))
            asm.inc(Reg.RCX)
            asm.cmp(Reg.RCX, Imm(64))
            asm.jne("loop")
            asm.inc(Reg.RDX)
            asm.cmp(Reg.RDX, Imm(n_passes))
            asm.jne("outer")
            asm.hlt()
            program = asm.assemble()
            cpu.load_program(program)
            return cpu.run(program.base).cycles

        one = run_pass(1)
        two = run_pass(2)
        # The second pass costs far less than the first (cache-warm).
        assert two - one < one * 0.8


class TestCallsAndBranches:
    def test_call_ret(self, params):
        cpu, _ = make_cpu(params)
        asm = Assembler()
        asm.call("fn")
        asm.hlt()
        asm.label("fn")
        asm.mov(Reg.RAX, Imm(42))
        asm.ret()
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base)
        assert result.reason == "hlt"
        assert cpu.regs.read(Reg.RAX) == 42

    def test_indirect_jump(self, params):
        cpu, _ = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(0))
        asm.lea(Reg.RBX, Mem(disp=0))  # patched below
        asm.jmp(Reg.RBX)
        asm.hlt()
        asm.label("target")
        asm.mov(Reg.RAX, Imm(7))
        asm.hlt()
        program = asm.assemble()
        # patch the lea to the real target address
        target = program.labels["target"]
        lea = program.instructions[1]
        lea.operands = (Reg.RBX, Mem(disp=target))
        cpu.load_program(program)
        cpu.run(program.base)
        assert cpu.regs.read(Reg.RAX) == 7

    def test_branch_predictor_learns(self, params):
        """A tight always-taken loop should mispredict only O(1) times."""
        cpu, _ = make_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RCX, Imm(0))
        asm.label("loop")
        asm.inc(Reg.RCX)
        asm.cmp(Reg.RCX, Imm(1000))
        asm.jne("loop")
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        assert cpu.stats.branches >= 1000
        assert cpu.stats.mispredicts <= 5


class TestHfiOnCpu:
    def _sandboxed_cpu(self, params, *, region_perms=(True, True)):
        """Build a CPU with a program that enters a native sandbox and
        pokes memory through an implicit region."""
        cpu, heap = make_cpu(params)
        mem = cpu.mem
        # descriptors staged in runtime memory
        desc = mem.mmap(4096, Prot.rw(), addr=0x20_0000)
        code_region = ImplicitCodeRegion.covering(0x40_0000, 1 << 16)
        data_region = ImplicitDataRegion(heap, 0xFFFF,
                                         permission_read=region_perms[0],
                                         permission_write=region_perms[1])
        # stack region so push/pop keeps working inside the sandbox
        stack_region = ImplicitDataRegion(0x7F_0000, 0xFFFF, True, True)
        mem.write_bytes(desc, encode_region(code_region))
        mem.write_bytes(desc + 24, encode_region(data_region))
        mem.write_bytes(desc + 48, encode_region(stack_region))
        mem.write_bytes(desc + 72, encode_sandbox(
            SandboxFlags(is_hybrid=False, is_serialized=True),
            exit_handler=0))
        return cpu, heap, desc

    def test_in_bounds_access_inside_sandbox(self, params):
        cpu, heap, desc = self._sandboxed_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RDI, Imm(desc))
        asm.hfi_set_region(0, Reg.RDI)
        asm.mov(Reg.RDI, Imm(desc + 24))
        asm.hfi_set_region(2, Reg.RDI)
        asm.mov(Reg.RDI, Imm(desc + 48))
        asm.hfi_set_region(3, Reg.RDI)
        asm.mov(Reg.RDI, Imm(desc + 72))
        asm.hfi_enter(Reg.RDI)
        asm.mov(Reg.RBX, Imm(heap))
        asm.mov(Reg.RAX, Imm(77))
        asm.mov(Mem(base=Reg.RBX, disp=8), Reg.RAX)
        asm.mov(Reg.RCX, Mem(base=Reg.RBX, disp=8))
        asm.hfi_exit()
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base)
        assert result.reason == "hlt"
        assert cpu.regs.read(Reg.RCX) == 77

    def test_out_of_bounds_access_traps(self, params):
        cpu, heap, desc = self._sandboxed_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RDI, Imm(desc))
        asm.hfi_set_region(0, Reg.RDI)
        asm.mov(Reg.RDI, Imm(desc + 24))
        asm.hfi_set_region(2, Reg.RDI)
        asm.mov(Reg.RDI, Imm(desc + 72))
        asm.hfi_enter(Reg.RDI)
        asm.mov(Reg.RBX, Imm(0x20_0000))   # the descriptor page: outside
        asm.mov(Reg.RAX, Mem(base=Reg.RBX))
        asm.hfi_exit()
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base)
        assert result.reason == "fault"
        assert result.fault.kind == "hfi"
        assert result.fault.hfi_cause is FaultCause.DATA_OUT_OF_BOUNDS
        assert not cpu.hfi.enabled  # fault disabled the sandbox

    def test_code_fetch_outside_region_traps(self, params):
        cpu, heap, desc = self._sandboxed_cpu(params)
        asm = Assembler()
        asm.mov(Reg.RDI, Imm(desc))
        asm.hfi_set_region(0, Reg.RDI)
        asm.mov(Reg.RDI, Imm(desc + 72))
        asm.hfi_enter(Reg.RDI)
        asm.jmp(Imm(0x50_0000))  # outside the sandbox's code region
        asm.hlt()
        program = asm.assemble()
        far = Assembler(base=0x50_0000)
        far.nop()
        far.hlt()
        far_prog = far.assemble()
        cpu.load_program(program)
        cpu.load_program(far_prog)
        result = cpu.run(program.base)
        assert result.reason == "fault"
        assert result.fault.hfi_cause is FaultCause.CODE_OUT_OF_BOUNDS

    def test_native_syscall_redirects_to_handler(self, params):
        cpu, heap, desc = self._sandboxed_cpu(params)
        mem = cpu.mem
        handler_asm = Assembler(base=0x41_0000)
        handler_asm.mov(Reg.RAX, Imm(0x5AFE))
        handler_asm.hlt()
        handler_prog = handler_asm.assemble()
        mem.write_bytes(desc + 72, encode_sandbox(
            SandboxFlags(is_hybrid=False), exit_handler=0x41_0000))
        asm = Assembler()
        asm.mov(Reg.RDI, Imm(desc))
        asm.hfi_set_region(0, Reg.RDI)
        asm.mov(Reg.RDI, Imm(desc + 72))
        asm.hfi_enter(Reg.RDI)
        asm.mov(Reg.RAX, Imm(39))  # getpid
        asm.syscall()
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.load_program(handler_prog)
        result = cpu.run(program.base)
        assert result.reason == "hlt"
        assert cpu.regs.read(Reg.RAX) == 0x5AFE
        assert cpu.stats.interposed_syscalls == 1
        assert cpu.hfi.read_cause_msr() is FaultCause.SYSCALL

    def test_hmov_inside_sandbox(self, params):
        cpu, heap, desc = self._sandboxed_cpu(params)
        mem = cpu.mem
        explicit = ExplicitDataRegion(heap, 1 << 16, permission_read=True,
                                      permission_write=True)
        mem.write_bytes(desc + 96, encode_region(explicit))
        asm = Assembler()
        asm.mov(Reg.RDI, Imm(desc))
        asm.hfi_set_region(0, Reg.RDI)
        asm.mov(Reg.RDI, Imm(desc + 96))
        asm.hfi_set_region(6, Reg.RDI)
        asm.mov(Reg.RDI, Imm(desc + 72))
        asm.hfi_enter(Reg.RDI)
        asm.mov(Reg.RCX, Imm(3))
        asm.mov(Reg.RAX, Imm(0xFEED))
        # store via explicit region 0: [region0.base + rcx*8 + 0x10]
        asm.hmov(0, Mem(index=Reg.RCX, scale=8, disp=0x10), Reg.RAX)
        asm.hmov(0, Reg.RBX, Mem(index=Reg.RCX, scale=8, disp=0x10))
        asm.hfi_exit()
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base)
        assert result.reason == "hlt"
        assert cpu.regs.read(Reg.RBX) == 0xFEED
        assert cpu.mem.read(heap + 3 * 8 + 0x10) == 0xFEED

    def test_hmov_out_of_bounds_traps(self, params):
        cpu, heap, desc = self._sandboxed_cpu(params)
        mem = cpu.mem
        explicit = ExplicitDataRegion(heap, 1 << 16, permission_read=True,
                                      permission_write=True)
        mem.write_bytes(desc + 96, encode_region(explicit))
        asm = Assembler()
        asm.mov(Reg.RDI, Imm(desc))
        asm.hfi_set_region(0, Reg.RDI)
        asm.mov(Reg.RDI, Imm(desc + 96))
        asm.hfi_set_region(6, Reg.RDI)
        asm.mov(Reg.RDI, Imm(desc + 72))
        asm.hfi_enter(Reg.RDI)
        asm.mov(Reg.RCX, Imm((1 << 16) // 8))  # one element past the end
        asm.hmov(0, Reg.RBX, Mem(index=Reg.RCX, scale=8))
        asm.hfi_exit()
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base)
        assert result.reason == "fault"
        assert result.fault.hfi_cause is FaultCause.HMOV_OUT_OF_BOUNDS
