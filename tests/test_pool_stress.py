"""Stress and lifecycle tests for the pooling allocator.

Two concerns: ``acquire`` stays sound under adversarial interleavings
of ``release``/``flush_discards`` (the dirty-slot recycling bug's
family), and the quarantine → scrub lifecycle added for the
supervised runtime keeps the structural accounting exact.
"""

import random

import pytest

from repro.os import AddressSpace
from repro.params import MachineParams
from repro.runtime import InstancePool
from repro.verify import PoolInvariants, check_pool
from repro.wasm import HfiStrategy


@pytest.fixture
def params():
    return MachineParams()


def build_pool(params, slots=6, batch=True):
    space = AddressSpace(params)
    pool = InstancePool(space, HfiStrategy(), slots=slots,
                        heap_bytes=1 << 14, params=params,
                        batch_teardown=batch)
    return space, pool


class TestAcquireUnderInterleaving:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_interleave_never_hands_out_a_dirty_slot(
            self, params, seed):
        """Seeded storm of acquire/release/flush with the sanitizer
        armed: every acquired slot reads back zero, accounting stays
        exact, and the probe logs no violation."""
        space, pool = build_pool(params)
        probe = PoolInvariants(raise_on_violation=True).install(pool)
        rng = random.Random(seed)
        held = []
        try:
            for step in range(400):
                op = rng.random()
                if op < 0.45:
                    slot = pool.acquire()
                    if slot is not None:
                        assert space.read(slot.heap_base,
                                          check=False) == 0
                        space.write(slot.heap_base,
                                    0xBEEF0000 | step, check=False)
                        held.append(slot)
                elif op < 0.85 and held:
                    pool.release(held.pop(rng.randrange(len(held))))
                else:
                    pool.flush_discards()
                assert check_pool(pool) == []
                assert (pool.available + len(pool._pending_discard)
                        + len(held) == len(pool.slots))
        finally:
            probe.uninstall()
        assert probe.violations == 0 and probe.poison_hits == 0

    def test_acquire_returns_none_only_when_truly_empty(self, params):
        _, pool = build_pool(params, slots=3)
        held = [pool.acquire() for _ in range(3)]
        assert pool.acquire() is None
        pool.release(held.pop())
        # batched: released slot is pending, not free, until flushed
        assert pool.acquire() is None
        pool.flush_discards()
        assert pool.acquire() is not None


class TestQuarantineLifecycle:
    def test_quarantined_slot_leaves_circulation(self, params):
        _, pool = build_pool(params, slots=2)
        slot = pool.acquire()
        pool.quarantine(slot)
        assert slot.quarantined and not slot.in_use
        assert pool.quarantined == 1
        # drain the rest of the pool: the quarantined slot never comes
        other = pool.acquire()
        assert other is not None and other.index != slot.index
        assert pool.acquire() is None
        pool.flush_discards()
        assert pool.acquire() is None
        assert check_pool(pool) == []

    def test_quarantine_is_idempotent_and_state_agnostic(self, params):
        _, pool = build_pool(params, slots=3)
        in_use = pool.acquire()
        pending = pool.acquire()
        pool.release(pending)           # now on the pending batch
        for slot in (in_use, pending):
            pool.quarantine(slot)
            pool.quarantine(slot)       # second call is a no-op
        assert pool.quarantined == 2
        assert pool.quarantines == 2
        assert check_pool(pool) == []

    def test_scrub_restores_service_and_zeroes_heap(self, params):
        space, pool = build_pool(params, slots=2)
        slot = pool.acquire()
        space.write(slot.heap_base, 0xDEAD, check=False)
        pool.quarantine(slot)
        cost = pool.scrub(slot)
        assert cost > 0
        assert not slot.quarantined and pool.quarantined == 0
        assert pool.scrubs == 1 and pool.scrub_failures == 0
        # the slot is acquirable again and its heap is clean
        seen = {pool.acquire().index for _ in range(2)}
        assert slot.index in seen
        assert space.read(slot.heap_base, check=False) == 0
        assert check_pool(pool) == []

    def test_scrub_rejects_non_quarantined_slot(self, params):
        _, pool = build_pool(params)
        slot = pool.acquire()
        with pytest.raises(ValueError):
            pool.scrub(slot)

    def test_scrub_all_drains_the_quarantine(self, params):
        _, pool = build_pool(params, slots=4)
        for _ in range(3):
            pool.quarantine(pool.acquire())
        assert pool.quarantined == 3
        pool.scrub_all()
        assert pool.quarantined == 0
        assert pool.available == 4
        assert check_pool(pool) == []

    def test_stats_surface_quarantine_counters(self, params):
        _, pool = build_pool(params)
        slot = pool.acquire()
        pool.quarantine(slot)
        pool.scrub(slot)
        stats = pool.stats()
        assert stats.quarantines == 1
        assert stats.scrubs == 1
        assert stats.quarantined == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_interleaved_quarantine_scrub_storm(self, params, seed):
        """Quarantine/scrub mixed into the acquire/release/flush storm
        with the sanitizer armed; accounting must stay exact at every
        step (free + pending + quarantined + in-use == slots)."""
        space, pool = build_pool(params, slots=5)
        probe = PoolInvariants(raise_on_violation=True).install(pool)
        rng = random.Random(1000 + seed)
        held = []
        try:
            for _ in range(300):
                op = rng.random()
                if op < 0.35:
                    slot = pool.acquire()
                    if slot is not None:
                        assert not slot.quarantined
                        assert space.read(slot.heap_base,
                                          check=False) == 0
                        held.append(slot)
                elif op < 0.60 and held:
                    pool.release(held.pop(rng.randrange(len(held))))
                elif op < 0.75 and held:
                    pool.quarantine(held.pop(rng.randrange(len(held))))
                elif op < 0.90:
                    pool.scrub_all()
                else:
                    pool.flush_discards()
                assert check_pool(pool) == []
                assert (pool.available + len(pool._pending_discard)
                        + pool.quarantined + len(held)
                        == len(pool.slots))
        finally:
            probe.uninstall()
        assert probe.violations == 0 and probe.poison_hits == 0
