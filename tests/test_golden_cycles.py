"""Golden cycle-count regression: the simulator's timing is locked.

Every workload in :mod:`repro.workloads.golden` must reproduce the
exact counters frozen in ``golden_cycles.json``.  A diff here means a
change altered simulated *timing* — if that was intended, regenerate
with ``PYTHONPATH=src python scripts/gen_golden_cycles.py`` and justify
it in the commit message; if not, the change has a fidelity bug.
"""

import json
import pathlib

import pytest

from repro.workloads.golden import GOLDEN_WORKLOADS, run_all

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_cycles.json"

#: Engines that promise bit-identical timing.  The reference oracle is
#: excluded on purpose: it guarantees architectural state only.
CYCLE_PARITY_ENGINES = ("staged", "blocks")


@pytest.fixture(scope="module", params=CYCLE_PARITY_ENGINES)
def fresh(request):
    # One pass over the whole registry, in order: some workload
    # builders share module-global counters, so ordering is part of
    # the contract (see repro.workloads.golden).  Parametrized over
    # every engine with cycle parity: the superblock compiler must not
    # move a single counter relative to the staged interpreter.
    return run_all(engine=request.param)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def test_fixture_covers_registry(golden):
    assert set(golden) == set(GOLDEN_WORKLOADS)


@pytest.mark.parametrize("name", list(GOLDEN_WORKLOADS))
def test_golden_workload(name, fresh, golden):
    expected = golden[name]
    actual = fresh[name]
    assert actual == expected, (
        f"{name}: timing drift\n"
        + "\n".join(f"  {k}: golden={expected.get(k)} now={actual.get(k)}"
                    for k in sorted(set(expected) | set(actual))
                    if expected.get(k) != actual.get(k)))


def test_key_counters_locked(fresh, golden):
    """The acceptance triple — cycles, hfi_faults, speculative
    instructions — is bit-equal on every locked workload."""
    for name, expected in golden.items():
        actual = fresh[name]
        for key in ("cycles", "hfi_faults", "speculative_instructions"):
            if key in expected:
                assert actual[key] == expected[key], (name, key)
