"""Golden cycle-count regression: the simulator's timing is locked.

Every workload in :mod:`repro.workloads.golden` must reproduce the
exact counters frozen in the fixture for its timing model
(``golden_cycles.json`` for in-order, ``golden_cycles_ooo.json`` for
the out-of-order backend).  A diff here means a change altered
simulated *timing* — if that was intended, regenerate with
``PYTHONPATH=src python scripts/gen_golden_cycles.py [--timing ooo]``
and justify it in the commit message; if not, the change has a
fidelity bug.
"""

import json
import pathlib

import pytest

from repro.workloads.golden import GOLDEN_WORKLOADS, run_all

GOLDEN_FILES = {
    "inorder": pathlib.Path(__file__).parent / "golden_cycles.json",
    "ooo": pathlib.Path(__file__).parent / "golden_cycles_ooo.json",
}

#: Engines that promise bit-identical timing.  The reference oracle is
#: excluded on purpose: it guarantees architectural state only.  Under
#: the ``ooo`` timing model the blocks engine degrades to the staged
#: loop (its generated code bakes in in-order accounting), so the pair
#: still must match the fixture — it is the degradation path under
#: test.
CYCLE_PARITY_ENGINES = ("staged", "blocks")
CYCLE_PARITY_PAIRS = [(engine, timing)
                      for timing in ("inorder", "ooo")
                      for engine in CYCLE_PARITY_ENGINES]


@pytest.fixture(scope="module", params=CYCLE_PARITY_PAIRS,
                ids=[f"{e}-{t}" for e, t in CYCLE_PARITY_PAIRS])
def locked(request):
    # One pass over the whole registry, in order: some workload
    # builders share module-global counters, so ordering is part of
    # the contract (see repro.workloads.golden).  Parametrized over
    # every (engine, timing) pair with cycle parity: neither the
    # superblock compiler nor a timing-backend refactor may move a
    # single counter relative to that model's frozen fixture.
    engine, timing = request.param
    fresh = run_all(engine=engine, timing=timing)
    golden = json.loads(GOLDEN_FILES[timing].read_text())
    return fresh, golden


@pytest.mark.parametrize("timing", sorted(GOLDEN_FILES))
def test_fixture_covers_registry(timing):
    golden = json.loads(GOLDEN_FILES[timing].read_text())
    assert set(golden) == set(GOLDEN_WORKLOADS)


@pytest.mark.parametrize("name", list(GOLDEN_WORKLOADS))
def test_golden_workload(name, locked):
    fresh, golden = locked
    expected = golden[name]
    actual = fresh[name]
    assert actual == expected, (
        f"{name}: timing drift\n"
        + "\n".join(f"  {k}: golden={expected.get(k)} now={actual.get(k)}"
                    for k in sorted(set(expected) | set(actual))
                    if expected.get(k) != actual.get(k)))


def test_key_counters_locked(locked):
    """The acceptance triple — cycles, hfi_faults, speculative
    instructions — is bit-equal on every locked workload."""
    fresh, golden = locked
    for name, expected in golden.items():
        actual = fresh[name]
        for key in ("cycles", "hfi_faults", "speculative_instructions"):
            if key in expected:
                assert actual[key] == expected[key], (name, key)


def test_timing_models_agree_architecturally():
    """The two fixtures disagree on ``cycles`` and nothing else: every
    architectural counter (instructions, loads, stores, faults,
    results) — and even the predictor-driven ones (branches,
    mispredicts, speculative_instructions), which consume the
    functional commit stream — is bit-equal between them."""
    inorder = json.loads(GOLDEN_FILES["inorder"].read_text())
    ooo = json.loads(GOLDEN_FILES["ooo"].read_text())
    for name, expected in inorder.items():
        actual = ooo[name]
        for key in expected:
            if key == "cycles":
                continue
            assert actual[key] == expected[key], (name, key)
