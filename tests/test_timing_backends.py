"""Timing-backend layer: protocol conformance and the OoO scoreboard.

Pins down the pluggable timing contract introduced with the
:class:`~repro.cpu.timing.TimingBackend` protocol:

* every named model constructs through :func:`create_timing` and
  conforms to the protocol; unknown names are rejected everywhere a
  timing name is accepted;
* timing models never change architecture — registers, memory, fault
  behavior, and serialization counters are bit-identical across
  models; only ``cycles`` moves;
* the out-of-order backend exploits ILP (independent ALU chains
  finish faster than in-order; dependent chains do not), hides the
  hmov bounds check under the access latency (§4.2), pays for pipeline
  drains (§3.4), and keeps its rename/ROB/free-list bookkeeping exact
  under the structural audit;
* the blocks engine degrades to the staged loop under non-default
  timing rather than emitting stale in-order accounting.
"""

import pytest

from repro.cpu import Cpu
from repro.cpu.machine import create_backend
from repro.cpu.ooo import OutOfOrderTiming
from repro.cpu.timing import (
    TIMING_MODELS,
    InOrderTiming,
    TimingBackend,
    create_timing,
    default_timing,
    set_default_timing,
)
from repro.isa import Assembler, Imm, Mem, Reg
from repro.os import AddressSpace, Prot
from repro.params import MachineParams
from repro.verify.fuzz_isa import build_matrix, run_differential
from repro.verify.reference import ReferenceCpu

HEAP = 0x10_0000


@pytest.fixture
def params():
    return MachineParams()


def make_cpu(timing="inorder", params=None, engine="staged"):
    params = params or MachineParams()
    mem = AddressSpace(params)
    cpu = Cpu(params, memory=mem, engine=engine, timing=timing)
    mem.mmap(1 << 16, Prot.rw(), addr=HEAP)
    stack = mem.mmap(1 << 16, Prot.rw(), addr=0x7F_0000)
    cpu.regs.write(Reg.RSP, stack + (1 << 16) - 64)
    return cpu


def run_asm(cpu, asm):
    program = asm.assemble()
    cpu.load_program(program)
    result = cpu.run(program.base, max_instructions=1_000_000)
    assert result.reason == "hlt", result.reason
    return result


def _parallel_alu(n=64):
    """Four independent accumulator chains: ILP a wide machine can eat."""
    asm = Assembler()
    for reg in (Reg.RAX, Reg.RBX, Reg.RCX, Reg.RDX):
        asm.mov(reg, Imm(1))
    asm.mov(Reg.R8, Imm(n))
    asm.label("loop")
    asm.add(Reg.RAX, Imm(3))
    asm.add(Reg.RBX, Imm(5))
    asm.add(Reg.RCX, Imm(7))
    asm.add(Reg.RDX, Imm(11))
    asm.dec(Reg.R8)
    asm.jne("loop")
    asm.hlt()
    return asm


def _dependent_chain(n=64):
    """One serial dependence chain per iteration: no ILP to mine.  The
    loop shape matches :func:`_parallel_alu` (same body size, warm
    I-cache) so the only difference the timing models see is the
    dependence structure."""
    asm = Assembler()
    asm.mov(Reg.RAX, Imm(1))
    asm.mov(Reg.R8, Imm(n))
    asm.label("loop")
    asm.add(Reg.RAX, Reg.RAX)
    asm.and_(Reg.RAX, Imm(0xFFFF))
    asm.add(Reg.RAX, Reg.RAX)
    asm.and_(Reg.RAX, Imm(0xFFFF))
    asm.dec(Reg.R8)
    asm.jne("loop")
    asm.hlt()
    return asm


def _arch_digest(cpu):
    f = cpu.regs.flags
    return {
        "regs": dict(cpu.regs.regs),
        "flags": (f.zf, f.sf, f.cf, f.of),
        "rip": cpu.regs.rip,
        "instructions": cpu.stats.instructions,
        "loads": cpu.stats.loads,
        "stores": cpu.stats.stores,
        "serializations": cpu.stats.serializations,
    }


class TestTimingApi:
    def test_every_model_conforms(self):
        for name in TIMING_MODELS:
            cpu = make_cpu(timing=name)
            assert isinstance(cpu.timing, TimingBackend)
            assert cpu.timing.name == name
            assert cpu.timing_model == name

    def test_unknown_names_rejected(self, params):
        with pytest.raises(ValueError):
            make_cpu(timing="cycle-accurate")
        with pytest.raises(ValueError):
            create_timing("speculative", Cpu(params))
        with pytest.raises(ValueError):
            set_default_timing("fast")

    def test_inorder_commits_inline_ooo_does_not(self):
        assert InOrderTiming.inline_commit is True
        assert OutOfOrderTiming.inline_commit is False

    def test_default_timing_scopes_construction(self):
        with default_timing("ooo"):
            inner = Cpu()
            assert inner.timing_model == "ooo"
        assert Cpu().timing_model == "inorder"

    def test_create_backend_threads_timing(self, params):
        backend = create_backend("staged", timing="ooo", params=params)
        assert backend.timing_model == "ooo"

    def test_reference_accepts_timing_and_ignores_it(self, params):
        ref = ReferenceCpu(params, timing="ooo")
        assert ref.timing_model == "reference"
        with pytest.raises(ValueError):
            ReferenceCpu(params, timing="bogus")

    def test_matrix_skips_reference_timing_cross(self):
        matrix = build_matrix(("staged", "reference"), ("inorder", "ooo"))
        assert ("staged", "ooo") in matrix
        assert ("reference", "ooo") not in matrix
        assert ("reference", "inorder") in matrix

    def test_phys_regs_floor_enforced(self, params):
        tight = params.with_overrides(ooo_phys_regs=17)
        with pytest.raises(ValueError):
            Cpu(tight, timing="ooo")


class TestArchitecturalParity:
    def test_identical_state_only_cycles_differ(self):
        digests, cycles = {}, {}
        for timing in TIMING_MODELS:
            cpu = make_cpu(timing=timing)
            asm = _parallel_alu()
            asm_mem = asm  # one program: ALU loop then memory traffic
            run_asm(cpu, asm_mem)
            digests[timing] = _arch_digest(cpu)
            cycles[timing] = cpu.stats.cycles
        assert digests["inorder"] == digests["ooo"]
        assert cycles["ooo"] < cycles["inorder"]

    def test_fuzz_matrix_engine_x_timing(self):
        for seed in (11, 42, 1337):
            outcome = run_differential(
                seed, engines=("staged",), timings=("inorder", "ooo"))
            assert outcome.divergences == [], (seed, outcome.divergences)

    def test_blocks_engine_degrades_under_ooo(self, params):
        staged = make_cpu(timing="ooo", engine="staged", params=params)
        blocks = make_cpu(timing="ooo", engine="blocks", params=params)
        assert blocks._blocks is None  # generated code bakes in in-order
        run_asm(staged, _parallel_alu())
        run_asm(blocks, _parallel_alu())
        assert _arch_digest(staged) == _arch_digest(blocks)
        assert staged.stats.cycles == blocks.stats.cycles

    def test_precise_exceptions(self, params):
        """A faulting access retires with the same architectural state
        under both models: the OoO window drains before delivery."""
        digests = {}
        for timing in TIMING_MODELS:
            cpu = make_cpu(timing=timing, params=params)
            asm = Assembler()
            asm.mov(Reg.RAX, Imm(7))
            asm.add(Reg.RAX, Imm(1))
            asm.mov(Reg.RBX, Mem(base=Reg.RCX, disp=0x66_0000))
            asm.hlt()
            program = asm.assemble()
            cpu.load_program(program)
            result = cpu.run(program.base, max_instructions=1000)
            assert result.reason == "fault"
            digests[timing] = _arch_digest(cpu)
            if timing == "ooo":
                assert cpu.timing.window_occupancy == 0
                assert cpu.timing.audit() == []
        assert digests["inorder"] == digests["ooo"]


class TestOooMicroarchitecture:
    def test_parallel_chains_beat_inorder(self):
        inorder = make_cpu("inorder")
        ooo = make_cpu("ooo")
        run_asm(inorder, _parallel_alu())
        run_asm(ooo, _parallel_alu())
        assert ooo.stats.cycles < inorder.stats.cycles

    def test_dependent_chain_defeats_the_wide_machine(self):
        """Serial dependences bound the OoO speedup: the dependent
        chain's advantage comes only from fetch overlap, far below the
        machine width."""
        results = {}
        for builder in (_parallel_alu, _dependent_chain):
            inorder = make_cpu("inorder")
            ooo = make_cpu("ooo")
            run_asm(inorder, builder())
            run_asm(ooo, builder())
            results[builder.__name__] = (inorder.stats.cycles
                                         / ooo.stats.cycles)
        assert results["_parallel_alu"] > results["_dependent_chain"]

    def test_width_one_is_slowest(self, params):
        cycles = {}
        for width in (1, 4):
            cpu = make_cpu("ooo",
                           params=params.with_overrides(ooo_width=width))
            run_asm(cpu, _parallel_alu())
            cycles[width] = cpu.stats.cycles
        assert cycles[4] < cycles[1]

    def test_hmov_check_hides_under_access_latency(self, params):
        """§4.2: a 3-cycle bounds check is free under OoO (it runs in
        parallel with the dTLB/L1D path) but serial under in-order."""
        def transition_cycles(timing, extra):
            from repro.core import ImplicitCodeRegion
            from repro.core.regions import ExplicitDataRegion

            cpu = make_cpu(
                timing, params=params.with_overrides(
                    hmov_extra_cycles=extra))
            asm = Assembler()
            asm.mov(Reg.RCX, Imm(64))
            asm.mov(Reg.R8, Imm(100))
            asm.label("loop")
            asm.hmov(0, Reg.RDX, Mem(index=Reg.RCX, scale=1, disp=0))
            asm.hmov(0, Mem(index=Reg.RCX, scale=1, disp=8), Reg.RDX)
            asm.dec(Reg.R8)
            asm.jne("loop")
            asm.hlt()
            program = asm.assemble()
            cpu.load_program(program)
            cpu.hfi.regs.code[0] = ImplicitCodeRegion.covering(
                program.base & ~0xFFFF, 1 << 16)
            cpu.hfi.regs.explicit[0] = ExplicitDataRegion(
                HEAP, 1 << 16, permission_read=True,
                permission_write=True)
            cpu.hfi.regs.enabled = True
            result = cpu.run(program.base, max_instructions=10_000)
            assert result.reason == "hlt", result.reason
            return cpu.stats.cycles

        assert transition_cycles("ooo", 3) == transition_cycles("ooo", 0)
        assert (transition_cycles("inorder", 3)
                > transition_cycles("inorder", 0))

    def test_serialization_drains_window(self):
        """cpuid in a loop forces the front end to wait for retirement;
        the serialization count stays architectural (identical across
        models) while OoO pays drain cycles."""
        counts = {}
        for timing in TIMING_MODELS:
            cpu = make_cpu(timing)
            asm = Assembler()
            asm.mov(Reg.R8, Imm(10))
            asm.label("loop")
            asm.add(Reg.RAX, Imm(1))
            asm.cpuid()
            asm.dec(Reg.R8)
            asm.jne("loop")
            asm.hlt()
            run_asm(cpu, asm)
            counts[timing] = cpu.stats.serializations
            if timing == "ooo":
                assert cpu.timing.ooo_stats().drains >= 10
        assert counts["inorder"] == counts["ooo"] == 10

    def test_drain_pending_empties_window_and_audit_clean(self):
        cpu = make_cpu("ooo")
        run_asm(cpu, _parallel_alu())
        assert cpu.timing.audit() == []
        before = cpu.timing.ooo_stats().drains
        cpu.timing.drain_pending()
        assert cpu.timing.window_occupancy == 0
        assert cpu.timing.ooo_stats().drains == before + 1
        assert cpu.timing.audit() == []

    def test_tiny_rob_stalls_are_attributed(self, params):
        cpu = make_cpu("ooo", params=params.with_overrides(
            ooo_rob_depth=4, ooo_width=4))
        run_asm(cpu, _parallel_alu())
        stats = cpu.timing.ooo_stats()
        assert stats.peak_inflight <= 4
        assert stats.rob_stalls > 0

    def test_ooo_stats_registered_in_telemetry(self):
        from repro.telemetry import Telemetry

        cpu = make_cpu("ooo")
        cpu.attach_telemetry(Telemetry())
        run_asm(cpu, _parallel_alu())
        snapshot = cpu.telemetry.snapshot()
        assert "ooo" in snapshot["components"]
        ooo = snapshot["components"]["ooo"]
        assert ooo["retired"] == cpu.stats.instructions

    def test_mispredict_redirects_fetch(self):
        cpu = make_cpu("ooo")
        asm = Assembler()
        asm.mov(Reg.R8, Imm(50))
        asm.mov(Reg.RAX, Imm(0))
        asm.label("loop")
        asm.add(Reg.RAX, Imm(1))
        asm.dec(Reg.R8)
        asm.jne("loop")
        asm.hlt()
        run_asm(cpu, asm)
        stats = cpu.timing.ooo_stats()
        assert stats.redirects == cpu.stats.mispredicts
        assert stats.redirects > 0
