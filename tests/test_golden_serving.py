"""Golden regression fixture for the serving simulator.

Replays the exact runs recorded by ``scripts/gen_golden_serving.py``
and asserts bit-for-bit equality on every pinned integer field —
request fates, latency percentiles in cycles, steal and peak-in-flight
counters, and the metrics digest.  Any diff here is a semantic change
to the serving layer (event ordering, scheme costs, shedding policy,
work-stealing, percentile math); regenerate the fixture only for an
intentional change, and review the numbers.
"""

import json
import os

import pytest

from repro.runtime import ServingConfig, simulate_serving

FIXTURE = os.path.join(os.path.dirname(__file__), "golden_serving.json")


def load_fixture():
    with open(FIXTURE) as fh:
        return json.load(fh)


GOLDEN = load_fixture()


def replay(scheme: str, label: str):
    arrival, load = next((a, l) for (s_label, a, l)
                         in GOLDEN["scenarios"] if s_label == label)
    return simulate_serving(
        scheme, n_requests=GOLDEN["requests"], seed=GOLDEN["seed"],
        arrival=arrival, offered_load=load,
        config=ServingConfig(**GOLDEN["config"]))


@pytest.mark.parametrize("name", sorted(GOLDEN["runs"]))
def test_golden_run_bit_exact(name):
    scheme, label = name.split("/")
    expected = GOLDEN["runs"][name]
    metrics = replay(scheme, label)
    got = {field: getattr(metrics, field)
           for field in expected if field != "digest"}
    # compare field-by-field so a failure names the drifted counter
    for field, value in expected.items():
        if field == "digest":
            continue
        assert got[field] == value, (
            f"{name}: {field} drifted: {got[field]} != golden {value} "
            f"(regenerate with scripts/gen_golden_serving.py only if "
            f"this change is intentional)")
    assert metrics.digest() == expected["digest"]


def test_golden_covers_every_scheme_and_scenario():
    schemes = {name.split("/")[0] for name in GOLDEN["runs"]}
    labels = {name.split("/")[1] for name in GOLDEN["runs"]}
    assert schemes == {"hfi", "guard-pages", "mpk"}
    assert labels == {label for label, _, _ in GOLDEN["scenarios"]}


def test_golden_runs_are_accounted():
    """The fixture itself must respect the terminal-state partition."""
    for name, entry in GOLDEN["runs"].items():
        assert (entry["succeeded"] + entry["failed"] + entry["shed"]
                == entry["requests"]), name


def test_golden_exercises_interesting_paths():
    """A fixture that never sheds or steals would pin nothing worth
    pinning; guard against regenerating it into triviality."""
    assert any(e["shed"] > 0 for e in GOLDEN["runs"].values())
    assert any(e["steals"] > 0 for e in GOLDEN["runs"].values())
