"""Unit tests for the analysis helpers (stats + report rendering)."""

import os

import pytest

from repro.analysis import (
    emit,
    format_series,
    format_table,
    geomean,
    mean,
    median,
    normalize,
    pct_change,
    results_dir,
    speedup_pct,
)


class TestStats:
    def test_geomean_basics(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([1.0] * 10) == pytest.approx(1.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([])

    def test_geomean_below_arithmetic_mean(self):
        values = [0.5, 1.0, 2.0, 4.0]
        assert geomean(values) < mean(values)

    def test_median(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5

    def test_normalize(self):
        out = normalize({"a": 10.0, "b": 20.0}, baseline="a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_pct_change_and_speedup(self):
        assert pct_change(110, 100) == pytest.approx(10.0)
        assert speedup_pct(90, 100) == pytest.approx(10.0)
        assert speedup_pct(110, 100) == pytest.approx(-10.0)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"],
                            [("x", 1), ("longer", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all(len(l) >= 4 for l in lines[2:])

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_format_series(self):
        text = format_series("s", ["x1", "x2"], [1.5, 2.5])
        assert text == "s: x1=1.50, x2=2.50"

    def test_emit_persists(self, capsys):
        emit("unittest_scratch", "hello table")
        assert "hello table" in capsys.readouterr().out
        path = os.path.join(results_dir(), "unittest_scratch.txt")
        with open(path) as fh:
            assert "hello table" in fh.read()
        os.remove(path)