"""Tests for the startup-economics model and the disassembler."""

import pytest

from repro.isa import Assembler, Imm, Mem, Reg, disassemble
from repro.params import MachineParams
from repro.runtime import StartupModel
from repro.wasm import GuardPagesStrategy, HfiStrategy, WasmRuntime
from repro.workloads.sightglass import minicsv


@pytest.fixture
def params():
    return MachineParams()


class TestStartupModel:
    def test_wasm_instance_is_tens_of_us_not_ms(self, params):
        """§1: Wasm instances spin up in ~30 us, containers/VMs in
        tens-to-hundreds of ms."""
        model = StartupModel(params)
        cold = model.wasm_instance_us(HfiStrategy())
        assert cold < 100.0                # well under a millisecond
        assert model.compare(HfiStrategy())["container"] > 10_000.0

    def test_pooled_faster_than_cold(self, params):
        model = StartupModel(params)
        assert model.wasm_instance_us(HfiStrategy(), pooled=True) \
            < model.wasm_instance_us(HfiStrategy())

    def test_ordering_of_mechanisms(self, params):
        model = StartupModel(params)
        table = model.compare(HfiStrategy())
        assert (table["wasm-instance-pooled"]
                < table["wasm-instance-cold"]
                < table["process"]
                < table["container"]
                <= table["microvm"])

    def test_advantage_vs_container_is_orders_of_magnitude(self, params):
        model = StartupModel(params)
        assert model.advantage(HfiStrategy(), versus="container") > 100

    def test_guard_scheme_reservation_costs_more(self, params):
        model = StartupModel(params)
        assert (model.wasm_instance_cycles(GuardPagesStrategy())
                >= model.wasm_instance_cycles(HfiStrategy()))


class TestDisassembler:
    def _program(self):
        asm = Assembler(base=0x1000)
        asm.mov(Reg.RAX, Imm(5))
        asm.label("loop")
        asm.hmov(0, Reg.RBX, Mem(index=Reg.RAX, scale=8))
        asm.dec(Reg.RAX)
        asm.jne("loop")
        asm.hlt()
        return asm.assemble()

    def test_listing_contains_labels_and_addresses(self):
        text = disassemble(self._program())
        assert "loop:" in text
        assert "0x00001000" in text
        assert "hlt" in text

    def test_hmov_is_marked(self):
        text = disassemble(self._program())
        hmov_line = next(l for l in text.splitlines() if "hmov0" in l)
        assert " * " in hmov_line

    def test_branch_targets_symbolized(self):
        text = disassemble(self._program())
        jne_line = next(l for l in text.splitlines() if "jne" in l)
        assert "<loop>" in jne_line

    def test_window_selection(self):
        program = self._program()
        full = disassemble(program)
        windowed = disassemble(program, start=program.labels["loop"],
                               count=2)
        assert len(windowed.splitlines()) < len(full.splitlines())

    def test_compiled_module_disassembles(self):
        runtime = WasmRuntime()
        instance = runtime.instantiate(minicsv(1), HfiStrategy())
        text = instance.compiled.disassemble()
        assert "__entry:" in text
        assert "hfi_enter" in text
        assert "hmov0" in text

    def test_strategy_codegen_visible_in_listing(self):
        """The listings show exactly what each strategy adds around a
        memory access — the code-review story."""
        runtime = WasmRuntime()
        from repro.wasm import BoundsCheckStrategy
        instance = runtime.instantiate(minicsv(1), BoundsCheckStrategy())
        text = instance.compiled.disassemble()
        assert "lea" in text and "ja <__trap>" in text