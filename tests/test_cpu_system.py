"""System-level CPU behaviours: syscall variants, xsave/xrstor,
hfi_get_region, fault resumption, and robustness edges."""

import pytest

from repro.core import (
    ExplicitDataRegion,
    FaultCause,
    ImplicitCodeRegion,
    SandboxFlags,
)
from repro.core.encoding import decode_region, encode_region, encode_sandbox
from repro.cpu import Cpu
from repro.isa import Assembler, Imm, Mem, Opcode, Reg
from repro.os import AddressSpace, FileSystem, Kernel, Prot, Sys
from repro.params import MachineParams

CODE = 0x40_0000
DATA = 0x10_0000
DESC = 0x0E_0000


@pytest.fixture
def params():
    return MachineParams()


def machine(params, with_kernel=False):
    if with_kernel:
        kernel = Kernel(params, FileSystem({"f": b"abc"}))
        proc = kernel.spawn()
        space = proc.address_space
        cpu = Cpu(params, process=proc, kernel=kernel)
    else:
        space = AddressSpace(params)
        cpu = Cpu(params, memory=space)
        kernel = proc = None
    space.mmap(1 << 16, Prot.rw(), addr=DATA)
    space.mmap(1 << 12, Prot.rw(), addr=DESC)
    space.mmap(1 << 16, Prot.rw(), addr=0x30_0000)
    cpu.regs.write(Reg.RSP, 0x30_0000 + (1 << 16) - 64)
    return cpu, space, kernel, proc


class TestSyscallVariants:
    def test_kernel_syscall_via_cpu(self, params):
        cpu, space, kernel, proc = machine(params, with_kernel=True)
        asm = Assembler(base=CODE)
        asm.mov(Reg.RAX, Imm(int(Sys.GETPID)))
        asm.syscall()
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        assert cpu.regs.read(Reg.RAX) == proc.pid

    def test_int80_interposed_in_native_sandbox(self, params):
        cpu, space, *_ = machine(params)
        code = ImplicitCodeRegion.covering(CODE, 1 << 16)
        space.write_bytes(DESC, encode_region(code))
        space.write_bytes(DESC + 24, encode_sandbox(
            SandboxFlags(is_hybrid=False), exit_handler=0x40_8000))
        asm = Assembler(base=CODE)
        asm.mov(Reg.RDI, Imm(DESC))
        asm.hfi_set_region(0, Reg.RDI)
        asm.mov(Reg.RDI, Imm(DESC + 24))
        asm.hfi_enter(Reg.RDI)
        asm.int80()
        asm.hlt()
        handler = Assembler(base=0x40_8000)
        handler.hlt()
        program, hprog = asm.assemble(), handler.assemble()
        cpu.load_program(program)
        cpu.load_program(hprog)
        result = cpu.run(program.base)
        assert result.reason == "hlt"
        assert cpu.hfi.read_cause_msr() is FaultCause.INT80
        assert cpu.regs.rip >= 0x40_8000

    def test_syscall_without_kernel_still_charged(self, params):
        cpu, *_ = machine(params)
        asm = Assembler(base=CODE)
        asm.mov(Reg.RAX, Imm(39))
        asm.syscall()
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base)
        assert result.stats.cycles >= params.syscall_cycles


class TestXsaveXrstor:
    def test_roundtrip_restores_registers(self, params):
        cpu, space, *_ = machine(params)
        asm = Assembler(base=CODE)
        asm.mov(Reg.RBX, Imm(0x1111))
        asm.xsave(Mem(disp=DATA + 0x100))
        asm.mov(Reg.RBX, Imm(0x2222))
        asm.xrstor(Mem(disp=DATA + 0x100))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        assert cpu.regs.read(Reg.RBX) == 0x1111

    def test_xrstor_in_native_sandbox_faults(self, params):
        cpu, space, *_ = machine(params)
        code = ImplicitCodeRegion.covering(CODE, 1 << 16)
        space.write_bytes(DESC, encode_region(code))
        space.write_bytes(DESC + 24, encode_sandbox(
            SandboxFlags(is_hybrid=False)))
        asm = Assembler(base=CODE)
        asm.xsave(Mem(disp=DATA + 0x200))
        asm.mov(Reg.RDI, Imm(DESC))
        asm.hfi_set_region(0, Reg.RDI)
        asm.mov(Reg.RDI, Imm(DESC + 24))
        asm.hfi_enter(Reg.RDI)
        asm.xrstor(Mem(disp=DATA + 0x200))   # traps (§3.3.3)
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base)
        assert result.reason == "fault"
        assert result.fault.hfi_cause is FaultCause.XRSTOR_IN_SANDBOX

    def test_xrstor_from_bad_area_faults(self, params):
        cpu, *_ = machine(params)
        asm = Assembler(base=CODE)
        asm.xrstor(Mem(disp=DATA + 0x300))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        assert cpu.run(program.base).reason == "fault"


class TestHfiGetRegion:
    def test_get_region_writes_descriptor_back(self, params):
        cpu, space, *_ = machine(params)
        region = ExplicitDataRegion(0x10_0000, 1 << 16,
                                    permission_read=True,
                                    permission_write=True)
        space.write_bytes(DESC, encode_region(region))
        asm = Assembler(base=CODE)
        asm.mov(Reg.RDI, Imm(DESC))
        asm.hfi_set_region(6, Reg.RDI)
        asm.mov(Reg.RSI, Imm(DESC + 64))
        asm.hfi_get_region(6, Reg.RSI)
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        got = decode_region(space.read_bytes(DESC + 64, 24))
        assert got == region

    def test_clear_region_on_cpu(self, params):
        cpu, space, *_ = machine(params)
        region = ExplicitDataRegion(0x10_0000, 1 << 16,
                                    permission_read=True)
        space.write_bytes(DESC, encode_region(region))
        asm = Assembler(base=CODE)
        asm.mov(Reg.RDI, Imm(DESC))
        asm.hfi_set_region(6, Reg.RDI)
        asm.hfi_clear_region(6)
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        assert cpu.hfi.regs.get(6) is None

    def test_clear_all_on_cpu(self, params):
        cpu, space, *_ = machine(params)
        region = ExplicitDataRegion(0x10_0000, 1 << 16,
                                    permission_read=True)
        space.write_bytes(DESC, encode_region(region))
        asm = Assembler(base=CODE)
        asm.mov(Reg.RDI, Imm(DESC))
        asm.hfi_set_region(6, Reg.RDI)
        asm.hfi_clear_all_regions()
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.run(program.base)
        assert all(cpu.hfi.regs.get(i) is None for i in range(10))


class TestFaultResumption:
    def test_runtime_can_resume_after_fault(self, params):
        """Models a SIGSEGV handler that recovers control (§3.3.2)."""
        cpu, space, *_ = machine(params)
        asm = Assembler(base=CODE)
        asm.mov(Reg.RBX, Imm(0x66_0000))    # unmapped
        asm.mov(Reg.RAX, Mem(base=Reg.RBX))
        asm.hlt()
        asm.label("recover")
        asm.mov(Reg.RAX, Imm(0))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        cpu.fault_resume_address = program.labels["recover"]
        result = cpu.run(program.base)
        assert result.reason == "hlt"
        assert cpu.stats.page_faults == 1
        assert cpu.regs.rip >= program.labels["recover"]


class TestRobustness:
    def test_unknown_instruction_raises(self, params):
        cpu, *_ = machine(params)
        from repro.isa.instruction import Instruction
        cpu._code[CODE] = Instruction(Opcode.WRPKRU)  # fine
        # an opcode with no dispatch arm would raise NotImplementedError;
        # all current opcodes are implemented:
        for opcode in Opcode:
            assert opcode is not None

    def test_division_by_zero_is_a_fault(self, params):
        cpu, *_ = machine(params)
        asm = Assembler(base=CODE)
        asm.mov(Reg.RAX, Imm(10))
        asm.mov(Reg.RBX, Imm(0))
        asm.idiv(Reg.RAX, Reg.RBX)
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        assert cpu.run(program.base).reason == "fault"

    def test_run_off_the_end_reports_no_instruction(self, params):
        cpu, *_ = machine(params)
        asm = Assembler(base=CODE)
        asm.nop()
        program = asm.assemble()
        cpu.load_program(program)
        assert cpu.run(program.base).reason == "no_instruction"

    def test_instruction_limit(self, params):
        cpu, *_ = machine(params)
        asm = Assembler(base=CODE)
        asm.label("spin")
        asm.jmp("spin")
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base, max_instructions=100)
        assert result.reason == "instruction_limit"