"""Branch predictor structures: PHT, BTB, and RSB edge cases.

The predictors drive both timing models (mispredict redirects) *and*
the speculation windows the §5.3 Spectre experiments ride on, so
their training, aliasing, capacity, and counter behavior is pinned
here independently of any CPU run:

* PHT: weakly-not-taken reset state, two-update hysteresis, counter
  saturation at both rails, (pc >> 2) index granularity and the
  aliasing it implies at ``size`` strides;
* BTB: LRU capacity eviction, refresh-on-predict, update-in-place for
  resident PCs, miss-equals-mispredict accounting;
* RSB: LIFO order, bounded depth dropping the *oldest* frame,
  underflow counting, and instance independence.
"""

import pytest

from repro.cpu.predictors import (
    BranchTargetBuffer,
    PatternHistoryTable,
    ReturnStackBuffer,
)


class TestPatternHistoryTable:
    def test_initial_state_weakly_not_taken(self):
        pht = PatternHistoryTable()
        assert pht.predict(0x400) is False
        # one taken update flips a weak counter straight to taken
        pht.update(0x400, taken=True)
        assert pht.predict(0x400) is True

    def test_training_hysteresis(self):
        """A saturated-taken counter survives one not-taken outcome."""
        pht = PatternHistoryTable()
        for _ in range(4):
            pht.update(0x400, taken=True)
        pht.update(0x400, taken=False)
        assert pht.predict(0x400) is True   # 3 -> 2: still taken
        pht.update(0x400, taken=False)
        assert pht.predict(0x400) is False  # 2 -> 1: flipped

    def test_counters_saturate_at_both_rails(self):
        pht = PatternHistoryTable(size=4)
        for _ in range(40):
            pht.update(0x10, taken=True)
        assert pht._counters[pht._index(0x10)] == 3
        for _ in range(40):
            pht.update(0x10, taken=False)
        assert pht._counters[pht._index(0x10)] == 0

    def test_index_granularity_word_aligned(self):
        """PCs within the same 4-byte word share a counter; the next
        word gets its own."""
        pht = PatternHistoryTable()
        for _ in range(2):
            pht.update(0x400, taken=True)
        assert pht.predict(0x403) is True   # same word: aliased
        assert pht.predict(0x404) is False  # next word: untrained

    def test_aliasing_at_table_stride(self):
        """PCs ``4 * size`` apart collide — the Spectre-PHT training
        primitive: an attacker branch trains a victim branch's
        counter."""
        pht = PatternHistoryTable(size=64)
        attacker, victim = 0x1000, 0x1000 + 4 * 64
        for _ in range(2):
            pht.update(attacker, taken=True)
        assert pht.predict(victim) is True

    def test_stats_accounting(self):
        pht = PatternHistoryTable(size=8)
        pht.predict(0)
        pht.update(0, taken=True)    # predicted not-taken: mispredict
        pht.update(0, taken=True)    # now weakly taken... still counts
        stats = pht.stats()
        assert stats.component == "pht"
        assert stats.lookups == 1
        assert stats.updates == 2
        assert stats.mispredicts == 1
        assert stats.correct == 1
        assert stats.capacity == 8


class TestBranchTargetBuffer:
    def test_unknown_pc_predicts_none(self):
        btb = BranchTargetBuffer()
        assert btb.predict(0x400) is None

    def test_update_then_predict(self):
        btb = BranchTargetBuffer()
        btb.update(0x400, 0x9000)
        assert btb.predict(0x400) == 0x9000

    def test_capacity_evicts_least_recently_used(self):
        btb = BranchTargetBuffer(size=2)
        btb.update(0x10, 0xA)
        btb.update(0x20, 0xB)
        btb.update(0x30, 0xC)            # evicts 0x10
        assert btb.predict(0x10) is None
        assert btb.predict(0x20) == 0xB
        assert btb.predict(0x30) == 0xC

    def test_predict_refreshes_lru_position(self):
        btb = BranchTargetBuffer(size=2)
        btb.update(0x10, 0xA)
        btb.update(0x20, 0xB)
        btb.predict(0x10)                # 0x20 is now the LRU victim
        btb.update(0x30, 0xC)
        assert btb.predict(0x20) is None
        assert btb.predict(0x10) == 0xA

    def test_update_resident_pc_does_not_evict(self):
        btb = BranchTargetBuffer(size=2)
        btb.update(0x10, 0xA)
        btb.update(0x20, 0xB)
        btb.update(0x10, 0xAA)           # retarget in place
        assert btb.predict(0x20) == 0xB
        assert btb.predict(0x10) == 0xAA
        assert btb.stats().entries == 2

    def test_miss_counts_as_mispredict(self):
        """Both a cold miss and a stale target cost a front-end
        redirect, and the stats say so."""
        btb = BranchTargetBuffer()
        btb.update(0x400, 0x9000)        # cold: mispredict
        btb.update(0x400, 0x9000)        # same target: correct
        btb.update(0x400, 0x8000)        # retarget: mispredict
        stats = btb.stats()
        assert stats.mispredicts == 2
        assert stats.correct == 1
        assert stats.updates == 3


class TestReturnStackBuffer:
    def test_lifo_order(self):
        rsb = ReturnStackBuffer()
        rsb.push(0x100)
        rsb.push(0x200)
        assert rsb.pop() == 0x200
        assert rsb.pop() == 0x100

    def test_overflow_drops_oldest_frame(self):
        rsb = ReturnStackBuffer(depth=2)
        rsb.push(0x100)
        rsb.push(0x200)
        rsb.push(0x300)                  # drops 0x100
        assert rsb.pop() == 0x300
        assert rsb.pop() == 0x200
        assert rsb.pop() is None

    def test_underflow_counted_and_returns_none(self):
        rsb = ReturnStackBuffer()
        assert rsb.pop() is None
        assert rsb.pop() is None
        stats = rsb.stats()
        assert stats.underflows == 2
        assert stats.lookups == 2
        assert stats.updates == 0

    def test_stats_entries_track_stack(self):
        rsb = ReturnStackBuffer(depth=4)
        for addr in (1, 2, 3):
            rsb.push(addr)
        assert rsb.stats().entries == 3
        assert rsb.stats().capacity == 4
        rsb.pop()
        assert rsb.stats().entries == 2

    def test_instances_are_independent(self):
        a, b = ReturnStackBuffer(), ReturnStackBuffer()
        a.push(0x1)
        assert b.pop() is None
        assert a.pop() == 0x1
