"""Unit tests for the Intel MPK baseline (paper §6.4.2, §7)."""

import pytest

from repro.cpu import Cpu
from repro.isa import Assembler, Imm, Mem, Reg
from repro.mpk import (
    AD,
    USABLE_KEYS,
    MpkDomainManager,
    MpkError,
    MpkSandboxSwitcher,
    pkru_allowing,
    pkru_read_only,
)
from repro.os import AddressSpace, Kernel, Prot
from repro.params import MachineParams


@pytest.fixture
def params():
    return MachineParams()


class TestKeyAllocation:
    def test_fifteen_usable_keys(self, params):
        manager = MpkDomainManager(AddressSpace(params), params)
        domains = [manager.pkey_alloc(f"d{i}") for i in range(USABLE_KEYS)]
        assert len({d.key for d in domains}) == 15
        with pytest.raises(MpkError):
            manager.pkey_alloc("one-too-many")

    def test_pkey_mprotect_tags_vma(self, params):
        space = AddressSpace(params)
        manager = MpkDomainManager(space, params)
        domain = manager.pkey_alloc("crypto")
        addr = space.mmap(8192, Prot.rw())
        cost = manager.pkey_mprotect(domain, addr, 4096)
        assert cost >= params.syscall_cycles
        assert space.find_vma(addr).pkey == domain.key
        assert space.find_vma(addr + 4096).pkey == 0


class TestPkruComposition:
    def test_allowing_grants_only_listed(self):
        pkru = pkru_allowing({3})
        assert (pkru >> (2 * 3)) & AD == 0
        assert (pkru >> (2 * 5)) & AD == AD
        assert (pkru >> 0) & AD == 0        # key 0 always allowed

    def test_read_only_sets_write_disable(self):
        pkru = pkru_read_only({2}, writable=set())
        assert (pkru >> 4) & 0b11 == 0b10   # WD only
        pkru = pkru_read_only({2}, writable={2})
        assert (pkru >> 4) & 0b11 == 0


class TestEnforcementOnCpu:
    def _machine(self, params):
        kernel = Kernel(params)
        proc = kernel.spawn()
        space = proc.address_space
        space.mmap(1 << 16, Prot.rw(), addr=0x10_0000, name="open")
        space.mmap(1 << 16, Prot.rw(), addr=0x20_0000, name="vault")
        manager = MpkDomainManager(space, params)
        vault = manager.pkey_alloc("vault")
        manager.pkey_mprotect(vault, 0x20_0000, 1 << 16)
        cpu = Cpu(params, process=proc, kernel=kernel)
        return cpu, proc, vault

    def test_access_denied_outside_domain(self, params):
        cpu, proc, vault = self._machine(params)
        proc.pkru = pkru_allowing(set())      # vault key not granted
        asm = Assembler()
        asm.mov(Reg.RBX, Imm(0x20_0000))
        asm.mov(Reg.RAX, Mem(base=Reg.RBX))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        result = cpu.run(program.base)
        assert result.reason == "fault"
        assert "pkey" in result.fault.detail

    def test_access_allowed_inside_domain(self, params):
        cpu, proc, vault = self._machine(params)
        proc.pkru = pkru_allowing({vault.key})
        asm = Assembler()
        asm.mov(Reg.RBX, Imm(0x20_0000))
        asm.mov(Reg.RAX, Mem(base=Reg.RBX))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        assert cpu.run(program.base).reason == "hlt"

    def test_wrpkru_switches_domain_from_userspace(self, params):
        """The MPK property ERIM exploits: ring-3 domain switching."""
        cpu, proc, vault = self._machine(params)
        proc.pkru = pkru_allowing(set())
        asm = Assembler()
        asm.mov(Reg.RAX, Imm(pkru_allowing({vault.key})))
        asm.wrpkru()
        asm.mov(Reg.RBX, Imm(0x20_0000))
        asm.mov(Reg.RCX, Mem(base=Reg.RBX))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        assert cpu.run(program.base).reason == "hlt"
        assert cpu.stats.cycles > 0

    def test_untagged_memory_unaffected(self, params):
        cpu, proc, vault = self._machine(params)
        proc.pkru = pkru_allowing(set())
        asm = Assembler()
        asm.mov(Reg.RBX, Imm(0x10_0000))
        asm.mov(Reg.RAX, Mem(base=Reg.RBX))
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        assert cpu.run(program.base).reason == "hlt"


class TestSwitcher:
    def test_switch_costs_accrue(self, params):
        kernel = Kernel(params)
        proc = kernel.spawn()
        switcher = MpkSandboxSwitcher(proc, params)
        cost = switcher.enter({3})
        cost += switcher.exit()
        assert cost == 2 * switcher.switch_cost()
        assert switcher.switches == 2

    def test_mpk_switch_cheaper_than_hfi_serialized(self, params):
        """Fig. 5's explanation: HFI transitions also move metadata."""
        from repro.runtime import TransitionModel
        model = TransitionModel(params)
        hfi = (model.hfi_enter_cost(serialized=True)
               + model.hfi_exit_cost(serialized=True))
        kernel = Kernel(params)
        switcher = MpkSandboxSwitcher(kernel.spawn(), params)
        assert 2 * switcher.switch_cost() < hfi