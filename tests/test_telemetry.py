"""Tests for the unified telemetry subsystem (``repro.telemetry``):
the metrics registry, span nesting, per-sandbox attribution, null-sink
parity, and the uniform ``.stats()`` component API."""

import copy

import pytest

from repro.cpu import Cache, CacheHierarchy, Cpu, Tlb
from repro.cpu.predictors import (
    BranchTargetBuffer,
    PatternHistoryTable,
    ReturnStackBuffer,
)
from repro.params import MachineParams
from repro.runtime import (
    InstancePool,
    InvokeResult,
    SandboxManager,
    TransitionKind,
)
from repro.telemetry import (
    NULL_TELEMETRY,
    CycleAccumulator,
    MetricsRegistry,
    NullTelemetry,
    SpanLog,
    Telemetry,
    coalesce,
    to_json,
)
from repro.wasm import HfiStrategy, WasmRuntime, make_strategy
from repro.workloads import SPEC_BENCHMARKS


@pytest.fixture
def params():
    return MachineParams()


class TestRegistry:
    def test_counter_get_or_create_and_add(self):
        reg = MetricsRegistry()
        reg.counter("a.b").add()
        reg.counter("a.b").add(4)
        assert reg.counter("a.b").value == 5
        assert reg.as_dict()["counters"] == {"a.b": 5}

    def test_histogram_buckets_and_mean(self):
        reg = MetricsRegistry()
        for v in (1, 2, 3, 100):
            reg.histogram("lat").observe(v)
        h = reg.histogram("lat")
        assert h.count == 4
        assert h.mean == pytest.approx(26.5)
        assert h.min == 1 and h.max == 100

    def test_cycle_accumulator_by_key(self):
        acc = CycleAccumulator("x")
        acc.add(10, key=1)
        acc.add(5, key=1)
        acc.add(7, key=None)
        assert acc.total == 22
        assert acc.by_key == {1: 15, None: 7}

    def test_telemetry_count_and_snapshot(self):
        tel = Telemetry()
        tel.count("ev")
        tel.count("ev", 2)
        tel.observe("h", 8)
        tel.add_cycles("c", 100, sandbox_id=3)
        snap = tel.snapshot()
        assert snap["counters"]["ev"] == 3
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["cycles"]["c"]["by_key"] == {"3": 100}

    def test_reset(self):
        tel = Telemetry()
        tel.count("ev")
        tel.begin_span("s", 0)
        tel.reset()
        snap = tel.snapshot()
        assert snap["counters"] == {}
        assert snap["spans"] == []


class TestSpans:
    def test_nesting_and_parents(self):
        log = SpanLog()
        outer = log.begin("run", 0)
        inner = log.begin("sandbox", 10, sandbox_id=7)
        log.end(20)
        log.end(30)
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1 and outer.depth == 0
        assert inner.duration == 10 and outer.duration == 30

    def test_sandbox_id_inherited_from_parent(self):
        log = SpanLog()
        log.begin("sandbox", 0, sandbox_id=4)
        child = log.begin("syscall", 5)
        assert child.sandbox_id == 4

    def test_named_end_closes_skipped_inner_spans(self):
        log = SpanLog()
        log.begin("run", 0)
        inner = log.begin("sandbox", 10)
        log.end(50, name="run")          # fault path skipped the exit
        assert inner.end_cycle == 50
        assert log.depth == 0

    def test_named_end_missing_is_noop(self):
        log = SpanLog()
        span = log.begin("run", 0)
        log.end(10, name="nonexistent")
        assert span.open
        assert log.depth == 1

    def test_event_is_zero_duration(self):
        log = SpanLog()
        ev = log.event("syscall", 42, nr=1)
        assert ev.duration == 0
        assert log.depth == 0

    def test_capacity_drops(self):
        log = SpanLog(capacity=2)
        log.event("a", 0)
        log.event("b", 1)
        assert log.event("c", 2) is None
        assert log.dropped == 1

    def test_sandbox_lifecycle_spans_nest_under_run(self, params):
        """hfi_enter/exit in simulated code open/close a span inside
        the cpu.run span, carrying transition attributes."""
        tel = Telemetry()
        runtime = WasmRuntime(params)
        runtime.cpu.attach_telemetry(tel)
        module = SPEC_BENCHMARKS["401.bzip2"](1)
        instance = runtime.instantiate(module, make_strategy("hfi"))
        result = runtime.run(instance)
        assert result.reason == "hlt"
        runs = tel.spans.named("cpu.run")
        boxes = tel.spans.named("hfi.sandbox")
        assert len(runs) == 1
        assert boxes, "expected at least one sandbox span"
        for box in boxes:
            assert box.parent_id == runs[0].span_id
            assert box.duration is not None and box.duration > 0
        assert tel.registry.counter("cpu.hfi_enter").value >= 1
        assert tel.registry.counter("cpu.hfi_exit").value >= 1


class TestAttribution:
    def test_attribution_sums_to_manager_total(self, params):
        tel = Telemetry()
        manager = SandboxManager(params, telemetry=tel)
        handles = [manager.create_sandbox(heap_bytes=1 << 18)
                   for _ in range(3)]
        for i, handle in enumerate(handles * 4):
            manager.invoke(handle, service_cycles=1_000 * (i + 1))
        manager.grow_heap(handles[1], 1 << 20)
        manager.destroy_sandbox(handles[2])
        attribution = tel.attribution()
        assert sum(attribution.values()) == manager.total_cycles
        assert set(attribution) == {1, 2, 3}
        assert all(v > 0 for v in attribution.values())

    def test_attribution_matches_handle_cycles(self, params):
        tel = Telemetry()
        manager = SandboxManager(params, telemetry=tel)
        handle = manager.create_sandbox(heap_bytes=1 << 18)
        manager.invoke(handle, service_cycles=5_000)
        assert tel.attribution()[handle.sandbox_id] == handle.cycles

    def test_pooled_invocation_attributes_recycle_cost(self, params):
        tel = Telemetry()
        manager = SandboxManager(params, telemetry=tel)
        handle = manager.create_sandbox(heap_bytes=1 << 18)
        pool = InstancePool(manager.space, HfiStrategy(), slots=2,
                            heap_bytes=1 << 18, params=params,
                            telemetry=tel)
        result = manager.invoke_pooled(handle, pool, 2_000,
                                       TransitionKind.ZERO_COST)
        assert result.slot_index is not None
        assert result.recycle_cycles > 0
        assert pool.available == 2
        assert sum(tel.attribution().values()) == manager.total_cycles


class TestNullSinkParity:
    def _run(self, params, telemetry):
        runtime = WasmRuntime(params)
        if telemetry is not None:
            runtime.cpu.attach_telemetry(telemetry)
        module = SPEC_BENCHMARKS["401.bzip2"](1)
        instance = runtime.instantiate(module, make_strategy("hfi"))
        return runtime.run(instance)

    def test_cycle_counts_identical_with_and_without_sink(self, params):
        """Telemetry must never feed back into the simulation: cycle
        and instruction counts are bit-identical either way."""
        off = self._run(params, None)
        on = self._run(params, Telemetry())
        assert on.stats.cycles == off.stats.cycles
        assert on.stats.instructions == off.stats.instructions
        assert on.stats.mispredicts == off.stats.mispredicts

    def test_manager_totals_identical(self, params):
        def drive(tel):
            manager = SandboxManager(params, telemetry=tel)
            h = manager.create_sandbox(heap_bytes=1 << 18)
            for _ in range(5):
                manager.invoke(h, service_cycles=777,
                               transition=TransitionKind.SPRINGBOARD)
            return manager.total_cycles
        assert drive(None) == drive(Telemetry())

    def test_null_sink_is_inert_and_shared(self):
        assert coalesce(None) is NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled
        NULL_TELEMETRY.count("x")
        NULL_TELEMETRY.attribute(1, 100)
        NULL_TELEMETRY.begin_span("s", 0)
        assert NULL_TELEMETRY.snapshot()["counters"] == {}
        assert NULL_TELEMETRY.attribution() == {}

    def test_sinks_survive_deepcopy_as_identity(self):
        """The CPU deep-copies HfiState around speculation windows; a
        sink reached from any copied object must stay shared."""
        tel = Telemetry()
        assert copy.deepcopy(tel) is tel
        assert copy.copy(tel) is tel
        assert copy.deepcopy(NULL_TELEMETRY) is NULL_TELEMETRY


class TestUniformStats:
    def test_cache_stats_snapshot(self):
        cache = Cache(sets=4, ways=2, name="l1d")
        cache.access(0x1000)
        cache.access(0x1000)
        cache.access(0x8000)
        snap = cache.stats()
        assert snap.hits == 1
        assert snap.misses == 2
        assert snap.accesses == 3
        assert snap.component == "l1d"

    def test_cache_legacy_readthrough_removed(self):
        """PR-1's StatsAccessor shim (``cache.stats.hits``) is gone:
        ``stats`` is a plain method now, and the snapshot it returns is
        detached from the live counters."""
        cache = Cache(sets=4, ways=2, name="l1d")
        cache.access(0x1000)
        with pytest.raises(AttributeError):
            cache.stats.hits
        snap = cache.stats()
        cache.access(0x1000)
        assert snap.misses == 1 and snap.hits == 0   # frozen in time

    def test_tlb_stats_snapshot(self, params):
        tlb = Tlb(params)
        tlb.access(0x1000)
        tlb.access(0x1000)
        snap = tlb.stats()
        assert snap.hits == 1 and snap.misses == 1
        assert snap.accesses == 2

    def test_tlb_legacy_attributes_removed(self, params):
        """The deprecated ``tlb.hits``/``tlb.misses`` raw-counter
        properties were removed with the shim layer."""
        tlb = Tlb(params)
        tlb.access(0x1000)
        with pytest.raises(AttributeError):
            tlb.hits
        with pytest.raises(AttributeError):
            tlb.misses
        assert tlb.stats().misses == 1

    def test_predictor_stats_accounting(self):
        pht = PatternHistoryTable(size=16)
        pht.predict(0x40)
        pht.update(0x40, taken=True)    # init counter 1 -> not-taken
        pht.update(0x40, taken=True)    # counter 2 -> taken: correct
        snap = pht.stats()
        assert snap.lookups == 1
        assert snap.mispredicts == 1 and snap.correct == 1
        assert snap.accuracy == pytest.approx(0.5)

        btb = BranchTargetBuffer(size=4)
        btb.predict(0x100)
        btb.update(0x100, 0x200)        # cold miss -> mispredict
        btb.update(0x100, 0x200)        # now correct
        assert btb.stats().mispredicts == 1
        assert btb.stats().correct == 1

        rsb = ReturnStackBuffer(depth=2)
        rsb.pop()                       # empty -> underflow
        rsb.push(0x1)
        assert rsb.pop() == 0x1
        snap = rsb.stats()
        assert snap.underflows == 1
        assert snap.updates == 1 and snap.lookups == 2

    def test_hierarchy_and_manager_stats(self, params):
        hierarchy = CacheHierarchy(params)
        names = [s.component for s in hierarchy.stats()]
        assert names == ["l1d", "l1i", "l2"]

        manager = SandboxManager(params)
        handle = manager.create_sandbox(heap_bytes=1 << 18)
        manager.invoke(handle, service_cycles=100)
        snap = manager.stats()
        assert snap.sandboxes_created == 1
        assert snap.invocations == 1
        assert snap.attributed_cycles == manager.total_cycles
        assert snap.sandboxes[0].sandbox_id == handle.sandbox_id

    def test_component_collectors_in_snapshot(self, params):
        tel = Telemetry()
        cpu = Cpu(params, telemetry=tel)
        snap = tel.snapshot()
        assert {"l1d", "l1i", "l2", "dtlb", "pht", "btb",
                "rsb"} <= set(snap["components"])
        assert snap["components"]["l1d"]["component"] == "l1d"

    def test_as_dict_includes_properties(self):
        cache = Cache(sets=2, ways=1)
        cache.access(0x0)
        d = cache.stats().as_dict()
        assert d["accesses"] == 1
        assert "hit_rate" in d


class TestInvokeResult:
    def test_shape_and_int_compat(self, params):
        manager = SandboxManager(params)
        handle = manager.create_sandbox(heap_bytes=1 << 18)
        result = manager.invoke(handle, service_cycles=123)
        assert isinstance(result, InvokeResult)
        # Shares RunResult's field names (cycles is a property there).
        from repro.cpu.machine import RunResult
        for name in ("reason", "cycles", "fault"):
            assert hasattr(RunResult, name) or \
                name in RunResult.__dataclass_fields__
        assert result.reason == "hlt" and result.fault is None
        # Legacy int semantics.
        assert int(result) == result.cycles
        assert result == result.cycles
        assert result + 1 == result.cycles + 1
        assert 1 + result == result.cycles + 1
        assert result - 1 == result.cycles - 1
        assert result > 0 and result >= result.cycles

    def test_as_dict_round_trips_json(self, params):
        import json
        manager = SandboxManager(params)
        handle = manager.create_sandbox(heap_bytes=1 << 18)
        result = manager.invoke(handle, service_cycles=10)
        assert json.loads(json.dumps(result.as_dict()))["reason"] == "hlt"


class TestExport:
    def test_to_json_and_write(self, params, tmp_path):
        import json
        tel = Telemetry()
        manager = SandboxManager(params, telemetry=tel)
        handle = manager.create_sandbox(heap_bytes=1 << 18)
        manager.invoke(handle, service_cycles=50)
        parsed = json.loads(to_json(tel))
        assert parsed["counters"]["sandbox.invoke"] == 1
        from repro.telemetry import write_csv, write_json
        path = tmp_path / "tel.json"
        write_json(tel, str(path))
        assert json.loads(path.read_text())["counters"]
        write_csv(tel, str(tmp_path / "tel"))
        sandboxes = (tmp_path / "tel_sandboxes.csv").read_text()
        assert str(handle.sandbox_id) in sandboxes
