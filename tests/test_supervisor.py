"""Tests for the supervised serving loop (robustness layer).

Covers the recovery state machine — watchdog kills, quarantine,
retry/backoff, per-tenant circuit breaking, admission shedding — plus
the sandbox-manager hardening it rides on (typed ``SandboxError``,
``reap_all``, signal-delivered ``invoke_faulting``).
"""

import pytest

from repro.core import FaultCause
from repro.os.signals import Signal, SignalTable
from repro.params import MachineParams
from repro.runtime import (
    FaultKind,
    Injection,
    InstancePool,
    Priority,
    Request,
    SandboxError,
    SandboxManager,
    Supervisor,
    SupervisorConfig,
)
from repro.verify import check_pool
from repro.wasm import HfiStrategy


@pytest.fixture
def params():
    return MachineParams()


def build(params, slots=4, config=None, seed=0):
    manager = SandboxManager(params)
    pool = InstancePool(manager.space, HfiStrategy(), slots=slots,
                        heap_bytes=1 << 14, params=params,
                        batch_teardown=True)
    return manager, pool, Supervisor(manager, pool, config, seed=seed)


def requests(n, tenant="t0", service=40_000, spacing=10**7,
             priority=Priority.NORMAL):
    """Arrivals spaced far apart: no admission pressure by default."""
    return [Request(index=i, tenant=tenant, service_cycles=service,
                    arrival_cycle=i * spacing, priority=priority)
            for i in range(n)]


class FakeInjector:
    """Minimal chaos planner: one FaultKind per chosen request index."""

    def __init__(self, plan):
        self.plan = {index: Injection(injection_id=k, request_index=index,
                                      kind=kind)
                     for k, (index, kind) in enumerate(sorted(plan.items()))}

    def injection_for(self, index):
        return self.plan.get(index)

    def unaccounted(self):
        return [i for i in self.plan.values() if i.classified is None]


class TestSandboxHardening:
    def test_destroy_unknown_handle_raises_typed_error(self, params):
        manager = SandboxManager(params)
        handle = manager.create_sandbox(heap_bytes=1 << 14)
        manager.destroy_sandbox(handle)
        with pytest.raises(SandboxError):
            manager.destroy_sandbox(handle)

    def test_reap_all_destroys_every_live_sandbox(self, params):
        manager = SandboxManager(params)
        for _ in range(3):
            manager.create_sandbox(heap_bytes=1 << 14)
        assert manager.live_sandboxes == 3
        cost = manager.reap_all()
        assert cost > 0
        assert manager.live_sandboxes == 0
        assert manager.reap_all() == 0      # idempotent on empty

    def test_invoke_faulting_delivers_sigsegv_with_cause(self, params):
        table = SignalTable()
        manager = SandboxManager(params, signals=table)
        handle = manager.create_sandbox(heap_bytes=1 << 14)
        result = manager.invoke_faulting(
            handle, 10_000, FaultCause.DATA_PERMISSION, fault_addr=0x40)
        assert result.reason == "fault"
        assert result.cause is FaultCause.DATA_PERMISSION
        assert len(table.delivered) == 1
        info = table.delivered[0]
        assert info.signal is Signal.SIGSEGV
        assert info.fault_addr == 0x40
        assert FaultCause(info.hfi_cause) is FaultCause.DATA_PERMISSION

    def test_invoke_faulting_unknown_handle_raises(self, params):
        manager = SandboxManager(params)
        handle = manager.create_sandbox(heap_bytes=1 << 14)
        manager.destroy_sandbox(handle)
        with pytest.raises(SandboxError):
            manager.invoke_faulting(handle, 1_000)


class TestCleanServing:
    def test_all_requests_succeed_without_injection(self, params):
        _, pool, sup = build(params)
        outcomes = sup.serve(requests(12))
        assert [o.status for o in outcomes] == ["ok"] * 12
        assert sup.counters.succeeded == 12
        assert sup.counters.shed == 0
        assert check_pool(pool) == []

    def test_shutdown_leaves_no_leaks(self, params):
        manager, pool, sup = build(params)
        sup.serve(requests(8))
        sup.shutdown()
        assert manager.live_sandboxes == 0
        assert pool.available == len(pool.slots)
        assert check_pool(pool) == []

    def test_deterministic_given_seed(self, params):
        results = []
        for _ in range(2):
            _, _, sup = build(params, seed=7)
            injector = FakeInjector({2: FaultKind.GUEST_FAULT,
                                     5: FaultKind.TRANSIENT_KERNEL})
            outs = sup.serve(requests(8), injector)
            results.append([(o.status, o.attempts, o.cycles)
                            for o in outs])
        assert results[0] == results[1]


class TestRecoveryPaths:
    def test_transient_kernel_fault_is_retried_with_backoff(
            self, params):
        _, _, sup = build(params)
        injector = FakeInjector({1: FaultKind.TRANSIENT_KERNEL})
        outcomes = sup.serve(requests(3), injector)
        assert [o.status for o in outcomes] == ["ok"] * 3
        assert outcomes[1].attempts == 2
        assert injector.plan[1].classified == "retried"
        assert sup.counters.retried == 1
        assert sup.counters.backoff_cycles > 0

    def test_heap_oom_is_remediated_and_retried(self, params):
        _, pool, sup = build(params)
        injector = FakeInjector({0: FaultKind.HEAP_OOM})
        outcomes = sup.serve(requests(2), injector)
        assert [o.status for o in outcomes] == ["ok"] * 2
        assert injector.plan[0].classified == "retried"

    def test_hang_is_killed_by_the_watchdog(self, params):
        manager, pool, sup = build(params)
        injector = FakeInjector({1: FaultKind.GUEST_HANG})
        outcomes = sup.serve(requests(4), injector)
        assert [o.status for o in outcomes] == ["ok"] * 4
        assert injector.plan[1].classified == "killed"
        assert sup.counters.watchdog_kills == 1
        assert sup.counters.sandboxes_reaped >= 1
        # the killed attempt burned the full watchdog budget
        budget = sup._watchdog_budget(outcomes[1].request)
        assert outcomes[1].cycles > budget
        sup.shutdown()
        assert manager.live_sandboxes == 0
        assert pool.available == len(pool.slots)

    def test_guest_fault_quarantines_and_recovers(self, params):
        manager, pool, sup = build(params)
        injector = FakeInjector({0: FaultKind.GUEST_FAULT})
        outcomes = sup.serve(requests(3), injector)
        assert [o.status for o in outcomes] == ["ok"] * 3
        assert injector.plan[0].classified == "quarantined"
        assert sup.counters.quarantined == 1
        assert sup.counters.signals_handled == 1   # SIGSEGV arrived
        assert pool.quarantines >= 1
        sup.shutdown()
        assert pool.available == len(pool.slots)
        assert check_pool(pool) == []

    def test_slot_corruption_is_caught_by_the_canary(self, params):
        _, pool, sup = build(params)
        injector = FakeInjector({2: FaultKind.SLOT_CORRUPTION})
        outcomes = sup.serve(requests(4), injector)
        # the answer stands, but the slot never recycles unscrubbed
        assert [o.status for o in outcomes] == ["ok"] * 4
        assert injector.plan[2].classified == "quarantined"
        assert pool.quarantines == 1
        assert injector.unaccounted() == []

    def test_every_injection_is_classified_exactly_once(self, params):
        _, _, sup = build(params)
        injector = FakeInjector({0: FaultKind.TRANSIENT_KERNEL,
                                 1: FaultKind.GUEST_HANG,
                                 2: FaultKind.GUEST_FAULT,
                                 3: FaultKind.SLOT_CORRUPTION,
                                 4: FaultKind.HEAP_OOM})
        sup.serve(requests(6), injector)
        assert injector.unaccounted() == []
        kinds = {i.kind: i.classified for i in injector.plan.values()}
        assert kinds[FaultKind.TRANSIENT_KERNEL] == "retried"
        assert kinds[FaultKind.HEAP_OOM] == "retried"
        assert kinds[FaultKind.GUEST_HANG] == "killed"
        assert kinds[FaultKind.GUEST_FAULT] == "quarantined"
        assert kinds[FaultKind.SLOT_CORRUPTION] == "quarantined"


class TestCircuitBreaker:
    def test_consecutive_faults_trip_the_tenant_breaker(self, params):
        config = SupervisorConfig(breaker_threshold=3)
        _, _, sup = build(params, config=config)
        # slot corruption does not reset the breaker on success
        injector = FakeInjector({i: FaultKind.SLOT_CORRUPTION
                                 for i in range(3)})
        # tight arrivals: requests 3-4 land inside the cooldown window
        outcomes = sup.serve(requests(5, spacing=1), injector)
        assert sup.counters.breaker_trips == 1
        assert sup.breaker("t0").state == "open"
        # requests after the trip are shed while the circuit cools
        assert [o.status for o in outcomes][3:] == ["shed", "shed"]
        assert [o.detail for o in outcomes][3:] == ["breaker",
                                                    "breaker"]
        assert sup.counters.breaker_shed == 2

    def test_half_open_probe_closes_the_circuit(self, params):
        config = SupervisorConfig(breaker_threshold=2,
                                  breaker_cooldown_cycles=1_000)
        _, _, sup = build(params, config=config)
        injector = FakeInjector({0: FaultKind.SLOT_CORRUPTION,
                                 1: FaultKind.SLOT_CORRUPTION})
        sup.serve(requests(2), injector)
        assert sup.breaker("t0").state == "open"
        # a later clean request (past the cooldown) probes and closes
        late = Request(index=10, tenant="t0", service_cycles=40_000,
                       arrival_cycle=sup.clock + 10_000)
        outcome = sup.serve([late])[0]
        assert outcome.status == "ok"
        assert sup.breaker("t0").state == "closed"

    def test_breakers_are_per_tenant(self, params):
        config = SupervisorConfig(breaker_threshold=2)
        _, _, sup = build(params, config=config)
        bad = [Request(index=i, tenant="bad", service_cycles=40_000,
                       arrival_cycle=i) for i in range(3)]
        injector = FakeInjector({0: FaultKind.SLOT_CORRUPTION,
                                 1: FaultKind.SLOT_CORRUPTION})
        sup.serve(bad, injector)
        assert sup.breaker("bad").state == "open"
        good = Request(index=100, tenant="good", service_cycles=40_000,
                       arrival_cycle=sup.clock)
        assert sup.serve([good])[0].status == "ok"


class TestAdmissionControl:
    def test_overflow_sheds_lowest_priority_newest_first(self, params):
        config = SupervisorConfig(queue_limit=4)
        _, _, sup = build(params, config=config)
        stream = []
        for i in range(8):
            priority = (Priority.HIGH if i in (1, 6)
                        else Priority.LOW if i >= 4 else Priority.NORMAL)
            stream.append(Request(index=i, tenant=f"t{i}",
                                  service_cycles=30_000,
                                  priority=priority, arrival_cycle=0))
        outcomes = sup.serve(stream)
        by_index = {o.request.index: o for o in outcomes}
        shed = {i for i, o in by_index.items() if o.status == "shed"}
        assert len(shed) == 4
        # HIGH priority is never shed
        assert 1 not in shed and 6 not in shed
        # LOW goes before NORMAL, newest first within a priority
        assert {7, 5, 4}.issubset(shed)

    def test_burst_injection_is_accounted_as_shed(self, params):
        config = SupervisorConfig(queue_limit=4)
        _, _, sup = build(params, config=config)
        burst = Injection(injection_id=0, request_index=0,
                          kind=FaultKind.BURST_OVERLOAD)
        stream = requests(1) + [
            Request(index=10 + k, tenant="burst", service_cycles=5_000,
                    priority=Priority.LOW, arrival_cycle=0,
                    injection=burst)
            for k in range(8)]
        sup.serve(stream)
        assert burst.classified == "shed"
        assert sup.counters.shed > 0

    def test_capacity_exhaustion_sheds_instead_of_crashing(self, params):
        # 1-slot pool, and the slot is quarantined by a guest fault —
        # the next request finds no capacity and is shed, not crashed.
        manager, pool, sup = build(params, slots=1)
        injector = FakeInjector({0: FaultKind.GUEST_FAULT})
        outcomes = sup.serve(requests(2), injector)
        assert {o.status for o in outcomes} <= {"ok", "shed"}
        sup.shutdown()
        assert pool.available == 1
        assert manager.live_sandboxes == 0


class TestStats:
    def test_stats_snapshot_matches_counters(self, params):
        _, _, sup = build(params)
        injector = FakeInjector({0: FaultKind.GUEST_HANG})
        sup.serve(requests(4), injector)
        stats = sup.stats()
        assert stats.component == "supervisor"
        assert stats.requests == 4
        assert stats.succeeded == sup.counters.succeeded
        assert stats.watchdog_kills == 1
        assert 0.0 < stats.success_rate <= 1.0
        assert stats.goodput > 0.0


class TestSupervisorPolicyInServingLoop:
    """Satellite of the serving simulator: the supervisor's policies —
    shed ordering, the no-shed floor, fault-ledger accounting — must
    hold unchanged when driven by open-loop arrivals through the
    discrete-event loop (``repro.runtime.serving``) instead of the
    batch ``Supervisor.serve`` path.  Both paths share the actual
    policy code (``shed_victims``/``record_breaker_fault``), so a
    divergence here means the event loop wired it up wrong.
    """

    def drive(self, stream, injector=None, **config_kwargs):
        from repro.runtime import ServingConfig, ServingSimulator

        config_kwargs.setdefault("n_cores", 1)
        config_kwargs.setdefault("slots_per_shard", 8)
        config_kwargs.setdefault("max_inflight", 4)
        sim = ServingSimulator("hfi", ServingConfig(**config_kwargs),
                               MachineParams(), seed=0)
        metrics = sim.run(sorted(stream,
                                 key=lambda r: (r.arrival_cycle, r.index)),
                          injector=injector)
        return sim, metrics

    def burst_stream(self, n_base=4, burst_size=12):
        """Steady NORMAL traffic with one HIGH, then a LOW burst
        (more than admission can hold) at a single arrival instant —
        the chaos injector's burst-overload shape."""
        burst = Injection(injection_id=0, request_index=100,
                          kind=FaultKind.BURST_OVERLOAD)
        # light steady load: well within one core, so only the surge
        # creates admission pressure
        base = [Request(index=i, tenant=f"t{i}", service_cycles=10_000,
                        priority=Priority.NORMAL,
                        arrival_cycle=1000 + i * 50_000)
                for i in range(n_base)]
        vip = Request(index=50, tenant="vip", service_cycles=10_000,
                      priority=Priority.HIGH, arrival_cycle=5000)
        surge = [Request(index=100 + k, tenant="burst",
                         service_cycles=30_000, priority=Priority.LOW,
                         arrival_cycle=5000, injection=burst)
                 for k in range(burst_size)]
        return base + [vip] + surge, burst

    def test_burst_overload_sheds_and_accounts_ledger(self, params):
        stream, burst = self.burst_stream()
        sim, metrics = self.drive(stream)
        assert metrics.shed > 0
        assert burst.classified == "shed"    # ledger stamped once
        assert metrics.accounted

    def test_burst_sheds_lowest_priority_newest_first(self, params):
        stream, _ = self.burst_stream()
        sim, metrics = self.drive(stream)
        shed = [o.request for o in sim.outcomes if o.status == "shed"]
        assert shed
        # only the LOW surge is shed — never the HIGH, and the steady
        # NORMAL traffic survives burst pressure at these sizes
        assert all(r.priority == Priority.LOW for r in shed)
        # newest-first within the surge: the survivors of the burst
        # are the oldest indices, the shed ones the newest
        shed_burst = sorted(r.index for r in shed if r.index >= 100)
        ok_burst = sorted(o.request.index for o in sim.outcomes
                          if o.status == "ok" and o.request.index >= 100)
        assert ok_burst and shed_burst
        assert max(ok_burst) < min(shed_burst) or \
            set(shed_burst) == set(range(min(shed_burst),
                                         max(shed_burst) + 1))

    def test_high_priority_never_shed_by_burst(self, params):
        stream, _ = self.burst_stream(burst_size=20)
        sim, metrics = self.drive(stream, max_inflight=3)
        fates = {o.request.index: o.status for o in sim.outcomes}
        assert fates[50] == "ok"             # the HIGH rode it out
        assert metrics.shed >= 1

    def test_mixed_faults_through_event_loop_fully_accounted(self, params):
        """Every chaos FaultKind at once through the event loop: the
        ledger partition (retried/shed/quarantined/killed) is exact."""
        stream, burst = self.burst_stream()
        injector = FakeInjector({0: FaultKind.GUEST_FAULT,
                                 1: FaultKind.GUEST_HANG,
                                 2: FaultKind.TRANSIENT_KERNEL,
                                 3: FaultKind.HEAP_OOM})
        sim, metrics = self.drive(stream, injector=injector)
        assert injector.unaccounted() == []
        assert burst.classified == "shed"
        classifications = {i.classified
                           for i in injector.plan.values()}
        classifications.add(burst.classified)
        assert classifications <= {"retried", "shed", "quarantined",
                                   "killed"}
        assert metrics.accounted
        assert metrics.killed == 1 and metrics.retried == 2

    def test_batch_and_event_paths_agree_on_shed_policy(self, params):
        """The same one-instant overflow decided by both paths picks
        the same victims (both call shed_victims)."""
        stream = []
        for i in range(8):
            priority = (Priority.HIGH if i in (1, 6)
                        else Priority.LOW if i >= 4 else Priority.NORMAL)
            stream.append(Request(index=i, tenant=f"t{i}",
                                  service_cycles=30_000,
                                  priority=priority, arrival_cycle=0))
        config = SupervisorConfig(queue_limit=4)
        _, _, sup = build(params, config=config)
        batch_shed = {o.request.index for o in sup.serve(list(stream))
                      if o.status == "shed"}
        sim, _ = self.drive(list(stream), max_inflight=4)
        event_shed = {o.request.index for o in sim.outcomes
                      if o.status == "shed"}
        assert 1 not in event_shed and 6 not in event_shed
        assert event_shed == batch_shed
