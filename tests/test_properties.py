"""Property-based tests (hypothesis) on core invariants.

The most load-bearing one proves the paper's §4.2 claim: the single
32-bit-comparator hardware check is *equivalent* to the golden
base/bound semantics over the entire legal descriptor space — that is
the whole reason large/small region constraints exist.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    ExplicitDataRegion,
    HfiFault,
    ImplicitCodeRegion,
    ImplicitDataRegion,
    hmov_check_hardware,
    hmov_effective_address,
    implicit_data_check,
)
from repro.core.encoding import (
    decode_region,
    decode_sandbox,
    encode_region,
    encode_sandbox,
)
from repro.core.registers import SandboxFlags
from repro.isa import Assembler, Imm, Opcode, Reg, encoded_length
from repro.os import AddressSpace, Prot
from repro.params import MachineParams
from repro.runtime import percentile

KIB64 = 1 << 16


# ----------------------------------------------------------------------
# hmov comparator equivalence (§4.2)
# ----------------------------------------------------------------------
large_regions = st.builds(
    lambda base, bound: ExplicitDataRegion(
        base * KIB64, bound * KIB64, permission_read=True,
        is_large_region=True),
    base=st.integers(0, (1 << 31) - 1),
    bound=st.integers(1, 1 << 14),
).filter(lambda r: r.base_address + r.bound <= 1 << 48)

small_regions = st.tuples(
    st.integers(0, (1 << 15) - 1),      # 4 GiB block
    st.integers(0, (1 << 32) - 2),      # offset within the block
    st.integers(1, 1 << 32),            # bound
).filter(lambda t: t[1] + t[2] <= 1 << 32).map(
    lambda t: ExplicitDataRegion((t[0] << 32) + t[1], t[2],
                                 permission_read=True,
                                 is_large_region=False))


def _golden(region, index, scale, disp):
    try:
        hmov_effective_address(region, index, scale, disp, 1, False)
        return True
    except HfiFault:
        return False


@given(region=st.one_of(large_regions, small_regions),
       offset=st.integers(0, 1 << 50),
       scale=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=400, deadline=None)
def test_hmov_hardware_matches_golden_semantics(region, offset, scale):
    index = offset // scale
    disp = offset - index * scale
    hw_ok, hw_ea = hmov_check_hardware(region, index, scale, disp)
    assert hw_ok == _golden(region, index, scale, disp)
    if hw_ok:
        assert hw_ea == region.base_address + offset


@given(region=st.one_of(large_regions, small_regions),
       offset=st.integers(0, 1 << 50),
       scale=st.sampled_from([1, 2, 4, 8]),
       size=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=400, deadline=None)
def test_hmov_hardware_matches_golden_at_every_size(region, offset,
                                                    scale, size):
    """Regression: the comparator must test the access's *last* byte,
    so wide accesses straddling the bound are rejected exactly when the
    golden model rejects them."""
    index = offset // scale
    disp = offset - index * scale
    hw_ok, hw_ea = hmov_check_hardware(region, index, scale, disp, size)
    try:
        hmov_effective_address(region, index, scale, disp, size, False)
        golden_ok = True
    except HfiFault:
        golden_ok = False
    assert hw_ok == golden_ok
    if hw_ok:
        assert hw_ea == region.base_address + offset


@given(region=st.one_of(large_regions, small_regions),
       value=st.integers(1 << 63, (1 << 64) - 1),
       scale=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=100, deadline=None)
def test_hmov_negative_operands_always_rejected(region, value, scale):
    hw_ok, _ = hmov_check_hardware(region, value, scale, 0)
    assert not hw_ok
    assert not _golden(region, value, scale, 0)
    hw_ok, _ = hmov_check_hardware(region, 0, scale, value)
    assert not hw_ok


# ----------------------------------------------------------------------
# implicit regions
# ----------------------------------------------------------------------
@given(base=st.integers(0, 1 << 40), size=st.integers(1, 1 << 24))
@settings(max_examples=200, deadline=None)
def test_covering_region_contains_entire_range(base, size):
    region = ImplicitDataRegion.covering(base, size, read=True)
    assert region.matches(base)
    assert region.matches(base + size - 1)
    # Note: no multiplicative size bound holds — a 2-byte range
    # straddling a 2^k boundary needs a 2^(k+1) region.  That massive
    # over-cover at misaligned boundaries is exactly why HFI pairs
    # implicit regions with byte-granular explicit regions (§3.2).
    assert region.base_prefix <= base
    assert base + size <= region.base_prefix + region.size


@given(base=st.integers(0, 1 << 40), size=st.integers(1, 1 << 24),
       probe=st.integers(0, 1 << 41))
@settings(max_examples=200, deadline=None)
def test_implicit_match_is_prefix_consistent(base, size, probe):
    region = ImplicitCodeRegion.covering(base, size)
    inside = region.base_prefix <= probe <= region.base_prefix + region.lsb_mask
    assert region.matches(probe) == inside


@given(addr=st.integers(0, (1 << 30)), size=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=100, deadline=None)
def test_no_regions_means_no_access(addr, size):
    try:
        implicit_data_check([None] * 4, addr, size, False)
        assert False, "default-deny violated"
    except HfiFault:
        pass


# ----------------------------------------------------------------------
# descriptor encoding
# ----------------------------------------------------------------------
region_descriptors = st.one_of(
    large_regions,
    small_regions,
    st.builds(lambda b, k, r, w: ImplicitDataRegion(
        b & ~((1 << k) - 1), (1 << k) - 1, r, w),
        b=st.integers(0, 1 << 47), k=st.integers(0, 47),
        r=st.booleans(), w=st.booleans()),
    st.builds(lambda b, k, x: ImplicitCodeRegion(
        b & ~((1 << k) - 1), (1 << k) - 1, x),
        b=st.integers(0, 1 << 47), k=st.integers(0, 47),
        x=st.booleans()),
)


@given(region=region_descriptors)
@settings(max_examples=300, deadline=None)
def test_region_encoding_roundtrips(region):
    assert decode_region(encode_region(region)) == region


@given(hybrid=st.booleans(), serialized=st.booleans(),
       soe=st.booleans(), handler=st.integers(0, (1 << 64) - 1))
def test_sandbox_encoding_roundtrips(hybrid, serialized, soe, handler):
    flags = SandboxFlags(hybrid, serialized, soe)
    got, got_handler = decode_sandbox(encode_sandbox(flags, handler))
    assert got == flags and got_handler == handler


# ----------------------------------------------------------------------
# address space invariants
# ----------------------------------------------------------------------
@st.composite
def vm_operations(draw):
    ops = []
    for _ in range(draw(st.integers(1, 12))):
        kind = draw(st.sampled_from(["mmap", "mprotect", "munmap",
                                     "madvise"]))
        addr = draw(st.integers(0, 1 << 22)) * 4096 + 0x1_0000_0000
        length = draw(st.integers(1, 64)) * 4096
        ops.append((kind, addr, length))
    return ops


@given(ops=vm_operations())
@settings(max_examples=150, deadline=None)
def test_address_space_vmas_stay_sorted_and_disjoint(ops):
    space = AddressSpace(MachineParams())
    for kind, addr, length in ops:
        try:
            if kind == "mmap":
                space.mmap(length, Prot.rw(), addr=addr)
            elif kind == "mprotect":
                space.mprotect(addr, length, Prot.READ)
            elif kind == "munmap":
                space.munmap(addr, length)
            else:
                space.madvise_dontneed(addr, length)
        except Exception:
            pass  # invalid ops may fail; invariants must still hold
        vmas = space.vmas()
        for a, b in zip(vmas, vmas[1:]):
            assert a.start < a.end <= b.start < b.end


@given(data=st.binary(min_size=1, max_size=300),
       offset=st.integers(0, 10_000))
@settings(max_examples=100, deadline=None)
def test_address_space_write_read_roundtrip(data, offset):
    space = AddressSpace(MachineParams())
    base = space.mmap(16 * 4096, Prot.rw())
    space.write_bytes(base + offset, data)
    assert space.read_bytes(base + offset, len(data)) == data


# ----------------------------------------------------------------------
# assembler layout
# ----------------------------------------------------------------------
@given(n=st.integers(1, 60), seed=st.integers(0, 1 << 20))
@settings(max_examples=50, deadline=None)
def test_assembler_layout_contiguous_and_indexed(n, seed):
    import random
    rng = random.Random(seed)
    asm = Assembler(base=0x1000)
    for i in range(n):
        choice = rng.randrange(4)
        if choice == 0:
            asm.nop()
        elif choice == 1:
            asm.mov(Reg.RAX, Imm(rng.randrange(1 << 32)))
        elif choice == 2:
            asm.add(Reg.RBX, Imm(rng.randrange(256)))
        else:
            asm.push(Reg.RCX)
    asm.hlt()
    program = asm.assemble()
    addr = 0x1000
    for ins in program.instructions:
        assert ins.addr == addr
        assert program.at(addr) is ins
        assert ins.length == encoded_length(ins.opcode, ins.operands)
        addr += ins.length
    assert program.size == addr - 0x1000


# ----------------------------------------------------------------------
# misc
# ----------------------------------------------------------------------
@given(values=st.lists(st.floats(0, 1e6), min_size=1, max_size=200),
       pct=st.floats(1, 100))
def test_percentile_bounds(values, pct):
    p = percentile(values, pct)
    assert min(values) <= p <= max(values)