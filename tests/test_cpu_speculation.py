"""Speculative-execution semantics of the CPU model (paper §4.1).

These tests pin down the properties the security evaluation rests on:
wrong-path work is architecturally invisible, but cache state persists
— except when HFI refuses the access before the fill.

Victims use data-dependent addresses (the real Spectre gadget shape):
training runs exercise the path with in-bounds indices, then the
attack run flips the index out of bounds so the interesting access
happens *only* on the mispredicted path.
"""

import pytest

from repro.core import ImplicitCodeRegion, ImplicitDataRegion, SandboxFlags
from repro.core.encoding import encode_region, encode_sandbox
from repro.cpu import Cpu
from repro.isa import Assembler, Imm, Mem, Reg
from repro.os import AddressSpace, Prot
from repro.params import MachineParams

CODE = 0x40_0000
DATA = 0x10_0000
FAR = 0x20_0000        # mapped, outside any HFI region
PROBE = 0x28_0000
DESC = 0x0E_0000

#: x such that DATA + x*8 == FAR
OOB_X = (FAR - DATA) // 8


@pytest.fixture
def params():
    return MachineParams()


def fresh_cpu(params):
    space = AddressSpace(params)
    cpu = Cpu(params, memory=space)
    space.mmap(1 << 16, Prot.rw(), addr=DATA)
    space.mmap(1 << 20, Prot.rw(), addr=FAR)
    space.mmap(1 << 16, Prot.rw(), addr=0x30_0000)  # stack
    space.mmap(1 << 12, Prot.rw(), addr=DESC)
    cpu.regs.write(Reg.RSP, 0x30_0000 + (1 << 16) - 64)
    return cpu, space


def train_flush_attack(cpu, program, oob_x=OOB_X, flush=(FAR,)):
    for value in (0, 1, 2, 3):
        cpu.mem.write(DATA, value, 8)
        cpu.run(program.base, max_instructions=80)
    for addr in flush:
        cpu.caches.flush_line(addr)
    cpu.mem.write(DATA, oob_x, 8)
    cpu.run(program.base, max_instructions=80)


def bounds_check_prologue(asm):
    """mov rbx, [DATA]; cmp rbx, 4; jae skip"""
    asm.mov(Reg.RBX, Mem(disp=DATA))
    asm.cmp(Reg.RBX, Imm(4))
    asm.jae("skip")


class TestWrongPathInvisibility:
    def test_wrong_path_load_squashed_but_cache_fill_persists(
            self, params):
        cpu, space = fresh_cpu(params)
        asm = Assembler(base=CODE)
        bounds_check_prologue(asm)
        asm.mov(Reg.R8, Mem(base=Reg.RBX, scale=1, index=Reg.RBX,
                            disp=0))  # placeholder, replaced below
        asm.label("skip")
        asm.hlt()
        program = asm.assemble()
        # r8 = [DATA + rbx*8]
        program.instructions[3].operands = (
            Reg.R8, Mem(index=Reg.RBX, scale=8, disp=DATA))
        cpu.load_program(program)
        cpu.regs.write(Reg.R8, 0xDEAD)
        space.write(FAR, 0x1234, 8)
        train_flush_attack(cpu, program)
        # architectural: branch taken, load never committed
        assert cpu.regs.read(Reg.R8) != 0x1234
        # microarchitectural: the line was filled on the wrong path
        assert cpu.caches.l1d.lookup(FAR)
        assert cpu.stats.speculative_instructions > 0

    def test_wrong_path_store_never_commits(self, params):
        cpu, space = fresh_cpu(params)
        asm = Assembler(base=CODE)
        bounds_check_prologue(asm)
        asm.mov(Reg.RCX, Imm(7))
        asm.mov(Mem(index=Reg.RBX, scale=8, disp=DATA), Reg.RCX)
        asm.label("skip")
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        train_flush_attack(cpu, program)
        # the speculative store targeted FAR; memory must be untouched
        assert space.read(FAR) == 0
        # while the training stores (in-bounds path) did commit
        assert space.read(DATA + 3 * 8) == 7

    def test_speculative_store_to_load_forwarding(self, params):
        """A wrong-path load observes a wrong-path store through the
        store buffer, and transmits it via the cache."""
        cpu, space = fresh_cpu(params)
        oob_x = OOB_X + 0x41            # low byte 0x41 -> slot 65
        asm = Assembler(base=CODE)
        bounds_check_prologue(asm)
        asm.mov(Mem(index=Reg.RBX, scale=8, disp=DATA), Reg.RBX)
        asm.mov(Reg.RDX, Mem(index=Reg.RBX, scale=8, disp=DATA))
        asm.and_(Reg.RDX, Imm(0xFF))
        asm.shl(Reg.RDX, Imm(6))
        asm.mov(Reg.RSI, Mem(index=Reg.RDX, scale=1, disp=PROBE))
        asm.label("skip")
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        flush = [PROBE + slot * 64 for slot in range(256)]
        train_flush_attack(cpu, program, oob_x=oob_x, flush=flush)
        # forwarding: rdx got oob_x's low byte from the store buffer
        assert cpu.caches.l1d.lookup(PROBE + 0x41 * 64)
        # without forwarding it would have read 0 from memory
        assert not cpu.caches.l1d.lookup(PROBE)
        # and the store itself never committed
        assert space.read(DATA + oob_x * 8, 8) == 0


class TestSpeculationBarriers:
    def _victim(self, barrier):
        asm = Assembler(base=CODE)
        bounds_check_prologue(asm)
        if barrier == "lfence":
            asm.lfence()
        elif barrier == "cpuid":
            asm.cpuid()
        asm.mov(Reg.R8, Mem(index=Reg.RBX, scale=8, disp=DATA))
        asm.label("skip")
        asm.hlt()
        return asm.assemble()

    @pytest.mark.parametrize("barrier", ["lfence", "cpuid"])
    def test_serializing_instruction_stops_wrong_path(self, params,
                                                      barrier):
        cpu, _ = fresh_cpu(params)
        program = self._victim(barrier)
        cpu.load_program(program)
        train_flush_attack(cpu, program)
        assert not cpu.caches.l1d.lookup(FAR)

    def test_without_barrier_line_is_filled(self, params):
        cpu, _ = fresh_cpu(params)
        program = self._victim(None)
        cpu.load_program(program)
        train_flush_attack(cpu, program)
        assert cpu.caches.l1d.lookup(FAR)

    def test_speculation_window_is_bounded(self, params):
        small = params.with_overrides(speculation_window=4)
        cpu, _ = fresh_cpu(small)
        asm = Assembler(base=CODE)
        bounds_check_prologue(asm)
        for _ in range(6):               # 6 nops > window of 4
            asm.nop()
        asm.mov(Reg.R8, Mem(index=Reg.RBX, scale=8, disp=DATA))
        asm.label("skip")
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        train_flush_attack(cpu, program)
        assert not cpu.caches.l1d.lookup(FAR)


def _stage_hybrid(space, *, serialized, extra_sandbox=None):
    """Descriptors: code covers CODE block, data covers DATA only."""
    code = ImplicitCodeRegion.covering(CODE, 1 << 16)
    data = ImplicitDataRegion.covering(DATA, 1 << 16, read=True,
                                       write=True)
    space.write_bytes(DESC, encode_region(code))
    space.write_bytes(DESC + 24, encode_region(data))
    space.write_bytes(DESC + 48, encode_sandbox(SandboxFlags(
        is_hybrid=True, is_serialized=serialized)))
    if extra_sandbox is not None:
        space.write_bytes(DESC + 64, encode_sandbox(extra_sandbox))


def _enter_sequence(asm, sandbox_off=48):
    asm.mov(Reg.RDI, Imm(DESC))
    asm.hfi_set_region(0, Reg.RDI)
    asm.mov(Reg.RDI, Imm(DESC + 24))
    asm.hfi_set_region(2, Reg.RDI)
    asm.mov(Reg.RDI, Imm(DESC + sandbox_off))
    asm.hfi_enter(Reg.RDI)


class TestHfiUnderSpeculation:
    def test_hfi_blocks_speculative_oob_cache_fill(self, params):
        cpu, space = fresh_cpu(params)
        _stage_hybrid(space, serialized=True)
        asm = Assembler(base=CODE)
        _enter_sequence(asm)
        bounds_check_prologue(asm)
        asm.mov(Reg.R8, Mem(index=Reg.RBX, scale=8, disp=DATA))
        asm.label("skip")
        asm.hfi_exit()
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        train_flush_attack(cpu, program)
        assert not cpu.caches.l1d.lookup(FAR)
        assert cpu.stats.hfi_faults == 0   # the OOB was wrong-path only

    def _exit_gadget_victim(self, cpu, space, *, serialized):
        _stage_hybrid(space, serialized=serialized)
        asm = Assembler(base=CODE)
        _enter_sequence(asm)
        bounds_check_prologue(asm)
        asm.hfi_exit()                       # speculated past if unser.
        asm.mov(Reg.R8, Mem(index=Reg.RBX, scale=8, disp=DATA))
        asm.label("skip")
        asm.hfi_exit()
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        return program

    def test_unserialized_exit_lets_wrong_path_escape(self, params):
        """§3.4's motivating risk: a speculative, unserialized
        hfi_exit disables HFI on the wrong path."""
        cpu, space = fresh_cpu(params)
        program = self._exit_gadget_victim(cpu, space, serialized=False)
        train_flush_attack(cpu, program)
        assert cpu.caches.l1d.lookup(FAR)    # the attack worked

    def test_serialized_exit_blocks_the_escape(self, params):
        cpu, space = fresh_cpu(params)
        program = self._exit_gadget_victim(cpu, space, serialized=True)
        train_flush_attack(cpu, program)
        assert not cpu.caches.l1d.lookup(FAR)

    def test_switch_on_exit_keeps_protection_unserialized(self, params):
        """§4.5: with switch-on-exit, a speculative hfi_exit lands in
        the runtime's bank — still sandboxed — so the OOB faults."""
        cpu, space = fresh_cpu(params)
        _stage_hybrid(space, serialized=True, extra_sandbox=SandboxFlags(
            is_hybrid=True, switch_on_exit=True))
        asm = Assembler(base=CODE)
        _enter_sequence(asm)                  # runtime's own sandbox
        asm.mov(Reg.RDI, Imm(DESC + 64))
        asm.hfi_enter(Reg.RDI)                # child: switch-on-exit
        bounds_check_prologue(asm)
        asm.hfi_exit()                        # switches banks, stays on
        asm.mov(Reg.R8, Mem(index=Reg.RBX, scale=8, disp=DATA))
        asm.label("skip")
        asm.hfi_exit()
        asm.hfi_exit()
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        train_flush_attack(cpu, program)
        assert not cpu.caches.l1d.lookup(FAR)


class TestIndirectPrediction:
    def test_btb_wrong_target_fills_cache(self, params):
        cpu, space = fresh_cpu(params)
        asm = Assembler(base=CODE)
        asm.mov(Reg.R8, Mem(disp=DATA + 8))
        asm.jmp(Reg.R8)
        asm.label("gadget")
        asm.mov(Reg.R9, Mem(disp=FAR))
        asm.hlt()
        asm.label("benign")
        asm.hlt()
        program = asm.assemble()
        cpu.load_program(program)
        space.write(DATA + 8, program.labels["gadget"], 8)
        cpu.run(program.base, max_instructions=20)
        cpu.run(program.base, max_instructions=20)
        cpu.caches.flush_line(FAR)
        space.write(DATA + 8, program.labels["benign"], 8)
        cpu.run(program.base, max_instructions=20)
        assert cpu.caches.l1d.lookup(FAR)    # ran speculatively only

    def test_rsb_mismatch_counts_a_mispredict(self, params):
        cpu, space = fresh_cpu(params)
        asm = Assembler(base=CODE)
        asm.call("fn")
        asm.hlt()
        asm.label("fn")
        asm.mov(Reg.RAX, Imm(0))  # patched below
        asm.mov(Mem(base=Reg.RSP), Reg.RAX)
        asm.ret()
        asm.label("elsewhere")
        asm.hlt()
        program = asm.assemble()
        patched = program.labels["elsewhere"]
        program.instructions[2].operands = (Reg.RAX, Imm(patched))
        cpu.load_program(program)
        result = cpu.run(program.base, max_instructions=20)
        assert result.reason == "hlt"
        assert cpu.regs.rip >= patched
        assert cpu.stats.mispredicts >= 1