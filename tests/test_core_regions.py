"""Unit tests for HFI region descriptors (paper §3.2)."""

import pytest

from repro.core import (
    GIB4,
    KIB64,
    ExplicitDataRegion,
    ImplicitCodeRegion,
    ImplicitDataRegion,
    RegionError,
    region_class,
)


class TestImplicitRegions:
    def test_prefix_match_inside(self):
        region = ImplicitDataRegion(base_prefix=0x7FFF_0000,
                                    lsb_mask=0xFFFF,
                                    permission_read=True)
        assert region.matches(0x7FFF_0000)
        assert region.matches(0x7FFF_FFFF)
        assert not region.matches(0x7FFE_FFFF)
        assert not region.matches(0x8000_0000)

    def test_size_is_power_of_two(self):
        region = ImplicitDataRegion(0x1_0000, 0xFFFF)
        assert region.size == KIB64

    def test_mask_must_be_contiguous(self):
        with pytest.raises(RegionError):
            ImplicitDataRegion(base_prefix=0, lsb_mask=0b1010)

    def test_base_must_align_to_mask(self):
        with pytest.raises(RegionError):
            ImplicitDataRegion(base_prefix=0x1234, lsb_mask=0xFFFF)

    def test_covering_builds_smallest_region(self):
        region = ImplicitDataRegion.covering(0x40_1000, 0x3000)
        assert region.matches(0x40_1000)
        assert region.matches(0x40_3FFF)
        # smallest aligned power-of-two cover of [0x401000, 0x404000)
        assert region.size <= 0x8000

    def test_covering_handles_unaligned_base(self):
        region = ImplicitCodeRegion.covering(0xFFF0, 0x20)
        assert region.matches(0xFFF0)
        assert region.matches(0x1000F)

    def test_code_region_exec_permission(self):
        region = ImplicitCodeRegion(0x40_0000, 0xFFFF, permission_exec=True)
        assert region.permission_exec


class TestExplicitRegions:
    def test_large_region_alignment_enforced(self):
        with pytest.raises(RegionError):
            ExplicitDataRegion(base_address=0x1234, bound=KIB64,
                               is_large_region=True)
        with pytest.raises(RegionError):
            ExplicitDataRegion(base_address=0, bound=KIB64 + 1,
                               is_large_region=True)

    def test_large_region_max_bound(self):
        ExplicitDataRegion(0, 1 << 48, is_large_region=True)
        with pytest.raises(RegionError):
            ExplicitDataRegion(0, (1 << 48) + KIB64, is_large_region=True)

    def test_small_region_byte_granular(self):
        region = ExplicitDataRegion(base_address=0x1003, bound=37,
                                    is_large_region=False)
        assert region.end == 0x1003 + 37

    def test_small_region_cannot_span_4gib(self):
        # crosses the first 4 GiB boundary
        with pytest.raises(RegionError):
            ExplicitDataRegion(base_address=GIB4 - 8, bound=64,
                               is_large_region=False)
        # exactly touching the boundary from below is fine
        ExplicitDataRegion(base_address=GIB4 - 64, bound=64,
                           is_large_region=False)

    def test_small_region_max_bound(self):
        ExplicitDataRegion(0, GIB4, is_large_region=False)
        with pytest.raises(RegionError):
            ExplicitDataRegion(0, GIB4 + 1, is_large_region=False)

    def test_resize_preserves_everything_else(self):
        region = ExplicitDataRegion(0x10000, KIB64, permission_read=True,
                                    permission_write=True)
        grown = region.resize(4 * KIB64)
        assert grown.bound == 4 * KIB64
        assert grown.base_address == region.base_address
        assert grown.permission_write

    def test_resize_still_validates(self):
        region = ExplicitDataRegion(0x10000, KIB64)
        with pytest.raises(RegionError):
            region.resize(KIB64 + 3)  # large regions are 64K-granular


class TestRegionNumbering:
    def test_paper_appendix_numbering(self):
        assert region_class(0) == "code"
        assert region_class(1) == "code"
        assert region_class(2) == "implicit_data"
        assert region_class(5) == "implicit_data"
        assert region_class(6) == "explicit_data"
        assert region_class(9) == "explicit_data"

    def test_out_of_range(self):
        with pytest.raises(RegionError):
            region_class(10)
        with pytest.raises(RegionError):
            region_class(-1)
