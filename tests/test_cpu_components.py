"""Unit tests for CPU components: caches, TLB, branch predictors."""

from repro.cpu import (
    BranchTargetBuffer,
    Cache,
    CacheHierarchy,
    PatternHistoryTable,
    ReturnStackBuffer,
    Tlb,
)
from repro.params import MachineParams


class TestCache:
    def test_miss_then_hit(self):
        cache = Cache(sets=4, ways=2)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)

    def test_same_line_different_bytes_hit(self):
        cache = Cache(sets=4, ways=2, line_bytes=64)
        cache.access(0x1000)
        assert cache.access(0x103F)
        assert not cache.access(0x1040)  # next line

    def test_lru_eviction_within_set(self):
        cache = Cache(sets=1, ways=2, line_bytes=64)
        cache.access(0x0)
        cache.access(0x40)
        cache.access(0x80)        # evicts 0x0 (LRU)
        assert not cache.lookup(0x0)
        assert cache.lookup(0x40)
        assert cache.lookup(0x80)

    def test_access_refreshes_lru(self):
        cache = Cache(sets=1, ways=2, line_bytes=64)
        cache.access(0x0)
        cache.access(0x40)
        cache.access(0x0)         # refresh
        cache.access(0x80)        # now evicts 0x40
        assert cache.lookup(0x0)
        assert not cache.lookup(0x40)

    def test_lookup_does_not_fill(self):
        cache = Cache(sets=4, ways=2)
        assert not cache.lookup(0x1000)
        assert not cache.access(0x1000)   # still a miss

    def test_flush_line(self):
        cache = Cache(sets=4, ways=2)
        cache.access(0x2000)
        cache.flush_line(0x2000)
        assert not cache.lookup(0x2000)

    def test_sets_are_independent(self):
        cache = Cache(sets=2, ways=1, line_bytes=64)
        cache.access(0x0)        # set 0
        cache.access(0x40)       # set 1
        assert cache.lookup(0x0)
        assert cache.lookup(0x40)

    def test_stats(self):
        cache = Cache(sets=4, ways=2)
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x40)
        snap = cache.stats()
        assert snap.hits == 1
        assert snap.misses == 2
        assert 0 < snap.hit_rate < 1


class TestHierarchy:
    def test_latency_ordering(self):
        params = MachineParams()
        h = CacheHierarchy(params)
        cold = h.data_access(0x5000)
        warm = h.data_access(0x5000)
        assert cold == params.mem_cycles
        assert warm == params.l1d_hit_cycles

    def test_l2_backstop(self):
        """A line evicted from L1 but still in L2 costs the L2 latency."""
        params = MachineParams()
        h = CacheHierarchy(params)
        h.data_access(0x0)
        # blow L1 set 0 with conflicting lines (same set, many tags)
        set_stride = params.l1d_sets * params.line_bytes
        for i in range(1, params.l1d_ways + 1):
            h.data_access(i * set_stride)
        assert not h.l1d.lookup(0x0)
        assert h.l2.lookup(0x0)
        assert h.data_access(0x0) == params.l2_hit_cycles

    def test_flush_line_clears_both_levels(self):
        h = CacheHierarchy(MachineParams())
        h.data_access(0x40)
        h.flush_line(0x40)
        assert not h.l1d.lookup(0x40)
        assert not h.l2.lookup(0x40)


class TestTlb:
    def test_miss_then_hit(self):
        params = MachineParams()
        tlb = Tlb(params)
        assert tlb.access(0x1234) == params.dtlb_miss_cycles
        assert tlb.access(0x1FFF) == 0          # same page
        assert tlb.access(0x2000) == params.dtlb_miss_cycles

    def test_capacity_eviction(self):
        params = MachineParams()
        tlb = Tlb(params)
        for i in range(params.dtlb_entries + 1):
            tlb.access(i * params.page_bytes)
        # the first page was LRU-evicted
        assert tlb.access(0) == params.dtlb_miss_cycles

    def test_shootdown_clears_everything(self):
        tlb = Tlb(MachineParams())
        tlb.access(0x1000)
        tlb.shootdown()
        assert tlb.access(0x1000) > 0


class TestPht:
    def test_initial_prediction_not_taken(self):
        pht = PatternHistoryTable()
        assert not pht.predict(0x400000)

    def test_learns_taken(self):
        pht = PatternHistoryTable()
        pht.update(0x400000, True)
        assert pht.predict(0x400000)

    def test_hysteresis(self):
        """2-bit counters need two updates to flip a strong state."""
        pht = PatternHistoryTable()
        for _ in range(4):
            pht.update(0x10, True)        # strongly taken
        pht.update(0x10, False)
        assert pht.predict(0x10)          # still predicts taken
        pht.update(0x10, False)
        assert not pht.predict(0x10)

    def test_aliasing_by_design(self):
        pht = PatternHistoryTable(size=4)
        pht.update(0x0, True)
        # pc 0x10 aliases to the same counter (size 4, >>2 index)
        assert pht.predict(0x40) == pht.predict(0x0)


class TestBtbAndRsb:
    def test_btb_remembers_target(self):
        btb = BranchTargetBuffer()
        assert btb.predict(0x100) is None
        btb.update(0x100, 0x4000)
        assert btb.predict(0x100) == 0x4000

    def test_btb_capacity(self):
        btb = BranchTargetBuffer(size=2)
        btb.update(0x1, 0xA)
        btb.update(0x2, 0xB)
        btb.update(0x3, 0xC)      # evicts 0x1
        assert btb.predict(0x1) is None
        assert btb.predict(0x3) == 0xC

    def test_rsb_lifo(self):
        rsb = ReturnStackBuffer()
        rsb.push(0x1)
        rsb.push(0x2)
        assert rsb.pop() == 0x2
        assert rsb.pop() == 0x1
        assert rsb.pop() is None

    def test_rsb_depth_wraps(self):
        rsb = ReturnStackBuffer(depth=2)
        rsb.push(0x1)
        rsb.push(0x2)
        rsb.push(0x3)             # drops 0x1
        assert rsb.pop() == 0x3
        assert rsb.pop() == 0x2
        assert rsb.pop() is None