"""Unit tests for the virtual-memory substrate."""

import pytest

from repro.os import (
    PAGE,
    AccessKind,
    AddressSpace,
    OutOfAddressSpace,
    PageFault,
    Prot,
)
from repro.params import MachineParams


@pytest.fixture
def space():
    return AddressSpace(MachineParams())


class TestMmap:
    def test_mmap_returns_page_aligned(self, space):
        addr = space.mmap(100, Prot.rw())
        assert addr % PAGE == 0

    def test_mmap_fixed_placement(self, space):
        addr = space.mmap(PAGE, Prot.rw(), addr=0x7000_0000)
        assert addr == 0x7000_0000

    def test_mmap_overlap_rejected(self, space):
        space.mmap(PAGE, Prot.rw(), addr=0x7000_0000)
        with pytest.raises(ValueError):
            space.mmap(PAGE, Prot.rw(), addr=0x7000_0000)

    def test_huge_reservation_is_cheap(self, space):
        # Wasm's 8 GiB guard scheme must not materialize pages.
        addr = space.mmap(8 << 30, Prot.NONE)
        assert space.present_pages == 0
        assert space.reserved_bytes >= 8 << 30
        assert space.find_vma(addr + (4 << 30)) is not None

    def test_va_exhaustion(self):
        space = AddressSpace(MachineParams(), va_bits=33)  # 8 GiB VA
        space.mmap(4 << 30, Prot.NONE)
        with pytest.raises(OutOfAddressSpace):
            space.mmap(8 << 30, Prot.NONE)

    def test_munmap_frees_range(self, space):
        addr = space.mmap(4 * PAGE, Prot.rw())
        space.write(addr, 0xAB, 1)
        space.munmap(addr, 4 * PAGE)
        assert space.find_vma(addr) is None
        assert space.present_pages == 0


class TestMprotect:
    def test_mprotect_changes_permissions(self, space):
        addr = space.mmap(4 * PAGE, Prot.NONE)
        with pytest.raises(PageFault):
            space.write(addr, 1)
        space.mprotect(addr, PAGE, Prot.rw())
        space.write(addr, 1)
        with pytest.raises(PageFault):
            space.write(addr + PAGE, 1)  # rest still PROT_NONE

    def test_mprotect_splits_vma(self, space):
        addr = space.mmap(4 * PAGE, Prot.NONE, name="heap")
        space.mprotect(addr + PAGE, PAGE, Prot.rw())
        vmas = [v for v in space.vmas() if v.name == "heap"]
        assert len(vmas) == 3

    def test_mprotect_unmapped_raises(self, space):
        with pytest.raises(PageFault):
            space.mprotect(0x9999_0000, PAGE, Prot.rw())

    def test_mprotect_cost_scales_with_pages(self, space):
        addr = space.mmap(1024 * PAGE, Prot.NONE)
        small = space.mprotect(addr, PAGE, Prot.rw())
        large = space.mprotect(addr, 1024 * PAGE, Prot.rw())
        assert large > small


class TestMadvise:
    def test_dontneed_zeroes_contents(self, space):
        addr = space.mmap(2 * PAGE, Prot.rw())
        space.write(addr, 0x1234_5678)
        space.madvise_dontneed(addr, 2 * PAGE)
        assert space.read(addr) == 0

    def test_cost_proportional_to_present_pages(self, space):
        addr = space.mmap(512 * PAGE, Prot.rw())
        cold = space.madvise_dontneed(addr, 512 * PAGE)
        for i in range(256):
            space.write(addr + i * PAGE, 1, 1)
        warm = space.madvise_dontneed(addr, 512 * PAGE)
        assert warm > cold

    def test_guard_pages_still_cost(self, space):
        """Reserved-but-untouched ranges pay a walk cost — the reason
        non-HFI batched teardown loses (§6.3.1)."""
        heap = space.mmap(16 * PAGE, Prot.rw())
        space.mmap(4096 * PAGE, Prot.NONE, addr=heap + 16 * PAGE)
        narrow = space.madvise_dontneed(heap, 16 * PAGE)
        wide = space.madvise_dontneed(heap, (16 + 4096) * PAGE)
        assert wide > narrow


class TestAccess:
    def test_read_write_roundtrip(self, space):
        addr = space.mmap(PAGE, Prot.rw())
        space.write(addr + 100, 0xDEAD_BEEF_CAFE, 8)
        assert space.read(addr + 100, 8) == 0xDEAD_BEEF_CAFE

    def test_cross_page_access(self, space):
        addr = space.mmap(2 * PAGE, Prot.rw())
        space.write(addr + PAGE - 4, 0x1122334455667788, 8)
        assert space.read(addr + PAGE - 4, 8) == 0x1122334455667788

    def test_unmapped_read_faults(self, space):
        with pytest.raises(PageFault) as excinfo:
            space.read(0x5000_0000)
        assert excinfo.value.kind is AccessKind.READ

    def test_write_to_readonly_faults(self, space):
        addr = space.mmap(PAGE, Prot.READ)
        with pytest.raises(PageFault):
            space.write(addr, 1)

    def test_exec_check(self, space):
        addr = space.mmap(PAGE, Prot.rw())
        with pytest.raises(PageFault):
            space.check_access(addr, 1, AccessKind.EXEC)

    def test_straddle_into_guard_faults(self, space):
        heap = space.mmap(PAGE, Prot.rw(), addr=0x7000_0000)
        space.mmap(PAGE, Prot.NONE, addr=0x7000_0000 + PAGE)
        with pytest.raises(PageFault):
            space.write(heap + PAGE - 4, 1, 8)

    def test_bytes_roundtrip(self, space):
        addr = space.mmap(PAGE, Prot.rw())
        space.write_bytes(addr, b"hello world")
        assert space.read_bytes(addr, 11) == b"hello world"
