"""Unit tests for the HFI state machine (paper §3.3, §4.3-§4.5)."""

import pytest

from repro.core import (
    ExplicitDataRegion,
    FaultCause,
    HfiFault,
    HfiState,
    ImplicitCodeRegion,
    ImplicitDataRegion,
    SandboxFlags,
)
from repro.params import MachineParams


@pytest.fixture
def params():
    return MachineParams()


@pytest.fixture
def hfi(params):
    return HfiState(params)


def _code_region():
    return ImplicitCodeRegion(0x40_0000, 0xFFFF)


def _data_region(read=True, write=True):
    return ImplicitDataRegion(0x10_0000, 0xFFFF, read, write)


class TestEnterExit:
    def test_enter_enables(self, hfi):
        hfi.enter(SandboxFlags())
        assert hfi.enabled

    def test_exit_disables_and_sets_msr(self, hfi):
        hfi.enter(SandboxFlags())
        outcome = hfi.exit()
        assert not hfi.enabled
        assert outcome.cause is FaultCause.EXIT_INSTRUCTION
        assert hfi.read_cause_msr() is FaultCause.EXIT_INSTRUCTION

    def test_exit_outside_sandbox_is_noop(self, hfi):
        outcome = hfi.exit()
        assert outcome.cause is FaultCause.NONE

    def test_serialized_enter_costs_drain(self, hfi, params):
        plain = hfi.enter(SandboxFlags(is_serialized=False))
        hfi.exit()
        serialized = hfi.enter(SandboxFlags(is_serialized=True))
        assert serialized == plain + params.serialize_drain_cycles

    def test_native_exit_redirects_to_handler(self, hfi):
        hfi.enter(SandboxFlags(is_hybrid=False), exit_handler=0xBEEF)
        outcome = hfi.exit()
        assert outcome.redirect_to == 0xBEEF

    def test_reenter_restores_sandbox(self, hfi):
        hfi.set_region(0, _code_region())
        hfi.enter(SandboxFlags(is_hybrid=True))
        hfi.exit()
        hfi.reenter()
        assert hfi.enabled
        assert hfi.regs.get(0) == _code_region()

    def test_reenter_without_exit_faults(self, hfi):
        with pytest.raises(HfiFault) as excinfo:
            hfi.reenter()
        assert excinfo.value.cause is FaultCause.BAD_REENTER


class TestRegionLocking:
    def test_native_sandbox_locks_regions(self, hfi):
        hfi.enter(SandboxFlags(is_hybrid=False))
        with pytest.raises(HfiFault) as excinfo:
            hfi.set_region(2, _data_region())
        assert excinfo.value.cause is FaultCause.REGION_LOCKED

    def test_hybrid_sandbox_can_update_regions(self, hfi):
        hfi.enter(SandboxFlags(is_hybrid=True))
        cost = hfi.set_region(6, ExplicitDataRegion(0x10000, 1 << 16,
                                                    permission_read=True))
        assert hfi.regs.get(6) is not None
        assert cost > 0

    def test_hybrid_region_update_serializes(self, hfi, params):
        cost_outside = hfi.set_region(2, _data_region())
        hfi.enter(SandboxFlags(is_hybrid=True))
        cost_inside = hfi.set_region(2, _data_region())
        assert cost_inside == cost_outside + params.serialize_drain_cycles

    def test_clear_all_locked_in_native(self, hfi):
        hfi.enter(SandboxFlags(is_hybrid=False))
        with pytest.raises(HfiFault):
            hfi.clear_all_regions()

    def test_unlocked_after_exit(self, hfi):
        hfi.enter(SandboxFlags(is_hybrid=False))
        hfi.exit()
        hfi.set_region(2, _data_region())  # no fault


class TestSyscallInterposition:
    def test_native_syscall_redirects(self, hfi):
        hfi.enter(SandboxFlags(is_hybrid=False), exit_handler=0xCAFE)
        outcome = hfi.syscall_attempt(nr=2)
        assert outcome is not None
        assert outcome.redirect_to == 0xCAFE
        assert hfi.read_cause_msr() is FaultCause.SYSCALL
        assert not hfi.enabled

    def test_legacy_int80_records_distinct_cause(self, hfi):
        hfi.enter(SandboxFlags(is_hybrid=False), exit_handler=0xCAFE)
        outcome = hfi.syscall_attempt(nr=2, legacy=True)
        assert outcome.cause is FaultCause.INT80

    def test_hybrid_syscall_passes_through(self, hfi):
        hfi.enter(SandboxFlags(is_hybrid=True))
        assert hfi.syscall_attempt(nr=2) is None
        assert hfi.enabled

    def test_no_sandbox_syscall_passes_through(self, hfi):
        assert hfi.syscall_attempt(nr=2) is None


class TestFaults:
    def test_fault_disables_and_records(self, hfi):
        hfi.enter(SandboxFlags(is_hybrid=False), exit_handler=0xCAFE)
        outcome = hfi.fault(FaultCause.DATA_OUT_OF_BOUNDS, addr=0x999)
        assert not hfi.enabled
        assert outcome.redirect_to is None  # faults go via signals
        assert hfi.read_cause_msr() is FaultCause.DATA_OUT_OF_BOUNDS

    def test_xrstor_in_native_sandbox_traps(self, hfi):
        saved = hfi.snapshot()
        hfi.enter(SandboxFlags(is_hybrid=False))
        with pytest.raises(HfiFault) as excinfo:
            hfi.restore(saved)
        assert excinfo.value.cause is FaultCause.XRSTOR_IN_SANDBOX

    def test_xrstor_outside_sandbox_ok(self, hfi):
        hfi.set_region(2, _data_region())
        saved = hfi.snapshot()
        hfi.clear_all_regions()
        hfi.restore(saved)
        assert hfi.regs.get(2) == _data_region()


class TestSwitchOnExit:
    def _setup_runtime(self, hfi):
        """Trusted runtime runs itself in a serialized hybrid sandbox."""
        hfi.set_region(0, _code_region())
        hfi.set_region(2, _data_region())
        hfi.enter(SandboxFlags(is_hybrid=True, is_serialized=True))

    def test_exit_switches_back_without_disabling(self, hfi):
        self._setup_runtime(hfi)
        runtime_data = hfi.regs.get(2)
        # run a child sandbox with switch-on-exit
        hfi.regs.flags = SandboxFlags(is_hybrid=True)  # still in runtime
        hfi.enter(SandboxFlags(is_hybrid=False, switch_on_exit=True),
                  exit_handler=0x1234)
        hfi.regs.set(2, None)  # child has different regions
        outcome = hfi.exit()
        assert outcome.switched_back
        assert hfi.enabled            # still sandboxed (runtime's bank)
        assert hfi.regs.get(2) == runtime_data

    def test_switch_on_exit_avoids_serialization(self, hfi, params):
        self._setup_runtime(hfi)
        before = hfi.serializations
        hfi.enter(SandboxFlags(switch_on_exit=True))
        hfi.exit()
        assert hfi.serializations == before

    def test_syscall_in_child_switches_back(self, hfi):
        self._setup_runtime(hfi)
        hfi.enter(SandboxFlags(is_hybrid=False, switch_on_exit=True),
                  exit_handler=0x1234)
        outcome = hfi.syscall_attempt(nr=0)
        assert outcome.switched_back
        assert hfi.enabled
        assert hfi.read_cause_msr() is FaultCause.SYSCALL


class TestSnapshotRestore:
    def test_snapshot_roundtrip(self, hfi):
        hfi.set_region(0, _code_region())
        hfi.set_region(6, ExplicitDataRegion(0x2_0000, 1 << 16,
                                             permission_read=True))
        saved = hfi.snapshot()
        hfi.clear_all_regions()
        hfi.restore(saved)
        assert hfi.regs.get(0) == _code_region()
        assert hfi.regs.get(6).base_address == 0x2_0000

    def test_snapshot_is_independent(self, hfi):
        hfi.set_region(2, _data_region())
        saved = hfi.snapshot()
        hfi.set_region(2, None)
        assert saved.get(2) is not None
