"""Property-based suite for ``runtime.faas.percentile``.

The serving simulator's p50/p99/p999 reporting and the paper's Table 1
tail-latency columns all funnel through this one nearest-rank
implementation, so it gets the full property treatment:

* permutation invariance — order of samples never matters;
* membership — the result is always one of the inputs;
* monotonicity in the percentile — p50 <= p99 <= p999;
* agreement with an independent exact-arithmetic oracle on the
  nearest-rank definition (rank = ceil(pct * n / 100), computed in
  rationals).

The oracle disagreement this suite originally surfaced: the naive
``ceil(pct / 100.0 * n)`` rank goes wrong whenever the binary product
``pct / 100 * n`` lands just above the true integer — e.g. pct=7,
n=100 floats to ``ceil(7.000000000000001) = 8``, returning the
8th-ranked sample instead of the 7th.  ``test_agrees_with_exact_oracle``
fails within a handful of examples against the pre-fix implementation.
"""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.faas import percentile

samples = st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200)
percentiles = st.one_of(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    st.integers(min_value=0, max_value=100),
    # the p999-style fractional percentiles the serving layer uses
    st.sampled_from([50, 70, 90, 95, 99, 99.9, 99.99]))


def oracle(values, pct):
    """Independent nearest-rank definition in exact arithmetic."""
    ordered = sorted(values)
    if pct <= 0:
        return ordered[0]
    if pct >= 100:
        return ordered[-1]
    rank = math.ceil(Fraction(pct) * len(ordered) / Fraction(100))
    return ordered[rank - 1]


@given(values=samples, pct=percentiles)
def test_permutation_invariant(values, pct):
    assert percentile(values, pct) == percentile(
        list(reversed(sorted(values))), pct)


@given(values=samples, pct=percentiles, seed=st.integers(0, 2**32 - 1))
def test_shuffle_invariant(values, pct, seed):
    import random
    shuffled = list(values)
    random.Random(seed).shuffle(shuffled)
    assert percentile(values, pct) == percentile(shuffled, pct)


@given(values=samples, pct=percentiles)
def test_result_is_a_sample(values, pct):
    assert percentile(values, pct) in values


@given(values=samples,
       pcts=st.tuples(percentiles, percentiles))
def test_monotone_in_percentile(values, pcts):
    lo, hi = sorted(pcts)
    assert percentile(values, lo) <= percentile(values, hi)


@settings(max_examples=300)
@given(values=samples, pct=percentiles)
def test_agrees_with_exact_oracle(values, pct):
    assert percentile(values, pct) == oracle(values, pct)


@given(values=samples)
def test_extremes(values):
    """pct<=0 clamps to the min, pct>=100 to the max."""
    assert percentile(values, 0) == min(values)
    assert percentile(values, -5) == min(values)
    assert percentile(values, 100) == max(values)
    assert percentile(values, 250) == max(values)


def test_empty_input_is_zero():
    assert percentile([], 99) == 0.0


@pytest.mark.parametrize("pct,n,rank", [
    # cases where ceil(pct/100.0 * n) differs from the exact rank —
    # the float-rounding bug family this suite surfaced
    (7, 100, 7),
    (14, 50, 7),
    (28, 25, 7),
    (55, 100, 55),
    (56, 25, 14),
])
def test_known_float_traps(pct, n, rank):
    values = [float(i) for i in range(1, n + 1)]
    assert percentile(values, pct) == float(rank)
    # the naive float rank really is wrong for these inputs — keep
    # the regression honest about what it protects against
    assert math.ceil(pct / 100.0 * n) != rank


@given(pct=percentiles)
def test_singleton(pct):
    assert percentile([42.0], pct) == 42.0
