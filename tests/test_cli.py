"""Tests for the repro-hfi command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "sieve" in out and "445.gobmk" in out
        assert "sightglass" in out and "spec2006" in out

    def test_run_workload(self, capsys):
        assert main(["run", "fib2", "--strategy", "hfi"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "hlt" in out

    def test_run_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "does-not-exist"])

    def test_run_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(["run", "fib2", "--strategy", "magic"])

    def test_compare(self, capsys):
        rc = main(["compare", "minicsv",
                   "--strategies", "guard-pages,hfi"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "guard-pages" in out and "hfi" in out
        assert "100.0%" in out

    def test_attack_pht_leaks_without_hfi(self, capsys):
        assert main(["attack", "pht"]) == 1       # leak => nonzero
        assert "LEAKED 'I'" in capsys.readouterr().out

    def test_attack_pht_blocked_with_hfi(self, capsys):
        assert main(["attack", "pht", "--hfi"]) == 0
        assert "no leak" in capsys.readouterr().out

    def test_attack_btb(self, capsys):
        assert main(["attack", "btb", "--secret", "Z"]) == 1
        assert "LEAKED 'Z'" in capsys.readouterr().out

    def test_nginx_table(self, capsys):
        assert main(["nginx"]) == 0
        out = capsys.readouterr().out
        assert "128kb" in out and "HFI overhead" in out

    def test_heap_growth(self, capsys):
        assert main(["heap-growth", "--gib", "1"]) == 0
        out = capsys.readouterr().out
        assert "hfi_set_region" in out and "mprotect" in out

    def test_attack_rsb(self, capsys):
        assert main(["attack", "rsb"]) == 1
        assert "LEAKED" in capsys.readouterr().out

    def test_chain(self, capsys):
        assert main(["chain", "--functions", "3"]) == 0
        out = capsys.readouterr().out
        assert "ipc" in out and "advantage" in out

    def test_startup(self, capsys):
        assert main(["startup"]) == 0
        out = capsys.readouterr().out
        assert "container" in out and "wasm-instance-pooled" in out

    def test_chaos_soak_clean(self, capsys):
        assert main(["chaos", "--seeds", "3", "--requests", "60"]) == 0
        out = capsys.readouterr().out
        assert "CLEAN" in out
        assert "unaccounted:       0" in out
        assert "leaked slots:      0" in out
        assert "zombie sandboxes:  0" in out
        assert "goodput retained:" in out

    def test_chaos_json_payload(self, capsys):
        import json
        assert main(["chaos", "--seeds", "2", "--requests", "40",
                     "--json", "--no-baseline"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["runs"] == 2
        assert payload["unaccounted"] == 0
        assert payload["goodput_retained"] is None  # --no-baseline
        assert "seeds" not in payload               # not --verbose

    def test_chaos_rejects_bad_rate(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--fault-rate", "1.5"])