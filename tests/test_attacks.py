"""Security evaluation (paper §5.3): Spectre-PHT and Spectre-BTB leak
without HFI and are blocked by HFI's regions."""

import pytest

from repro.attacks import (
    SpectreBtbAttack,
    SpectrePhtAttack,
    SpectreRsbAttack,
)
from repro.params import MachineParams


@pytest.fixture
def params():
    return MachineParams()


class TestSpectrePht:
    def test_leaks_secret_without_hfi(self, params):
        attack = SpectrePhtAttack(params, protect_with_hfi=False)
        result = attack.attack(secret_value=ord("I"))
        assert result.leaked
        assert result.leaked_value == ord("I")

    def test_latency_signal_is_unambiguous(self, params):
        attack = SpectrePhtAttack(params, protect_with_hfi=False)
        result = attack.attack(secret_value=0x42)
        hit = result.latencies[0x42]
        others = [l for v, l in enumerate(result.latencies) if v != 0x42]
        assert hit <= result.threshold
        assert min(others) > result.threshold

    def test_hfi_blocks_the_leak(self, params):
        attack = SpectrePhtAttack(params, protect_with_hfi=True)
        result = attack.attack(secret_value=ord("I"))
        assert not result.leaked
        # Fig. 7's "with HFI" series: no latency below the threshold
        assert min(result.latencies) > result.threshold

    def test_hfi_architectural_behaviour_unchanged(self, params):
        """In-bounds calls behave identically under HFI (training runs
        complete without faults)."""
        attack = SpectrePhtAttack(params, protect_with_hfi=True)
        attack.train(rounds=4)
        assert attack.cpu.stats.hfi_faults == 0

    @pytest.mark.parametrize("secret", [1, 77, 200, 255])
    def test_leak_works_for_arbitrary_bytes(self, params, secret):
        attack = SpectrePhtAttack(params, protect_with_hfi=False)
        result = attack.attack(secret_value=secret)
        assert result.leaked_value == secret


class TestSpectreBtb:
    def test_leaks_secret_without_hfi(self, params):
        attack = SpectreBtbAttack(params, protect_with_hfi=False)
        result = attack.attack(secret_value=ord("S"))
        assert result.leaked
        assert result.leaked_value == ord("S")

    def test_hfi_data_regions_block_the_leak(self, params):
        attack = SpectreBtbAttack(params, protect_with_hfi=True,
                                  gadget_in_code_region=True)
        result = attack.attack(secret_value=ord("S"))
        assert not result.leaked
        assert min(result.latencies) > result.threshold

    def test_hfi_code_regions_block_gadget_fetch(self, params):
        """With the gadget outside the code regions, decode refuses to
        execute it even speculatively (§4.1)."""
        attack = SpectreBtbAttack(params, protect_with_hfi=True,
                                  gadget_in_code_region=False)
        result = attack.attack(secret_value=ord("S"))
        assert not result.leaked
        assert min(result.latencies) > result.threshold


class TestSpectreRsb:
    def test_leaks_secret_without_hfi(self, params):
        attack = SpectreRsbAttack(params, protect_with_hfi=False)
        result = attack.attack(secret_value=ord("R"))
        assert result.leaked
        assert result.leaked_value == ord("R")

    def test_hfi_blocks_the_leak(self, params):
        attack = SpectreRsbAttack(params, protect_with_hfi=True)
        result = attack.attack(secret_value=ord("R"))
        assert not result.leaked
        assert min(result.latencies) > result.threshold

    @pytest.mark.parametrize("secret", [7, 128, 250])
    def test_arbitrary_bytes(self, params, secret):
        attack = SpectreRsbAttack(params, protect_with_hfi=False)
        result = attack.attack(secret_value=secret)
        assert result.leaked_value == secret
