"""Setuptools shim: metadata lives in setup.cfg.

A plain ``setup.py`` (rather than a PEP 517 build-system table) keeps
``pip install -e .`` working in offline environments that lack the
``wheel`` package.
"""

from setuptools import setup

setup()
