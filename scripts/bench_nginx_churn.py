#!/usr/bin/env python
"""NGINX + sandboxed OpenSSL under connection churn (§6.4.2 at
production intensity).

Drives the discrete-event serving simulator with TLS *connections*
(handshake + keep-alive requests + teardown) instead of flat
requests.  Every connection gets a fresh crypto sandbox, so each
scheme pays its real lifecycle:

* **setup** at accept: measured mmap/mprotect walks from
  :func:`repro.runtime.serving.connection_lifecycle_costs` against a
  live :class:`AddressSpace` (plus descriptor staging for HFI, plus
  ``pkey_mprotect`` heap tagging for MPK);
* **per-crypto-call domain switches** inside the service time, priced
  by the one shared :class:`TransitionModel` formula;
* **teardown** at close: measured ``madvise_dontneed`` page zapping
  (plus pkey untag for MPK).

Every scheme sees the identical connection stream per load point
(same arrivals, tenants, file sizes, keep-alive counts), so cost
differences — never traffic differences — explain the results.

Gates:

1. **accounting**: every connection ends in exactly one of
   succeeded/failed/shed at every load point.
2. **measured_lifecycle**: setup/teardown costs are nonzero and
   ordered — MPK's pkey tag/untag syscalls make its lifecycle
   strictly the most expensive; HFI's descriptor staging costs no
   syscall.
3. **isolation_tax_ordering**: at the heaviest load, mean latency
   orders unprotected <= hfi <= mpk (HFI's switch tax is below
   ERIM's double-gate wrpkru pairs).

Writes ``BENCH_nginx_churn.json`` (shared bench envelope) at the repo
root.

Run:  python scripts/bench_nginx_churn.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from bench_common import gate, write_envelope
from repro.runtime import ServingConfig, ServingSimulator
from repro.workloads import (
    CHURN_SCHEMES,
    build_connection_profiles,
    churn_requests,
    churn_scheme_costs,
)

SEED = 2023
CONNECTIONS = 4000
CORES = 8
SLOTS_PER_SHARD = 32
#: load multiplier relative to the unprotected server's capacity, so
#: protection overhead surfaces as queueing — identical-offered-load
#: methodology, like scripts/bench_serving.py.
LOAD_POINTS = ((0.5, "poisson"), (0.8, "poisson"), (0.95, "poisson"),
               (1.2, "mmpp"))


def main():
    config = ServingConfig(n_cores=CORES, slots_per_shard=SLOTS_PER_SHARD,
                           max_inflight=CORES * SLOTS_PER_SHARD)
    costs = {scheme: churn_scheme_costs(scheme)
             for scheme in CHURN_SCHEMES}
    results = {"lifecycle": {scheme: {"setup_cycles": c.setup_cycles,
                                      "teardown_cycles": c.teardown_cycles}
                             for scheme, c in costs.items()},
               "schemes": {scheme: [] for scheme in CHURN_SCHEMES}}
    all_accounted = True
    mean_latency_at_peak = {}
    for load, arrival in LOAD_POINTS:
        profiles = build_connection_profiles(
            CONNECTIONS, seed=SEED, load=load, n_cores=CORES,
            arrival=arrival)
        for scheme in CHURN_SCHEMES:
            sim = ServingSimulator(costs[scheme], config, seed=SEED)
            metrics = sim.run(churn_requests(profiles, scheme))
            metrics.arrival = arrival
            all_accounted = all_accounted and metrics.accounted
            if (load, arrival) == LOAD_POINTS[-1]:
                mean_latency_at_peak[scheme] = metrics.mean_latency_cycles
            results["schemes"][scheme].append({
                "load": load,
                "arrival": arrival,
                "goodput_rps": round(metrics.goodput_rps, 1),
                "throughput_rps": round(metrics.throughput_rps, 1),
                "p50_cycles": metrics.p50_cycles,
                "p99_cycles": metrics.p99_cycles,
                "mean_latency_cycles": round(
                    metrics.mean_latency_cycles, 1),
                "shed": metrics.shed,
                "failed": metrics.failed,
                "peak_inflight": metrics.peak_inflight,
                "utilization": round(metrics.utilization, 4),
                "accounted": metrics.accounted,
            })
            print(f"{scheme:12s} load={load:4.2f} {arrival:7s}  "
                  f"goodput={metrics.goodput_rps:10,.0f} conn/s  "
                  f"p50={metrics.p50_cycles:9,d}cy  "
                  f"p99={metrics.p99_cycles:10,d}cy  "
                  f"shed={metrics.shed:4d}  "
                  f"util={metrics.utilization:4.2f}")

    lc = results["lifecycle"]
    lifecycle_ok = (
        all(v["setup_cycles"] > 0 and v["teardown_cycles"] > 0
            for v in lc.values())
        and lc["mpk"]["setup_cycles"] > lc["hfi"]["setup_cycles"]
        and lc["mpk"]["setup_cycles"] > lc["unprotected"]["setup_cycles"]
        and lc["mpk"]["teardown_cycles"]
            > lc["unprotected"]["teardown_cycles"]
        and lc["hfi"]["setup_cycles"]
            >= lc["unprotected"]["setup_cycles"])
    ordering_ok = (mean_latency_at_peak["unprotected"]
                   <= mean_latency_at_peak["hfi"]
                   <= mean_latency_at_peak["mpk"])

    print()
    payload = write_envelope(
        os.path.join(os.path.dirname(__file__), "..",
                     "BENCH_nginx_churn.json"),
        "nginx_churn",
        config={"seed": SEED, "connections_per_point": CONNECTIONS,
                "cores": CORES, "slots_per_shard": SLOTS_PER_SHARD,
                "load_points": [{"load": load, "arrival": arrival}
                                for load, arrival in LOAD_POINTS]},
        results=results,
        gates={
            "accounting": gate(all_accounted),
            "measured_lifecycle": gate(
                lifecycle_ok,
                **{f"{scheme}_setup": v["setup_cycles"]
                   for scheme, v in lc.items()},
                **{f"{scheme}_teardown": v["teardown_cycles"]
                   for scheme, v in lc.items()}),
            "isolation_tax_ordering": gate(
                ordering_ok,
                **{f"mean_latency_{scheme}": round(v, 1)
                   for scheme, v in mean_latency_at_peak.items()}),
        })
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
