"""Benchmark the execution engines: wall-clock instructions/sec.

Measures the *simulator's own* speed (not simulated cycles) under the
``staged`` and ``blocks`` engines in one invocation, over two suites:

* **dispatch** — dispatch-bound kernels (a synthetic straight-line ALU
  kernel plus the loopy Sightglass/SPEC members) where the staged
  loop's per-instruction toll dominates.  Gated: the blocks engine
  must deliver >= 2.0x aggregate instructions/sec here.
* **mixed** — workloads dominated by engine-independent work
  (speculation windows, syscalls, cache-miss simulation, flat code
  profiles that never warm up).  Reported, not speed-gated: Amdahl
  bounds these near 1x no matter how fast block dispatch gets, and the
  warmup heuristic deliberately refuses to compile code that cannot
  amortize its compile cost.

Both suites additionally gate on *fidelity*: simulated cycles and
instruction counts must be bit-identical across engines on every
workload, and ``copy.deepcopy`` must never run while the CPU does.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/bench_dispatch.py

Writes ``BENCH_dispatch_speedup.json`` (the shared bench envelope).
"""

import argparse
import copy
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_common import gate, write_envelope

OUT_DEFAULT = pathlib.Path(__file__).resolve().parents[1] / \
    "BENCH_dispatch_speedup.json"

ENGINES = ("staged", "blocks")
SPEEDUP_FLOOR = 2.0

#: (suite, benchmark, strategy, scale).  The dispatch suite is the
#: gated one; the mixed suite documents the Amdahl-bounded rest.
DISPATCH_SUITE = [
    ("synthetic", "alu", "guard-pages", 8),
    ("synthetic", "alu", "hfi", 8),
    ("sightglass", "fib2", "guard-pages", 8),
    ("sightglass", "memmove", "hfi", 6),
    ("spec", "429.mcf", "hfi", 4),
]
MIXED_SUITE = [
    ("synthetic", "mem", "hfi", 6),
    ("sightglass", "keccak", "hfi", 6),
    ("sightglass", "xchacha20", "guard-pages", 6),
    ("spec", "400.perlbench", "hfi", 4),
    ("spec", "445.gobmk", "guard-pages", 4),
]


def build_alu_kernel(scale):
    """A hot straight-line ALU loop: the superblock best case."""
    from repro.wasm.ir import (BinOp, BinaryOp, Const, Function, Loop,
                               Module, StoreGlobal)
    ops = [Const("a", 1), Const("b", 2), Const("c", 3), Const("d", 4)]
    chain = []
    for _ in range(4):
        chain += [
            BinOp(BinaryOp.ADD, "a", "a", "b"),
            BinOp(BinaryOp.XOR, "b", "b", "c"),
            BinOp(BinaryOp.ADD, "c", "c", "d"),
            BinOp(BinaryOp.SUB, "d", "d", "a"),
        ]
    ops.append(Loop(scale * 1500, chain))
    ops.append(StoreGlobal("result", "a"))
    return Module("alu-kernel", [Function("main", ops)],
                  globals=["result"])


def build_mem_kernel(scale):
    """A load/store-dense loop: inlined memory fragments + checks."""
    from repro.wasm.ir import (BinOp, BinaryOp, Const, Function, Load,
                               Loop, Module, Store, StoreGlobal)
    ops = [Const("addr", 64), Const("acc", 0)]
    chain = []
    for i in range(4):
        chain += [
            Load("t", "addr", offset=8 * i),
            BinOp(BinaryOp.ADD, "acc", "acc", "t"),
            Store("addr", "acc", offset=8 * i + 256),
        ]
    chain.append(BinOp(BinaryOp.ADD, "addr", "addr", 8))
    ops.append(Loop(scale * 1000, chain))
    ops.append(StoreGlobal("result", "acc"))
    return Module("mem-kernel", [Function("main", ops)],
                  globals=["result"])


SYNTHETIC = {"alu": build_alu_kernel, "mem": build_mem_kernel}


class DeepcopyCounter:
    """Counts copy.deepcopy invocations while active."""

    def __init__(self):
        self.calls = 0
        self._real = copy.deepcopy

    def __enter__(self):
        def counting(x, memo=None):
            self.calls += 1
            return self._real(x, memo)
        copy.deepcopy = counting
        return self

    def __exit__(self, *exc):
        copy.deepcopy = self._real
        return False


def _builder(suite, name):
    if suite == "synthetic":
        return SYNTHETIC[name]
    if suite == "sightglass":
        from repro.workloads.sightglass import SIGHTGLASS_BENCHMARKS
        return SIGHTGLASS_BENCHMARKS[name]
    from repro.workloads.spec import SPEC_BENCHMARKS
    return SPEC_BENCHMARKS[name]


def bench_one(suite, name, strategy, scale, repeat):
    """Run one workload under every engine; best-of-``repeat`` each."""
    from repro.wasm import WasmRuntime, make_strategy

    module = _builder(suite, name)(scale)
    engines = {}
    for engine in ENGINES:
        best = None
        executed = cycles = instructions = deepcopies = 0
        for _ in range(repeat):
            runtime = WasmRuntime(engine=engine)
            instance = runtime.instantiate(module, make_strategy(strategy))
            with DeepcopyCounter() as counter:
                t0 = time.perf_counter()
                result = runtime.run(instance,
                                     max_instructions=50_000_000)
                elapsed = time.perf_counter() - t0
            assert result.reason == "hlt", (name, result.reason)
            stats = runtime.cpu.stats
            executed = stats.instructions + stats.speculative_instructions
            instructions = stats.instructions
            cycles = stats.cycles
            deepcopies = counter.calls
            if best is None or elapsed < best:
                best = elapsed
        engines[engine] = {
            "seconds": round(best, 4),
            "ips": round(executed / best),
            "executed_instructions": executed,
            "instructions": instructions,
            "simulated_cycles": cycles,
            "deepcopy_calls": deepcopies,
        }
    base, opt = engines[ENGINES[0]], engines[ENGINES[1]]
    return {
        "workload": f"{suite}:{name}:{strategy}",
        "scale": scale,
        "engines": engines,
        "speedup": round(opt["ips"] / base["ips"], 2),
        "identical": (base["simulated_cycles"] == opt["simulated_cycles"]
                      and base["instructions"] == opt["instructions"]),
        "deepcopy_calls": sum(e["deepcopy_calls"]
                              for e in engines.values()),
    }


def run_suite(label, entries, repeat):
    rows = []
    for suite, name, strategy, scale in entries:
        row = bench_one(suite, name, strategy, scale, repeat)
        rows.append(row)
        base, opt = (row["engines"][e] for e in ENGINES)
        print(f"[{label:8s}] {row['workload']:38s} "
              f"{base['ips']:>10,d} -> {opt['ips']:>10,d} instr/s "
              f"({row['speedup']:.2f}x, "
              f"{'identical' if row['identical'] else 'DIVERGED'}, "
              f"deepcopy={row['deepcopy_calls']})", flush=True)
    totals = {}
    for engine in ENGINES:
        instr = sum(r["engines"][engine]["executed_instructions"]
                    for r in rows)
        secs = sum(r["engines"][engine]["seconds"] for r in rows)
        totals[engine] = round(instr / secs)
    aggregate = round(totals[ENGINES[1]] / totals[ENGINES[0]], 2)
    return {"workloads": rows, "aggregate_ips": totals,
            "aggregate_speedup": aggregate}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_DEFAULT)
    args = parser.parse_args()

    dispatch = run_suite("dispatch", DISPATCH_SUITE, args.repeat)
    mixed = run_suite("mixed", MIXED_SUITE, args.repeat)
    all_rows = dispatch["workloads"] + mixed["workloads"]

    print(f"\ndispatch aggregate: {dispatch['aggregate_speedup']}x, "
          f"mixed aggregate: {mixed['aggregate_speedup']}x\n")
    gates = {
        "dispatch_speedup": gate(
            dispatch["aggregate_speedup"] >= SPEEDUP_FLOOR,
            floor=SPEEDUP_FLOOR,
            aggregate=dispatch["aggregate_speedup"]),
        "cycle_identity": gate(
            all(r["identical"] for r in all_rows),
            diverged=[r["workload"] for r in all_rows
                      if not r["identical"]]),
        "no_deepcopy": gate(
            sum(r["deepcopy_calls"] for r in all_rows) == 0,
            calls=sum(r["deepcopy_calls"] for r in all_rows)),
    }
    payload = write_envelope(
        args.out, "dispatch_speedup",
        config={"engines": list(ENGINES), "engine": None,  # swept
                "timing": "inorder", "repeat": args.repeat,
                "speedup_floor": SPEEDUP_FLOOR,
                "dispatch_suite": [list(e) for e in DISPATCH_SUITE],
                "mixed_suite": [list(e) for e in MIXED_SUITE]},
        results={"dispatch": dispatch, "mixed": mixed},
        gates=gates)
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
