"""Benchmark the interpreter hot loop: wall-clock instructions/sec.

Measures the *simulator's own* speed (not simulated cycles) on the
Sightglass + SPEC workloads, and counts ``copy.deepcopy`` calls made
while the CPU runs — the staged-engine refactor requires zero on the
commit and speculation paths.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/bench_dispatch.py --label before
    ... refactor ...
    PYTHONPATH=src python scripts/bench_dispatch.py --label after

Both runs merge into ``BENCH_dispatch_speedup.json``; once both labels
are present the script computes per-workload and aggregate speedups
(target: >= 2x instructions/sec, simulated cycles unchanged).
"""

import argparse
import copy
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

OUT_DEFAULT = pathlib.Path(__file__).resolve().parents[1] / \
    "BENCH_dispatch_speedup.json"

#: (suite, benchmark, strategy, scale) — branchy, memory-bound, and
#: crypto kernels plus the SPEC interpreter/pointer-chase mix, under
#: both an SFI-style and the HFI strategy so hot-loop coverage includes
#: bounds checks, hmov, and sandbox transitions.
WORKLOADS = [
    ("sightglass", "fib2", "guard-pages", 40),
    ("sightglass", "keccak", "hfi", 12),
    ("sightglass", "memmove", "hfi", 20),
    ("sightglass", "xchacha20", "guard-pages", 12),
    ("spec", "400.perlbench", "hfi", 6),
    ("spec", "429.mcf", "hfi", 4),
    ("spec", "445.gobmk", "guard-pages", 4),
]


class DeepcopyCounter:
    """Counts copy.deepcopy invocations while active."""

    def __init__(self):
        self.calls = 0
        self._real = copy.deepcopy

    def __enter__(self):
        def counting(x, memo=None):
            self.calls += 1
            return self._real(x, memo)
        copy.deepcopy = counting
        return self

    def __exit__(self, *exc):
        copy.deepcopy = self._real
        return False


def bench_one(suite, name, strategy, scale, repeat):
    from repro.wasm import (
        BoundsCheckStrategy,
        GuardPagesStrategy,
        HfiEmulationStrategy,
        HfiStrategy,
        WasmRuntime,
    )
    strategies = {
        "guard-pages": GuardPagesStrategy,
        "bounds-check": BoundsCheckStrategy,
        "hfi": HfiStrategy,
        "hfi-emulation": HfiEmulationStrategy,
    }
    if suite == "sightglass":
        from repro.workloads.sightglass import SIGHTGLASS_BENCHMARKS as reg
    else:
        from repro.workloads.spec import SPEC_BENCHMARKS as reg

    module = reg[name](scale)
    best = None
    executed = cycles = 0
    deepcopies = 0
    for _ in range(repeat):
        runtime = WasmRuntime()
        instance = runtime.instantiate(module, strategies[strategy]())
        with DeepcopyCounter() as counter:
            t0 = time.perf_counter()
            result = runtime.run(instance, max_instructions=50_000_000)
            elapsed = time.perf_counter() - t0
        assert result.reason == "hlt", (name, result.reason)
        stats = runtime.cpu.stats
        executed = stats.instructions + stats.speculative_instructions
        cycles = stats.cycles
        deepcopies = counter.calls
        if best is None or elapsed < best:
            best = elapsed
    return {
        "workload": f"{suite}:{name}:{strategy}",
        "scale": scale,
        "executed_instructions": executed,
        "simulated_cycles": cycles,
        "seconds": round(best, 4),
        "ips": round(executed / best),
        "deepcopy_calls": deepcopies,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", choices=("before", "after"),
                        required=True)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_DEFAULT)
    args = parser.parse_args()

    rows = []
    for suite, name, strategy, scale in WORKLOADS:
        row = bench_one(suite, name, strategy, scale, args.repeat)
        rows.append(row)
        print(f"{row['workload']:40s} {row['ips']:>10,d} instr/s "
              f"({row['executed_instructions']:,d} instr, "
              f"{row['seconds']}s, deepcopy={row['deepcopy_calls']})",
              flush=True)

    data = {}
    if args.out.exists():
        data = json.loads(args.out.read_text())
    total_instr = sum(r["executed_instructions"] for r in rows)
    total_secs = sum(r["seconds"] for r in rows)
    data[args.label] = {
        "python": sys.version.split()[0],
        "workloads": rows,
        "aggregate_ips": round(total_instr / total_secs),
        "deepcopy_calls": sum(r["deepcopy_calls"] for r in rows),
    }

    if "before" in data and "after" in data:
        before = {r["workload"]: r for r in data["before"]["workloads"]}
        after = {r["workload"]: r for r in data["after"]["workloads"]}
        speedups = {}
        cycles_match = True
        for key in before:
            if key not in after:
                continue
            speedups[key] = round(after[key]["ips"] / before[key]["ips"], 2)
            if (after[key]["simulated_cycles"]
                    != before[key]["simulated_cycles"]):
                cycles_match = False
        data["speedup"] = {
            "per_workload": speedups,
            "aggregate": round(data["after"]["aggregate_ips"]
                               / data["before"]["aggregate_ips"], 2),
            "simulated_cycles_identical": cycles_match,
            "deepcopy_calls_after": data["after"]["deepcopy_calls"],
        }
        print(f"\naggregate speedup: {data['speedup']['aggregate']}x "
              f"(cycles identical: {cycles_match}, "
              f"deepcopy after: {data['after']['deepcopy_calls']})")

    args.out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
