#!/usr/bin/env python
"""Tail latency vs offered load: HFI vs guard pages vs MPK.

Drives the discrete-event serving simulator
(``repro.runtime.serving``) at escalating open-loop offered loads —
0.5x, 0.8x, 0.95x, and a bursty 1.2x of node capacity — over a
16-core node whose cores each own an 80-slot pool shard (1280 pooled
instances), and reports sustained goodput plus p50/p99/p999 latency
per isolation scheme.  Each scheme pays its *measured* costs: HFI's
serialized zero-cost-call round trip with batched teardown,
guard-pages' per-request madvise teardown, MPK's wrpkru round trip.

Gates:

1. **Accounting**: every offered request ends in exactly one of
   succeeded/failed/shed at every load point.
2. **Scale**: the overload point drives at least 1000 concurrent
   in-flight sandboxes at peak.
3. **The paper's shape**: at the highest load HFI's goodput is at
   least that of guard pages (batched teardown must not lose).

Writes ``BENCH_serving.json`` (the shared bench envelope) at the repo
root.

Run:  python scripts/bench_serving.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from bench_common import gate, write_envelope
from repro.runtime import (
    SERVING_SCHEMES,
    MmppArrivals,
    PoissonArrivals,
    ServingConfig,
    build_requests,
    simulate_serving,
)

SEED = 2023
REQUESTS = 12_000
CORES = 16
SLOTS_PER_SHARD = 80
SERVICE_CYCLES = (20_000, 120_000)
#: (offered load multiplier, arrival process); load is relative to
#: ideal capacity (bare service time, no protection overheads), so
#: every scheme sees the IDENTICAL request stream at each point — the
#: paper's identical-offered-load methodology.
LOAD_POINTS = ((0.5, "poisson"), (0.8, "poisson"), (0.95, "poisson"),
               (1.2, "mmpp"), (1.6, "poisson"))
PEAK_INFLIGHT_FLOOR = 1000


def shared_workload(load, arrival):
    """One request stream per load point, shared by every scheme."""
    mean_service = sum(SERVICE_CYCLES) / 2.0
    mean_gap = mean_service / (load * CORES)
    if arrival == "mmpp":
        # calm-state rate scaled so burst episodes average out near
        # the target load
        process = MmppArrivals(mean_gap * 2.2, seed=SEED)
    else:
        process = PoissonArrivals(mean_gap, seed=SEED)
    return build_requests(process, REQUESTS, seed=SEED,
                          service_cycles=SERVICE_CYCLES)


def main():
    config = ServingConfig(n_cores=CORES, slots_per_shard=SLOTS_PER_SHARD,
                           max_inflight=CORES * SLOTS_PER_SHARD)
    results = {"schemes": {}}
    all_accounted = True
    peak_seen = 0
    goodput_at_peak = {}
    shed_at_peak = {}
    workloads = {point: shared_workload(*point) for point in LOAD_POINTS}
    for scheme in SERVING_SCHEMES:
        rows = []
        for load, arrival in LOAD_POINTS:
            metrics = simulate_serving(
                scheme, seed=SEED, config=config,
                requests=workloads[(load, arrival)])
            metrics.arrival = arrival
            all_accounted = all_accounted and metrics.accounted
            peak_seen = max(peak_seen, metrics.peak_inflight)
            if (load, arrival) == LOAD_POINTS[-1]:
                goodput_at_peak[scheme] = metrics.goodput_rps
                shed_at_peak[scheme] = metrics.shed
            rows.append({
                "load": load,
                "arrival": arrival,
                "goodput_rps": round(metrics.goodput_rps, 1),
                "throughput_rps": round(metrics.throughput_rps, 1),
                "p50_ms": round(metrics.p50_ms, 4),
                "p99_ms": round(metrics.p99_ms, 4),
                "p999_ms": round(metrics.p999_ms, 4),
                "p50_cycles": metrics.p50_cycles,
                "p99_cycles": metrics.p99_cycles,
                "p999_cycles": metrics.p999_cycles,
                "shed": metrics.shed,
                "failed": metrics.failed,
                "steals": metrics.steals,
                "peak_inflight": metrics.peak_inflight,
                "utilization": round(metrics.utilization, 4),
                "accounted": metrics.accounted,
            })
            print(f"{scheme:12s} load={load:4.2f} {arrival:7s}  "
                  f"goodput={metrics.goodput_rps:11,.0f} req/s  "
                  f"p50={metrics.p50_ms:6.3f}ms  "
                  f"p99={metrics.p99_ms:6.3f}ms  "
                  f"p999={metrics.p999_ms:6.3f}ms  "
                  f"shed={metrics.shed:5d}  "
                  f"peak={metrics.peak_inflight:4d}")
        results["schemes"][scheme] = rows

    results["peak_inflight_seen"] = peak_seen
    print()
    payload = write_envelope(
        os.path.join(os.path.dirname(__file__), "..",
                     "BENCH_serving.json"),
        "serving",
        config={"seed": SEED, "requests_per_point": REQUESTS,
                "cores": CORES, "slots_per_shard": SLOTS_PER_SHARD,
                "load_points": [{"load": load, "arrival": arrival}
                                for load, arrival in LOAD_POINTS]},
        results=results,
        gates={
            "accounting": gate(all_accounted),
            "scale": gate(peak_seen >= PEAK_INFLIGHT_FLOOR,
                          floor=PEAK_INFLIGHT_FLOOR, peak=peak_seen),
            "hfi_wins_at_overload": gate(
                goodput_at_peak["hfi"] >= goodput_at_peak["guard-pages"]
                and shed_at_peak["hfi"] <= shed_at_peak["guard-pages"],
                goodput_hfi=round(goodput_at_peak["hfi"]),
                goodput_guard_pages=round(
                    goodput_at_peak["guard-pages"])),
        })
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
