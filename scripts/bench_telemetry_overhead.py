#!/usr/bin/env python
"""Measure the overhead of the telemetry subsystem.

Runs the same cycle-level SPEC-analogue workload with the default null
sink and with a live :class:`repro.telemetry.Telemetry` sink, and
checks the two guarantees the subsystem makes:

1. **Null-sink parity**: simulated cycle counts are bit-identical with
   telemetry off or on (telemetry never feeds back into accounting).
2. **Bounded cost**: instrumentation adds at most 5% wall-clock to the
   workload, because hot paths only pay an ``enabled`` flag test and
   sink events fire at sandbox-transition granularity.

An attribution micro-benchmark (the analytic ``SandboxManager`` invoke
loop, which does almost no work per call and so maximally exposes
per-event recording cost) is also reported, informationally.

Writes ``BENCH_telemetry_overhead.json`` (the shared bench envelope)
at the repo root.

Run:  python scripts/bench_telemetry_overhead.py
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from bench_common import gate, write_envelope
from repro.params import MachineParams
from repro.runtime import SandboxManager, TransitionKind
from repro.telemetry import Telemetry
from repro.wasm import WasmRuntime, make_strategy
from repro.workloads import SPEC_BENCHMARKS

REPS = 7
WORKLOAD = "401.bzip2"
SCALE = 2
MANAGER_INVOCATIONS = 2_000
BUDGET_PCT = 5.0


def run_simulator(telemetry):
    params = MachineParams()
    runtime = WasmRuntime(params)
    if telemetry is not None:
        runtime.cpu.attach_telemetry(telemetry)
    module = SPEC_BENCHMARKS[WORKLOAD](SCALE)
    instance = runtime.instantiate(module, make_strategy("hfi"))
    result = runtime.run(instance)
    assert result.reason == "hlt", result.reason
    return result.stats.cycles, result.stats.instructions


def run_manager(telemetry):
    params = MachineParams()
    manager = SandboxManager(params, telemetry=telemetry)
    handles = [manager.create_sandbox(heap_bytes=1 << 18,
                                      hybrid=(i % 2 == 1))
               for i in range(8)]
    for n in range(MANAGER_INVOCATIONS):
        handle = handles[n % len(handles)]
        kind = (TransitionKind.ZERO_COST if handle.is_hybrid
                else TransitionKind.SPRINGBOARD)
        manager.invoke(handle, service_cycles=1_000, transition=kind)
    return manager.total_cycles


def measure(fn):
    """Interleave off/on reps (to cancel warm-up drift), keep the best
    time of each configuration, and verify value parity every rep."""
    best_off = best_on = float("inf")
    value_off = value_on = None
    fn(None)          # warm up imports / allocator before timing
    for _ in range(REPS):
        begin = time.perf_counter()
        value_off = fn(None)
        best_off = min(best_off, time.perf_counter() - begin)
        begin = time.perf_counter()
        value_on = fn(Telemetry())
        best_on = min(best_on, time.perf_counter() - begin)
        assert value_off == value_on, (
            f"null-sink parity violated: {value_off} != {value_on}")
    return value_off, best_off, best_on


def main():
    results = {}
    for name, fn, gated in (("workload", run_simulator, True),
                            ("attribution_microbench", run_manager, False)):
        value, off_s, on_s = measure(fn)
        overhead = 100 * (on_s / off_s - 1)
        results[name] = {
            "cycles_match": True,
            "simulated": value if isinstance(value, int) else list(value),
            "wall_s_telemetry_off": round(off_s, 6),
            "wall_s_telemetry_on": round(on_s, 6),
            "overhead_pct": round(overhead, 2),
            "gated": gated,
        }
        print(f"{name:24s} off={off_s:.4f}s on={on_s:.4f}s "
              f"overhead={overhead:+.2f}%  (cycles identical)")

    overhead_pct = results["workload"]["overhead_pct"]
    print()
    payload = write_envelope(
        os.path.join(os.path.dirname(__file__), "..",
                     "BENCH_telemetry_overhead.json"),
        "telemetry_overhead",
        config={"workload": WORKLOAD, "scale": SCALE, "reps": REPS,
                "budget_pct": BUDGET_PCT},
        results=results,
        gates={
            # measure() asserts parity every rep, so reaching here
            # means the null-sink guarantee held.
            "null_sink_parity": gate(True),
            "overhead_budget": gate(overhead_pct <= BUDGET_PCT,
                                    budget_pct=BUDGET_PCT,
                                    overhead_pct=overhead_pct),
        })
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
