"""Shared JSON envelope for the ``scripts/bench_*`` family.

Every benchmark writes the same top-level shape so CI and tooling can
consume any ``BENCH_*.json`` uniformly::

    {
      "schema_version": 1,
      "bench": "<name>",
      "python": "3.x.y",
      "config":  {...},   # the knobs that shaped the run
      "results": {...},   # the measurements
      "gates": {          # named pass/fail criteria with detail
        "<gate>": {"passed": true, ...}
      },
      "ok": true          # conjunction of every gate
    }

Benchmarks keep their own ``config``/``results`` vocabulary; only the
envelope — and the rule that anything a script exits nonzero over must
appear as a gate — is shared.
"""

import json
import pathlib
import sys
from typing import Dict

SCHEMA_VERSION = 1


def gate(passed, **detail) -> Dict:
    """One named pass/fail criterion with its supporting numbers."""
    return {"passed": bool(passed), **detail}


def _backend_defaults() -> Dict:
    """The process-wide execution/timing backends at envelope time.

    Every result in a ``BENCH_*.json`` was produced by *some* engine
    and timing model; a payload that does not say which is ambiguous
    the moment a second backend exists.  Benchmarks that sweep
    backends override these keys in their own ``config``."""
    try:
        from repro.cpu import machine
    except ImportError:
        return {"engine": None, "timing": None}
    return {"engine": machine.DEFAULT_ENGINE,
            "timing": machine.timing_seam.DEFAULT_TIMING}


def envelope(bench: str, config: Dict, results: Dict,
             gates: Dict[str, Dict]) -> Dict:
    config = dict(config)
    for key, value in _backend_defaults().items():
        config.setdefault(key, value)
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "python": sys.version.split()[0],
        "config": config,
        "results": results,
        "gates": gates,
        "ok": all(g["passed"] for g in gates.values()),
    }


def write_envelope(path, bench: str, config: Dict, results: Dict,
                   gates: Dict[str, Dict]) -> Dict:
    """Assemble, write, and summarize one benchmark payload.

    Returns the payload; ``payload["ok"]`` is the process exit gate.
    """
    payload = envelope(bench, config, results, gates)
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    for name, g in gates.items():
        detail = ", ".join(f"{k}={v}" for k, v in g.items()
                           if k != "passed")
        print(f"gate {name:28s} {'OK  ' if g['passed'] else 'FAIL'} "
              f"{detail}")
    print(f"wrote {path.resolve()}")
    return payload
