#!/usr/bin/env python
"""Batch font/image render pipelines as sustained traffic (§6.2's
Firefox workloads under a serving loop).

Phase 1 — **measure**: run every render job (``graphite_reflow`` plus
the full ``jpeg_decode`` resolution x compression grid) to completion
on the Wasm toolchain under each compiler scheme's real codegen
(``hfi``, ``guard-pages``, ``bounds-check``).  The measured guest
cycles bake in register pressure, bounds-check instruction tax, and
serialized HFI transitions; result globals are asserted equal across
schemes.

Phase 2 — **serve**: feed a seeded job mix through the discrete-event
serving simulator at escalating offered loads, with each scheme's
service times taken from its measured column and its teardown shape
from §6.3.1 (guard-page slots must madvise their reservations
immediately; HFI/bounds-check slots batch).  Arrivals are sized
against the guard-pages baseline and shared across schemes.

Gates:

1. **accounting**: every job ends in exactly one of
   succeeded/failed/shed at every load point.
2. **measured_cells**: all (job, scheme) cells executed to ``hlt``
   with positive cycle counts, and HFI's codegen beats bounds-check's
   on every job (the Fig. 4 direction).
3. **hfi_serves_better**: at the heaviest load HFI's goodput is at
   least guard-pages' and its p99 latency is no worse — the measured
   codegen advantage must survive the serving loop.

Writes ``BENCH_render_pipelines.json`` (shared bench envelope) at the
repo root.

Run:  python scripts/bench_render_pipelines.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from bench_common import gate, write_envelope
from repro.runtime import ServingConfig, ServingSimulator
from repro.workloads import (
    RENDER_SCHEMES,
    measure_render_jobs,
    render_requests,
    render_scheme_costs,
)

SEED = 2023
JOBS = 3000
CORES = 8
SLOTS_PER_SHARD = 32
LOAD_POINTS = (0.6, 0.9, 1.2)
BASELINE_SCHEME = "guard-pages"


def main():
    print("measuring render jobs under each scheme's codegen ...")
    table = measure_render_jobs()
    for job in sorted(table):
        cells = "  ".join(f"{scheme}={table[job][scheme]:7d}"
                          for scheme in RENDER_SCHEMES)
        print(f"  {job:22s} {cells}")
    cells_ok = all(
        cycles > 0 for per in table.values() for cycles in per.values())
    hfi_beats_bounds = all(per["hfi"] < per["bounds-check"]
                           for per in table.values())

    config = ServingConfig(n_cores=CORES, slots_per_shard=SLOTS_PER_SHARD,
                           max_inflight=CORES * SLOTS_PER_SHARD)
    results = {"job_cycles": {job: dict(per)
                              for job, per in sorted(table.items())},
               "schemes": {scheme: [] for scheme in RENDER_SCHEMES}}
    all_accounted = True
    goodput_at_peak = {}
    p99_at_peak = {}
    print()
    for load in LOAD_POINTS:
        streams = render_requests(table, JOBS, seed=SEED, load=load,
                                  n_cores=CORES,
                                  baseline_scheme=BASELINE_SCHEME)
        for scheme in RENDER_SCHEMES:
            sim = ServingSimulator(render_scheme_costs(scheme), config,
                                   seed=SEED)
            metrics = sim.run(streams[scheme])
            all_accounted = all_accounted and metrics.accounted
            if load == LOAD_POINTS[-1]:
                goodput_at_peak[scheme] = metrics.goodput_rps
                p99_at_peak[scheme] = metrics.p99_cycles
            results["schemes"][scheme].append({
                "load": load,
                "goodput_rps": round(metrics.goodput_rps, 1),
                "throughput_rps": round(metrics.throughput_rps, 1),
                "p50_cycles": metrics.p50_cycles,
                "p99_cycles": metrics.p99_cycles,
                "mean_latency_cycles": round(
                    metrics.mean_latency_cycles, 1),
                "shed": metrics.shed,
                "failed": metrics.failed,
                "peak_inflight": metrics.peak_inflight,
                "utilization": round(metrics.utilization, 4),
                "accounted": metrics.accounted,
            })
            print(f"{scheme:12s} load={load:4.2f}  "
                  f"goodput={metrics.goodput_rps:10,.0f} jobs/s  "
                  f"p50={metrics.p50_cycles:9,d}cy  "
                  f"p99={metrics.p99_cycles:10,d}cy  "
                  f"shed={metrics.shed:4d}  "
                  f"util={metrics.utilization:4.2f}")

    serves_better = (goodput_at_peak["hfi"]
                     >= goodput_at_peak["guard-pages"]
                     and p99_at_peak["hfi"] <= p99_at_peak["guard-pages"])

    print()
    payload = write_envelope(
        os.path.join(os.path.dirname(__file__), "..",
                     "BENCH_render_pipelines.json"),
        "render_pipelines",
        config={"seed": SEED, "jobs_per_point": JOBS, "cores": CORES,
                "slots_per_shard": SLOTS_PER_SHARD,
                "load_points": list(LOAD_POINTS),
                "baseline_scheme": BASELINE_SCHEME},
        results=results,
        gates={
            "accounting": gate(all_accounted),
            "measured_cells": gate(
                cells_ok and hfi_beats_bounds,
                cells=len(table) * len(RENDER_SCHEMES),
                hfi_beats_bounds_check=hfi_beats_bounds),
            "hfi_serves_better": gate(
                serves_better,
                goodput_hfi=round(goodput_at_peak["hfi"]),
                goodput_guard_pages=round(
                    goodput_at_peak["guard-pages"]),
                p99_hfi=p99_at_peak["hfi"],
                p99_guard_pages=p99_at_peak["guard-pages"]),
        })
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
