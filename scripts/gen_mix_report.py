"""Generate the instruction-mix appendix for EXPERIMENTS.md.

Profiles a representative workload per suite under the three Fig. 3
strategies and prints the mix deltas that explain the results — run
manually when recalibrating:

    python scripts/gen_mix_report.py
"""

from repro.analysis import compare, format_table
from repro.workloads import SIGHTGLASS_BENCHMARKS, SPEC_BENCHMARKS

STRATEGIES = ["guard-pages", "bounds-check", "hfi"]
PICKS = [
    ("sieve", SIGHTGLASS_BENCHMARKS["sieve"]),
    ("445.gobmk", SPEC_BENCHMARKS["445.gobmk"]),
    ("429.mcf", SPEC_BENCHMARKS["429.mcf"]),
]


def main() -> None:
    for name, builder in PICKS:
        module = builder(1)
        profiles = compare(module, STRATEGIES)
        rows = []
        for strategy in STRATEGIES:
            p = profiles[strategy]
            rows.append((strategy, f"{p.cycles:,}",
                         f"{p.instructions:,}", f"{p.memory_ops:,}",
                         f"{p.branches:,}", f"{p.binary_size:,}",
                         f"{p.ipc_proxy:.2f}"))
        print(format_table(
            ["strategy", "cycles", "instructions", "mem ops",
             "branches", "binary B", "insn/cycle"],
            rows, title=f"\n== {name} =="))
        hfi = profiles["hfi"]
        top = ", ".join(f"{op}:{n}" for op, n in hfi.top(6))
        print(f"hfi top opcodes: {top}")


if __name__ == "__main__":
    main()
