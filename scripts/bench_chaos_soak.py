#!/usr/bin/env python
"""Goodput retained under injected faults: HFI vs guard pages.

Runs the chaos soak (``repro.chaos.run_soak``) at escalating injected
fault rates — 1%, 5%, 20% — for a pool backed by each isolation
strategy, and reports *goodput retained*: successful base-workload
requests per simulated second, relative to the same seeded workload
served fault-free.  Two gates:

1. **Robustness**: every seeded run at every rate ends clean — zero
   leaked pool slots, zero zombie sandboxes, clean pool invariants,
   and every injected fault classified.
2. **Graceful degradation**: at the 5% fault rate the supervised
   runtime retains at least 90% of fault-free goodput (watchdog kills,
   quarantine scrubs, backoff, and shed bursts together cost < 10%).

Writes ``BENCH_chaos_soak.json`` (the shared bench envelope) at the
repo root.

Run:  python scripts/bench_chaos_soak.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from bench_common import gate, write_envelope
from repro.chaos import run_soak

SEEDS = range(20)
REQUESTS = 200
FAULT_RATES = (0.01, 0.05, 0.20)
STRATEGIES = ("hfi", "guard-pages")
GATE_RATE = 0.05
GATE_RETAINED = 0.90


def main():
    results = {"strategies": {}}
    all_clean = True
    gate_retained = {}
    for strategy in STRATEGIES:
        rows = []
        for rate in FAULT_RATES:
            report = run_soak(SEEDS, n_requests=REQUESTS,
                              fault_rate=rate, strategy=strategy)
            retained = report.goodput_retained
            all_clean = all_clean and report.clean
            if rate == GATE_RATE:
                gate_retained[strategy] = retained
            rows.append({
                "fault_rate": rate,
                "injected": report.injected,
                "breakdown": report.breakdown(),
                "unaccounted": report.unaccounted,
                "leaked_slots": report.leaked_slots,
                "zombie_sandboxes": report.zombie_sandboxes,
                "invariant_violations": report.invariant_violations,
                "goodput_retained": round(retained, 4),
                "clean": report.clean,
            })
            print(f"{strategy:12s} rate={rate:4.0%}  "
                  f"injected={report.injected:4d}  "
                  f"retained={retained:7.2%}  "
                  f"{'CLEAN' if report.clean else 'DIRTY'}")
            for failure in report.failures()[:6]:
                print(f"  FAIL: {failure}")
        results["strategies"][strategy] = rows

    gate_ok = all(r is not None and r >= GATE_RETAINED
                  for r in gate_retained.values())
    results["goodput_retained_at_gate"] = {
        k: round(v, 4) for k, v in gate_retained.items()}
    print()
    payload = write_envelope(
        os.path.join(os.path.dirname(__file__), "..",
                     "BENCH_chaos_soak.json"),
        "chaos_soak",
        config={"seeds": len(SEEDS), "requests_per_seed": REQUESTS,
                "fault_rates": list(FAULT_RATES),
                "gate_fault_rate": GATE_RATE,
                "min_goodput_retained": GATE_RETAINED},
        results=results,
        gates={
            "all_clean": gate(all_clean),
            "goodput_retained": gate(
                gate_ok, floor=GATE_RETAINED,
                retained={k: round(v, 4)
                          for k, v in gate_retained.items()}),
        })
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
