"""Benchmark the out-of-order timing backend against the in-order one.

Four experiments over *simulated cycles* (not wall clock), all on the
staged engine so only the timing model varies:

* **dispatch suite** — the dispatch-bound workloads from
  ``bench_dispatch.py`` under both timing models.  Gated: the OoO
  backend must never report more cycles than the in-order model on
  this suite (a wide machine strictly adds overlap on dispatch-bound
  code), and architectural counters must be bit-identical.
* **width/depth sweep** — the straight-line ALU kernel across machine
  widths {1, 2, 4, 8} x ROB depths {16, 64, 128}.  Gated: cycles are
  monotonically non-increasing as either resource grows (a scoreboard
  that slows down when given more hardware is wrong).
* **hmov overlap** (§4.2) — the load/store-dense kernel under the HFI
  strategy with the hmov bounds check forced to cost 3 cycles.  Gated:
  the OoO cycle count does not move (the check hides under the dTLB +
  L1D latency of the access it guards), while the in-order model —
  which by construction charges it serially — gets strictly slower.
  This is the paper's "checks run in parallel with TLB lookup" claim,
  demonstrated structurally rather than assumed.
* **serialization drain** (§3.4, Figs. 6/7 analogue) — the NGINX-shaped
  sandbox transition loop with serialized vs unserialized
  ``hfi_enter``/``hfi_exit``.  Gated: serialization costs cycles under
  both models, and costs *more* on the OoO machine, which loses the
  window of in-flight work a drain empties — the reason the paper
  treats serialized transitions as the expensive deployment mode.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/bench_ooo.py

Writes ``BENCH_ooo_sweep.json`` (the shared bench envelope).
"""

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_common import gate, write_envelope
from bench_dispatch import DISPATCH_SUITE, _builder, build_mem_kernel

OUT_DEFAULT = pathlib.Path(__file__).resolve().parents[1] / \
    "BENCH_ooo_sweep.json"

TIMINGS = ("inorder", "ooo")
WIDTHS = (1, 2, 4, 8)
ROB_DEPTHS = (16, 64, 128)
TRANSITION_ITERS = 200


def _run_workload(suite, name, strategy, scale, timing, params=None):
    """One workload on the staged engine under ``timing``; returns the
    CPU stats plus (for ooo) the scoreboard counters."""
    from repro.params import MachineParams
    from repro.wasm import WasmRuntime, make_strategy

    module = _builder(suite, name)(scale)
    runtime = WasmRuntime(params or MachineParams(), engine="staged",
                          timing=timing)
    instance = runtime.instantiate(module, make_strategy(strategy))
    result = runtime.run(instance, max_instructions=50_000_000)
    assert result.reason == "hlt", (name, timing, result.reason)
    stats = runtime.cpu.stats
    row = {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "loads": stats.loads,
        "stores": stats.stores,
        "branches": stats.branches,
        "mispredicts": stats.mispredicts,
    }
    if timing == "ooo":
        row["ooo"] = runtime.cpu.timing.ooo_stats().as_dict()
        assert runtime.cpu.timing.audit() == [], (name, "audit")
    return row


# ----------------------------------------------------------------------
# 1. dispatch-bound suite, both timing models
# ----------------------------------------------------------------------
def run_dispatch_suite():
    rows = []
    for suite, name, strategy, scale in DISPATCH_SUITE:
        per = {t: _run_workload(suite, name, strategy, scale, t)
               for t in TIMINGS}
        base, ooo = per["inorder"], per["ooo"]
        arch_identical = all(base[k] == ooo[k] for k in
                             ("instructions", "loads", "stores",
                              "branches", "mispredicts"))
        row = {
            "workload": f"{suite}:{name}:{strategy}",
            "scale": scale,
            "timings": per,
            "speedup": round(base["cycles"] / ooo["cycles"], 2),
            "arch_identical": arch_identical,
        }
        rows.append(row)
        print(f"[dispatch] {row['workload']:38s} "
              f"{base['cycles']:>10,d} -> {ooo['cycles']:>10,d} cycles "
              f"({row['speedup']:.2f}x, "
              f"{'identical' if arch_identical else 'DIVERGED'})",
              flush=True)
    return rows


# ----------------------------------------------------------------------
# 2. width x ROB-depth sweep on the ALU kernel
# ----------------------------------------------------------------------
def run_sweep():
    from repro.params import MachineParams

    grid = {}
    for width in WIDTHS:
        for depth in ROB_DEPTHS:
            params = MachineParams().with_overrides(
                ooo_width=width, ooo_rob_depth=depth)
            row = _run_workload("synthetic", "alu", "guard-pages", 2,
                                "ooo", params=params)
            grid[f"w{width}_rob{depth}"] = {
                "width": width, "rob_depth": depth,
                "cycles": row["cycles"],
                "rob_stalls": row["ooo"]["rob_stalls"],
                "peak_inflight": row["ooo"]["peak_inflight"],
            }
            print(f"[sweep   ] width={width} rob={depth:>3d}  "
                  f"{row['cycles']:>9,d} cycles  "
                  f"rob_stalls={row['ooo']['rob_stalls']:,d}  "
                  f"peak_inflight={row['ooo']['peak_inflight']}",
                  flush=True)
    return grid


def _sweep_monotone(grid):
    """Cycles never increase as width or ROB depth grows."""
    violations = []
    for depth in ROB_DEPTHS:
        for lo, hi in zip(WIDTHS, WIDTHS[1:]):
            a = grid[f"w{lo}_rob{depth}"]["cycles"]
            b = grid[f"w{hi}_rob{depth}"]["cycles"]
            if b > a:
                violations.append(f"rob={depth}: width {lo}->{hi} "
                                  f"{a}->{b}")
    for width in WIDTHS:
        for lo, hi in zip(ROB_DEPTHS, ROB_DEPTHS[1:]):
            a = grid[f"w{width}_rob{lo}"]["cycles"]
            b = grid[f"w{width}_rob{hi}"]["cycles"]
            if b > a:
                violations.append(f"width={width}: rob {lo}->{hi} "
                                  f"{a}->{b}")
    return violations


# ----------------------------------------------------------------------
# 3. hmov bounds-check overlap (§4.2)
# ----------------------------------------------------------------------
def run_hmov_overlap(check_cycles=3):
    from repro.params import MachineParams

    results = {}
    for timing in TIMINGS:
        per = {}
        for extra in (0, check_cycles):
            params = MachineParams().with_overrides(
                hmov_extra_cycles=extra)
            row = _run_workload("synthetic", "mem", "hfi", 2, timing,
                                params=params)
            per[f"extra{extra}"] = row["cycles"]
            if timing == "ooo":
                per.setdefault("overlap_rate", round(
                    row["ooo"]["checks_overlapped"]
                    / max(1, row["ooo"]["checks_overlapped"]
                          + row["ooo"]["checks_exposed"]), 4))
        per["delta"] = per[f"extra{check_cycles}"] - per["extra0"]
        results[timing] = per
        print(f"[hmov    ] {timing:8s} extra=0: {per['extra0']:,d}  "
              f"extra={check_cycles}: {per[f'extra{check_cycles}']:,d}  "
              f"delta={per['delta']:,d}", flush=True)
    return results


# ----------------------------------------------------------------------
# 4. serialization drain (§3.4, Figs. 6/7 analogue)
# ----------------------------------------------------------------------
def _transition_cycles(timing, serialized, iterations=TRANSITION_ITERS):
    """The golden NGINX transition loop, parameterized on whether the
    sandbox descriptor marks enter/exit as serialized."""
    from repro.core import (ImplicitCodeRegion, ImplicitDataRegion,
                            SandboxFlags)
    from repro.core.encoding import encode_region, encode_sandbox
    from repro.core.regions import ExplicitDataRegion
    from repro.cpu.machine import Cpu
    from repro.isa import Assembler, Imm, Mem, Reg
    from repro.os.address_space import AddressSpace, Prot
    from repro.params import MachineParams

    params = MachineParams()
    mem = AddressSpace(params)
    cpu = Cpu(params, memory=mem, engine="staged", timing=timing)
    heap = mem.mmap(1 << 20, Prot.rw(), addr=0x10_0000)
    stack = mem.mmap(1 << 16, Prot.rw(), addr=0x7F_0000)
    cpu.regs.write(Reg.RSP, stack + (1 << 16) - 64)
    desc = mem.mmap(4096, Prot.rw(), addr=0x20_0000)

    code = ImplicitCodeRegion.covering(0x40_0000, 1 << 16)
    data = ImplicitDataRegion(heap, 0xFFFF, True, True)
    stack_region = ImplicitDataRegion(0x7F_0000, 0xFFFF, True, True)
    explicit = ExplicitDataRegion(heap, 1 << 16, permission_read=True,
                                  permission_write=True)
    mem.write_bytes(desc, encode_region(code))
    mem.write_bytes(desc + 24, encode_region(data))
    mem.write_bytes(desc + 48, encode_region(stack_region))
    mem.write_bytes(desc + 72, encode_region(explicit))
    mem.write_bytes(desc + 96, encode_sandbox(
        SandboxFlags(is_hybrid=False, is_serialized=serialized)))

    asm = Assembler()
    asm.mov(Reg.RDI, Imm(desc))
    asm.hfi_set_region(0, Reg.RDI)
    asm.mov(Reg.RDI, Imm(desc + 24))
    asm.hfi_set_region(2, Reg.RDI)
    asm.mov(Reg.RDI, Imm(desc + 48))
    asm.hfi_set_region(3, Reg.RDI)
    asm.mov(Reg.RDI, Imm(desc + 72))
    asm.hfi_set_region(6, Reg.RDI)
    asm.mov(Reg.R8, Imm(iterations))
    asm.mov(Reg.RDI, Imm(desc + 96))
    asm.label("request")
    asm.hfi_enter(Reg.RDI)
    asm.mov(Reg.RBX, Imm(heap))
    asm.mov(Reg.RAX, Mem(base=Reg.RBX, disp=16))
    asm.add(Reg.RAX, Imm(0x1234))
    asm.mov(Mem(base=Reg.RBX, disp=16), Reg.RAX)
    asm.mov(Reg.RCX, Imm(64))
    asm.hmov(0, Reg.RDX, Mem(index=Reg.RCX, scale=1, disp=0))
    asm.hmov(0, Mem(index=Reg.RCX, scale=1, disp=8), Reg.RDX)
    asm.hfi_exit()
    asm.dec(Reg.R8)
    asm.jne("request")
    asm.hlt()
    program = asm.assemble()
    cpu.load_program(program)
    result = cpu.run(program.base, max_instructions=1_000_000)
    assert result.reason == "hlt", (timing, serialized, result.reason)
    return cpu.stats.cycles


def run_serialization_drain():
    results = {}
    for timing in TIMINGS:
        serialized = _transition_cycles(timing, True)
        unserialized = _transition_cycles(timing, False)
        per_transition = ((serialized - unserialized)
                          / (2 * TRANSITION_ITERS))  # enter + exit
        results[timing] = {
            "serialized_cycles": serialized,
            "unserialized_cycles": unserialized,
            "drain_cost_per_transition": round(per_transition, 2),
        }
        print(f"[drain   ] {timing:8s} serialized: {serialized:,d}  "
              f"unserialized: {unserialized:,d}  "
              f"per-transition: {per_transition:.1f}", flush=True)
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_DEFAULT)
    args = parser.parse_args()

    dispatch = run_dispatch_suite()
    sweep = run_sweep()
    hmov = run_hmov_overlap()
    drain = run_serialization_drain()

    monotone_violations = _sweep_monotone(sweep)
    gates = {
        "ooo_not_slower": gate(
            all(r["timings"]["ooo"]["cycles"]
                <= r["timings"]["inorder"]["cycles"] for r in dispatch),
            slower=[r["workload"] for r in dispatch
                    if r["timings"]["ooo"]["cycles"]
                    > r["timings"]["inorder"]["cycles"]]),
        "arch_identical": gate(
            all(r["arch_identical"] for r in dispatch),
            diverged=[r["workload"] for r in dispatch
                      if not r["arch_identical"]]),
        "width_monotone": gate(not monotone_violations,
                               violations=monotone_violations),
        "hmov_overlapped": gate(
            hmov["ooo"]["delta"] == 0 and hmov["inorder"]["delta"] > 0,
            ooo_delta=hmov["ooo"]["delta"],
            inorder_delta=hmov["inorder"]["delta"],
            overlap_rate=hmov["ooo"].get("overlap_rate")),
        "drain_costs_cycles": gate(
            all(d["serialized_cycles"] > d["unserialized_cycles"]
                for d in drain.values()),
            per_transition={t: d["drain_cost_per_transition"]
                            for t, d in drain.items()}),
        "drain_hurts_ooo_more": gate(
            drain["ooo"]["drain_cost_per_transition"]
            >= drain["inorder"]["drain_cost_per_transition"],
            ooo=drain["ooo"]["drain_cost_per_transition"],
            inorder=drain["inorder"]["drain_cost_per_transition"]),
    }
    payload = write_envelope(
        args.out, "ooo_sweep",
        config={"engine": "staged", "timing": None,  # swept
                "timings": list(TIMINGS), "widths": list(WIDTHS),
                "rob_depths": list(ROB_DEPTHS),
                "dispatch_suite": [list(e) for e in DISPATCH_SUITE],
                "transition_iterations": TRANSITION_ITERS},
        results={"dispatch": dispatch, "sweep": sweep, "hmov": hmov,
                 "serialization_drain": drain},
        gates=gates)
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
