#!/usr/bin/env python
"""MPK-vs-HFI domain-count scaling (the Fig. 5 scaling argument).

Sweeps the number of live protection domains from 1 to 2048 and
measures the mean cost per domain transition under

* **MPK with key virtualization** (``repro.mpk.virtualize``): the 15
  usable hardware keys form a cache of the domain set; a switch to a
  non-resident domain steals the LRU key — untag the victim's pages,
  retag the incoming domain's pages (``pkey_mprotect`` walks against a
  real :class:`AddressSpace`), then the usual ERIM wrpkru gate.
* **HFI** (``repro.runtime.transitions``): serialized
  ``hfi_enter``/``hfi_exit`` with the metadata moves — the cost never
  reads the domain count.

Each sweep point runs a warm-up pass (every domain touched once) and
then measures seeded uniform-random switches in steady state, so the
below-knee points show the *capacity* behaviour: at <=15 domains every
switch is a residency hit and virtualization adds nothing; at 16 the
first capacity miss appears and the per-switch mean jumps by the
untag+retag syscall cost.

Gates (the acceptance criteria for the repaired MPK key lifecycle):

1. **mpk_knee_above_15**: virtualization overhead is ~0 through 15
   domains and strictly positive *and growing* at every point past 15.
2. **hfi_flat**: HFI's per-transition cost varies by <5% from 1 to
   2048 domains (it is flat by construction; the gate pins that any
   future cost-model change keeps it flat).
3. **churn_survives**: the sweep drives far more than 15 pkey
   alloc/free cycles through :class:`MpkDomainManager` without raising
   ``MpkError`` and without leaking a single key — the regression the
   old increment-only allocator failed at key 16.

Writes ``BENCH_domain_scaling.json`` (shared bench envelope) at the
repo root.

Run:  python scripts/bench_domain_scaling.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from bench_common import gate, write_envelope
from repro.mpk import USABLE_KEYS
from repro.mpk.virtualize import measure_switch_costs

SEED = 2023
SWITCHES_PER_POINT = 2000
PAGES_PER_DOMAIN = 1
DOMAIN_COUNTS = (1, 2, 4, 8, 12, 15, 16, 24, 32, 64, 128, 256, 512,
                 1024, 2048)
HFI_FLATNESS_PCT = 5.0
CHURN_FLOOR = USABLE_KEYS  # the old allocator died at free/alloc #16


def main():
    rows = []
    for n in DOMAIN_COUNTS:
        try:
            point = measure_switch_costs(
                n, SWITCHES_PER_POINT, seed=SEED,
                pages_per_domain=PAGES_PER_DOMAIN)
        except Exception as exc:           # any MpkError fails the gate
            print(f"n={n}: {type(exc).__name__}: {exc}")
            rows.append({"domains": n, "error": str(exc)})
            continue
        rows.append(point)
        print(f"n={n:5d}  mpk={point['mpk_mean_cycles']:10.1f}  "
              f"overhead={point['virtualization_overhead_cycles']:10.1f}  "
              f"hfi={point['hfi_mean_cycles']:6.1f}  "
              f"miss={point['miss_rate']:5.3f}  "
              f"steals={point['key_steals']:5d}  "
              f"frees={point['key_frees']:5d}  "
              f"leaked={point['leaked_keys']}")

    clean = [r for r in rows if "error" not in r]
    no_errors = len(clean) == len(rows)

    below = [r for r in clean if r["domains"] <= USABLE_KEYS]
    above = [r for r in clean if r["domains"] > USABLE_KEYS]
    flat_below = all(r["virtualization_overhead_cycles"] < 1.0
                     for r in below)
    positive_above = all(r["virtualization_overhead_cycles"] > 0
                         for r in above)
    overheads = [r["virtualization_overhead_cycles"] for r in above]
    growing = all(b > a for a, b in zip(overheads, overheads[1:]))

    hfi_means = [r["hfi_mean_cycles"] for r in clean]
    hfi_spread_pct = (100.0 * (max(hfi_means) - min(hfi_means))
                      / min(hfi_means)) if hfi_means else float("inf")

    total_frees = sum(r["key_frees"] for r in clean)
    leaked = sum(r["leaked_keys"] for r in clean)

    payload = write_envelope(
        os.path.join(os.path.dirname(__file__), "..",
                     "BENCH_domain_scaling.json"),
        "domain_scaling",
        config={"seed": SEED, "switches_per_point": SWITCHES_PER_POINT,
                "pages_per_domain": PAGES_PER_DOMAIN,
                "domain_counts": list(DOMAIN_COUNTS),
                "usable_keys": USABLE_KEYS},
        results={"sweep": rows},
        gates={
            "mpk_knee_above_15": gate(
                no_errors and flat_below and positive_above and growing,
                flat_below_knee=flat_below,
                positive_above_knee=positive_above,
                strictly_growing=growing,
                overhead_at_15=round(below[-1][
                    "virtualization_overhead_cycles"], 1) if below else None,
                overhead_at_16=round(overheads[0], 1) if overheads else None,
                overhead_at_2048=round(overheads[-1], 1)
                if overheads else None),
            "hfi_flat": gate(
                hfi_spread_pct < HFI_FLATNESS_PCT,
                spread_pct=round(hfi_spread_pct, 3),
                bound_pct=HFI_FLATNESS_PCT,
                hfi_cycles=hfi_means[0] if hfi_means else None),
            "churn_survives": gate(
                no_errors and total_frees > CHURN_FLOOR and leaked == 0,
                alloc_free_cycles=total_frees, floor=CHURN_FLOOR,
                leaked_keys=leaked, mpk_errors=len(rows) - len(clean)),
        })
    return 0 if payload["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
