"""Regenerate the golden-cycle fixtures from the golden workloads.

Run from the repo root::

    PYTHONPATH=src python scripts/gen_golden_cycles.py            # in-order
    PYTHONPATH=src python scripts/gen_golden_cycles.py --timing ooo

Each timing model has its own fixture file (``tests/golden_cycles.json``
for in-order, ``tests/golden_cycles_ooo.json`` for the out-of-order
backend) because the models legitimately disagree on cycle counts while
agreeing on every architectural counter.  Only regenerate a fixture for
a change that is *supposed* to alter that model's timing — refactors
must leave it byte-identical (that is the point of the fixture; see
src/repro/workloads/golden.py).
"""

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.cpu.timing import TIMING_MODELS  # noqa: E402
from repro.workloads.golden import run_all  # noqa: E402

TESTS = pathlib.Path(__file__).resolve().parents[1] / "tests"
FIXTURES = {
    "inorder": TESTS / "golden_cycles.json",
    "ooo": TESTS / "golden_cycles_ooo.json",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timing", default="inorder",
                        choices=sorted(TIMING_MODELS),
                        help="timing model to freeze (default: inorder)")
    args = parser.parse_args()
    out = FIXTURES[args.timing]
    results = run_all(timing=args.timing)
    out.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")
    total = sum(m.get("cycles", 0) for m in results.values()
                if isinstance(m.get("cycles", 0), int))
    print(f"wrote {out} ({len(results)} workloads, {total} total cycles)")


if __name__ == "__main__":
    main()
