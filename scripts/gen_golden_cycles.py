"""Regenerate tests/golden_cycles.json from the golden workloads.

Run from the repo root::

    PYTHONPATH=src python scripts/gen_golden_cycles.py

Only regenerate for a change that is *supposed* to alter timing —
refactors must leave this file byte-identical (that is the point of
the fixture; see src/repro/workloads/golden.py).
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.workloads.golden import run_all  # noqa: E402

OUT = pathlib.Path(__file__).resolve().parents[1] / "tests" / \
    "golden_cycles.json"


def main() -> None:
    results = run_all()
    OUT.write_text(json.dumps(results, indent=2, sort_keys=False) + "\n")
    total = sum(m.get("cycles", 0) for m in results.values()
                if isinstance(m.get("cycles", 0), int))
    print(f"wrote {OUT} ({len(results)} workloads, {total} total cycles)")


if __name__ == "__main__":
    main()
