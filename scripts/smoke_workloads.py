"""Dev smoke: run a workload suite across strategies, print ratios."""

import sys
import time

from repro.wasm import (
    BoundsCheckStrategy,
    GuardPagesStrategy,
    HfiEmulationStrategy,
    HfiStrategy,
    WasmRuntime,
)


def main(which: str, scale: int = 1) -> None:
    if which == "sightglass":
        from repro.workloads.sightglass import SIGHTGLASS_BENCHMARKS as SUITE
    else:
        from repro.workloads.spec import SPEC_BENCHMARKS as SUITE
    for name, builder in SUITE.items():
        mod = builder(scale)
        results = {}
        t0 = time.time()
        for strat in (GuardPagesStrategy(), BoundsCheckStrategy(),
                      HfiStrategy(), HfiEmulationStrategy()):
            rt = WasmRuntime()
            inst = rt.instantiate(mod, strat)
            res = rt.run(inst)
            g = rt.space.read(inst.layout.globals_base)
            results[strat.name] = (res.reason, g, res.stats.cycles,
                                   res.stats.instructions)
        vals = {v[1] for v in results.values()}
        ok = "OK " if len(vals) == 1 and all(
            v[0] == "hlt" for v in results.values()) else "BAD"
        gp = results["guard-pages"][2]
        bc = results["bounds-check"][2]
        hf = results["hfi"][2]
        em = results["hfi-emulation"][2]
        print(f"{ok} {name:16s} insn={results['guard-pages'][3]:7d} "
              f"gp={gp:9d} bc={bc/gp:5.2f} hfi={hf/gp:5.2f} "
              f"emu/hfi={em/hf:5.3f} t={time.time()-t0:.1f}s", flush=True)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "sightglass",
         int(sys.argv[2]) if len(sys.argv) > 2 else 1)
