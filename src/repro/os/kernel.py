"""The kernel: syscall dispatch with seccomp filtering and cost model.

Every syscall pays the ring-transition cost
(:attr:`MachineParams.syscall_cycles`) plus the operation's own cost.
If the calling process has a seccomp filter installed, the filter runs
first and its evaluation cost is added — this is the per-syscall tax
the §6.4.1 experiment measures against HFI's decode-stage redirect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.sink import Telemetry, coalesce
from ..telemetry.stats import KernelStats
from .address_space import Prot
from .filesystem import FileSystem
from .process import Process
from .seccomp import SeccompAction
from .signals import SigInfo, Signal


class Sys(enum.IntEnum):
    """Linux x86-64 syscall numbers (subset)."""

    READ = 0
    WRITE = 1
    OPEN = 2
    CLOSE = 3
    MMAP = 9
    MPROTECT = 10
    MUNMAP = 11
    MADVISE = 28
    GETPID = 39
    EXIT = 60


EBADF = -9
ENOENT = -2
ENOSYS = -38
EPERM = -1


@dataclass
class SyscallResult:
    """Return value and the total modelled cycle cost of a syscall."""

    value: int
    cycles: int
    action: SeccompAction = SeccompAction.ALLOW


class Kernel:
    """Dispatches syscalls for processes; owns the filesystem."""

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 filesystem: Optional[FileSystem] = None,
                 telemetry: Optional[Telemetry] = None):
        self.params = params
        self.fs = filesystem if filesystem is not None else FileSystem()
        self._next_pid = 1
        self.processes: Dict[int, Process] = {}
        self.syscall_count = 0
        self.seccomp_diverted = 0
        self.segv_delivered = 0
        self.syscall_cycles = 0
        self.telemetry = coalesce(telemetry)
        if self.telemetry.enabled:
            self.telemetry.register_component("kernel", self.stats)

    def stats(self) -> KernelStats:
        """Uniform component-stats snapshot (``repro.telemetry``)."""
        return KernelStats(
            component="kernel", syscalls=self.syscall_count,
            seccomp_diverted=self.seccomp_diverted,
            segv_delivered=self.segv_delivered,
            syscall_cycles=self.syscall_cycles)

    def spawn(self, address_space=None, va_bits: Optional[int] = None) -> Process:
        """Create a process with a fresh address space."""
        from .address_space import AddressSpace
        if address_space is None:
            address_space = AddressSpace(self.params, va_bits=va_bits)
        proc = Process(pid=self._next_pid, address_space=address_space)
        self._next_pid += 1
        self.processes[proc.pid] = proc
        return proc

    # ------------------------------------------------------------------
    def syscall(self, proc: Process, nr: int, *args: int) -> SyscallResult:
        """Run syscall ``nr`` for ``proc``; returns value + cycle cost."""
        self.syscall_count += 1
        cost = self.params.syscall_cycles
        if self.telemetry.enabled:
            self.telemetry.count("kernel.syscall")
        if proc.seccomp is not None:
            action, filter_cost = proc.seccomp.evaluate(nr)
            cost += filter_cost
            if action is SeccompAction.ERRNO:
                self._charge(cost)
                return SyscallResult(EPERM, cost, action)
            if action in (SeccompAction.TRAP, SeccompAction.KILL,
                          SeccompAction.NOTIFY):
                # Control is diverted to the supervisor; the caller
                # decides what happens next (§6.4.1's interposition).
                self.seccomp_diverted += 1
                if self.telemetry.enabled:
                    self.telemetry.count("kernel.seccomp_diverted")
                self._charge(cost)
                return SyscallResult(0, cost, action)
        value, op_cost = self._dispatch(proc, nr, args)
        self._charge(cost + op_cost)
        return SyscallResult(value, cost + op_cost)

    def _charge(self, cycles: int) -> None:
        self.syscall_cycles += cycles
        if self.telemetry.enabled:
            self.telemetry.add_cycles("kernel.syscall", cycles)

    def _dispatch(self, proc: Process, nr: int,
                  args: Tuple[int, ...]) -> Tuple[int, int]:
        if nr == Sys.OPEN:
            return self._sys_open(proc, args)
        if nr == Sys.READ:
            return self._sys_read(proc, args)
        if nr == Sys.WRITE:
            return self._sys_write(proc, args)
        if nr == Sys.CLOSE:
            return self._sys_close(proc, args)
        if nr == Sys.MMAP:
            length, prot = args[0], Prot(args[1])
            addr = proc.address_space.mmap(length, prot)
            return addr, self.params.mmap_fixed_cycles
        if nr == Sys.MPROTECT:
            addr, length, prot = args[0], args[1], Prot(args[2])
            return 0, proc.address_space.mprotect(addr, length, prot)
        if nr == Sys.MUNMAP:
            return 0, proc.address_space.munmap(args[0], args[1])
        if nr == Sys.MADVISE:
            return 0, proc.address_space.madvise_dontneed(args[0], args[1])
        if nr == Sys.GETPID:
            return proc.pid, 10
        if nr == Sys.EXIT:
            return 0, 10
        return ENOSYS, 10

    # ------------------------------------------------------------------
    # file syscalls; the path name for OPEN is args[0] used as a key
    # into a name table so programs can pass small integers.
    # ------------------------------------------------------------------
    def _sys_open(self, proc: Process, args) -> Tuple[int, int]:
        name = self._name_for(args[0])
        if not self.fs.exists(name):
            return ENOENT, 120
        fd = proc.allocate_fd(self.fs.open(name))
        return fd, 350  # dentry walk + fd table update

    def _sys_read(self, proc: Process, args) -> Tuple[int, int]:
        fd, count = args[0], args[1] if len(args) > 1 else 4096
        handle = proc.fd_table.get(fd)
        if handle is None:
            return EBADF, 80
        data = self.fs.read(handle, count)
        return len(data), 250 + len(data) // 64

    def _sys_write(self, proc: Process, args) -> Tuple[int, int]:
        fd, count = args[0], args[1] if len(args) > 1 else 0
        handle = proc.fd_table.get(fd)
        if handle is None:
            return EBADF, 80
        written = self.fs.write(handle, b"\x00" * count)
        return written, 250 + written // 64

    def _sys_close(self, proc: Process, args) -> Tuple[int, int]:
        fd = args[0]
        if fd not in proc.fd_table:
            return EBADF, 60
        del proc.fd_table[fd]
        return 0, 120

    _names: Dict[int, str] = {}

    @classmethod
    def register_name(cls, token: int, name: str) -> None:
        """Associate an integer token with a file name for OPEN."""
        cls._names[token] = name

    def _name_for(self, token: int) -> str:
        return self._names.get(token, f"file{token}")

    # ------------------------------------------------------------------
    def deliver_segv(self, proc: Process, fault_addr: int,
                     hfi_cause: int = 0, description: str = "") -> int:
        """Deliver SIGSEGV to ``proc``; returns the delivery cycle cost."""
        info = SigInfo(Signal.SIGSEGV, fault_addr=fault_addr,
                       hfi_cause=hfi_cause, description=description)
        proc.signals.deliver(info)
        self.segv_delivered += 1
        if self.telemetry.enabled:
            self.telemetry.count("kernel.segv")
            self.telemetry.event("kernel.segv", self.syscall_cycles,
                                 fault_addr=fault_addr,
                                 hfi_cause=hfi_cause)
        return self.params.signal_delivery_cycles
