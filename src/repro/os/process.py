"""Processes and kernel context switching, including HFI register save.

Paper §3.3.3: multiple processes can use HFI concurrently if the OS
saves HFI registers alongside general-purpose registers; HFI extends
``xsave``/``xrstor`` with a ``save-hfi-regs`` flag, and executing
``xrstor`` with that flag inside a native sandbox traps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..isa.registers import RegisterFile
from ..params import DEFAULT_PARAMS, MachineParams
from .address_space import AddressSpace
from .filesystem import OpenFile
from .seccomp import SeccompFilter
from .signals import SignalTable


@dataclass
class XSaveArea:
    """The saved extended state of a process (registers + HFI regs)."""

    registers: Optional[RegisterFile] = None
    hfi_snapshot: Optional[Any] = None
    pkru: int = 0


@dataclass
class Process:
    """A process: address space, register context, fds, filters, signals."""

    pid: int
    address_space: AddressSpace
    registers: RegisterFile = field(default_factory=RegisterFile)
    fd_table: Dict[int, OpenFile] = field(default_factory=dict)
    next_fd: int = 3
    seccomp: Optional[SeccompFilter] = None
    signals: SignalTable = field(default_factory=SignalTable)
    #: HFI per-core state while this process is scheduled (duck-typed
    #: to avoid a dependency cycle; it is a ``repro.core.HfiState``).
    hfi_state: Optional[Any] = None
    pkru: int = 0

    def allocate_fd(self, handle: OpenFile) -> int:
        fd = self.next_fd
        self.next_fd += 1
        self.fd_table[fd] = handle
        return fd


class ContextSwitcher:
    """Models the OS scheduler's save/restore of process state.

    :meth:`switch` returns the cycle cost; with ``save_hfi_regs`` the
    22 HFI registers travel with the xsave area (paper §3.3.3 and §5:
    "a simple and minimal change").
    """

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 save_hfi_regs: bool = True):
        self.params = params
        self.save_hfi_regs = save_hfi_regs
        self._areas: Dict[int, XSaveArea] = {}

    def switch(self, out_proc: Process, in_proc: Process) -> int:
        cost = self.params.process_context_switch_cycles
        cost += self._save(out_proc)
        cost += self._restore(in_proc)
        return cost

    def _save(self, proc: Process) -> int:
        area = XSaveArea(registers=proc.registers.copy(), pkru=proc.pkru)
        cost = self.params.xsave_cycles
        if self.save_hfi_regs and proc.hfi_state is not None:
            area.hfi_snapshot = proc.hfi_state.snapshot()
            cost += self.params.xsave_hfi_extra_cycles
        self._areas[proc.pid] = area
        return cost

    def _restore(self, proc: Process) -> int:
        cost = self.params.xrstor_cycles
        area = self._areas.get(proc.pid)
        if area is None:
            return cost
        proc.registers = area.registers.copy()
        proc.pkru = area.pkru
        if self.save_hfi_regs and area.hfi_snapshot is not None:
            if proc.hfi_state is not None:
                proc.hfi_state.restore(area.hfi_snapshot)
            cost += self.params.xsave_hfi_extra_cycles
        return cost
