"""A tiny in-memory filesystem backing the file syscalls.

Exists so the §6.4.1 interposition benchmark (open/read/close x100,000)
exercises a real syscall path rather than a stub.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class OpenFile:
    """An open file description: shared content plus a cursor."""

    name: str
    data: bytes
    offset: int = 0


@dataclass
class FileSystem:
    """Flat namespace of in-memory files."""

    files: Dict[str, bytes] = field(default_factory=dict)

    def create(self, name: str, data: bytes) -> None:
        self.files[name] = bytes(data)

    def exists(self, name: str) -> bool:
        return name in self.files

    def open(self, name: str) -> OpenFile:
        if name not in self.files:
            raise FileNotFoundError(name)
        return OpenFile(name=name, data=self.files[name])

    def read(self, handle: OpenFile, count: int) -> bytes:
        chunk = handle.data[handle.offset:handle.offset + count]
        handle.offset += len(chunk)
        return chunk

    def write(self, handle: OpenFile, data: bytes) -> int:
        content = bytearray(self.files[handle.name])
        end = handle.offset + len(data)
        if end > len(content):
            content.extend(b"\x00" * (end - len(content)))
        content[handle.offset:end] = data
        self.files[handle.name] = bytes(content)
        handle.data = self.files[handle.name]
        handle.offset = end
        return len(data)
