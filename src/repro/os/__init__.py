"""OS substrate: virtual memory, syscalls, seccomp, signals, processes."""

from .address_space import (
    PAGE,
    AccessKind,
    AddressSpace,
    OutOfAddressSpace,
    PageFault,
    Prot,
    Vma,
    page_align_down,
    page_align_up,
)
from .filesystem import FileSystem, OpenFile
from .kernel import EBADF, ENOENT, ENOSYS, EPERM, Kernel, Sys, SyscallResult
from .process import ContextSwitcher, Process, XSaveArea
from .seccomp import SeccompAction, SeccompFilter, SeccompRule
from .signals import Handler, SigInfo, Signal, SignalTable

__all__ = [
    "PAGE", "AccessKind", "AddressSpace", "OutOfAddressSpace", "PageFault",
    "Prot", "Vma", "page_align_down", "page_align_up", "FileSystem",
    "OpenFile", "Kernel", "Sys", "SyscallResult", "EBADF", "ENOENT",
    "ENOSYS", "EPERM", "ContextSwitcher", "Process", "XSaveArea",
    "SeccompAction", "SeccompFilter", "SeccompRule", "Handler", "SigInfo",
    "Signal", "SignalTable",
]
