"""Seccomp-BPF syscall filtering — the baseline HFI's interposition
is compared against in §6.4.1.

A filter is an ordered list of rules evaluated per syscall, like a
classic BPF program: evaluation costs a fixed setup plus a per-rule
cost for each rule examined before the first match.  This linear-scan
cost is exactly what gives seccomp its measurable overhead relative to
HFI's single-cycle decode-stage check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..params import DEFAULT_PARAMS, MachineParams


class SeccompAction(enum.Enum):
    ALLOW = "allow"
    ERRNO = "errno"          # fail the syscall with an errno
    TRAP = "trap"            # deliver SIGSYS to the supervisor
    NOTIFY = "notify"        # forward to a user-space supervisor
    KILL = "kill"


@dataclass(frozen=True)
class SeccompRule:
    """Match a syscall number (``None`` matches any) to an action."""

    syscall_nr: Optional[int]
    action: SeccompAction

    def matches(self, nr: int) -> bool:
        return self.syscall_nr is None or self.syscall_nr == nr


@dataclass
class SeccompFilter:
    """An installed seccomp-bpf program.

    ``default_action`` applies when no rule matches (like the final
    BPF return).  :meth:`evaluate` returns the action plus the modelled
    cycle cost of running the filter.
    """

    rules: List[SeccompRule] = field(default_factory=list)
    default_action: SeccompAction = SeccompAction.ALLOW
    params: MachineParams = field(default_factory=lambda: DEFAULT_PARAMS)

    def add_rule(self, syscall_nr: Optional[int],
                 action: SeccompAction) -> None:
        self.rules.append(SeccompRule(syscall_nr, action))

    def evaluate(self, syscall_nr: int) -> Tuple[SeccompAction, int]:
        cost = self.params.seccomp_base_cycles
        for i, rule in enumerate(self.rules):
            cost += self.params.seccomp_per_rule_cycles
            if rule.matches(syscall_nr):
                return rule.action, cost
        return self.default_action, cost

    @classmethod
    def interpose_all(cls, params: MachineParams = DEFAULT_PARAMS,
                      supervised: Tuple[int, ...] = (),
                      n_padding_rules: int = 12) -> "SeccompFilter":
        """Build an ERIM-style filter: NOTIFY the supervised syscalls,
        allow the rest.  ``n_padding_rules`` models the classifier
        rules a realistic policy carries before the catch-all."""
        filt = cls(params=params)
        for nr in supervised:
            filt.add_rule(nr, SeccompAction.NOTIFY)
        for _ in range(n_padding_rules):
            filt.add_rule(-1, SeccompAction.ERRNO)  # never matches
        filt.default_action = SeccompAction.ALLOW
        return filt
