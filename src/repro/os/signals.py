"""POSIX-style signals, the path HFI faults take to the trusted runtime.

Per paper §3.3.2: an HFI bounds-check violation disables the sandbox,
records the cause in an MSR, and raises a hardware trap that the OS
delivers as SIGSEGV; the runtime's signal handler reads the MSR to
disambiguate the cause.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class Signal(enum.Enum):
    SIGSEGV = 11
    SIGILL = 4
    SIGTRAP = 5
    SIGSYS = 31


@dataclass
class SigInfo:
    """Payload delivered to a signal handler."""

    signal: Signal
    fault_addr: int = 0
    #: Snapshot of the HFI cause MSR at delivery time (0 = not HFI).
    hfi_cause: int = 0
    description: str = ""


Handler = Callable[[SigInfo], None]


@dataclass
class SignalTable:
    """Registered dispositions for one process."""

    handlers: Dict[Signal, Handler] = field(default_factory=dict)
    delivered: List[SigInfo] = field(default_factory=list)

    def register(self, signal: Signal, handler: Handler) -> None:
        self.handlers[signal] = handler

    def deliver(self, info: SigInfo) -> bool:
        """Invoke the handler if registered; returns True if handled."""
        self.delivered.append(info)
        handler = self.handlers.get(info.signal)
        if handler is None:
            return False
        handler(info)
        return True
