"""POSIX-style signals, the path HFI faults take to the trusted runtime.

Per paper §3.3.2: an HFI bounds-check violation disables the sandbox,
records the cause in an MSR, and raises a hardware trap that the OS
delivers as SIGSEGV; the runtime's signal handler reads the MSR to
disambiguate the cause.

Delivery semantics (relied on by the supervised runtime in
:mod:`repro.runtime.supervisor`):

* A signal whose number is in the table's *blocked* mask is queued on
  ``pending`` instead of dispatched; :meth:`unblock` drains the queue
  in arrival (FIFO) order.
* While a handler runs, its own signal is implicitly masked (the
  default ``sigaction`` behavior) — a fault raised *inside* the fault
  handler is deferred until the handler returns rather than recursing.
* ``delivered`` records every dispatch in dispatch order, so tests and
  the supervisor's fault ledger can audit exactly what ran when.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set


class Signal(enum.Enum):
    SIGSEGV = 11
    SIGILL = 4
    SIGTRAP = 5
    SIGSYS = 31


@dataclass
class SigInfo:
    """Payload delivered to a signal handler."""

    signal: Signal
    fault_addr: int = 0
    #: Snapshot of the HFI cause MSR at delivery time (0 = not HFI).
    hfi_cause: int = 0
    description: str = ""


Handler = Callable[[SigInfo], None]


@dataclass
class SignalTable:
    """Registered dispositions for one process."""

    handlers: Dict[Signal, Handler] = field(default_factory=dict)
    #: Every dispatched (handler-visible) signal, in dispatch order.
    delivered: List[SigInfo] = field(default_factory=list)
    #: Explicitly masked signals (sigprocmask).
    blocked: Set[Signal] = field(default_factory=set)
    #: Signals that arrived while masked, in arrival order.
    pending: List[SigInfo] = field(default_factory=list)
    #: Signals whose handler is currently on the stack (implicit mask).
    _handling: Set[Signal] = field(default_factory=set)

    def register(self, signal: Signal, handler: Handler) -> None:
        self.handlers[signal] = handler

    # ------------------------------------------------------------------
    def block(self, *signals: Signal) -> None:
        """Mask ``signals``; subsequent deliveries queue on ``pending``."""
        self.blocked.update(signals)

    def unblock(self, *signals: Signal) -> List[SigInfo]:
        """Unmask ``signals`` and drain newly deliverable pending ones.

        Returns the drained infos in the order they were dispatched
        (arrival order, interleaved with anything their handlers raise).
        """
        for signal in signals:
            self.blocked.discard(signal)
        before = len(self.delivered)
        self._drain()
        return self.delivered[before:]

    # ------------------------------------------------------------------
    def deliver(self, info: SigInfo) -> bool:
        """Dispatch ``info`` (or queue it if masked).

        Returns True iff a handler ran *now*; a queued or unhandled
        signal returns False.
        """
        if info.signal in self.blocked or info.signal in self._handling:
            self.pending.append(info)
            return False
        return self._dispatch(info)

    def _dispatch(self, info: SigInfo) -> bool:
        self.delivered.append(info)
        handler = self.handlers.get(info.signal)
        if handler is None:
            return False
        # sigaction-style implicit mask: the signal cannot preempt its
        # own handler; re-raises are queued and drained afterwards.
        self._handling.add(info.signal)
        try:
            handler(info)
        finally:
            self._handling.discard(info.signal)
        self._drain()
        return True

    def _drain(self) -> None:
        """Dispatch pending signals that are no longer masked, FIFO."""
        while True:
            for i, info in enumerate(self.pending):
                if (info.signal not in self.blocked
                        and info.signal not in self._handling):
                    del self.pending[i]
                    self._dispatch(info)
                    break
            else:
                return
