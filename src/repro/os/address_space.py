"""A per-process virtual address space with Linux-like VM semantics.

This substrate stands in for the parts of the Linux VM subsystem the
paper's evaluation depends on:

* huge ``PROT_NONE`` reservations (Wasm's 8 GiB guard-region scheme, §2),
* ``mprotect``-driven heap growth (§6.1's 30x heap-growth experiment),
* ``madvise(MADV_DONTNEED)`` teardown whose cost is proportional to the
  region being discarded (§5.1, §6.3.1), and
* a finite user virtual address space that caps sandbox concurrency
  (§6.3.2's 256,000-sandbox scalability result).

Mappings are tracked as VMAs (interval records) so that terabyte-scale
reservations cost O(1); page *contents* are allocated lazily on first
write, so only touched pages consume host memory.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional

from ..params import DEFAULT_PARAMS, MachineParams

PAGE = 4096


class Prot(enum.IntFlag):
    """Page protection bits (mmap/mprotect style)."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXEC = 4

    @classmethod
    def rw(cls) -> "Prot":
        return cls.READ | cls.WRITE

    @classmethod
    def rx(cls) -> "Prot":
        return cls.READ | cls.EXEC


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    EXEC = "exec"

    # Members are singletons; identity hashing makes the per-access
    # ``_REQUIRED_BITS[kind]`` lookup a C-speed operation.
    __hash__ = object.__hash__


_REQUIRED = {
    AccessKind.READ: Prot.READ,
    AccessKind.WRITE: Prot.WRITE,
    AccessKind.EXEC: Prot.EXEC,
}

#: Raw int protection bits per access kind: ``prot._value_ & bits``
#: avoids IntFlag.__and__ (a Python-level call that allocates a new
#: flag member) on the once-per-memory-access check path.
_REQUIRED_BITS = {kind: prot._value_ for kind, prot in _REQUIRED.items()}


class PageFault(Exception):
    """A hardware page fault (delivered to software as SIGSEGV)."""

    def __init__(self, addr: int, kind: AccessKind, reason: str):
        super().__init__(f"{kind.value} fault at {addr:#x}: {reason}")
        self.addr = addr
        self.kind = kind
        self.reason = reason


class OutOfAddressSpace(Exception):
    """The user virtual address space is exhausted."""


@dataclass(frozen=True)
class Vma:
    """A virtual memory area: ``[start, end)`` with uniform protection."""

    start: int
    end: int
    prot: Prot
    pkey: int = 0          # MPK protection key (0 = default domain)
    name: str = ""

    @property
    def length(self) -> int:
        return self.end - self.start

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


def page_align_down(addr: int) -> int:
    return addr & ~(PAGE - 1)


def page_align_up(addr: int) -> int:
    return (addr + PAGE - 1) & ~(PAGE - 1)


class AddressSpace:
    """A single process's virtual address space.

    Cost-returning methods (:meth:`mprotect`, :meth:`madvise_dontneed`,
    ...) return the modelled kernel-side cycle cost *excluding* the
    ring-transition cost, which the :class:`~repro.os.kernel.Kernel`
    adds per syscall.
    """

    #: Default placement base for anonymous mmaps.
    MMAP_BASE = 0x1_0000_0000

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 va_bits: Optional[int] = None):
        self.params = params
        self.va_bits = va_bits if va_bits is not None else params.va_bits
        self.user_va_limit = 1 << self.va_bits
        self._vmas: List[Vma] = []
        self._starts: List[int] = []
        self._pages: Dict[int, bytearray] = {}
        self._mmap_next = self.MMAP_BASE
        self.concurrent = False  # multi-threaded: unmap => TLB shootdown

    # ------------------------------------------------------------------
    # VMA bookkeeping
    # ------------------------------------------------------------------
    def _insert(self, vma: Vma) -> None:
        idx = bisect.bisect_left(self._starts, vma.start)
        self._vmas.insert(idx, vma)
        self._starts.insert(idx, vma.start)

    def _remove_index(self, idx: int) -> None:
        del self._vmas[idx]
        del self._starts[idx]

    def find_vma(self, addr: int) -> Optional[Vma]:
        """Return the VMA containing ``addr``, if any."""
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx >= 0:
            vma = self._vmas[idx]
            if vma.start <= addr < vma.end:   # contains(), inlined
                return vma
        return None

    def vmas(self) -> List[Vma]:
        return list(self._vmas)

    def _overlapping(self, start: int, end: int) -> Iterator[int]:
        """Yield indices of VMAs overlapping ``[start, end)``, ascending."""
        idx = bisect.bisect_right(self._starts, start) - 1
        if idx < 0:
            idx = 0
        while idx < len(self._vmas):
            vma = self._vmas[idx]
            if vma.start >= end:
                break
            if vma.end > start:
                yield idx
            idx += 1

    def _is_free(self, start: int, end: int) -> bool:
        return next(iter(self._overlapping(start, end)), None) is None

    @property
    def reserved_bytes(self) -> int:
        """Total bytes of reserved virtual address space (all VMAs)."""
        return sum(v.length for v in self._vmas)

    @property
    def present_pages(self) -> int:
        """Number of pages with materialized contents."""
        return len(self._pages)

    # ------------------------------------------------------------------
    # mmap / munmap / mprotect / madvise
    # ------------------------------------------------------------------
    def mmap(self, length: int, prot: Prot = Prot.NONE,
             addr: Optional[int] = None, name: str = "",
             pkey: int = 0) -> int:
        """Reserve ``length`` bytes; returns the mapped address.

        With ``addr=None`` the kernel chooses placement (bump allocation
        above :data:`MMAP_BASE`).  Raises :class:`OutOfAddressSpace` when
        the user VA range is exhausted — the paper's §6.3.2 limit.
        """
        if length <= 0:
            raise ValueError("mmap length must be positive")
        length = page_align_up(length)
        if addr is None:
            addr = self._find_free(length)
        else:
            addr = page_align_down(addr)
            if addr + length > self.user_va_limit:
                raise OutOfAddressSpace(
                    f"mapping [{addr:#x}, {addr + length:#x}) exceeds "
                    f"{self.va_bits}-bit user address space")
            if not self._is_free(addr, addr + length):
                raise ValueError(f"mapping at {addr:#x} overlaps")
        self._insert(Vma(addr, addr + length, prot, pkey, name))
        return addr

    def _find_free(self, length: int) -> int:
        addr = self._mmap_next
        while addr + length <= self.user_va_limit:
            if self._is_free(addr, addr + length):
                self._mmap_next = addr + length
                return addr
            # skip past the blocking VMA
            idx = next(self._overlapping(addr, addr + length))
            addr = page_align_up(self._vmas[idx].end)
        raise OutOfAddressSpace(
            f"no free range of {length} bytes in "
            f"{self.va_bits}-bit user address space")

    def munmap(self, addr: int, length: int) -> int:
        """Unmap a range; returns kernel-side cycle cost."""
        start, end = page_align_down(addr), page_align_up(addr + length)
        self._carve(start, end, new_prot=None)
        dropped = self._drop_pages(start, end)
        cost = self.params.munmap_fixed_cycles + dropped * 8
        if self.concurrent:
            cost += self.params.tlb_shootdown_cycles
        return cost

    def mprotect(self, addr: int, length: int, prot: Prot) -> int:
        """Change protection on a range; returns kernel-side cycle cost.

        The whole range must be mapped (Linux returns ENOMEM otherwise).
        """
        start, end = page_align_down(addr), page_align_up(addr + length)
        covered = 0
        for idx in self._overlapping(start, end):
            vma = self._vmas[idx]
            covered += min(end, vma.end) - max(start, vma.start)
        if covered != end - start:
            raise PageFault(start, AccessKind.WRITE,
                            "mprotect over unmapped range")
        self._carve(start, end, new_prot=prot)
        self._merge_adjacent(start, end)
        pages = (end - start) // PAGE
        return (self.params.mprotect_fixed_cycles
                + pages * self.params.mprotect_per_page_cycles)

    def _merge_adjacent(self, start: int, end: int) -> None:
        """Coalesce equal-attribute neighbours (like Linux vma_merge),
        so repeated growth mprotects don't fragment the VMA list."""
        idx = max(0, bisect.bisect_right(self._starts, start) - 2)
        while idx < len(self._vmas) - 1:
            cur, nxt = self._vmas[idx], self._vmas[idx + 1]
            if cur.start > end:
                break
            if (cur.end == nxt.start and cur.prot == nxt.prot
                    and cur.pkey == nxt.pkey and cur.name == nxt.name):
                self._remove_index(idx + 1)
                self._remove_index(idx)
                self._insert(replace(cur, end=nxt.end))
                continue
            idx += 1

    def madvise_dontneed(self, addr: int, length: int) -> int:
        """Discard page contents in a range; returns kernel cycle cost.

        The cost is proportional to the region discarded (paper §5.1):
        present pages pay the zap cost; reserved-but-unpopulated spans
        (guard regions) pay a VMA-walk cost plus a sparse PTE-range
        skip proportional to their size — which is why batched
        teardown only wins once HFI elides the guard regions (§6.3.1).
        """
        start, end = page_align_down(addr), page_align_up(addr + length)
        present = self._drop_pages(start, end)
        reserved_bytes = 0
        vma_count = 0
        for idx in self._overlapping(start, end):
            vma = self._vmas[idx]
            vma_count += 1
            reserved_bytes += min(end, vma.end) - max(start, vma.start)
        cost = (self.params.madvise_fixed_cycles
                + present * self.params.madvise_per_present_page_cycles
                + vma_count * self.params.madvise_per_vma_cycles
                + (reserved_bytes >> 30)
                * self.params.madvise_per_reserved_gb_cycles)
        if self.concurrent and present:
            cost += self.params.tlb_shootdown_cycles
        return cost

    def _carve(self, start: int, end: int,
               new_prot: Optional[Prot], pkey: Optional[int] = None) -> None:
        """Split VMAs at ``start``/``end``; retag or remove the middle."""
        affected = list(self._overlapping(start, end))
        for idx in reversed(affected):
            vma = self._vmas[idx]
            self._remove_index(idx)
            if vma.start < start:
                self._insert(replace(vma, end=start))
            if vma.end > end:
                self._insert(replace(vma, start=end))
            mid_start, mid_end = max(vma.start, start), min(vma.end, end)
            if new_prot is not None:
                mid = replace(vma, start=mid_start, end=mid_end,
                              prot=new_prot)
                if pkey is not None:
                    mid = replace(mid, pkey=pkey)
                self._insert(mid)

    def set_pkey(self, addr: int, length: int, pkey: int) -> int:
        """pkey_mprotect: tag a range with an MPK protection key."""
        start, end = page_align_down(addr), page_align_up(addr + length)
        for idx in list(self._overlapping(start, end)):
            vma = self._vmas[idx]
            self._carve(max(start, vma.start), min(end, vma.end),
                        new_prot=vma.prot, pkey=pkey)
        pages = (end - start) // PAGE
        return (self.params.mprotect_fixed_cycles
                + pages * self.params.mprotect_per_page_cycles)

    def _drop_pages(self, start: int, end: int) -> int:
        first, last = start // PAGE, (end + PAGE - 1) // PAGE
        span = last - first
        if span < len(self._pages):
            doomed = [p for p in range(first, last) if p in self._pages]
        else:
            doomed = [p for p in self._pages if first <= p < last]
        for page in doomed:
            del self._pages[page]
        return len(doomed)

    # ------------------------------------------------------------------
    # access checks and data
    # ------------------------------------------------------------------
    def check_access(self, addr: int, size: int, kind: AccessKind) -> Vma:
        """Verify an access is permitted; raise :class:`PageFault` if not."""
        if addr < 0 or addr + size > self.user_va_limit:
            raise PageFault(addr, kind, "non-canonical address")
        vma = self.find_vma(addr)
        if vma is None:
            raise PageFault(addr, kind, "unmapped")
        required = _REQUIRED_BITS[kind]
        if addr + size > vma.end:
            # The access straddles into the next mapping (or a hole).
            nxt = self.find_vma(vma.end)
            if nxt is None or not nxt.prot._value_ & required:
                raise PageFault(vma.end, kind, "straddles unmapped/guard")
        if not vma.prot._value_ & required:
            raise PageFault(addr, kind, f"protection ({vma.prot!r})")
        return vma

    def _page(self, number: int) -> bytearray:
        page = self._pages.get(number)
        if page is None:
            page = bytearray(PAGE)
            self._pages[number] = page
        return page

    def read(self, addr: int, size: int = 8, *, check: bool = True) -> int:
        """Load a little-endian integer of ``size`` bytes."""
        if check:
            self.check_access(addr, size, AccessKind.READ)
        # Fast path: the access stays within one page (nearly every
        # CPU-issued load) — skip the chunked read_bytes walk.
        page, offset = divmod(addr, PAGE)
        end = offset + size
        if end <= PAGE:
            stored = self._pages.get(page)
            if stored is None:
                return 0                       # untouched pages read 0
            return int.from_bytes(stored[offset:end], "little")
        return int.from_bytes(self.read_bytes(addr, size, check=False),
                              "little")

    def write(self, addr: int, value: int, size: int = 8, *,
              check: bool = True) -> None:
        """Store a little-endian integer of ``size`` bytes."""
        if check:
            self.check_access(addr, size, AccessKind.WRITE)
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        page, offset = divmod(addr, PAGE)
        end = offset + size
        if end <= PAGE:
            stored = self._pages.get(page)
            if stored is None:
                stored = bytearray(PAGE)       # lazy page materialisation
                self._pages[page] = stored
            stored[offset:end] = data
            return
        self.write_bytes(addr, data, check=False)

    def read_bytes(self, addr: int, size: int, *, check: bool = True) -> bytes:
        if check:
            self.check_access(addr, size, AccessKind.READ)
        out = bytearray()
        while size > 0:
            page, offset = divmod(addr, PAGE)
            chunk = min(size, PAGE - offset)
            stored = self._pages.get(page)
            if stored is None:
                out += b"\x00" * chunk
            else:
                out += stored[offset:offset + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes, *,
                    check: bool = True) -> None:
        if check:
            self.check_access(addr, len(data), AccessKind.WRITE)
        pos = 0
        while pos < len(data):
            page, offset = divmod(addr + pos, PAGE)
            chunk = min(len(data) - pos, PAGE - offset)
            self._page(page)[offset:offset + chunk] = data[pos:pos + chunk]
            pos += chunk
