"""Comparator fuzzing: ``hmov_check_hardware`` vs the golden semantics.

The ablation benchmark sweeps the two bounds-check implementations over
*aligned, legal* descriptors.  This fuzzer deliberately goes beyond
that space: randomized large regions reaching past the 48-bit virtual
address width, small regions hugging 4 GiB block boundaries, zero
bounds, sign-bit operands, every access size, and random permission
bits.  Every (descriptor, operand) trial runs through both
implementations and any disagreement is *classified*:

``permission``
    The hardware comparator admits an access the golden model rejects
    with ``HMOV_PERMISSION``.  By design (§4.2) the single 32-bit
    comparator checks bounds only; permissions are enforced by a
    separate parallel check that the golden model folds into one
    routine.

``va-width``
    A large region whose span reaches past ``2^48``.  The comparator's
    32 compare bits cover address bits [47:16] only, so it rejects
    accesses the (arbitrary-precision) golden model would accept.
    Real hardware cannot generate such addresses.

``unclassified``
    Anything else — a genuine bug in one of the two implementations.
    The verify gate requires zero of these.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.checks import (
    VA_BITS,
    hmov_check_hardware,
    hmov_effective_address,
)
from ..core.faults import FaultCause, HfiFault
from ..core.regions import (
    GIB4,
    KIB64,
    LARGE_MAX_BOUND,
    SMALL_MAX_BOUND,
    ExplicitDataRegion,
)

AGREE = "agree"
PERMISSION = "permission"
VA_WIDTH = "va-width"
UNCLASSIFIED = "unclassified"

_SCALES = (1, 2, 4, 8)
_SIZES = (1, 2, 4, 8)


@dataclass
class ComparatorTrial:
    """One (descriptor, operand) comparison and its classification."""

    region: ExplicitDataRegion
    index: int
    scale: int
    disp: int
    size: int
    is_write: bool
    hardware_ok: bool
    golden_cause: Optional[FaultCause]
    classification: str

    def describe(self) -> str:
        kind = "large" if self.region.is_large_region else "small"
        return (f"{self.classification}: {kind} region "
                f"base={self.region.base_address:#x} "
                f"bound={self.region.bound:#x} "
                f"r={int(self.region.permission_read)}"
                f"w={int(self.region.permission_write)} "
                f"index={self.index:#x} scale={self.scale} "
                f"disp={self.disp:#x} size={self.size} "
                f"write={self.is_write} hw_ok={self.hardware_ok} "
                f"golden={self.golden_cause.name if self.golden_cause else 'OK'}")


def classify(region: ExplicitDataRegion, index: int, scale: int,
             disp: int, size: int, is_write: bool) -> ComparatorTrial:
    """Run both implementations on one access and classify the result."""
    hardware_ok, _ea = hmov_check_hardware(region, index, scale, disp,
                                           size)
    try:
        hmov_effective_address(region, index, scale, disp, size, is_write)
        golden_cause: Optional[FaultCause] = None
    except HfiFault as fault:
        golden_cause = fault.cause
    golden_ok = golden_cause is None

    if hardware_ok == golden_ok:
        classification = AGREE
    elif hardware_ok and golden_cause is FaultCause.HMOV_PERMISSION:
        classification = PERMISSION
    elif (not hardware_ok and golden_ok and region.is_large_region
          and (region.base_address + index * scale + disp + size - 1)
          >> VA_BITS):
        classification = VA_WIDTH
    else:
        classification = UNCLASSIFIED
    return ComparatorTrial(region=region, index=index, scale=scale,
                           disp=disp, size=size, is_write=is_write,
                           hardware_ok=hardware_ok,
                           golden_cause=golden_cause,
                           classification=classification)


# ----------------------------------------------------------------------
# randomized descriptor / operand generation
# ----------------------------------------------------------------------
def random_region(rng: random.Random,
                  legal_va_only: bool = False) -> ExplicitDataRegion:
    """A constructor-valid explicit region, biased toward edge shapes.

    With ``legal_va_only`` the whole span stays inside the 48-bit
    virtual address width — the space real hardware can ever see.
    """
    read = rng.random() < 0.8
    write = rng.random() < 0.6
    if rng.random() < 0.5:
        # large: 64 KiB-aligned base and bound
        max_chunks = ((1 << (VA_BITS - 16)) - 1 if legal_va_only
                      else 1 << 40)
        base = rng.randrange(0, max_chunks) * KIB64
        bound = rng.choice([
            0, KIB64, 2 * KIB64,
            rng.randrange(0, 1 << 10) * KIB64,
            rng.randrange(0, 1 << 28) * KIB64,
            LARGE_MAX_BOUND,
        ])
        if legal_va_only:
            bound = min(bound, (1 << VA_BITS) - base)
            bound -= bound % KIB64
        return ExplicitDataRegion(base, bound, permission_read=read,
                                  permission_write=write,
                                  is_large_region=True)
    # small: byte-granular, must not span a 4 GiB boundary
    bound = rng.choice([0, 1, 8, rng.randrange(0, 1 << 16),
                        rng.randrange(0, SMALL_MAX_BOUND)])
    blocks = (1 << (VA_BITS - 32)) if legal_va_only else (1 << 31)
    block = rng.randrange(0, blocks) * GIB4
    slack = GIB4 - bound
    base = block + (rng.randrange(0, slack) if slack > 0 else 0)
    if rng.random() < 0.3 and bound:
        base = block + GIB4 - bound      # hug the boundary exactly
    return ExplicitDataRegion(base, bound, permission_read=read,
                              permission_write=write,
                              is_large_region=False)


def random_operands(rng: random.Random,
                    region: ExplicitDataRegion) -> Tuple[int, int, int, int]:
    """(index, scale, disp, size), biased toward the region's edges."""
    scale = rng.choice(_SCALES)
    size = rng.choice(_SIZES)
    bound = region.bound
    edge_pool = [0, 1, max(bound - size, 0), max(bound - 1, 0), bound,
                 bound + 1, bound + size]
    choice = rng.random()
    if choice < 0.5:
        index = rng.choice(edge_pool) // scale
        disp = rng.choice(edge_pool) % (bound + 2) if bound else \
            rng.choice([0, 1, size])
    elif choice < 0.8:
        index = rng.randrange(0, max(bound // scale, 1) + 2)
        disp = rng.randrange(0, max(bound, 1) + 2)
    else:
        # hostile operands: sign bits, huge magnitudes
        index = rng.choice([1 << 63, (1 << 64) - 1, 1 << 48,
                            rng.randrange(0, 1 << 64)])
        disp = rng.choice([0, 1 << 63, (1 << 64) - 1,
                           rng.randrange(0, 1 << 64)])
    return index, scale, disp, size


@dataclass
class ComparatorSweep:
    """Aggregated result of a comparator fuzzing run."""

    trials: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    unclassified: List[ComparatorTrial] = field(default_factory=list)

    @property
    def disagreements(self) -> int:
        return self.trials - self.counts.get(AGREE, 0)

    def record(self, trial: ComparatorTrial) -> None:
        self.trials += 1
        self.counts[trial.classification] = (
            self.counts.get(trial.classification, 0) + 1)
        if trial.classification == UNCLASSIFIED:
            self.unclassified.append(trial)


def sweep(trials: int = 20_000, seed: int = 0,
          legal_va_only: bool = False) -> ComparatorSweep:
    """Randomized comparator sweep; every disagreement is classified."""
    rng = random.Random(seed)
    result = ComparatorSweep()
    for _ in range(trials):
        region = random_region(rng, legal_va_only=legal_va_only)
        index, scale, disp, size = random_operands(rng, region)
        is_write = rng.random() < 0.5
        result.record(classify(region, index, scale, disp, size,
                               is_write))
    return result


def boundary_sweep() -> ComparatorSweep:
    """Directed sweep of the last-byte edge for every access size.

    For each size, offsets straddling ``bound - size`` are exactly
    where the pre-fix comparator (which checked only the first byte)
    admitted partially-out-of-bounds accesses.
    """
    result = ComparatorSweep()
    regions = [
        ExplicitDataRegion(0x10_0000, KIB64, permission_read=True,
                           permission_write=True, is_large_region=True),
        ExplicitDataRegion(0x1234, 0x1000, permission_read=True,
                           permission_write=True, is_large_region=False),
    ]
    for region in regions:
        for size in _SIZES:
            for offset in range(max(region.bound - 2 * size, 0),
                                region.bound + 2 * size):
                result.record(classify(region, 0, 1, offset, size,
                                       False))
                result.record(classify(region, offset, 1, 0, size,
                                       True))
    return result
