"""A deliberately naive reference interpreter — the architectural oracle.

This is the straight-line executor the staged engine is differentially
tested against: no predecode, no caches, no TLB, no predictors, no
speculation window, no timing model.  Every instruction is dispatched
through one ``if``/``elif`` chain over the opcode, and every memory
access goes straight to the :class:`~repro.os.address_space.AddressSpace`.

What it *shares* with the staged engine is the golden semantic core —
:class:`~repro.core.state.HfiState`, the checks in
:mod:`repro.core.checks`, the descriptor encodings, and the address
space — because those are the architectural specification both engines
must implement.  What it deliberately does **not** share is anything
from :mod:`repro.cpu.decode` or the exec units: the reference spells
out each instruction's semantics independently, so an inlining or
closure-capture bug in the staged fast paths shows up as a divergence
instead of being faithfully reproduced on both sides.

Known, documented non-determinism: ``rdtsc`` reads the cycle counter,
which the reference does not model (its counter stays 0).  The ISA
fuzzer never emits ``rdtsc`` for exactly this reason.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.checks import implicit_code_check
from ..core.encoding import (
    REGION_DESCRIPTOR_BYTES,
    SANDBOX_DESCRIPTOR_BYTES,
    decode_region,
    decode_sandbox,
    encode_region,
)
from ..core.faults import FaultCause, HfiFault
from ..core.regions import RegionError
from ..core.state import HfiState
from ..cpu.machine import CpuStats, FaultInfo, RunResult
from ..isa.instruction import Instruction, Program
from ..isa.opcodes import HMOV_REGION, Opcode
from ..isa.operands import Imm, Mem
from ..isa.registers import MASK64, Reg, RegisterFile, to_signed
from ..os.address_space import AccessKind, AddressSpace, PageFault
from ..params import DEFAULT_PARAMS, MachineParams

#: Condition predicates, restated independently of the exec units so a
#: transcription error in either table is caught by the fuzzer.
_CONDITIONS = {
    Opcode.JE: lambda f: f.zf,
    Opcode.JNE: lambda f: not f.zf,
    Opcode.JL: lambda f: f.sf != f.of,
    Opcode.JGE: lambda f: f.sf == f.of,
    Opcode.JLE: lambda f: f.zf or f.sf != f.of,
    Opcode.JG: lambda f: not f.zf and f.sf == f.of,
    Opcode.JB: lambda f: f.cf,
    Opcode.JAE: lambda f: not f.cf,
    Opcode.JBE: lambda f: f.cf or f.zf,
    Opcode.JA: lambda f: not f.cf and not f.zf,
}


class ReferenceCpu:
    """Straight-line architectural interpreter of ``isa`` programs.

    A conforming :class:`repro.cpu.machine.ExecutionBackend`: it is
    what ``Cpu(engine="reference")`` (and ``--engine reference``)
    hands back.  The public surface mirrors the subset of
    :class:`repro.cpu.Cpu` that the differential harness needs:
    ``load_program``, ``run``, ``regs``, ``hfi``, ``mem``, ``stats``,
    ``fault_resume_address``.  ``telemetry`` is accepted for
    constructor parity but the oracle registers no components — it has
    no microarchitecture to observe, and keeping it bare is what makes
    it a trustworthy oracle.
    """

    engine = "reference"

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 memory: Optional[AddressSpace] = None,
                 process=None, kernel=None, telemetry=None,
                 engine: Optional[str] = None,
                 timing: Optional[str] = None):
        if engine not in (None, "reference"):
            raise ValueError(
                f"ReferenceCpu only implements engine='reference', "
                f"got {engine!r}")
        # The oracle is architectural-only: any *valid* timing model is
        # accepted and ignored (its simplified cost stream is never
        # compared), so matrix construction sites need no special case.
        if timing is not None:
            from ..cpu.timing import _validate_timing
            _validate_timing(timing)
        self.timing_model = "reference"
        self.params = params
        if process is not None:
            self.mem = process.address_space
        else:
            self.mem = memory if memory is not None else AddressSpace(params)
        self.process = process
        self.kernel = kernel
        self.regs = RegisterFile()
        self.hfi = HfiState(params)
        if process is not None:
            process.hfi_state = self.hfi
        self.stats = CpuStats()
        self._code: Dict[int, Instruction] = {}
        self._xsave_areas: Dict[int, Tuple[RegisterFile, object, int]] = {}
        self._halted = False
        self._fault: Optional[FaultInfo] = None
        self.fault_resume_address: Optional[int] = None
        self.enforce_pkeys = process is not None

    def attach_telemetry(self, telemetry) -> None:
        """Backend-protocol no-op: the oracle exposes no components."""

    # ------------------------------------------------------------------
    # program loading
    # ------------------------------------------------------------------
    def load_program(self, program: Program) -> None:
        for ins in program.instructions:
            self._code[ins.addr] = ins

    # ------------------------------------------------------------------
    # run loop — mirrors Cpu._run's control-flow skeleton exactly
    # (pending-fault resolution, fetch-time code check, budget edge),
    # with all timing and microarchitecture removed.
    # ------------------------------------------------------------------
    def run(self, entry: int, max_instructions: int = 5_000_000) -> RunResult:
        regs = self.regs
        stats = self.stats
        regs.rip = entry
        self._halted = False
        self._fault = None
        executed = 0
        while executed < max_instructions:
            if self._halted:
                return RunResult("hlt", stats, rip=regs.rip)
            if self._fault is not None:
                fault, self._fault = self._fault, None
                if self.fault_resume_address is not None:
                    regs.rip = self.fault_resume_address
                    continue
                return RunResult("fault", stats, fault=fault, rip=regs.rip)
            pc = regs.rip
            if self.hfi.regs.enabled:
                try:
                    implicit_code_check(self.hfi.regs.code, pc)
                except HfiFault as fault:
                    self._raise_fault(fault)
                    executed += 1
                    continue
            ins = self._code.get(pc)
            if ins is None:
                return RunResult("no_instruction", stats, rip=pc)
            stats.instructions += 1
            try:
                self._execute(ins, pc, pc + ins.length)
            except HfiFault as fault:
                self._raise_fault(fault)
            except PageFault as fault:
                self._raise_page_fault(fault)
            except RegionError as err:
                self._raise_fault(HfiFault(FaultCause.HARDWARE_TRAP,
                                           detail=str(err)))
            executed += 1
        if self._halted:
            return RunResult("hlt", stats, rip=regs.rip)
        if self._fault is not None:
            fault, self._fault = self._fault, None
            if self.fault_resume_address is not None:
                regs.rip = self.fault_resume_address
                return RunResult("instruction_limit", stats, rip=regs.rip)
            return RunResult("fault", stats, fault=fault, rip=regs.rip)
        return RunResult("instruction_limit", stats, rip=regs.rip)

    # ------------------------------------------------------------------
    # fault delivery (mirrors Cpu._raise_fault / _raise_page_fault)
    # ------------------------------------------------------------------
    def _raise_fault(self, fault: HfiFault) -> None:
        self.stats.hfi_faults += 1
        if self.hfi.enabled:
            self.hfi.fault(fault.cause, fault.addr)
        else:
            self.hfi.regs.cause_msr = fault.cause
        self._deliver_segv(fault.addr, int(fault.cause), str(fault))
        self._fault = FaultInfo("hfi", fault.addr, fault.cause, fault.detail)

    def _raise_page_fault(self, fault: PageFault) -> None:
        self.stats.page_faults += 1
        if self.hfi.enabled:
            self.hfi.fault(FaultCause.HARDWARE_TRAP, fault.addr)
        self._deliver_segv(fault.addr, 0, str(fault))
        self._fault = FaultInfo("page", fault.addr, FaultCause.NONE,
                                fault.reason)

    def _deliver_segv(self, addr: int, hfi_cause: int, detail: str) -> None:
        if self.kernel is not None and self.process is not None:
            self.kernel.deliver_segv(self.process, addr, hfi_cause, detail)

    # ------------------------------------------------------------------
    # operand access
    # ------------------------------------------------------------------
    def _ea(self, mem: Mem) -> int:
        ea = mem.disp
        if mem.base is not None:
            ea += self.regs.regs[mem.base]
        if mem.index is not None:
            ea += self.regs.regs[mem.index] * mem.scale
        return ea & MASK64

    def _load_ea(self, ea: int, size: int) -> int:
        vma = self.mem.check_access(ea, size, AccessKind.READ)
        if self.enforce_pkeys and vma.pkey:
            process = self.process
            if process is not None and process.pkru:
                bits = (process.pkru >> (2 * vma.pkey)) & 0b11
                if bits & 0b01:
                    raise PageFault(ea, AccessKind.READ,
                                    f"pkey {vma.pkey} denied")
        self.stats.loads += 1
        return self.mem.read(ea, size, check=False)

    def _store_ea(self, ea: int, size: int, value: int) -> None:
        vma = self.mem.check_access(ea, size, AccessKind.WRITE)
        if self.enforce_pkeys and vma.pkey:
            process = self.process
            if process is not None and process.pkru:
                bits = (process.pkru >> (2 * vma.pkey)) & 0b11
                if bits & 0b11:
                    raise PageFault(ea, AccessKind.WRITE,
                                    f"pkey {vma.pkey} denied")
        self.stats.stores += 1
        self.mem.write(ea, value, size, check=False)

    def _read(self, op) -> int:
        if isinstance(op, Reg):
            return self.regs.regs[op]
        if isinstance(op, Imm):
            return op.value & MASK64
        if isinstance(op, Mem):
            ea = self._ea(op)
            self.hfi.check_data_access(ea, op.size, is_write=False)
            return self._load_ea(ea, op.size)
        raise TypeError(f"unreadable operand {op!r}")

    def _write(self, op, value: int) -> None:
        if isinstance(op, Reg):
            self.regs.regs[op] = value & MASK64
        elif isinstance(op, Mem):
            ea = self._ea(op)
            self.hfi.check_data_access(ea, op.size, is_write=True)
            self._store_ea(ea, op.size, value)
        else:
            raise TypeError(f"unwritable operand {op!r}")

    def _stack_read(self) -> int:
        ea = self.regs.regs[Reg.RSP]
        self.hfi.check_data_access(ea, 8, is_write=False)
        return self._load_ea(ea, 8)

    def _stack_write(self, value: int) -> None:
        ea = self.regs.regs[Reg.RSP]
        self.hfi.check_data_access(ea, 8, is_write=True)
        self._store_ea(ea, 8, value)

    # ------------------------------------------------------------------
    # flag helpers (x86 semantics, restated)
    # ------------------------------------------------------------------
    def _logic_flags(self, result: int) -> None:
        f = self.regs.flags
        f.zf = result == 0
        f.sf = bool(result >> 63)
        f.cf = False
        f.of = False

    def _add_flags(self, a: int, b: int, wide: int) -> None:
        result = wide & MASK64
        f = self.regs.flags
        f.zf = result == 0
        f.sf = bool(result >> 63)
        f.cf = wide > MASK64
        f.of = (to_signed(a) + to_signed(b)) != to_signed(result)

    def _sub_flags(self, a: int, b: int) -> None:
        result = (a - b) & MASK64
        f = self.regs.flags
        f.zf = result == 0
        f.sf = bool(result >> 63)
        f.cf = a < b
        f.of = (to_signed(a) - to_signed(b)) != to_signed(result)

    # ------------------------------------------------------------------
    # the big naive dispatch
    # ------------------------------------------------------------------
    def _execute(self, ins: Instruction, pc: int, next_rip: int) -> None:
        op = ins.opcode
        ops = ins.operands
        regs = self.regs
        regs.rip = next_rip

        # --- data movement ---
        if op is Opcode.MOV:
            self._write(ops[0], self._read(ops[1]))
        elif op in HMOV_REGION:
            region = HMOV_REGION[op]
            if isinstance(ops[1], Mem):                    # load form
                m = ops[1]
                index_val = (regs.regs[m.index]
                             if m.index is not None else 0)
                ea = self.hfi.hmov_address(region, index_val, m.scale,
                                           m.disp, m.size, is_write=False)
                self._write(ops[0], self._load_ea(ea, m.size))
            elif isinstance(ops[0], Mem):                  # store form
                value = self._read(ops[1])
                m = ops[0]
                index_val = (regs.regs[m.index]
                             if m.index is not None else 0)
                ea = self.hfi.hmov_address(region, index_val, m.scale,
                                           m.disp, m.size, is_write=True)
                self._store_ea(ea, m.size, value)
            else:                                          # reg/imm form
                self._write(ops[0], self._read(ops[1]))
        elif op is Opcode.LEA:
            self._write(ops[0], self._ea(ops[1]))
        elif op is Opcode.PUSH:
            value = self._read(ops[0])
            regs.regs[Reg.RSP] = (regs.regs[Reg.RSP] - 8) & MASK64
            self._stack_write(value)
        elif op is Opcode.POP:
            value = self._stack_read()
            regs.regs[Reg.RSP] = (regs.regs[Reg.RSP] + 8) & MASK64
            self._write(ops[0], value)

        # --- ALU ---
        elif op is Opcode.ADD:
            a, b = self._read(ops[0]), self._read(ops[1])
            wide = a + b
            self._add_flags(a, b, wide)
            self._write(ops[0], wide & MASK64)
        elif op is Opcode.SUB:
            a, b = self._read(ops[0]), self._read(ops[1])
            self._sub_flags(a, b)
            self._write(ops[0], (a - b) & MASK64)
        elif op is Opcode.AND:
            result = self._read(ops[0]) & self._read(ops[1])
            self._logic_flags(result)
            self._write(ops[0], result)
        elif op is Opcode.OR:
            result = self._read(ops[0]) | self._read(ops[1])
            self._logic_flags(result)
            self._write(ops[0], result)
        elif op is Opcode.XOR:
            result = self._read(ops[0]) ^ self._read(ops[1])
            self._logic_flags(result)
            self._write(ops[0], result)
        elif op is Opcode.NOT:
            self._write(ops[0], ~self._read(ops[0]) & MASK64)  # no flags
        elif op is Opcode.NEG:
            value = (-self._read(ops[0])) & MASK64
            self._logic_flags(value)
            self.regs.flags.cf = value != 0
            self._write(ops[0], value)
        elif op is Opcode.SHL:
            a = self._read(ops[0])
            count = self._read(ops[1]) & 63
            result = (a << count) & MASK64
            self._logic_flags(result)
            self._write(ops[0], result)
        elif op is Opcode.SHR:
            a = self._read(ops[0])
            count = self._read(ops[1]) & 63
            result = a >> count
            self._logic_flags(result)
            self._write(ops[0], result)
        elif op is Opcode.SAR:
            a = self._read(ops[0])
            count = self._read(ops[1]) & 63
            result = (to_signed(a) >> count) & MASK64
            self._logic_flags(result)
            self._write(ops[0], result)
        elif op is Opcode.IMUL:
            result = (to_signed(self._read(ops[0]))
                      * to_signed(self._read(ops[1]))) & MASK64
            self._logic_flags(result)
            self._write(ops[0], result)
        elif op is Opcode.IDIV or op is Opcode.IMOD:
            a = to_signed(self._read(ops[0]))
            b = to_signed(self._read(ops[1]))
            if b == 0:
                raise PageFault(pc, AccessKind.EXEC, "division by zero")
            quotient = int(a / b)          # truncate toward zero (x86)
            remainder = a - quotient * b
            result = (quotient if op is Opcode.IDIV else remainder) & MASK64
            self._logic_flags(result)
            self._write(ops[0], result)
        elif op is Opcode.CMP:
            self._sub_flags(self._read(ops[0]), self._read(ops[1]))
        elif op is Opcode.TEST:
            self._logic_flags(self._read(ops[0]) & self._read(ops[1]))
        elif op is Opcode.INC:
            a = self._read(ops[0])
            self._add_flags(a, 1, a + 1)
            self._write(ops[0], (a + 1) & MASK64)
        elif op is Opcode.DEC:
            a = self._read(ops[0])
            self._sub_flags(a, 1)
            self._write(ops[0], (a - 1) & MASK64)

        # --- control flow ---
        elif op in _CONDITIONS:
            self.stats.branches += 1
            taken = _CONDITIONS[op](regs.flags)
            regs.rip = ops[0].value if taken else next_rip
        elif op is Opcode.JMP:
            if isinstance(ops[0], Imm):
                regs.rip = ops[0].value
            else:
                self.stats.branches += 1
                regs.rip = regs.regs[ops[0]]
        elif op is Opcode.CALL:
            regs.regs[Reg.RSP] = (regs.regs[Reg.RSP] - 8) & MASK64
            self._stack_write(next_rip)
            if isinstance(ops[0], Imm):
                regs.rip = ops[0].value
            else:
                self.stats.branches += 1
                regs.rip = regs.regs[ops[0]]
        elif op is Opcode.RET:
            actual = self._stack_read()
            regs.regs[Reg.RSP] = (regs.regs[Reg.RSP] + 8) & MASK64
            self.stats.branches += 1
            regs.rip = actual

        # --- system ---
        elif op is Opcode.SYSCALL or op is Opcode.INT80:
            nr = regs.regs[Reg.RAX]
            outcome = self.hfi.syscall_attempt(
                nr, legacy=op is Opcode.INT80)
            if outcome is not None:
                self.stats.interposed_syscalls += 1
                if outcome.redirect_to is not None:
                    regs.rip = outcome.redirect_to
            else:
                self.stats.syscalls += 1
                if self.kernel is not None and self.process is not None:
                    result = self.kernel.syscall(
                        self.process, nr, regs.regs[Reg.RDI],
                        regs.regs[Reg.RSI], regs.regs[Reg.RDX])
                    regs.regs[Reg.RAX] = result.value & MASK64
        elif op is Opcode.CPUID or op is Opcode.LFENCE or op is Opcode.NOP:
            pass                           # architecturally a no-op here
        elif op is Opcode.CLFLUSH:
            self._ea(ops[0])               # address formed; no caches
        elif op is Opcode.RDTSC:
            # Timing-dependent: the staged engine writes the live cycle
            # counter.  The reference has no clock (counter stays 0);
            # the ISA fuzzer excludes rdtsc from generated programs.
            regs.regs[Reg.RAX] = self.stats.cycles & MASK64
            regs.regs[Reg.RDX] = 0
        elif op is Opcode.HLT:
            self._halted = True
        elif op is Opcode.XSAVE:
            ea = self._ea(ops[0])
            pkru = self.process.pkru if self.process is not None else 0
            self._xsave_areas[ea] = (self.regs.copy(), self.hfi.snapshot(),
                                     pkru)
        elif op is Opcode.XRSTOR:
            ea = self._ea(ops[0])
            area = self._xsave_areas.get(ea)
            if area is None:
                raise PageFault(ea, AccessKind.READ, "xrstor from bad area")
            saved_regs, hfi_bank, pkru = area
            self.hfi.restore(hfi_bank)     # traps in a native sandbox
            self.regs.load_from(saved_regs)
            if self.process is not None:
                self.process.pkru = pkru
        elif op is Opcode.WRPKRU:
            if self.process is not None:
                self.process.pkru = regs.regs[Reg.RAX] & 0xFFFF_FFFF
        elif op is Opcode.RDPKRU:
            regs.regs[Reg.RAX] = (self.process.pkru
                                  if self.process is not None else 0)

        # --- HFI extension ---
        elif op is Opcode.HFI_ENTER:
            ptr = regs.regs[ops[0]]
            flags, handler = decode_sandbox(self.mem.read_bytes(
                ptr, SANDBOX_DESCRIPTOR_BYTES, check=False))
            self.hfi.enter(flags, handler)
            self.stats.serializations += 1 if flags.is_serialized else 0
        elif op is Opcode.HFI_EXIT:
            outcome = self.hfi.exit()
            if outcome.redirect_to is not None:
                regs.rip = outcome.redirect_to
        elif op is Opcode.HFI_REENTER:
            self.hfi.reenter()
        elif op is Opcode.HFI_SET_REGION:
            ptr = regs.regs[ops[1]]
            region = decode_region(self.mem.read_bytes(
                ptr, REGION_DESCRIPTOR_BYTES, check=False))
            self.hfi.set_region(ops[0].value, region)
        elif op is Opcode.HFI_GET_REGION:
            region, _cost = self.hfi.get_region(ops[0].value)
            ptr = regs.regs[ops[1]]
            if region is not None:
                self.mem.write_bytes(ptr, encode_region(region),
                                     check=False)
        elif op is Opcode.HFI_CLEAR_REGION:
            self.hfi.clear_region(ops[0].value)
        elif op is Opcode.HFI_CLEAR_ALL_REGIONS:
            self.hfi.clear_all_regions()
        else:
            raise NotImplementedError(f"opcode {op} not implemented")
