"""Differential-oracle and invariant-checking subsystem.

The correctness tooling behind the staged execution engine and the
recycling runtime:

* :mod:`repro.verify.reference` — a deliberately naive straight-line
  interpreter whose architectural end state is the oracle.
* :mod:`repro.verify.fuzz_isa` — seeded program generation over the
  full opcode table, executed on every conforming execution backend
  (staged, superblock-compiling, reference) with full-state equality
  asserted against the first.
* :mod:`repro.verify.fuzz_checks` — randomized sweep of the §4.2
  hardware comparator against the golden hmov semantics, with every
  disagreement classified.
* :mod:`repro.verify.invariants` — sanitizer-style probes (pool
  poison-on-discard, free-list consistency, speculation identity),
  armed only on demand.
* a short :mod:`repro.chaos` soak — seeded fault injection through the
  supervised runtime, gated on zero leaked slots, zero zombie
  sandboxes, and a fully accounted fault ledger.

``run_verify`` bundles all of it into one :class:`VerifyStats`
verdict; the ``repro-hfi verify`` CLI subcommand and the CI ``verify``
job are thin wrappers around it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..params import MachineParams
from ..telemetry.stats import VerifyStats
from .fuzz_checks import (
    AGREE,
    PERMISSION,
    UNCLASSIFIED,
    VA_WIDTH,
    ComparatorSweep,
    ComparatorTrial,
    boundary_sweep,
    classify,
    sweep,
)
from .fuzz_isa import (
    DEFAULT_ENGINES,
    DEFAULT_TIMINGS,
    DifferentialOutcome,
    FuzzCase,
    architectural_digest,
    build_case,
    build_matrix,
    run_differential,
    run_seeds,
)
from .invariants import (
    POISON_BYTE,
    InvariantViolation,
    PoisonedReadError,
    PoolInvariants,
    SpeculationIdentityProbe,
    check_pool,
)
from .reference import ReferenceCpu

__all__ = [
    "ReferenceCpu",
    "FuzzCase", "DifferentialOutcome", "build_case", "run_differential",
    "run_seeds", "architectural_digest", "DEFAULT_ENGINES",
    "DEFAULT_TIMINGS", "build_matrix",
    "ComparatorSweep", "ComparatorTrial", "classify", "sweep",
    "boundary_sweep", "AGREE", "PERMISSION", "VA_WIDTH", "UNCLASSIFIED",
    "PoolInvariants", "SpeculationIdentityProbe", "InvariantViolation",
    "PoisonedReadError", "check_pool", "POISON_BYTE",
    "run_verify", "VerifyStats",
]


def _pool_smoke(stats: VerifyStats, failures: List[str]) -> None:
    """Arm the pool sanitizer over a short batched-recycle workload."""
    from ..runtime import InstancePool
    from ..wasm import HfiStrategy
    from ..os import AddressSpace

    params = MachineParams()
    space = AddressSpace(params)
    pool = InstancePool(space, HfiStrategy(), slots=4,
                        heap_bytes=1 << 16, params=params,
                        batch_teardown=True)
    probe = PoolInvariants(raise_on_violation=False).install(pool)
    unexpected_hits = 0
    try:
        # two full acquire/release/flush generations, with an
        # acquire-after-batched-release in the middle (the fixed bug's
        # trigger shape)
        for _ in range(2):
            held = [pool.acquire() for _ in range(4)]
            for slot in held:
                space.write(slot.heap_base, 0x1234)
                pool.release(slot)
            live = pool.acquire()        # pool drained: must be None
            if live is not None:
                failures.append(
                    "pool handed out a slot while every slot was "
                    "pending discard")
            pool.flush_discards()
            live = pool.acquire()
            if live is None:
                failures.append("pool empty after flush_discards")
            else:
                value = space.read(live.heap_base)   # must be clean
                if value != 0:
                    failures.append(
                        f"freshly acquired slot read {value:#x}, "
                        f"expected zeroed heap")
                pool.release(live)
            pool.flush_discards()
        # Any poison hit during the normal workload is a real bug; the
        # planted stale read below is *expected* to trip the poisoner
        # and is excluded from the gate.
        unexpected_hits = probe.poison_hits
        dead = pool.slots[0]
        try:
            space.read(dead.heap_base)
            failures.append("stale read of a released slot's heap was "
                            "not flagged")
        except PoisonedReadError:
            pass
    except PoisonedReadError as exc:
        unexpected_hits = probe.poison_hits
        failures.append(f"pool invariant: unexpected poison hit: {exc}")
    finally:
        stats.poison_writes += probe.poison_writes
        stats.poison_hits += unexpected_hits
        stats.invariant_checks += probe.checks
        stats.invariant_violations += probe.violations
        for message in probe.violation_log:
            if not message.startswith("read of"):
                failures.append(f"pool invariant: {message}")
        probe.uninstall()


def _chaos_smoke(stats: VerifyStats, failures: List[str],
                 seeds: Iterable[int] = range(4),
                 params: Optional[MachineParams] = None) -> None:
    """Short chaos soak as part of the gate: every seeded run must end
    with zero leaked slots, zero zombie sandboxes, clean pool
    invariants, and every injected fault classified."""
    from ..chaos import run_soak

    report = run_soak(seeds, n_requests=80, fault_rate=0.08,
                      baseline=False, params=params)
    stats.chaos_runs += report.runs
    stats.chaos_faults_injected += report.injected
    stats.chaos_faults_unaccounted += report.unaccounted
    stats.chaos_leaked_slots += report.leaked_slots
    stats.chaos_zombie_sandboxes += report.zombie_sandboxes
    stats.invariant_violations += report.invariant_violations
    stats.invariant_checks += sum(o.invariant_checks
                                  for o in report.outcomes)
    failures.extend(report.failures()[:12])


def _speculation_smoke(stats: VerifyStats, failures: List[str]) -> None:
    """Run a mispredicting loop with the identity probe armed."""
    from ..cpu.machine import Cpu
    from ..isa.assembler import Assembler
    from ..isa.operands import Imm
    from ..isa.registers import Reg

    asm = Assembler()
    asm.mov(Reg.RCX, Imm(64))
    asm.mov(Reg.RAX, Imm(0))
    asm.label("top")
    asm.add(Reg.RAX, Imm(3))
    asm.dec(Reg.RCX)
    asm.jne("top")
    asm.hlt()
    program = asm.assemble()

    cpu = Cpu()
    probe = SpeculationIdentityProbe(raise_on_violation=False)
    cpu.install_invariant_probe(probe)
    cpu.load_program(program)
    result = cpu.run(program.base)
    if result.reason != "hlt" or cpu.regs.regs[Reg.RAX] != 192:
        failures.append(
            f"speculation smoke run misbehaved: reason={result.reason} "
            f"rax={cpu.regs.regs[Reg.RAX]}")
    if probe.checks == 0:
        failures.append("speculation probe never fired (no rollback "
                        "observed in a mispredicting loop)")
    stats.invariant_checks += probe.checks
    stats.invariant_violations += probe.violations
    failures.extend(f"speculation invariant: {m}"
                    for m in probe.violation_log)


def _ooo_smoke(stats: VerifyStats, failures: List[str]) -> None:
    """The OoO invariant probe: run a mispredicting, serializing loop
    under the scoreboarded backend and audit its structural invariants
    — retirement stays in order, no physical register is leaked or
    double-booked, drains empty the window — plus architectural parity
    (registers, serializations, instruction count) against the
    in-order model on the same program."""
    from ..cpu.machine import Cpu
    from ..isa.assembler import Assembler
    from ..isa.operands import Imm
    from ..isa.registers import Reg

    def build():
        asm = Assembler()
        asm.mov(Reg.RCX, Imm(48))
        asm.mov(Reg.RAX, Imm(0))
        asm.mov(Reg.RBX, Imm(7))
        asm.label("top")
        asm.add(Reg.RAX, Imm(3))
        asm.xor(Reg.RBX, Reg.RAX)
        asm.cpuid()                     # serializer inside the loop body
        asm.dec(Reg.RCX)
        asm.jne("top")
        asm.hlt()
        return asm.assemble()

    results = {}
    for timing in ("inorder", "ooo"):
        program = build()
        cpu = Cpu(timing=timing)
        cpu.load_program(program)
        result = cpu.run(program.base)
        results[timing] = (result, cpu)
        if result.reason != "hlt":
            failures.append(f"ooo smoke [{timing}]: reason="
                            f"{result.reason}, expected hlt")

    (_, inorder_cpu), (_, ooo_cpu) = results["inorder"], results["ooo"]
    checks = [
        ("architectural parity",
         all(inorder_cpu.regs.regs[r] == ooo_cpu.regs.regs[r]
             for r in Reg)),
        ("serializations parity",
         inorder_cpu.stats.serializations == ooo_cpu.stats.serializations),
        ("instruction parity",
         inorder_cpu.stats.instructions == ooo_cpu.stats.instructions),
    ]
    timing = ooo_cpu.timing
    probs = timing.audit()
    checks.append(("scoreboard audit", not probs))
    for message in probs:
        failures.append(f"ooo invariant: {message}")
    drains_before = timing.ooo_stats().drains
    timing.drain_pending()
    snap = timing.ooo_stats()
    checks.append(("drain empties the window",
                   timing.window_occupancy == 0
                   and snap.drains == drains_before + 1))
    checks.append(("post-drain audit", not timing.audit()))
    checks.append(("serializers drained",
                   snap.drains >= 48))          # one per cpuid at least
    stats.invariant_checks += len(checks)
    for label, ok in checks:
        if not ok:
            stats.invariant_violations += 1
            failures.append(f"ooo invariant: {label} failed")


def _determinism_smoke(stats: VerifyStats, failures: List[str],
                       seeds: Iterable[int] = (0, 7),
                       params: Optional[MachineParams] = None) -> None:
    """Seeded-determinism gate: the same seed must reproduce the
    serving simulator and FaaS model bit-for-bit, and changing the
    seed must never change how many requests a run *processes* (the
    workload is the workload; only its fate may differ)."""
    from ..runtime import FaasServer, simulate_serving

    baseline_requests: Optional[int] = None
    for seed in seeds:
        first = simulate_serving("hfi", n_requests=120, seed=seed,
                                 offered_load=1.1, params=params)
        second = simulate_serving("hfi", n_requests=120, seed=seed,
                                  offered_load=1.1, params=params)
        stats.determinism_runs += 2
        if first.digest() != second.digest():
            stats.determinism_mismatches += 1
            failures.append(
                f"serving run not deterministic for seed {seed}")
        if baseline_requests is None:
            baseline_requests = first.requests
        elif first.requests != baseline_requests:
            stats.determinism_mismatches += 1
            failures.append(
                f"seed {seed} changed the request count "
                f"({first.requests} != {baseline_requests})")
        faas_a = FaasServer(seed=seed).simulate("hfi", 50_000,
                                                n_requests=300)
        faas_b = FaasServer(seed=seed).simulate("hfi", 50_000,
                                                n_requests=300)
        stats.determinism_runs += 2
        if faas_a != faas_b:
            stats.determinism_mismatches += 1
            failures.append(
                f"FaaS model not deterministic for seed {seed}")


def run_verify(seeds: Iterable[int] = range(50),
               comparator_trials: int = 20_000,
               comparator_seed: int = 0,
               params: Optional[MachineParams] = None,
               engines: Tuple[str, ...] = DEFAULT_ENGINES,
               timings: Tuple[str, ...] = DEFAULT_TIMINGS,
               ) -> Tuple[VerifyStats, Dict[str, object]]:
    """Run the whole verify battery; returns (stats, detail report).

    ``engines`` x ``timings`` is the differential-oracle matrix: every
    (engine, timing) cell runs every seed, and full architectural
    state is asserted equal against the first cell — cycle counts may
    differ across timing models, architecture may not.

    ``stats.clean`` is the gate: zero cross-backend divergences, zero
    unclassified comparator disagreements, zero poison hits, zero
    invariant violations.
    """
    stats = VerifyStats(component="verify")
    failures: List[str] = []

    outcomes = run_seeds(seeds, params=params, engines=engines,
                         timings=timings)
    stats.oracle_runs = len(outcomes)
    for outcome in outcomes:
        if not outcome.ok:
            stats.divergences += 1
            for line in outcome.divergences[:8]:
                failures.append(f"seed {outcome.seed}: {line}")

    comparator = sweep(trials=comparator_trials, seed=comparator_seed)
    directed = boundary_sweep()
    stats.comparator_trials = comparator.trials + directed.trials
    stats.comparator_disagreements = (comparator.disagreements
                                      + directed.disagreements)
    stats.unclassified_disagreements = (len(comparator.unclassified)
                                        + len(directed.unclassified))
    for trial in (comparator.unclassified + directed.unclassified)[:8]:
        failures.append(f"comparator: {trial.describe()}")

    _pool_smoke(stats, failures)
    _speculation_smoke(stats, failures)
    _ooo_smoke(stats, failures)
    _chaos_smoke(stats, failures, params=params)
    _determinism_smoke(stats, failures, params=params)

    report = {
        "engines": list(engines),
        "timings": list(timings),
        "matrix": [f"{e}/{t}" for e, t in build_matrix(engines, timings)],
        "oracle_runs": stats.oracle_runs,
        "divergences": stats.divergences,
        "instructions": sum(o.instructions for o in outcomes),
        "comparator": {
            "trials": stats.comparator_trials,
            "classified": dict(comparator.counts),
            "boundary_trials": directed.trials,
            "unclassified": stats.unclassified_disagreements,
        },
        "chaos": {
            "runs": stats.chaos_runs,
            "faults_injected": stats.chaos_faults_injected,
            "faults_unaccounted": stats.chaos_faults_unaccounted,
            "leaked_slots": stats.chaos_leaked_slots,
            "zombie_sandboxes": stats.chaos_zombie_sandboxes,
        },
        "determinism": {
            "runs": stats.determinism_runs,
            "mismatches": stats.determinism_mismatches,
        },
        "poison_writes": stats.poison_writes,
        "poison_hits": stats.poison_hits,
        "invariant_checks": stats.invariant_checks,
        "invariant_violations": stats.invariant_violations,
        "failures": failures,
        "clean": stats.clean,
    }
    return stats, report
