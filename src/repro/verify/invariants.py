"""Sanitizer-style invariant checkers, armed behind explicit flags.

Nothing here runs unless a test or the ``repro-hfi verify`` CLI
installs it, so the simulator's default costs and behavior are
untouched.  Three probes:

* :class:`PoolInvariants` — a MemorySanitizer analogue for the pooling
  allocator.  A slot's heap is *dead* from ``release`` until the next
  ``acquire``: the probe poisons a prefix of the dead heap with
  ``0xA5`` and intercepts the address space's read paths, so any read
  of a dead slot's memory raises :class:`PoisonedReadError` at the
  exact access instead of silently consuming stale (or about-to-be-
  discarded) bytes.  It also re-checks free-list/``in_use``/
  ``_pending_discard`` consistency on every transition — the fixed
  dirty-slot recycling bug (a batched ``release`` parking the slot on
  the free list before ``flush_discards`` zapped it) is precisely a
  violation of these invariants.

* :class:`SpeculationIdentityProbe` — asserts that a speculation
  squash restores architectural state *in place*: ``cpu.regs``,
  ``cpu.regs.regs``, ``cpu.regs.flags``, ``cpu.hfi``, ``cpu.hfi.regs``
  and ``process.hfi_state`` must be the same objects after rollback
  that they were at window open (the historical deepcopy-and-swap
  squash broke all of these aliases).

* :func:`check_pool` — standalone structural audit of an
  :class:`~repro.runtime.pool.InstancePool`, usable without arming the
  poisoner.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

POISON_BYTE = 0xA5
#: Poison only a bounded prefix of each dead heap so arming the
#: sanitizer on big pools stays cheap; the *recorded* poisoned range
#: covers the whole heap, so reads anywhere in it are still caught.
POISON_PREFIX_BYTES = 256


class InvariantViolation(AssertionError):
    """A checked structural invariant does not hold."""


class PoisonedReadError(InvariantViolation):
    """A read touched the heap of a released (dead) pool slot."""


def check_pool(pool) -> List[str]:
    """Audit free-list/``in_use``/``_pending_discard``/quarantine
    consistency.

    Returns a list of human-readable violations (empty when sound).
    """
    problems: List[str] = []
    free = list(pool._free)
    pending = [slot.index for slot in pool._pending_discard]
    quarantined = list(getattr(pool, "_quarantined", []))
    if len(set(free)) != len(free):
        problems.append(f"free list has duplicates: {sorted(free)}")
    for index in free:
        if pool.slots[index].in_use:
            problems.append(f"slot {index} is both free and in_use")
    for index in pending:
        if index in free:
            problems.append(
                f"slot {index} is pending discard but already on the "
                f"free list (dirty-slot recycling)")
        if pool.slots[index].in_use:
            problems.append(f"slot {index} is pending discard but in_use")
    for index in quarantined:
        slot = pool.slots[index]
        if not slot.quarantined:
            problems.append(
                f"slot {index} on the quarantine list without its "
                f"quarantined flag")
        if index in free:
            problems.append(
                f"slot {index} is quarantined but on the free list "
                f"(unscrubbed reuse)")
        if index in pending:
            problems.append(
                f"slot {index} is both quarantined and pending discard")
        if slot.in_use:
            problems.append(f"slot {index} is quarantined but in_use")
    in_use = sum(1 for slot in pool.slots if slot.in_use)
    total = len(free) + len(pending) + len(quarantined) + in_use
    if total != len(pool.slots):
        problems.append(
            f"slot accounting leak: {len(free)} free + {len(pending)} "
            f"pending + {len(quarantined)} quarantined + {in_use} "
            f"in_use != {len(pool.slots)} slots")
    return problems


class PoolInvariants:
    """Poison-on-discard sanitizer for :class:`InstancePool`.

    Install with :meth:`install`; the pool then calls back on every
    ``acquire``/``release``/``flush_discards``.  Reads through the
    pool's address space are intercepted (``read`` and ``read_bytes``
    are shadowed on the instance) and checked against the live set of
    poisoned ranges.
    """

    def __init__(self, raise_on_violation: bool = True):
        self.raise_on_violation = raise_on_violation
        self.poison_writes = 0
        self.poison_hits = 0
        self.checks = 0
        self.violations = 0
        self.violation_log: List[str] = []
        #: slot index -> (heap_base, heap_bytes) of dead ranges
        self._poisoned: Dict[int, Tuple[int, int]] = {}
        self._pool = None
        self._space = None
        self._orig_read = None
        self._orig_read_bytes = None

    # ------------------------------------------------------------------
    def install(self, pool) -> "PoolInvariants":
        pool.invariants = self
        self._pool = pool
        self._space = pool.space
        self._orig_read = pool.space.read
        self._orig_read_bytes = pool.space.read_bytes

        def guarded_read(addr, size=8, *, check=True):
            self._check_read(addr, size)
            return self._orig_read(addr, size, check=check)

        def guarded_read_bytes(addr, size, *, check=True):
            self._check_read(addr, size)
            return self._orig_read_bytes(addr, size, check=check)

        pool.space.read = guarded_read
        pool.space.read_bytes = guarded_read_bytes
        return self

    def uninstall(self) -> None:
        if self._space is not None:
            # drop the instance-level shadows so attribute lookup falls
            # back to the plain class methods
            for name in ("read", "read_bytes"):
                self._space.__dict__.pop(name, None)
        if self._pool is not None:
            self._pool.invariants = None
        self._pool = self._space = None

    # ------------------------------------------------------------------
    # pool callbacks
    # ------------------------------------------------------------------
    def on_acquire(self, pool, slot) -> None:
        self._audit(pool)
        if any(s is slot for s in pool._pending_discard):
            self._violated(
                f"acquired slot {slot.index} while its discard is "
                f"still pending (dirty-slot recycling)")
        self._unpoison(slot)

    def on_release(self, pool, slot, batched: bool) -> None:
        self._poison(slot)
        self._audit(pool)

    def on_quarantine(self, pool, slot) -> None:
        # The supervisor owns the slot while it is quarantined — its
        # scrub legitimately probes the heap, so lift the poison until
        # the scrub re-deadens it.
        self._unpoison(slot)
        self._audit(pool)

    def on_scrub(self, pool, slot) -> None:
        # Scrubbed slots are back on the free list: dead until the next
        # acquire, exactly like a released-and-discarded slot.
        self._poison(slot)
        self._audit(pool)

    def on_flush(self, pool, flushed) -> None:
        for slot in flushed:
            if slot.in_use:
                self._violated(
                    f"flush_discards zapped slot {slot.index} while it "
                    f"is live (in_use)")
            # madvise dropped the pages (and our poison pattern with
            # them); the slot is still dead until acquire — re-poison.
            self._poison(slot)
        self._audit(pool)

    # ------------------------------------------------------------------
    def _audit(self, pool) -> None:
        self.checks += 1
        for problem in check_pool(pool):
            self._violated(problem)

    def _violated(self, message: str) -> None:
        self.violations += 1
        self.violation_log.append(message)
        if self.raise_on_violation:
            raise InvariantViolation(message)

    def _check_read(self, addr: int, size: int) -> None:
        for index, (base, length) in self._poisoned.items():
            if addr < base + length and addr + size > base:
                self.poison_hits += 1
                message = (f"read of {size} bytes at {addr:#x} touches "
                           f"poisoned heap of released slot {index} "
                           f"[{base:#x}, {base + length:#x})")
                self.violation_log.append(message)
                raise PoisonedReadError(message)

    def _poison(self, slot) -> None:
        prefix = min(POISON_PREFIX_BYTES, slot.heap_bytes)
        self._space.write_bytes(slot.heap_base,
                                bytes([POISON_BYTE]) * prefix,
                                check=False)
        self._poisoned[slot.index] = (slot.heap_base, slot.heap_bytes)
        self.poison_writes += 1

    def _unpoison(self, slot) -> None:
        if slot.index not in self._poisoned:
            return
        del self._poisoned[slot.index]
        prefix = min(POISON_PREFIX_BYTES, slot.heap_bytes)
        # a freshly acquired slot must read as zeros, like a real
        # madvise(DONTNEED) heap
        self._space.write_bytes(slot.heap_base, bytes(prefix),
                                check=False)


class SpeculationIdentityProbe:
    """Checks that squash preserves architectural object identity.

    Arm via ``cpu.install_invariant_probe(probe)``; the speculation
    journal calls :meth:`on_open` when a window opens and
    :meth:`on_rollback` after the squash completes.
    """

    def __init__(self, raise_on_violation: bool = True):
        self.raise_on_violation = raise_on_violation
        self.checks = 0
        self.violations = 0
        self.violation_log: List[str] = []
        self._identities: Optional[Dict[str, int]] = None

    def _capture(self, cpu) -> Dict[str, int]:
        out = {
            "cpu.regs": id(cpu.regs),
            "cpu.regs.regs": id(cpu.regs.regs),
            "cpu.regs.flags": id(cpu.regs.flags),
            "cpu.hfi": id(cpu.hfi),
            "cpu.hfi.regs": id(cpu.hfi.regs),
        }
        if cpu.process is not None:
            out["process.hfi_state"] = id(cpu.process.hfi_state)
        return out

    def on_open(self, cpu) -> None:
        self._identities = self._capture(cpu)

    def on_rollback(self, cpu) -> None:
        if self._identities is None:
            return
        self.checks += 1
        after = self._capture(cpu)
        for name, before_id in self._identities.items():
            if after.get(name) != before_id:
                self.violations += 1
                message = (f"speculation squash rebound {name} "
                           f"(identity {before_id:#x} -> "
                           f"{after.get(name, 0):#x})")
                self.violation_log.append(message)
                if self.raise_on_violation:
                    raise InvariantViolation(message)
        if (cpu.process is not None
                and cpu.process.hfi_state is not cpu.hfi):
            self.violations += 1
            message = "process.hfi_state no longer aliases cpu.hfi"
            self.violation_log.append(message)
            if self.raise_on_violation:
                raise InvariantViolation(message)
        self._identities = None
