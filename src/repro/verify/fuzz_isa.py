"""Seeded ISA-level differential fuzzing across execution backends.

``build_case(seed)`` generates a well-formed program over the full
opcode table — ALU traffic, loads/stores of every operand size,
balanced push/pop, forward branches, bounded loops, direct and
indirect calls, HFI sandbox episodes (region installs, ``hfi_enter``
in every flag combination, in- and out-of-bounds ``hmov``,
``hfi_exit``/``hfi_reenter``), ``xsave``/``xrstor`` pairs, syscalls,
and deliberately-faulting accesses.  ``run_differential(seed)`` then
executes the same program on every requested engine — by default the
staged interpreter, the superblock-compiling ``blocks`` engine, and
the naive :class:`~repro.verify.reference.ReferenceCpu` — starting
from bit-identical address spaces, and asserts equality of the full
architectural end state against the first engine: every GPR, the
flags, ``rip``, the stop reason, the fault record, the
committed-instruction count, the HFI bank (regions, sandbox flags,
cause MSR, lifecycle counters), and all non-zero memory.

Backends are constructed by name through
:func:`repro.cpu.machine.create_backend` — the public engine seam —
so a new conforming backend joins the matrix by adding its name.

``rdtsc`` is the one architectural instruction never generated: it
reads the cycle counter, which the reference engine does not model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.encoding import encode_region, encode_sandbox
from ..core.regions import (
    ExplicitDataRegion,
    ImplicitCodeRegion,
    ImplicitDataRegion,
)
from ..core.registers import SandboxFlags
from ..cpu.machine import create_backend
from ..isa.assembler import Assembler
from ..isa.instruction import Program
from ..isa.operands import Imm, LabelRef, Mem
from ..isa.registers import Reg
from ..os.address_space import AddressSpace, Prot
from ..params import MachineParams

#: The default differential matrix: every conforming backend, with the
#: staged interpreter as the baseline the others are compared against.
DEFAULT_ENGINES: Tuple[str, ...] = ("staged", "blocks", "reference")

#: Timing models the verify gate crosses with the engine matrix.  The
#: architectural end state must be identical across all of them; only
#: cycle counts may differ.
DEFAULT_TIMINGS: Tuple[str, ...] = ("inorder", "ooo")

# ----------------------------------------------------------------------
# fixed memory layout shared by every generated case
# ----------------------------------------------------------------------
CODE_BASE = 0x0040_0000
CODE_BYTES = 1 << 16
DATA_BASE = 0x0010_0000
DATA_BYTES = 1 << 16
STACK_BASE = 0x002F_0000
STACK_BYTES = 1 << 16
HEAP_BASE = 0x0080_0000
HEAP_BYTES = 1 << 16
SMALL_BOUND = 0x8000

RSP_INIT = STACK_BASE + STACK_BYTES - 0x1000

#: Random loads/stores stay inside [DATA_BASE+0x100, DATA_BASE+0xE000);
#: descriptors and the xsave area live above that so stray stores
#: cannot corrupt them.
SCRATCH_LO, SCRATCH_HI = 0x100, 0xDFF0
XSAVE_OFF = 0xE800
GET_REGION_OFF = 0xE900

DESC_CODE = DATA_BASE + 0xF000
DESC_DATA = DATA_BASE + 0xF020
DESC_STACK = DATA_BASE + 0xF040
DESC_HEAP_LARGE = DATA_BASE + 0xF060
DESC_HEAP_SMALL = DATA_BASE + 0xF080
SANDBOX_DESCS = [DATA_BASE + 0xF100 + 0x10 * i for i in range(4)]
SANDBOX_FLAG_VARIANTS = [
    SandboxFlags(),                                      # native
    SandboxFlags(is_hybrid=True),
    SandboxFlags(is_serialized=True),
    SandboxFlags(switch_on_exit=True),
]

SCRATCH = [Reg.RAX, Reg.RBX, Reg.RCX, Reg.RDX, Reg.RSI,
           Reg.R8, Reg.R9, Reg.R10, Reg.R11]
SIZES = [1, 2, 4, 8]
IMM_POOL = [0, 1, 2, 7, 0xFF, 0x1234, 1 << 31, (1 << 63) - 1,
            1 << 63, (1 << 64) - 1]
JCC = ["je", "jne", "jl", "jle", "jg", "jge", "jb", "jbe", "ja", "jae"]


@dataclass
class FuzzCase:
    """One generated program plus the memory image it runs against."""

    seed: int
    program: Program
    entry: int
    mappings: List[Tuple[int, int, Prot, str]]
    preload: List[Tuple[int, bytes]]
    max_instructions: int = 200_000


class _Generator:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.asm = Assembler(base=CODE_BASE)
        self.depth = 0            # tracked push/pop balance
        self.had_episode = False  # an hfi_exit has banked a reenter state
        self._label = 0
        self._fns = ["fn0", "fn1"]

    def fresh_label(self, tag: str) -> str:
        self._label += 1
        return f"{tag}_{self._label}"

    def reg(self) -> Reg:
        return self.rng.choice(SCRATCH)

    def imm(self) -> Imm:
        rng = self.rng
        if rng.random() < 0.6:
            return Imm(rng.choice(IMM_POOL))
        return Imm(rng.randrange(0, 1 << 64))

    # ------------------------------------------------------------------
    # simple steps (safe anywhere, including inside loops and sandboxes)
    # ------------------------------------------------------------------
    def step_simple(self) -> None:
        a, rng = self.asm, self.rng
        kind = rng.choices(
            ["alu_rr", "alu_ri", "shift", "unary", "mov_imm", "mov_rr",
             "load", "store", "load_indexed", "lea", "serialize"],
            weights=[3, 3, 1, 1, 2, 1, 2, 2, 1, 1, 1])[0]
        if kind == "alu_rr":
            op = rng.choice([a.add, a.sub, a.and_, a.or_, a.xor, a.imul])
            op(self.reg(), self.reg())
        elif kind == "alu_ri":
            op = rng.choice([a.add, a.sub, a.and_, a.or_, a.xor, a.imul,
                             a.cmp, a.test])
            op(self.reg(), self.imm())
        elif kind == "shift":
            op = rng.choice([a.shl, a.shr, a.sar])
            op(self.reg(), Imm(rng.randrange(0, 70)))
        elif kind == "unary":
            rng.choice([a.not_, a.neg, a.inc, a.dec])(self.reg())
        elif kind == "mov_imm":
            a.mov(self.reg(), self.imm())
        elif kind == "mov_rr":
            a.mov(self.reg(), self.reg())
        elif kind == "load":
            size = rng.choice(SIZES)
            a.mov(self.reg(), Mem(base=Reg.RBP, size=size,
                                  disp=rng.randrange(SCRATCH_LO,
                                                     SCRATCH_HI)))
        elif kind == "store":
            size = rng.choice(SIZES)
            src = self.reg() if rng.random() < 0.7 else self.imm()
            a.mov(Mem(base=Reg.RBP, size=size,
                      disp=rng.randrange(SCRATCH_LO, SCRATCH_HI)), src)
        elif kind == "load_indexed":
            idx = self.reg()
            a.and_(idx, Imm(0x1FF0))     # keep RBP+idx+disp inside DATA
            a.mov(self.reg(), Mem(base=Reg.RBP, index=idx, scale=1,
                                  disp=0x2000, size=8))
        elif kind == "lea":
            a.lea(self.reg(), Mem(base=Reg.RBP, index=self.reg(),
                                  scale=rng.choice([1, 2, 4, 8]),
                                  disp=rng.randrange(0, 1 << 32)))
        else:
            rng.choice([a.cpuid, a.lfence, a.nop])()

    # ------------------------------------------------------------------
    # structured steps
    # ------------------------------------------------------------------
    def step_stack(self) -> None:
        a, rng = self.asm, self.rng
        if self.depth > 0 and rng.random() < 0.5:
            a.pop(self.reg())
            self.depth -= 1
        else:
            a.push(self.reg() if rng.random() < 0.7 else self.imm())
            self.depth += 1

    def step_skip_block(self) -> None:
        a, rng = self.asm, self.rng
        if rng.random() < 0.7:
            a.cmp(self.reg(), self.imm() if rng.random() < 0.5
                  else self.reg())
        else:
            a.test(self.reg(), self.reg())
        label = self.fresh_label("skip")
        getattr(a, rng.choice(JCC))(label)
        for _ in range(rng.randint(1, 3)):
            self.step_simple()
        a.label(label)

    def step_loop(self) -> None:
        a, rng = self.asm, self.rng
        a.mov(Reg.R13, Imm(rng.randint(2, 6)))
        top = self.fresh_label("loop")
        a.label(top)
        for _ in range(rng.randint(1, 2)):
            self.step_simple()
        a.dec(Reg.R13)
        a.jne(top)

    def step_call(self) -> None:
        a, rng = self.asm, self.rng
        fn = rng.choice(self._fns)
        if rng.random() < 0.3:
            a.mov(Reg.R14, LabelRef(fn))
            a.call(Reg.R14)
        else:
            a.call(fn)

    def step_indirect_jmp(self) -> None:
        a = self.asm
        label = self.fresh_label("ijmp")
        a.mov(Reg.R14, LabelRef(label))
        a.jmp(Reg.R14)
        a.label(label)

    def step_xsave_pair(self) -> None:
        a, rng = self.asm, self.rng
        area = Mem(base=Reg.RBP, disp=XSAVE_OFF)
        a.xsave(area)
        for _ in range(rng.randint(1, 3)):
            self.step_simple()
        a.xrstor(area)

    def step_syscall(self) -> None:
        a, rng = self.asm, self.rng
        a.mov(Reg.RAX, Imm(rng.randrange(0, 300)))
        (a.int80 if rng.random() < 0.3 else a.syscall)()

    def step_pkru(self) -> None:
        a, rng = self.asm, self.rng
        rng.choice([a.wrpkru, a.rdpkru])()

    def step_region_query(self) -> None:
        a, rng = self.asm, self.rng
        a.mov(Reg.RDI, Imm(DATA_BASE + GET_REGION_OFF))
        a.hfi_get_region(rng.randrange(0, 10), Reg.RDI)

    def step_region_clear(self) -> None:
        a, rng = self.asm, self.rng
        if rng.random() < 0.3:
            a.hfi_clear_all_regions()
        else:
            a.hfi_clear_region(rng.randrange(0, 10))

    def step_div(self) -> None:
        a, rng = self.asm, self.rng
        a.mov(Reg.RCX, self.imm() if rng.random() < 0.5
              else Imm(rng.randrange(1, 1 << 32)))
        # RCX may still be zero (the imm pool contains 0): a genuine
        # division fault is a legal outcome both engines must agree on.
        rng.choice([a.idiv, a.imod])(self.reg(), Reg.RCX)

    def step_clflush(self) -> None:
        a, rng = self.asm, self.rng
        a.clflush(Mem(base=Reg.RBP,
                      disp=rng.randrange(SCRATCH_LO, SCRATCH_HI)))

    # ------------------------------------------------------------------
    # hmov traffic (sandbox only)
    # ------------------------------------------------------------------
    def step_hmov(self) -> None:
        a, rng = self.asm, self.rng
        size = rng.choice(SIZES)
        slot = 0 if rng.random() < 0.7 else 1   # large heap / small RO
        limit = HEAP_BYTES if slot == 0 else SMALL_BOUND
        idx_val = rng.randrange(0, limit - 0x40)
        disp = rng.randrange(0, 0x38)
        a.mov(Reg.R12, Imm(idx_val))
        mem = Mem(index=Reg.R12, scale=1, disp=disp, size=size)
        if slot == 1 or rng.random() < 0.5:     # slot 1 is read-only
            a.hmov(slot, self.reg(), mem)
        else:
            src = self.reg() if rng.random() < 0.7 else self.imm()
            a.hmov(slot, mem, src)

    # ------------------------------------------------------------------
    # deliberate faults — each typically ends the run; both engines
    # must agree on the cause, address, and final state.
    # ------------------------------------------------------------------
    def step_fault(self, sandboxed: bool) -> None:
        a, rng = self.asm, self.rng
        if sandboxed:
            kind = rng.choice(["implicit_oob", "hmov_oob", "hmov_clear",
                               "hmov_readonly_store", "region_locked",
                               "xrstor_in_sandbox"])
            if kind == "implicit_oob":
                a.mov(self.reg(), Mem(disp=HEAP_BASE, size=8))
            elif kind == "hmov_oob":
                a.mov(Reg.R12, Imm(HEAP_BYTES + rng.randrange(0, 1 << 20)))
                a.hmov(0, self.reg(), Mem(index=Reg.R12, size=8))
            elif kind == "hmov_clear":
                a.mov(Reg.R12, Imm(0))
                a.hmov(2, self.reg(), Mem(index=Reg.R12, size=8))
            elif kind == "hmov_readonly_store":
                a.mov(Reg.R12, Imm(rng.randrange(0, SMALL_BOUND - 8)))
                a.hmov(1, Mem(index=Reg.R12, size=8), self.reg())
            elif kind == "region_locked":
                a.mov(Reg.RDI, Imm(DESC_HEAP_LARGE))
                a.hfi_set_region(6, Reg.RDI)
            else:
                a.xrstor(Mem(base=Reg.RBP, disp=XSAVE_OFF))
        else:
            kind = rng.choice(["unmapped", "div0", "xrstor_bad",
                               "hmov_disabled"])
            if kind == "unmapped":
                a.mov(self.reg(), Mem(disp=0x5000_0000, size=8))
            elif kind == "div0":
                a.mov(Reg.RCX, Imm(0))
                a.idiv(self.reg(), Reg.RCX)
            elif kind == "xrstor_bad":
                a.xrstor(Mem(base=Reg.RBP, disp=XSAVE_OFF - 0x10))
            else:
                a.mov(Reg.R12, Imm(0))
                a.hmov(0, self.reg(), Mem(index=Reg.R12, size=8))

    # ------------------------------------------------------------------
    # HFI sandbox episode
    # ------------------------------------------------------------------
    def sandbox_episode(self) -> None:
        a, rng = self.asm, self.rng
        for number, desc in ((0, DESC_CODE), (2, DESC_DATA),
                             (3, DESC_STACK), (6, DESC_HEAP_LARGE)):
            a.mov(Reg.RDI, Imm(desc))
            a.hfi_set_region(number, Reg.RDI)
        if rng.random() < 0.8:
            a.mov(Reg.RDI, Imm(DESC_HEAP_SMALL))
            a.hfi_set_region(7, Reg.RDI)
        a.mov(Reg.RDI, Imm(rng.choice(SANDBOX_DESCS)))
        a.hfi_enter(Reg.RDI)
        for _ in range(rng.randint(2, 8)):
            self.sandboxed_step()
        a.hfi_exit()
        self.had_episode = True
        if rng.random() < 0.25:
            a.hfi_reenter()
            for _ in range(rng.randint(1, 2)):
                self.sandboxed_step()
            a.hfi_exit()

    def sandboxed_step(self) -> None:
        rng = self.rng
        kind = rng.choices(
            ["simple", "hmov", "stack", "skip", "call", "syscall",
             "fault"],
            weights=[5, 3, 2, 2, 1, 0.4, 0.25])[0]
        if kind == "simple":
            self.step_simple()
        elif kind == "hmov":
            self.step_hmov()
        elif kind == "stack":
            self.step_stack()
        elif kind == "skip":
            self.step_skip_block()
        elif kind == "call":
            self.step_call()
        elif kind == "syscall":
            self.step_syscall()
        else:
            self.step_fault(sandboxed=True)

    def toplevel_step(self) -> None:
        rng = self.rng
        kind = rng.choices(
            ["simple", "stack", "skip", "loop", "call", "ijmp",
             "episode", "xsave", "syscall", "pkru", "query", "clear",
             "div", "clflush", "reenter", "fault"],
            weights=[6, 2, 2, 1.5, 1.5, 0.7, 2.5, 0.7, 0.7, 0.5, 0.7,
                     0.4, 1, 0.4, 0.4, 0.3])[0]
        if kind == "simple":
            self.step_simple()
        elif kind == "stack":
            self.step_stack()
        elif kind == "skip":
            self.step_skip_block()
        elif kind == "loop":
            self.step_loop()
        elif kind == "call":
            self.step_call()
        elif kind == "ijmp":
            self.step_indirect_jmp()
        elif kind == "episode":
            self.sandbox_episode()
        elif kind == "xsave":
            self.step_xsave_pair()
        elif kind == "syscall":
            self.step_syscall()
        elif kind == "pkru":
            self.step_pkru()
        elif kind == "query":
            self.step_region_query()
        elif kind == "clear":
            self.step_region_clear()
        elif kind == "div":
            self.step_div()
        elif kind == "clflush":
            self.step_clflush()
        elif kind == "reenter":
            if self.had_episode:
                self.asm.hfi_reenter()
                self.step_simple()
                self.asm.hfi_exit()
            else:
                self.step_simple()
        else:
            self.step_fault(sandboxed=False)

    # ------------------------------------------------------------------
    def build(self, seed: int) -> FuzzCase:
        a, rng = self.asm, self.rng
        # prologue: stack, data base pointer, random register state
        a.mov(Reg.RSP, Imm(RSP_INIT))
        a.mov(Reg.RBP, Imm(DATA_BASE))
        for reg in SCRATCH:
            a.mov(reg, Imm(rng.randrange(0, 1 << 64)))
        for _ in range(rng.randint(10, 40)):
            self.toplevel_step()
        a.hlt()
        # subroutines: pure register arithmetic, single ret
        for fn in self._fns:
            a.label(fn)
            for _ in range(rng.randint(2, 4)):
                op = rng.choice([a.add, a.sub, a.xor, a.imul])
                op(rng.choice(SCRATCH), rng.choice(SCRATCH))
            a.ret()
        # exit handler targeted by native-sandbox syscall interposition
        a.label("handler")
        a.nop()
        a.hlt()

        program = a.assemble()
        handler = program.labels["handler"]
        preload: List[Tuple[int, bytes]] = [
            (DESC_CODE, encode_region(
                ImplicitCodeRegion.covering(CODE_BASE, CODE_BYTES))),
            (DESC_DATA, encode_region(
                ImplicitDataRegion.covering(DATA_BASE, DATA_BYTES))),
            (DESC_STACK, encode_region(
                ImplicitDataRegion.covering(STACK_BASE, STACK_BYTES))),
            (DESC_HEAP_LARGE, encode_region(ExplicitDataRegion(
                HEAP_BASE, HEAP_BYTES, permission_read=True,
                permission_write=True, is_large_region=True))),
            (DESC_HEAP_SMALL, encode_region(ExplicitDataRegion(
                HEAP_BASE, SMALL_BOUND, permission_read=True,
                permission_write=False, is_large_region=False))),
        ]
        for addr, flags in zip(SANDBOX_DESCS, SANDBOX_FLAG_VARIANTS):
            preload.append((addr, encode_sandbox(flags, handler)))
        preload.append((DATA_BASE + SCRATCH_LO,
                        rng.randbytes(0x300) if hasattr(rng, "randbytes")
                        else bytes(rng.randrange(256) for _ in range(0x300))))
        preload.append((HEAP_BASE,
                        bytes(rng.randrange(256) for _ in range(0x200))))
        mappings = [
            (CODE_BASE, CODE_BYTES, Prot.READ | Prot.EXEC, "code"),
            (DATA_BASE, DATA_BYTES, Prot.READ | Prot.WRITE, "data"),
            (STACK_BASE, STACK_BYTES, Prot.READ | Prot.WRITE, "stack"),
            (HEAP_BASE, HEAP_BYTES, Prot.READ | Prot.WRITE, "heap"),
        ]
        return FuzzCase(seed=seed, program=program, entry=CODE_BASE,
                        mappings=mappings, preload=preload)


def build_case(seed: int) -> FuzzCase:
    """Deterministically generate the fuzz program for ``seed``."""
    return _Generator(seed).build(seed)


# ----------------------------------------------------------------------
# differential execution
# ----------------------------------------------------------------------
def _fresh_backend(engine: str, case: FuzzCase, params: MachineParams,
                   timing: str = "inorder"):
    """A named backend with the case's address space, program loaded."""
    space = AddressSpace(params)
    for base, length, prot, name in case.mappings:
        space.mmap(length, prot, addr=base, name=name)
    for addr, data in case.preload:
        space.write_bytes(addr, data, check=False)
    cpu = create_backend(engine, timing=timing, params=params, memory=space)
    cpu.load_program(case.program)
    return cpu


def build_matrix(engines: Tuple[str, ...],
                 timings: Tuple[str, ...]) -> List[Tuple[str, str]]:
    """The (engine, timing) cross, minus redundant cells.

    The reference oracle has no timing backend (it is architectural
    only), so it appears once regardless of how many timing models are
    swept.
    """
    matrix: List[Tuple[str, str]] = []
    for engine in engines:
        for timing in timings:
            if engine == "reference" and timing != timings[0]:
                continue
            matrix.append((engine, timing))
    return matrix


def _guarded_run(cpu, entry: int, max_instructions: int) -> Dict[str, object]:
    try:
        result = cpu.run(entry, max_instructions=max_instructions)
    except Exception as exc:  # engines must agree even on escapes
        return {"exception": f"{type(exc).__name__}: {exc}"}
    fault = result.fault
    return {
        "reason": result.reason,
        "rip": result.rip,
        "fault": (None if fault is None else
                  (fault.kind, fault.hfi_cause, fault.addr, fault.detail)),
    }


def _hfi_digest(hfi) -> Dict[str, object]:
    regs = hfi.regs
    return {
        "enabled": regs.enabled,
        "flags": regs.flags,
        "exit_handler": regs.exit_handler,
        "cause_msr": regs.cause_msr,
        "code": tuple(regs.code),
        "data": tuple(regs.data),
        "explicit": tuple(regs.explicit),
        "enters": hfi.enters,
        "exits": hfi.exits,
        "region_installs": hfi.region_installs,
        "serializations": hfi.serializations,
    }


def architectural_digest(cpu) -> Dict[str, object]:
    """Full architectural end state of either engine, comparison-ready.

    All-zero memory pages are dropped: the engines may lazily
    materialize different page sets, but the bytes must agree.
    """
    flags = cpu.regs.flags
    return {
        "regs": {reg.name: cpu.regs.regs[reg] for reg in Reg},
        "flags": (flags.zf, flags.sf, flags.cf, flags.of),
        "rip": cpu.regs.rip,
        "hfi": _hfi_digest(cpu.hfi),
        "memory": {page: bytes(buf)
                   for page, buf in cpu.mem._pages.items() if any(buf)},
    }


@dataclass
class DifferentialOutcome:
    """Result of one staged-vs-reference run."""

    seed: int
    reason: str = ""
    instructions: int = 0
    divergences: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _diff_digests(base: Dict, other: Dict, base_name: str,
                  other_name: str, out: List[str]) -> None:
    for name, value in base["regs"].items():
        theirs = other["regs"][name]
        if value != theirs:
            out.append(f"reg {name}: {base_name}={value:#x} "
                       f"{other_name}={theirs:#x}")
    if base["flags"] != other["flags"]:
        out.append(f"flags: {base_name}={base['flags']} "
                   f"{other_name}={other['flags']}")
    if base["rip"] != other["rip"]:
        out.append(f"rip: {base_name}={base['rip']:#x} "
                   f"{other_name}={other['rip']:#x}")
    for key, value in base["hfi"].items():
        theirs = other["hfi"][key]
        if value != theirs:
            out.append(f"hfi.{key}: {base_name}={value!r} "
                       f"{other_name}={theirs!r}")
    pages = set(base["memory"]) | set(other["memory"])
    for page in sorted(pages):
        mine = base["memory"].get(page)
        theirs = other["memory"].get(page)
        if mine != theirs:
            out.append(
                f"memory page {page:#x} differs "
                f"({base_name}={'present' if mine else 'absent'}, "
                f"{other_name}={'present' if theirs else 'absent'})")


def run_differential(seed: int,
                     params: Optional[MachineParams] = None,
                     max_instructions: int = 200_000,
                     engines: Tuple[str, ...] = DEFAULT_ENGINES,
                     timings: Tuple[str, ...] = ("inorder",),
                     ) -> DifferentialOutcome:
    """Run one seed on every (engine, timing) cell; report
    disagreements vs the first cell.

    Timing models must not change architecture: cycle counts may (and
    do) differ across ``timings``, but registers, flags, rip, memory,
    the HFI bank, committed instruction counts, and run outcomes must
    be bit-identical — that is the pluggable-timing contract.
    """
    params = params if params is not None else MachineParams()
    case = build_case(seed)
    matrix = build_matrix(engines, timings)
    base_engine, base_timing = matrix[0]
    base_name = (base_engine if len(timings) == 1
                 else f"{base_engine}/{base_timing}")
    base = _fresh_backend(base_engine, case, params, timing=base_timing)
    base_out = _guarded_run(base, case.entry, case.max_instructions)

    outcome = DifferentialOutcome(
        seed=seed, reason=str(base_out.get("reason", "exception")),
        instructions=base.stats.instructions)
    base_ok = "exception" not in base_out
    base_digest = architectural_digest(base) if base_ok else None
    for other_engine, other_timing in matrix[1:]:
        other_name = (other_engine if len(timings) == 1
                      else f"{other_engine}/{other_timing}")
        other = _fresh_backend(other_engine, case, params,
                               timing=other_timing)
        other_out = _guarded_run(other, case.entry, case.max_instructions)
        for key in sorted(set(base_out) | set(other_out)):
            if base_out.get(key) != other_out.get(key):
                outcome.divergences.append(
                    f"outcome.{key}: {base_name}={base_out.get(key)!r} "
                    f"{other_name}={other_out.get(key)!r}")
        if not base_ok or "exception" in other_out:
            continue
        if base.stats.instructions != other.stats.instructions:
            outcome.divergences.append(
                f"instructions: {base_name}={base.stats.instructions} "
                f"{other_name}={other.stats.instructions}")
        _diff_digests(base_digest, architectural_digest(other),
                      base_name, other_name, outcome.divergences)
    return outcome


def run_seeds(seeds, params: Optional[MachineParams] = None,
              engines: Tuple[str, ...] = DEFAULT_ENGINES,
              timings: Tuple[str, ...] = ("inorder",),
              ) -> List[DifferentialOutcome]:
    """Differentially execute every seed; returns one outcome per seed."""
    return [run_differential(seed, params=params, engines=engines,
                             timings=timings)
            for seed in seeds]
