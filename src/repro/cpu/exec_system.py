"""Exec unit: system interaction (syscalls, fences, xsave, MPK).

Serializing instructions, ``wrpkru``, ``xrstor``, and syscalls are
squash points: on the wrong path they raise ``_StopSpeculation``
before any architectural effect, exactly as the old interpreter did.
"""

from __future__ import annotations

from ..isa.opcodes import Opcode
from ..isa.registers import Reg
from ..os.address_space import AccessKind, PageFault
from .decode import _StopSpeculation, decoder, make_ea


def _serialize(cpu, cost=None):
    if cpu._speculative:
        raise _StopSpeculation()
    cpu.timing.serialize_drain(cost)
    cpu.telemetry.count("cpu.serialization")


@decoder(Opcode.SYSCALL, Opcode.INT80)
def _syscall(ins, addr, next_rip):
    legacy = ins.opcode is Opcode.INT80

    def run(cpu):
        regs = cpu.regs
        regs.rip = next_rip
        if cpu._speculative:
            raise _StopSpeculation()
        nr = regs.regs[Reg.RAX]
        outcome = cpu.hfi.syscall_attempt(nr, legacy=legacy)
        stats = cpu.stats
        if outcome is not None:
            # Native sandbox: the syscall became a jump to the exit
            # handler (§4.4); the cause MSR already says which call.
            stats.interposed_syscalls += 1
            # The interposed transition serializes like an exit but is
            # counted by its own lifecycle counter.
            cpu.timing.serialize_drain(outcome.cycles, count=False)
            telemetry = cpu.telemetry
            if telemetry.enabled:
                telemetry.count("cpu.syscall.interposed")
                telemetry.event("syscall.interposed", stats.cycles, nr=nr)
                telemetry.end_span(stats.cycles, name="hfi.sandbox",
                                   reason="syscall")
            if outcome.redirect_to is not None:
                regs.rip = outcome.redirect_to
            return
        stats.syscalls += 1
        if cpu.telemetry.enabled:
            cpu.telemetry.count("cpu.syscall")
        if cpu.kernel is not None and cpu.process is not None:
            result = cpu.kernel.syscall(
                cpu.process, nr, regs.regs[Reg.RDI], regs.regs[Reg.RSI],
                regs.regs[Reg.RDX])
            cpu._wreg(Reg.RAX, result.value)
            # The ring transition drains the window; kernel time is
            # serial by construction.
            cpu.timing.serialize_drain(result.cycles, count=False)
        else:
            cpu.timing.serialize_drain(cpu.params.syscall_cycles,
                                       count=False)
    return run


@decoder(Opcode.CPUID)
def _cpuid(ins, addr, next_rip):
    def run(cpu):
        cpu.regs.rip = next_rip
        _serialize(cpu)
    return run


@decoder(Opcode.LFENCE)
def _lfence(ins, addr, next_rip):
    def run(cpu):
        cpu.regs.rip = next_rip
        _serialize(cpu, cost=cpu.params.serialize_drain_cycles // 2)
    return run


@decoder(Opcode.CLFLUSH, block_safe=True)
def _clflush(ins, addr, next_rip):
    ea_of = make_ea(ins.operands[0])

    def run(cpu):
        cpu.regs.rip = next_rip
        cpu.caches.flush_line(ea_of(cpu))
        cpu.timing.charge(cpu.params.clflush_cycles)
    return run


@decoder(Opcode.RDTSC)
def _rdtsc(ins, addr, next_rip):
    def run(cpu):
        cpu.regs.rip = next_rip
        # rdtsc reads the real cycle counter even on the wrong path.
        cpu.timing.charge_always(cpu.params.rdtsc_cycles)
        cpu._wreg(Reg.RAX, cpu.stats.cycles)
        cpu._wreg(Reg.RDX, 0)
    return run


@decoder(Opcode.NOP, block_safe=True)
def _nop(ins, addr, next_rip):
    def run(cpu):
        cpu.regs.rip = next_rip
    return run


@decoder(Opcode.HLT)
def _hlt(ins, addr, next_rip):
    def run(cpu):
        cpu.regs.rip = next_rip
        if cpu._speculative:
            raise _StopSpeculation()
        cpu._halted = True
    return run


@decoder(Opcode.XSAVE, block_safe=True)
def _xsave(ins, addr, next_rip):
    ea_of = make_ea(ins.operands[0])

    def run(cpu):
        cpu.regs.rip = next_rip
        ea = ea_of(cpu)
        if not cpu._speculative:
            pkru = cpu.process.pkru if cpu.process is not None else 0
            cpu._xsave_areas[ea] = (cpu.regs.copy(), cpu.hfi.snapshot(),
                                    pkru)
            cpu.timing.charge_always(cpu.params.xsave_cycles
                                     + cpu.params.xsave_hfi_extra_cycles)
    return run


@decoder(Opcode.XRSTOR)
def _xrstor(ins, addr, next_rip):
    ea_of = make_ea(ins.operands[0])

    def run(cpu):
        cpu.regs.rip = next_rip
        if cpu._speculative:
            raise _StopSpeculation()
        ea = ea_of(cpu)
        area = cpu._xsave_areas.get(ea)
        if area is None:
            raise PageFault(ea, AccessKind.READ, "xrstor from bad area")
        saved_regs, hfi_bank, pkru = area
        # Traps inside a native sandbox (§3.3.3).
        cpu.hfi.restore(hfi_bank)
        cpu.regs.load_from(saved_regs)    # in place; rip stays current
        if cpu.process is not None:
            cpu.process.pkru = pkru
        cpu.timing.charge_always(cpu.params.xrstor_cycles
                                 + cpu.params.xsave_hfi_extra_cycles)
    return run


@decoder(Opcode.WRPKRU)
def _wrpkru(ins, addr, next_rip):
    def run(cpu):
        cpu.regs.rip = next_rip
        if cpu._speculative:
            raise _StopSpeculation()  # wrpkru is not speculated past
        if cpu.process is not None:
            cpu.process.pkru = cpu.regs.regs[Reg.RAX] & 0xFFFF_FFFF
        cpu.timing.charge_always(cpu.params.wrpkru_cycles)
    return run


@decoder(Opcode.RDPKRU, block_safe=True)
def _rdpkru(ins, addr, next_rip):
    def run(cpu):
        cpu.regs.rip = next_rip
        pkru = cpu.process.pkru if cpu.process is not None else 0
        cpu._wreg(Reg.RAX, pkru)
        cpu.timing.charge(cpu.params.rdpkru_cycles)
    return run
