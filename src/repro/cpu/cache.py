"""Set-associative caches with LRU replacement and visible timing.

Two properties carry the security story (paper §4.1):

* Speculative loads that *pass* HFI's checks fill the cache — that is
  the Spectre transmission channel flush+reload observes.
* Loads that *fail* HFI's checks never reach the cache: all bounds
  checks resolve before the physical address does, so no metadata (not
  even LRU bits) changes on a fault.

The simulator enforces the second property simply by never calling
:meth:`Cache.access` for a faulting access.

Statistics follow the uniform component-stats API: ``cache.stats()``
returns a :class:`repro.telemetry.CacheStats` snapshot (the legacy
``cache.stats.hits`` read-through shim is gone).  Counters stay plain
ints on the hot path — the telemetry layer samples
them at snapshot time instead of intercepting every access.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.stats import CacheStats


class Cache:
    """One level of set-associative cache, LRU within each set."""

    def __init__(self, sets: int, ways: int, line_bytes: int = 64,
                 name: str = "cache"):
        self.name = name
        self.n_sets = sets
        self.ways = ways
        self.line_bytes = line_bytes
        # Each set is an insertion-ordered dict of tag -> True; the
        # first key is the LRU victim.
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(sets)]
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # uniform stats API
    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        return CacheStats(component=self.name, hits=self._hits,
                          misses=self._misses)

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def lookup(self, addr: int) -> bool:
        """Probe without updating replacement state (telemetry only)."""
        set_idx, tag = self._locate(addr)
        return tag in self._sets[set_idx]

    def access(self, addr: int) -> bool:
        """Access a line: returns True on hit.  Fills on miss."""
        line = addr // self.line_bytes          # _locate, inlined: this
        n_sets = self.n_sets                    # runs once per simulated
        tag = line // n_sets                    # memory access
        ways = self._sets[line % n_sets]
        if tag in ways:
            # refresh LRU position
            del ways[tag]
            ways[tag] = True
            self._hits += 1
            return True
        if len(ways) >= self.ways:
            victim = next(iter(ways))
            del ways[victim]
        ways[tag] = True
        self._misses += 1
        return False

    def flush_line(self, addr: int) -> None:
        """clflush: evict the line containing ``addr`` if present."""
        set_idx, tag = self._locate(addr)
        self._sets[set_idx].pop(tag, None)

    def flush_all(self) -> None:
        for ways in self._sets:
            ways.clear()


class CacheHierarchy:
    """L1 + unified L2 in front of memory; returns access latencies.

    The latencies are what ``rdtsc``-timed probe loops observe — the
    measurement Fig. 7 plots.
    """

    def __init__(self, params: MachineParams = DEFAULT_PARAMS):
        self.params = params
        self.l1d = Cache(params.l1d_sets, params.l1d_ways,
                         params.line_bytes, name="l1d")
        self.l1i = Cache(params.l1i_sets, params.l1i_ways,
                         params.line_bytes, name="l1i")
        self.l2 = Cache(params.l1d_sets * 16, params.l1d_ways,
                        params.line_bytes, name="l2")

    def stats(self) -> List[CacheStats]:
        """Snapshots for every level, in probe order."""
        return [self.l1d.stats(), self.l1i.stats(), self.l2.stats()]

    def data_access(self, addr: int) -> int:
        """Load/store timing: L1 hit, L2 hit, or memory."""
        if self.l1d.access(addr):
            return self.params.l1d_hit_cycles
        if self.l2.access(addr):
            return self.params.l2_hit_cycles
        return self.params.mem_cycles

    def fetch_access(self, addr: int) -> int:
        """Instruction-fetch timing."""
        if self.l1i.access(addr):
            return self.params.l1i_hit_cycles
        if self.l2.access(addr):
            return self.params.l1i_miss_cycles
        return self.params.mem_cycles

    def flush_line(self, addr: int) -> None:
        self.l1d.flush_line(addr)
        self.l2.flush_line(addr)

    def flush_all(self) -> None:
        self.l1d.flush_all()
        self.l1i.flush_all()
        self.l2.flush_all()
