"""Exec unit: ALU semantics (arithmetic, logic, shifts, compares).

Each builder runs once at decode time, resolving operand shapes into
accessor closures; the returned ``run(cpu)`` closure is the hot-loop
handler.  Flag updates happen *before* the destination write, exactly
as in the old interpreter — a faulting memory destination must leave
flags already mutated.

The dominant shapes — register destination with a register or
immediate source — get fully inlined handlers: no accessor closures,
no flag-helper calls, journaled register write spelled out.  The
overflow flags there use the classic bit identities (brute-force
verified equivalent to the reference helpers over the 64-bit wrap):

* add:  OF ⟺ ``~(a ^ b) & (a ^ result)`` has the sign bit set
* sub:  OF ⟺  ``(a ^ b) & (a ^ result)`` has the sign bit set

Memory operands (and malformed instructions, whose ``TypeError`` must
fire at execution time, not load time) use the generic closure path.
"""

from __future__ import annotations

from ..isa.opcodes import Opcode
from ..isa.operands import Imm
from ..isa.registers import MASK64, Reg, to_signed
from ..os.address_space import AccessKind, PageFault
from .decode import decoder, make_reader, make_writer

_SIGN = 1 << 63
_TWO64 = 1 << 64


# ----------------------------------------------------------------------
# flag helpers (operate on a Flags object, no cpu needed) — reference
# semantics; the fast paths below inline these.
# ----------------------------------------------------------------------
def set_logic_flags(flags, result: int) -> None:
    flags.zf = result == 0
    flags.sf = bool(result >> 63)
    flags.cf = False
    flags.of = False


def set_add_flags(flags, a: int, b: int, result_wide: int) -> None:
    result = result_wide & MASK64
    flags.zf = result == 0
    flags.sf = bool(result >> 63)
    flags.cf = result_wide > MASK64
    flags.of = (to_signed(a) + to_signed(b)) != to_signed(result)


def set_sub_flags(flags, a: int, b: int) -> None:
    result = (a - b) & MASK64
    flags.zf = result == 0
    flags.sf = bool(result >> 63)
    flags.cf = a < b
    flags.of = (to_signed(a) - to_signed(b)) != to_signed(result)


def _reg_shapes(ins):
    """(dst, src, imm_value) when the fast path applies, else None.

    ``imm_value`` is the masked immediate for Imm sources, or None for
    a register source.
    """
    dst, src = ins.operands[0], ins.operands[1]
    if type(dst) is not Reg:
        return None
    if type(src) is Reg:
        return dst, src, None
    if type(src) is Imm:
        return dst, src, src.value & MASK64
    return None


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
@decoder(Opcode.ADD, block_safe=True)
def _add(ins, addr, next_rip):
    shape = _reg_shapes(ins)
    if shape is not None:
        dst, src, const = shape
        if const is None:
            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                regs = rf.regs
                a = regs[dst]
                b = regs[src]
                wide = a + b
                result = wide & MASK64
                f = rf.flags
                f.zf = result == 0
                f.sf = bool(result >> 63)
                f.cf = wide > MASK64
                f.of = bool(~(a ^ b) & (a ^ result) & _SIGN)
                if cpu._speculative:
                    cpu._journal.entries.append((dst, a))
                regs[dst] = result
        else:
            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                regs = rf.regs
                a = regs[dst]
                wide = a + const
                result = wide & MASK64
                f = rf.flags
                f.zf = result == 0
                f.sf = bool(result >> 63)
                f.cf = wide > MASK64
                f.of = bool(~(a ^ const) & (a ^ result) & _SIGN)
                if cpu._speculative:
                    cpu._journal.entries.append((dst, a))
                regs[dst] = result
        return run

    read_dst = make_reader(ins.operands[0])
    read_src = make_reader(ins.operands[1])
    write_dst = make_writer(ins.operands[0])

    def run(cpu):
        cpu.regs.rip = next_rip
        a = read_dst(cpu)
        b = read_src(cpu)
        wide = a + b
        set_add_flags(cpu.regs.flags, a, b, wide)
        write_dst(cpu, wide & MASK64)
    return run


@decoder(Opcode.SUB, block_safe=True)
def _sub(ins, addr, next_rip):
    shape = _reg_shapes(ins)
    if shape is not None:
        dst, src, const = shape
        if const is None:
            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                regs = rf.regs
                a = regs[dst]
                b = regs[src]
                result = (a - b) & MASK64
                f = rf.flags
                f.zf = result == 0
                f.sf = bool(result >> 63)
                f.cf = a < b
                f.of = bool((a ^ b) & (a ^ result) & _SIGN)
                if cpu._speculative:
                    cpu._journal.entries.append((dst, a))
                regs[dst] = result
        else:
            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                regs = rf.regs
                a = regs[dst]
                result = (a - const) & MASK64
                f = rf.flags
                f.zf = result == 0
                f.sf = bool(result >> 63)
                f.cf = a < const
                f.of = bool((a ^ const) & (a ^ result) & _SIGN)
                if cpu._speculative:
                    cpu._journal.entries.append((dst, a))
                regs[dst] = result
        return run

    read_dst = make_reader(ins.operands[0])
    read_src = make_reader(ins.operands[1])
    write_dst = make_writer(ins.operands[0])

    def run(cpu):
        cpu.regs.rip = next_rip
        a = read_dst(cpu)
        b = read_src(cpu)
        set_sub_flags(cpu.regs.flags, a, b)
        write_dst(cpu, (a - b) & MASK64)
    return run


@decoder(Opcode.AND, Opcode.OR, Opcode.XOR, block_safe=True)
def _bitop(ins, addr, next_rip):
    opcode = ins.opcode
    shape = _reg_shapes(ins)
    if shape is not None:
        dst, src, const = shape
        # One inlined variant per (operator, source kind) pair.
        if opcode is Opcode.AND:
            if const is None:
                def run(cpu):
                    rf = cpu.regs
                    rf.rip = next_rip
                    regs = rf.regs
                    result = regs[dst] & regs[src]
                    f = rf.flags
                    f.zf = result == 0
                    f.sf = bool(result >> 63)
                    f.cf = False
                    f.of = False
                    if cpu._speculative:
                        cpu._journal.entries.append((dst, regs[dst]))
                    regs[dst] = result
            else:
                def run(cpu):
                    rf = cpu.regs
                    rf.rip = next_rip
                    regs = rf.regs
                    result = regs[dst] & const
                    f = rf.flags
                    f.zf = result == 0
                    f.sf = bool(result >> 63)
                    f.cf = False
                    f.of = False
                    if cpu._speculative:
                        cpu._journal.entries.append((dst, regs[dst]))
                    regs[dst] = result
        elif opcode is Opcode.OR:
            if const is None:
                def run(cpu):
                    rf = cpu.regs
                    rf.rip = next_rip
                    regs = rf.regs
                    result = regs[dst] | regs[src]
                    f = rf.flags
                    f.zf = result == 0
                    f.sf = bool(result >> 63)
                    f.cf = False
                    f.of = False
                    if cpu._speculative:
                        cpu._journal.entries.append((dst, regs[dst]))
                    regs[dst] = result
            else:
                def run(cpu):
                    rf = cpu.regs
                    rf.rip = next_rip
                    regs = rf.regs
                    result = regs[dst] | const
                    f = rf.flags
                    f.zf = result == 0
                    f.sf = bool(result >> 63)
                    f.cf = False
                    f.of = False
                    if cpu._speculative:
                        cpu._journal.entries.append((dst, regs[dst]))
                    regs[dst] = result
        else:
            if const is None:
                def run(cpu):
                    rf = cpu.regs
                    rf.rip = next_rip
                    regs = rf.regs
                    result = regs[dst] ^ regs[src]
                    f = rf.flags
                    f.zf = result == 0
                    f.sf = bool(result >> 63)
                    f.cf = False
                    f.of = False
                    if cpu._speculative:
                        cpu._journal.entries.append((dst, regs[dst]))
                    regs[dst] = result
            else:
                def run(cpu):
                    rf = cpu.regs
                    rf.rip = next_rip
                    regs = rf.regs
                    result = regs[dst] ^ const
                    f = rf.flags
                    f.zf = result == 0
                    f.sf = bool(result >> 63)
                    f.cf = False
                    f.of = False
                    if cpu._speculative:
                        cpu._journal.entries.append((dst, regs[dst]))
                    regs[dst] = result
        return run

    read_dst = make_reader(ins.operands[0])
    read_src = make_reader(ins.operands[1])
    write_dst = make_writer(ins.operands[0])
    if opcode is Opcode.AND:
        def combine(a, b):
            return a & b
    elif opcode is Opcode.OR:
        def combine(a, b):
            return a | b
    else:
        def combine(a, b):
            return a ^ b

    def run(cpu):
        cpu.regs.rip = next_rip
        result = combine(read_dst(cpu), read_src(cpu))
        set_logic_flags(cpu.regs.flags, result)
        write_dst(cpu, result)
    return run


@decoder(Opcode.NOT, block_safe=True)
def _not(ins, addr, next_rip):
    dst = ins.operands[0]
    if type(dst) is Reg:
        def run(cpu):
            rf = cpu.regs
            rf.rip = next_rip
            regs = rf.regs
            old = regs[dst]
            if cpu._speculative:
                cpu._journal.entries.append((dst, old))
            regs[dst] = ~old & MASK64     # no flag update (x86)
        return run

    read_dst = make_reader(dst)
    write_dst = make_writer(dst)

    def run(cpu):
        cpu.regs.rip = next_rip
        write_dst(cpu, ~read_dst(cpu) & MASK64)   # no flag update (x86)
    return run


@decoder(Opcode.NEG, block_safe=True)
def _neg(ins, addr, next_rip):
    dst = ins.operands[0]
    if type(dst) is Reg:
        def run(cpu):
            rf = cpu.regs
            rf.rip = next_rip
            regs = rf.regs
            old = regs[dst]
            value = (-old) & MASK64
            f = rf.flags
            f.zf = value == 0
            f.sf = bool(value >> 63)
            f.cf = value != 0
            f.of = False
            if cpu._speculative:
                cpu._journal.entries.append((dst, old))
            regs[dst] = value
        return run

    read_dst = make_reader(dst)
    write_dst = make_writer(dst)

    def run(cpu):
        cpu.regs.rip = next_rip
        value = (-read_dst(cpu)) & MASK64
        flags = cpu.regs.flags
        set_logic_flags(flags, value)
        flags.cf = value != 0
        write_dst(cpu, value)
    return run


@decoder(Opcode.SHL, Opcode.SHR, Opcode.SAR, block_safe=True)
def _shift(ins, addr, next_rip):
    opcode = ins.opcode
    shape = _reg_shapes(ins)
    if shape is not None:
        dst, src, const = shape
        count_const = None if const is None else const & 63
        if opcode is Opcode.SHL:
            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                regs = rf.regs
                a = regs[dst]
                count = (count_const if count_const is not None
                         else regs[src] & 63)
                result = (a << count) & MASK64
                f = rf.flags
                f.zf = result == 0
                f.sf = bool(result >> 63)
                f.cf = False
                f.of = False
                if cpu._speculative:
                    cpu._journal.entries.append((dst, a))
                regs[dst] = result
        elif opcode is Opcode.SHR:
            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                regs = rf.regs
                a = regs[dst]
                count = (count_const if count_const is not None
                         else regs[src] & 63)
                result = a >> count
                f = rf.flags
                f.zf = result == 0
                f.sf = bool(result >> 63)
                f.cf = False
                f.of = False
                if cpu._speculative:
                    cpu._journal.entries.append((dst, a))
                regs[dst] = result
        else:
            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                regs = rf.regs
                a = regs[dst]
                count = (count_const if count_const is not None
                         else regs[src] & 63)
                sa = a - _TWO64 if a & _SIGN else a
                result = (sa >> count) & MASK64
                f = rf.flags
                f.zf = result == 0
                f.sf = bool(result >> 63)
                f.cf = False
                f.of = False
                if cpu._speculative:
                    cpu._journal.entries.append((dst, a))
                regs[dst] = result
        return run

    read_dst = make_reader(ins.operands[0])
    read_src = make_reader(ins.operands[1])
    write_dst = make_writer(ins.operands[0])
    if opcode is Opcode.SHL:
        def compute(a, count):
            return (a << count) & MASK64
    elif opcode is Opcode.SHR:
        def compute(a, count):
            return a >> count
    else:
        def compute(a, count):
            return (to_signed(a) >> count) & MASK64

    def run(cpu):
        cpu.regs.rip = next_rip
        a = read_dst(cpu)
        count = read_src(cpu) & 63
        result = compute(a, count)
        set_logic_flags(cpu.regs.flags, result)
        write_dst(cpu, result)
    return run


@decoder(Opcode.IMUL, block_safe=True)
def _imul(ins, addr, next_rip):
    read_dst = make_reader(ins.operands[0])
    read_src = make_reader(ins.operands[1])
    write_dst = make_writer(ins.operands[0])

    def run(cpu):
        cpu.regs.rip = next_rip
        result = (to_signed(read_dst(cpu))
                  * to_signed(read_src(cpu))) & MASK64
        set_logic_flags(cpu.regs.flags, result)
        write_dst(cpu, result)
        cpu.timing.charge(cpu.params.mul_cycles - 1)
    return run


@decoder(Opcode.IDIV, Opcode.IMOD, block_safe=True)
def _divide(ins, addr, next_rip):
    want_quotient = ins.opcode is Opcode.IDIV
    read_dst = make_reader(ins.operands[0])
    read_src = make_reader(ins.operands[1])
    write_dst = make_writer(ins.operands[0])

    def run(cpu):
        cpu.regs.rip = next_rip
        a = to_signed(read_dst(cpu))
        b = to_signed(read_src(cpu))
        if b == 0:
            raise PageFault(addr, AccessKind.EXEC, "division by zero")
        quotient = int(a / b)          # truncate toward zero (x86)
        remainder = a - quotient * b
        result = (quotient if want_quotient else remainder) & MASK64
        set_logic_flags(cpu.regs.flags, result)
        write_dst(cpu, result)
        cpu.timing.charge(cpu.params.div_cycles - 1)
    return run


# ----------------------------------------------------------------------
# compares and unary increments
# ----------------------------------------------------------------------
@decoder(Opcode.CMP, block_safe=True)
def _cmp(ins, addr, next_rip):
    shape = _reg_shapes(ins)
    if shape is not None:
        dst, src, const = shape
        if const is None:
            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                regs = rf.regs
                a = regs[dst]
                b = regs[src]
                result = (a - b) & MASK64
                f = rf.flags
                f.zf = result == 0
                f.sf = bool(result >> 63)
                f.cf = a < b
                f.of = bool((a ^ b) & (a ^ result) & _SIGN)
        else:
            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                a = rf.regs[dst]
                result = (a - const) & MASK64
                f = rf.flags
                f.zf = result == 0
                f.sf = bool(result >> 63)
                f.cf = a < const
                f.of = bool((a ^ const) & (a ^ result) & _SIGN)
        return run

    read_a = make_reader(ins.operands[0])
    read_b = make_reader(ins.operands[1])

    def run(cpu):
        cpu.regs.rip = next_rip
        a = read_a(cpu)
        b = read_b(cpu)
        set_sub_flags(cpu.regs.flags, a, b)
    return run


@decoder(Opcode.TEST, block_safe=True)
def _test(ins, addr, next_rip):
    shape = _reg_shapes(ins)
    if shape is not None:
        dst, src, const = shape
        if const is None:
            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                regs = rf.regs
                result = regs[dst] & regs[src]
                f = rf.flags
                f.zf = result == 0
                f.sf = bool(result >> 63)
                f.cf = False
                f.of = False
        else:
            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                result = rf.regs[dst] & const
                f = rf.flags
                f.zf = result == 0
                f.sf = bool(result >> 63)
                f.cf = False
                f.of = False
        return run

    read_a = make_reader(ins.operands[0])
    read_b = make_reader(ins.operands[1])

    def run(cpu):
        cpu.regs.rip = next_rip
        set_logic_flags(cpu.regs.flags, read_a(cpu) & read_b(cpu))
    return run


@decoder(Opcode.INC, block_safe=True)
def _inc(ins, addr, next_rip):
    dst = ins.operands[0]
    if type(dst) is Reg:
        def run(cpu):
            rf = cpu.regs
            rf.rip = next_rip
            regs = rf.regs
            a = regs[dst]
            wide = a + 1
            result = wide & MASK64
            f = rf.flags
            f.zf = result == 0
            f.sf = bool(result >> 63)
            f.cf = wide > MASK64
            f.of = bool(~(a ^ 1) & (a ^ result) & _SIGN)
            if cpu._speculative:
                cpu._journal.entries.append((dst, a))
            regs[dst] = result
        return run

    read_dst = make_reader(dst)
    write_dst = make_writer(dst)

    def run(cpu):
        cpu.regs.rip = next_rip
        a = read_dst(cpu)
        set_add_flags(cpu.regs.flags, a, 1, a + 1)
        write_dst(cpu, (a + 1) & MASK64)
    return run


@decoder(Opcode.DEC, block_safe=True)
def _dec(ins, addr, next_rip):
    dst = ins.operands[0]
    if type(dst) is Reg:
        def run(cpu):
            rf = cpu.regs
            rf.rip = next_rip
            regs = rf.regs
            a = regs[dst]
            result = (a - 1) & MASK64
            f = rf.flags
            f.zf = result == 0
            f.sf = bool(result >> 63)
            f.cf = a < 1
            f.of = bool((a ^ 1) & (a ^ result) & _SIGN)
            if cpu._speculative:
                cpu._journal.entries.append((dst, a))
            regs[dst] = result
        return run

    read_dst = make_reader(dst)
    write_dst = make_writer(dst)

    def run(cpu):
        cpu.regs.rip = next_rip
        a = read_dst(cpu)
        set_sub_flags(cpu.regs.flags, a, 1)
        write_dst(cpu, (a - 1) & MASK64)
    return run
