"""Predecode: lower ``isa.Instruction`` into ready-to-run DecodedOps.

The staged engine replaces the old ~230-line ``if/elif`` dispatch chain
with a one-time lowering pass.  Each instruction is decoded exactly
once into a :class:`DecodedOp` whose ``run`` attribute is a closure
built by the per-opcode entry in :data:`DECODERS`:

* operand *shape* decisions (reg vs imm vs mem, direct vs indirect
  branch, hmov load vs store form) are resolved at decode time into
  pre-bound accessor closures, so the hot loop never touches
  ``isinstance`` again;
* static facts (fall-through ``next_rip``, branch targets, immediate
  values, effective-address formulas, region numbers) are captured in
  the closure environment;
* dynamic state (registers, HFI bank, params, speculation flag) is
  read from the ``cpu`` argument at run time, so one DecodedOp is
  valid for any core and any :class:`~repro.params.MachineParams`.

Decoded ops are cached at two levels: on the :class:`Instruction`
itself (``ins._decoded``, valid at its laid-out address) and per
``Program`` (``decode_program``), so reloading or sharing a program
costs nothing.  The CPU's ``_code`` map is a :class:`CodeMap` that
invalidates the decoded entry on any write, keeping tests that patch
instructions (and self-modifying setups) coherent.

The exec modules (``exec_alu``, ``exec_mem``, ``exec_control``,
``exec_system``, ``exec_hfi``) register their builders here via the
:func:`decoder` decorator; importing them populates the table.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.checks import implicit_data_check
from ..isa.instruction import Instruction, Program
from ..isa.opcodes import Opcode
from ..isa.operands import Imm, Mem
from ..isa.registers import MASK64, Reg


class _StopSpeculation(Exception):
    """Internal: the wrong path hit a squash point."""


#: opcode -> builder(ins, addr, next_rip) -> run(cpu) closure.
DECODERS: Dict[Opcode, Callable] = {}

#: Opcodes the superblock compiler may place *inside* a block
#: (see :mod:`.blocks`).  Everything else — control flow, HFI
#: transitions, serializers, anything that can redirect rip or rebind
#: the code regions — ends the block and executes single-step.
#: New opcodes default to block-ender, which is always safe.
BLOCK_SAFE: set = set()


def decoder(*opcodes: Opcode, block_safe: bool = False):
    """Register a decode builder for one or more opcodes.

    ``block_safe=True`` declares that the opcode's handler can run in
    the middle of a compiled superblock: it always falls through to
    ``next_rip`` (faults excepted), never opens a speculation window,
    never rebinds the HFI code regions, never halts, and never reads
    ``stats.cycles`` as an absolute value mid-instruction.  Opcodes
    that do not declare this force a block exit (the safe default).
    """
    def register(build):
        for opcode in opcodes:
            if opcode in DECODERS:
                raise ValueError(f"duplicate decoder for {opcode}")
            DECODERS[opcode] = build
            if block_safe:
                BLOCK_SAFE.add(opcode)
        return build
    return register


class DecodedOp:
    """One predecoded instruction: a bound handler plus metadata."""

    __slots__ = ("run", "ins", "addr", "next_rip")

    def __init__(self, run: Callable, ins: Instruction, addr: int,
                 next_rip: int):
        self.run = run
        self.ins = ins
        self.addr = addr
        self.next_rip = next_rip

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DecodedOp {self.ins!r} @ {self.addr:#x}>"


# ----------------------------------------------------------------------
# operand accessor builders
# ----------------------------------------------------------------------
def make_ea(mem: Mem) -> Callable:
    """Effective-address closure specialised on the operand's shape."""
    base, index, scale, disp = mem.base, mem.index, mem.scale, mem.disp
    if base is not None and index is not None:
        def ea_of(cpu):
            regs = cpu.regs.regs
            return (disp + regs[base] + regs[index] * scale) & MASK64
    elif base is not None:
        def ea_of(cpu):
            return (disp + cpu.regs.regs[base]) & MASK64
    elif index is not None:
        def ea_of(cpu):
            return (disp + cpu.regs.regs[index] * scale) & MASK64
    else:
        const = disp & MASK64

        def ea_of(cpu):
            return const
    return ea_of


def make_reader(op) -> Callable:
    """Closure returning the operand's value.

    Unknown operand kinds defer the ``TypeError`` to *execution* time,
    matching the old interpreter (a malformed instruction that is never
    reached must not break program loading).
    """
    if isinstance(op, Reg):
        def read(cpu, _r=op):
            return cpu.regs.regs[_r]
    elif isinstance(op, Imm):
        const = op.value & MASK64

        def read(cpu):
            return const
    elif isinstance(op, Mem):
        ea_of = make_ea(op)
        size = op.size

        def read(cpu):
            ea = ea_of(cpu)
            hfi_regs = cpu.hfi.regs
            if hfi_regs.enabled:
                implicit_data_check(hfi_regs.data, ea, size, False)
            return cpu._load_ea(ea, size)
    else:
        def read(cpu, _op=op):
            raise TypeError(f"unreadable operand {_op!r}")
    return read


def make_writer(op) -> Callable:
    """Closure storing a value to the operand.

    Register writers append an ``(reg, old_value)`` undo entry to the
    speculation journal while a window is open — this is the only
    write path for GPRs in the exec layer, so squash is complete.
    """
    if isinstance(op, Reg):
        def write(cpu, value, _r=op):
            regs = cpu.regs.regs
            if cpu._speculative:
                cpu._journal.entries.append((_r, regs[_r]))
            regs[_r] = value & MASK64
    elif isinstance(op, Mem):
        ea_of = make_ea(op)
        size = op.size

        def write(cpu, value):
            ea = ea_of(cpu)
            hfi_regs = cpu.hfi.regs
            if hfi_regs.enabled:
                implicit_data_check(hfi_regs.data, ea, size, True)
            cpu._store_ea(ea, size, value)
    else:
        def write(cpu, value, _op=op):
            raise TypeError(f"unwritable operand {_op!r}")
    return write


def make_hmov_reader(mem: Mem, region: int) -> Callable:
    """hmov load: the address resolves through an explicit region."""
    index, scale, disp, size = mem.index, mem.scale, mem.disp, mem.size

    def read(cpu):
        regs = cpu.regs.regs
        index_val = regs[index] if index is not None else 0
        ea = cpu.hfi.hmov_address(region, index_val, scale, disp, size,
                                  is_write=False)
        return cpu._load_ea(ea, size)
    return read


def make_hmov_writer(mem: Mem, region: int) -> Callable:
    """hmov store through an explicit region."""
    index, scale, disp, size = mem.index, mem.scale, mem.disp, mem.size

    def write(cpu, value):
        regs = cpu.regs.regs
        index_val = regs[index] if index is not None else 0
        ea = cpu.hfi.hmov_address(region, index_val, scale, disp, size,
                                  is_write=True)
        cpu._store_ea(ea, size, value)
    return write


#: The stack slot operand shared by push/pop/call/ret (old code built a
#: fresh ``Mem(base=RSP)`` per execution; the operand is static).
STACK_SLOT = Mem(base=Reg.RSP, size=8)
STACK_READ = make_reader(STACK_SLOT)
STACK_WRITE = make_writer(STACK_SLOT)


# ----------------------------------------------------------------------
# decode entry points
# ----------------------------------------------------------------------
def _unimplemented(opcode: Opcode, next_rip: int) -> Callable:
    def run(cpu):
        cpu.regs.rip = next_rip
        raise NotImplementedError(f"opcode {opcode} not implemented")
    return run


def decode_one(ins: Instruction, addr: int) -> DecodedOp:
    """Lower one instruction mapped at ``addr``.

    ``next_rip`` uses the *mapping* address, not ``ins.addr`` — tests
    map instructions at addresses the assembler never laid out.
    The per-instruction cache is only valid at the laid-out address.
    """
    if addr == ins.addr and ins._decoded is not None:
        return ins._decoded
    next_rip = addr + ins.length
    build = DECODERS.get(ins.opcode)
    if build is None:
        run = _unimplemented(ins.opcode, next_rip)
    else:
        run = build(ins, addr, next_rip)
    dop = DecodedOp(run, ins, addr, next_rip)
    if addr == ins.addr:
        ins._decoded = dop
    return dop


def decode_program(program: Program) -> Dict[int, DecodedOp]:
    """Decode a whole program once; cached on the Program object."""
    cache = getattr(program, "_decode_cache", None)
    if cache is None:
        cache = {ins.addr: decode_one(ins, ins.addr)
                 for ins in program.instructions}
        program._decode_cache = cache
    return cache


class CodeMap(dict):
    """``addr -> Instruction`` map kept coherent with the decode cache.

    Any write or delete drops the corresponding :class:`DecodedOp` so
    the next fetch at that address re-decodes (lazily) — code patched
    via ``cpu._code[addr] = ins`` behaves exactly as before the staged
    engine.  When a superblock cache (:class:`~repro.cpu.blocks.
    BlockCache`) is attached, the same writes also invalidate every
    compiled block that covers the patched address, so self-modifying
    code stays coherent under the ``blocks`` engine too.
    """

    __slots__ = ("decoded", "invalidations", "blocks")

    def __init__(self, decoded: Dict[int, DecodedOp], blocks=None):
        super().__init__()
        self.decoded = decoded
        self.invalidations = 0
        #: Optional superblock cache notified on every invalidation.
        self.blocks = blocks

    def _invalidate(self, addr) -> None:
        if self.decoded.pop(addr, None) is not None:
            self.invalidations += 1
        if self.blocks is not None:
            self.blocks.invalidate(addr)

    def __setitem__(self, addr, ins) -> None:
        self._invalidate(addr)
        dict.__setitem__(self, addr, ins)

    def __delitem__(self, addr) -> None:
        dict.__delitem__(self, addr)
        self._invalidate(addr)

    def pop(self, addr, *default):
        self._invalidate(addr)
        return dict.pop(self, addr, *default)

    def clear(self) -> None:
        dict.clear(self)
        self.decoded.clear()
        if self.blocks is not None:
            self.blocks.clear()

    def update(self, other=(), **kwargs) -> None:
        for addr, ins in dict(other, **kwargs).items():
            self[addr] = ins
