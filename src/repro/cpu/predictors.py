"""Branch prediction structures: PHT, BTB, and RSB.

These are the speculation sources the paper's §5.3 security evaluation
exercises: Spectre-PHT trains the pattern history table; Spectre-BTB
poisons the branch target buffer.  HFI does not change how predictors
are trained (§3.4's final caveat) — it constrains what *speculatively
fetched* code and data can do.

Each predictor exposes the uniform ``.stats()`` API
(:class:`repro.telemetry.PredictorStats`).  Correctness is resolved at
``update`` time from the predictor's own pre-update state, so the
counters agree with the CPU's global mispredict accounting without any
backchannel; the RSB cannot observe resolution, so it reports push/pop
traffic and underflows instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..telemetry.stats import PredictorStats


class PatternHistoryTable:
    """Per-PC 2-bit saturating counters (taken >= 2)."""

    def __init__(self, size: int = 1024):
        self.size = size
        self._counters: List[int] = [1] * size  # weakly not-taken
        self._lookups = 0
        self._correct = 0
        self._mispredicts = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.size

    def predict(self, pc: int) -> bool:
        self._lookups += 1
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        counter = self._counters[idx]
        if (counter >= 2) == taken:
            self._correct += 1
        else:
            self._mispredicts += 1
        self._counters[idx] = (min(3, counter + 1) if taken
                               else max(0, counter - 1))

    def stats(self) -> PredictorStats:
        return PredictorStats(
            component="pht", lookups=self._lookups,
            updates=self._correct + self._mispredicts,
            correct=self._correct, mispredicts=self._mispredicts,
            entries=self.size, capacity=self.size)


class BranchTargetBuffer:
    """PC -> predicted target for indirect branches, LRU-bounded."""

    def __init__(self, size: int = 512):
        self.size = size
        self._targets: Dict[int, int] = {}
        self._lookups = 0
        self._correct = 0
        self._mispredicts = 0

    def predict(self, pc: int) -> Optional[int]:
        self._lookups += 1
        target = self._targets.get(pc)
        if target is not None:
            del self._targets[pc]
            self._targets[pc] = target
        return target

    def update(self, pc: int, target: int) -> None:
        # A miss (no entry) and a wrong entry both cost the front end a
        # redirect, matching the CPU's mispredict accounting.
        if self._targets.get(pc) == target:
            self._correct += 1
        else:
            self._mispredicts += 1
        if pc in self._targets:
            del self._targets[pc]
        elif len(self._targets) >= self.size:
            victim = next(iter(self._targets))
            del self._targets[victim]
        self._targets[pc] = target

    def stats(self) -> PredictorStats:
        return PredictorStats(
            component="btb", lookups=self._lookups,
            updates=self._correct + self._mispredicts,
            correct=self._correct, mispredicts=self._mispredicts,
            entries=len(self._targets), capacity=self.size)


class ReturnStackBuffer:
    """A small circular stack of predicted return addresses."""

    def __init__(self, depth: int = 16):
        self.depth = depth
        self._stack: List[int] = []
        self._pushes = 0
        self._pops = 0
        self._underflows = 0

    def push(self, addr: int) -> None:
        self._pushes += 1
        if len(self._stack) >= self.depth:
            del self._stack[0]
        self._stack.append(addr)

    def pop(self) -> Optional[int]:
        self._pops += 1
        if not self._stack:
            self._underflows += 1
            return None
        return self._stack.pop()

    def stats(self) -> PredictorStats:
        return PredictorStats(
            component="rsb", lookups=self._pops, updates=self._pushes,
            underflows=self._underflows, entries=len(self._stack),
            capacity=self.depth)
