"""Branch prediction structures: PHT, BTB, and RSB.

These are the speculation sources the paper's §5.3 security evaluation
exercises: Spectre-PHT trains the pattern history table; Spectre-BTB
poisons the branch target buffer.  HFI does not change how predictors
are trained (§3.4's final caveat) — it constrains what *speculatively
fetched* code and data can do.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class PatternHistoryTable:
    """Per-PC 2-bit saturating counters (taken >= 2)."""

    def __init__(self, size: int = 1024):
        self.size = size
        self._counters: List[int] = [1] * size  # weakly not-taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.size

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        counter = self._counters[idx]
        self._counters[idx] = (min(3, counter + 1) if taken
                               else max(0, counter - 1))


class BranchTargetBuffer:
    """PC -> predicted target for indirect branches, LRU-bounded."""

    def __init__(self, size: int = 512):
        self.size = size
        self._targets: Dict[int, int] = {}

    def predict(self, pc: int) -> Optional[int]:
        target = self._targets.get(pc)
        if target is not None:
            del self._targets[pc]
            self._targets[pc] = target
        return target

    def update(self, pc: int, target: int) -> None:
        if pc in self._targets:
            del self._targets[pc]
        elif len(self._targets) >= self.size:
            victim = next(iter(self._targets))
            del self._targets[victim]
        self._targets[pc] = target


class ReturnStackBuffer:
    """A small circular stack of predicted return addresses."""

    def __init__(self, depth: int = 16):
        self.depth = depth
        self._stack: List[int] = []

    def push(self, addr: int) -> None:
        if len(self._stack) >= self.depth:
            del self._stack[0]
        self._stack.append(addr)

    def pop(self) -> Optional[int]:
        return self._stack.pop() if self._stack else None
