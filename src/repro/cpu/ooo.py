"""Scoreboarded out-of-order timing backend (``timing="ooo"``).

The paper's microarchitectural claims — the hmov bounds check issuing
in parallel with the dTLB lookup (§4.2), entry/exit serialization
draining the pipeline (§3.4, Figs. 6/7) — are statements about an
out-of-order core.  This module models one as a *trace-driven
scoreboard*: the functional commit stream is exactly the in-order one
(architectural state stays bit-identical across timing models, which
the verify matrix sweeps), while per-instruction timestamps flow
through a MIPS-R10000-style structure:

* **register renaming** — a rename map from the 16 architectural GPRs
  plus a FLAGS pseudo-register onto a physical register file; each
  physical register carries the cycle its value becomes available
  (operand-readiness wakeup).
* **issue queue** — bounded occupancy between dispatch and issue, with
  ``ooo_width`` issue ports (one instruction per port per cycle).
* **reorder buffer / active list** — bounded window; entries retire
  strictly in order (``_last_retire`` is monotone — audited), freeing
  their previous physical mappings only at retirement, which is what
  makes exceptions precise.
* **load/store queue** — bounded in-flight memory operations layered
  over the existing TLB and cache models (whose *side effects* are
  identical to the in-order backend; only latency placement differs).

Because the scoreboard consumes the committed stream, wrong-path work
is never dispatched into the window; speculation cost appears as the
front-end redirect penalty on a resolved mispredict, matching the
in-order model's accounting discipline (squashed work is free, the
flush is not).

``stats.cycles`` is the retirement watermark: after each instruction
retires it equals that instruction's retire timestamp, so all existing
consumers (``rdtsc``, telemetry spans, run results) keep working — the
clock is simply computed by a different pipeline.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush, heapreplace
from typing import Dict, List, Optional, Tuple

from ..isa.opcodes import CONDITIONAL_JUMPS, HMOV_REGION, Opcode
from ..isa.operands import Mem
from ..isa.registers import Reg
from ..telemetry.stats import OooStats
from .timing import InOrderTiming

#: FLAGS as a renameable pseudo-register: ALU producers write it,
#: conditional branches read it — the dependence that serializes a
#: compare/branch pair even out of order.
_FLAGS = "flags"

_ARCH_KEYS: Tuple = tuple(Reg) + (_FLAGS,)

_ALU_RW = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.IMUL, Opcode.IDIV, Opcode.IMOD, Opcode.SHL, Opcode.SHR,
    Opcode.SAR,
})
_UNARY_FLAGS = frozenset({Opcode.NEG, Opcode.INC, Opcode.DEC})
_MOVS = frozenset({Opcode.MOV}) | frozenset(HMOV_REGION)


def _op_regs(op) -> Tuple[Reg, ...]:
    """Registers an operand reads (value or address components)."""
    if type(op) is Reg:
        return (op,)
    if isinstance(op, Mem):
        regs = []
        if op.base is not None:
            regs.append(op.base)
        if op.index is not None:
            regs.append(op.index)
        return tuple(regs)
    return ()


def _derive_deps(ins) -> Tuple[Tuple, Tuple]:
    """(reads, writes) rename keys for one instruction.

    This is a *timing* dataflow summary, deliberately conservative:
    unknown opcodes read their register operands and write nothing,
    which can only shorten dependence chains, never corrupt state —
    the functional layer owns semantics.
    """
    opc = ins.opcode
    ops = ins.operands
    reads: List = []
    writes: List = []
    if opc in _ALU_RW:
        reads += _op_regs(ops[0]) + _op_regs(ops[1])
        if type(ops[0]) is Reg:
            writes.append(ops[0])
        writes.append(_FLAGS)
    elif opc in (Opcode.CMP, Opcode.TEST):
        reads += _op_regs(ops[0]) + _op_regs(ops[1])
        writes.append(_FLAGS)
    elif opc in _UNARY_FLAGS:
        reads += _op_regs(ops[0])
        if type(ops[0]) is Reg:
            writes.append(ops[0])
        writes.append(_FLAGS)
    elif opc is Opcode.NOT:
        reads += _op_regs(ops[0])
        if type(ops[0]) is Reg:
            writes.append(ops[0])
    elif opc in _MOVS:
        reads += _op_regs(ops[1])
        if type(ops[0]) is Reg:
            writes.append(ops[0])
        else:
            reads += _op_regs(ops[0])
    elif opc is Opcode.LEA:
        reads += _op_regs(ops[1])
        if type(ops[0]) is Reg:
            writes.append(ops[0])
    elif opc is Opcode.PUSH:
        reads += _op_regs(ops[0])
        reads.append(Reg.RSP)
        writes.append(Reg.RSP)
    elif opc is Opcode.POP:
        reads.append(Reg.RSP)
        writes.append(Reg.RSP)
        if type(ops[0]) is Reg:
            writes.append(ops[0])
        else:
            reads += _op_regs(ops[0])
    elif opc in CONDITIONAL_JUMPS:
        reads.append(_FLAGS)
    elif opc is Opcode.CALL:
        if ops:
            reads += _op_regs(ops[0])
        reads.append(Reg.RSP)
        writes.append(Reg.RSP)
    elif opc is Opcode.RET:
        reads.append(Reg.RSP)
        writes.append(Reg.RSP)
    elif opc in (Opcode.SYSCALL, Opcode.INT80):
        reads += [Reg.RAX, Reg.RDI, Reg.RSI, Reg.RDX]
        writes.append(Reg.RAX)
    elif opc is Opcode.RDTSC:
        writes += [Reg.RAX, Reg.RDX]
    elif opc is Opcode.RDPKRU:
        writes.append(Reg.RAX)
    elif opc is Opcode.WRPKRU:
        reads.append(Reg.RAX)
    else:
        # JMP (possibly indirect), CLFLUSH, fences, HFI ops, NOP, HLT:
        # read whatever registers appear in the operands.
        for op in ops:
            reads += _op_regs(op)
    return tuple(dict.fromkeys(reads)), tuple(dict.fromkeys(writes))


class OutOfOrderTiming(InOrderTiming):
    """Out-of-order scoreboard conforming to :class:`TimingBackend`.

    Subclasses :class:`InOrderTiming` for the shared cpu/stats/cache
    bindings and the ``_side_effects`` memory fast path; every charge
    hook is overridden to accumulate into the in-flight instruction
    instead of the global clock.
    """

    name = "ooo"
    inline_commit = False

    __slots__ = (
        "_width", "_rob_depth", "_iq_depth", "_lsq_depth", "_n_phys",
        "_rename", "_ready", "_free", "_rob", "_iq", "_lsq",
        "_ports_front", "_ports_issue", "_ports_retire",
        "_fetch_ready", "_last_retire", "_clock",
        "_cur", "_fetch_cost", "_extra", "_mem_lat", "_mem_ops",
        "_check_lat", "_serialize_cost", "_redirect", "_deps_cache",
        "_retired", "_drains", "_redirects", "_rob_stalls",
        "_prf_stalls", "_iq_stalls", "_lsq_stalls", "_peak_inflight",
        "_checks_overlapped", "_checks_exposed", "_order_violations",
    )

    def __init__(self, cpu) -> None:
        super().__init__(cpu)
        p = cpu.params
        self._width = max(1, p.ooo_width)
        self._rob_depth = max(1, p.ooo_rob_depth)
        self._iq_depth = max(1, p.ooo_iq_depth)
        self._lsq_depth = max(1, p.ooo_lsq_depth)
        n_arch = len(_ARCH_KEYS)
        # Worst case one dispatch needs two fresh physical registers
        # (rdtsc writes RAX+RDX) while the ROB holds prior mappings;
        # require headroom for a full issue group beyond the committed
        # map so allocation can never deadlock.
        floor = n_arch + 2 * self._width
        if p.ooo_phys_regs < floor:
            raise ValueError(
                f"ooo_phys_regs={p.ooo_phys_regs} too small: need at "
                f"least {floor} ({n_arch} architectural + 2x width)")
        self._n_phys = p.ooo_phys_regs
        self._rename: Dict = {}
        self._ready = [0] * self._n_phys
        for idx, key in enumerate(_ARCH_KEYS):
            self._rename[key] = idx
        self._free = list(range(n_arch, self._n_phys))
        #: (retire_time, freed_physical_registers) in program order.
        self._rob: deque = deque()
        self._iq: List[int] = []      # heap of pending issue times
        self._lsq: List[int] = []     # heap of mem completion times
        start = cpu.stats.cycles
        self._ports_front = [start] * self._width
        self._ports_issue = [start] * self._width
        self._ports_retire = [start] * self._width
        self._fetch_ready = start
        self._last_retire = start
        self._clock = start
        self._cur = None
        self._fetch_cost = 0
        self._extra = 0
        self._mem_lat = 0
        self._mem_ops = 0
        self._check_lat = 0
        self._serialize_cost = -1
        self._redirect = False
        self._deps_cache: Dict = {}
        self._retired = 0
        self._drains = 0
        self._redirects = 0
        self._rob_stalls = 0
        self._prf_stalls = 0
        self._iq_stalls = 0
        self._lsq_stalls = 0
        self._peak_inflight = 0
        self._checks_overlapped = 0
        self._checks_exposed = 0
        self._order_violations = 0

    # ------------------------------------------------------------------
    # issue/retire protocol (driven by the commit loop)
    # ------------------------------------------------------------------

    def issue(self, dop, fetch_cycles: int) -> None:
        """Open the timing record for the next committed instruction."""
        if self._cur is not None:
            # The previous instruction escaped the commit loop without
            # a retire call (an engine escape path); close its record
            # so the window accounting stays exact.
            self._finalize()
        stats = self.stats
        cycles = stats.cycles
        if cycles != self._clock:
            # Time was charged directly between instructions (fault
            # delivery, kernel costs): the window observed it drained.
            if cycles > self._last_retire:
                self._last_retire = cycles
            if cycles > self._fetch_ready:
                self._fetch_ready = cycles
            self._clock = cycles
        self._cur = dop
        self._fetch_cost = fetch_cycles
        self._extra = 0
        self._mem_lat = 0
        self._mem_ops = 0
        self._check_lat = 0
        self._serialize_cost = -1
        self._redirect = False

    def retire(self, dop) -> None:
        self._finalize()

    def _finalize(self) -> None:
        """Walk the in-flight instruction through the pipeline stages
        and advance the retirement watermark."""
        dop = self._cur
        if dop is None:
            return
        self._cur = None
        stats = self.stats
        params = self.params
        deps = self._deps_cache.get(dop)
        if deps is None:
            deps = _derive_deps(dop.ins)
            self._deps_cache[dop] = deps
        reads, writes = deps

        # ---- front end: fetch slot, then decode/rename ----
        front = self._ports_front
        f = front[0]
        if f < self._fetch_ready:
            f = self._fetch_ready
        heapreplace(front, f + 1)
        dispatch = f + self._fetch_cost + 1

        # ---- window allocation: ROB entry + physical registers ----
        rob = self._rob
        free = self._free
        while rob and rob[0][0] <= dispatch:
            free.extend(rob.popleft()[1])
        need = len(writes)
        while rob and (len(rob) >= self._rob_depth or len(free) < need):
            rob_full = len(rob) >= self._rob_depth
            t, freed = rob.popleft()
            free.extend(freed)
            if t > dispatch:
                dispatch = t
                if rob_full:
                    self._rob_stalls += 1
                else:
                    self._prf_stalls += 1

        # ---- issue-queue occupancy between dispatch and issue ----
        iq = self._iq
        while iq and iq[0] <= dispatch:
            heappop(iq)
        if len(iq) >= self._iq_depth:
            t = heappop(iq)
            if t > dispatch:
                dispatch = t
                self._iq_stalls += 1

        # ---- serialization waits for the whole window to retire ----
        if self._serialize_cost >= 0 and dispatch < self._last_retire:
            dispatch = self._last_retire

        # ---- operand-readiness wakeup ----
        ready = dispatch
        rename = self._rename
        phys_ready = self._ready
        for key in reads:
            t = phys_ready[rename[key]]
            if t > ready:
                ready = t

        # ---- issue port (width per cycle) ----
        ports = self._ports_issue
        t_issue = ports[0]
        if t_issue < ready:
            t_issue = ready
        heapreplace(ports, t_issue + 1)
        heappush(iq, t_issue)

        # ---- execute; memory goes through the LSQ ----
        lat = params.base_cycles + self._extra
        if self._mem_ops:
            lsq = self._lsq
            while lsq and lsq[0] <= t_issue:
                heappop(lsq)
            if len(lsq) >= self._lsq_depth:
                t = heappop(lsq)
                if t > t_issue:
                    t_issue = t
                    self._lsq_stalls += 1
            # §4.2: the hmov bounds check runs in parallel with the
            # access's own dTLB lookup — the path length is the max of
            # the two, not the sum.
            check = self._check_lat
            if check:
                if check <= self._mem_lat:
                    self._checks_overlapped += 1
                else:
                    self._checks_exposed += 1
            lat += self._mem_lat if self._mem_lat >= check else check
        elif self._check_lat:
            lat += self._check_lat
            self._checks_exposed += 1
        complete = t_issue + (lat if lat > 0 else 1)
        if self._mem_ops:
            heappush(self._lsq, complete)
        if self._serialize_cost >= 0:
            complete += self._serialize_cost

        # ---- in-order retirement (precise exceptions) ----
        ports = self._ports_retire
        t_ret = complete
        if t_ret < self._last_retire:
            t_ret = self._last_retire
        if t_ret < ports[0]:
            t_ret = ports[0]
        if t_ret < stats.cycles:
            # Direct external charges during execution (wrong-path
            # rdtsc, kernel costs) floor the watermark.
            t_ret = stats.cycles
        heapreplace(ports, t_ret + 1)
        if t_ret < self._last_retire:
            self._order_violations += 1  # audited; structurally unreachable
        self._last_retire = t_ret

        # ---- rename table update; old mappings freed at retire ----
        if writes:
            freed = []
            for key in writes:
                freed.append(rename[key])
                new = free.pop()
                rename[key] = new
                phys_ready[new] = complete
            rob.append((t_ret, tuple(freed)))
        else:
            rob.append((t_ret, ()))
        if len(rob) > self._peak_inflight:
            self._peak_inflight = len(rob)

        # ---- front-end consequences ----
        if self._redirect:
            t = complete + params.branch_mispredict_penalty
            if t > self._fetch_ready:
                self._fetch_ready = t
        if self._serialize_cost >= 0:
            # A serializer also empties the window *behind* it: fetch
            # restarts only after it retires.
            if t_ret > self._fetch_ready:
                self._fetch_ready = t_ret
            self._drains += 1
        self._retired += 1
        stats.cycles = t_ret
        self._clock = t_ret

    def drain_pending(self) -> None:
        """Empty the window: finalize the in-flight instruction, retire
        everything in the ROB, restart fetch after the drain.  Called
        on precise exceptions and halts."""
        if self._cur is not None:
            self._finalize()
        rob = self._rob
        free = self._free
        while rob:
            free.extend(rob.popleft()[1])
        stats = self.stats
        if self._last_retire < stats.cycles:
            self._last_retire = stats.cycles
        elif stats.cycles < self._last_retire:
            stats.cycles = self._last_retire
        if self._fetch_ready < self._last_retire:
            self._fetch_ready = self._last_retire
        self._clock = stats.cycles
        self._drains += 1

    # ------------------------------------------------------------------
    # charge hooks (called by the exec units mid-instruction)
    # ------------------------------------------------------------------

    def charge(self, cycles: int) -> None:
        if self.cpu._speculative:
            return
        if self._cur is not None:
            self._extra += cycles
        else:
            self.stats.cycles += cycles

    def charge_always(self, cycles: int) -> None:
        if self._cur is not None and not self.cpu._speculative:
            self._extra += cycles
        else:
            # Wrong-path (or out-of-band) costs land on the clock
            # directly; the retire floor keeps the watermark monotone.
            self.stats.cycles += cycles

    def mem_access(self, ea: int) -> None:
        cost = self._side_effects(ea)   # fills always: the Spectre channel
        if self.cpu._speculative:
            return
        if self._cur is not None:
            self._mem_lat += cost
            self._mem_ops += 1
        else:
            self.stats.cycles += cost

    def hmov_check(self, extra: int) -> None:
        if self.cpu._speculative:
            return
        check = self.params.ooo_hmov_check_cycles
        if extra > check:
            check = extra
        if self._cur is not None:
            if check > self._check_lat:
                self._check_lat = check
        else:
            self.stats.cycles += extra

    def mispredict(self) -> None:
        if self._cur is not None:
            self._redirect = True
            self._redirects += 1
        else:
            self.stats.cycles += self.params.branch_mispredict_penalty

    def serialize_drain(self, cost: Optional[int] = None,
                        count: bool = True) -> None:
        cost = (cost if cost is not None
                else self.params.serialize_drain_cycles)
        if self._cur is not None:
            if self._serialize_cost < 0:
                self._serialize_cost = cost
            else:
                self._serialize_cost += cost
        else:
            self.stats.cycles += cost
        if count:
            self.stats.serializations += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def audit(self) -> List[str]:
        """Structural invariants; any entry is a bug in the scoreboard.

        Checked by the verify gate's OoO probe: the rename map never
        aliases, every physical register is accounted exactly once
        (rename map + free list + ROB-held), retirement is monotone
        (in order), and nothing is left in flight outside the commit
        loop.
        """
        problems = []
        live = set(self._rename.values())
        if len(live) != len(self._rename):
            problems.append("rename map aliases a physical register")
        held = [p for _, freed in self._rob for p in freed]
        accounted = len(live) + len(self._free) + len(held)
        if accounted != self._n_phys:
            problems.append(
                f"physical register leak: {accounted} accounted "
                f"of {self._n_phys}")
        if len(live | set(self._free) | set(held)) != self._n_phys:
            problems.append("physical register double-booked")
        if self._order_violations:
            problems.append(
                f"{self._order_violations} out-of-order retirements")
        if self._cur is not None:
            problems.append("instruction in flight outside the commit loop")
        return problems

    @property
    def window_occupancy(self) -> int:
        """ROB entries not yet reclaimed (in flight or awaiting free)."""
        return len(self._rob)

    def ooo_stats(self) -> OooStats:
        return OooStats(
            component="ooo",
            retired=self._retired,
            drains=self._drains,
            redirects=self._redirects,
            rob_stalls=self._rob_stalls,
            prf_stalls=self._prf_stalls,
            iq_stalls=self._iq_stalls,
            lsq_stalls=self._lsq_stalls,
            peak_inflight=self._peak_inflight,
            checks_overlapped=self._checks_overlapped,
            checks_exposed=self._checks_exposed,
        )
