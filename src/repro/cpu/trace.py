"""Execution tracing for the CPU simulator.

Attach a :class:`Tracer` to a :class:`~repro.cpu.machine.Cpu` to record
committed instructions — useful for debugging compiled modules, for
inspecting sandbox transitions, and for the instruction-mix analysis in
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import HFI_OPS, HMOV_REGION, Opcode
from ..telemetry.stats import TracerStats


@dataclass
class TraceEntry:
    addr: int
    opcode: Opcode
    hfi_enabled: bool
    speculative: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "S" if self.hfi_enabled else "-"
        spec = "?" if self.speculative else " "
        return f"{self.addr:#010x} {mode}{spec} {self.opcode.value}"


class Tracer:
    """Bounded committed-instruction trace with mix statistics."""

    def __init__(self, capacity: int = 100_000,
                 record_entries: bool = True):
        self.capacity = capacity
        self.record_entries = record_entries
        self.entries: List[TraceEntry] = []
        self.mix: Counter = Counter()        # committed instructions
        self.spec_mix: Counter = Counter()   # wrong-path instructions
        self.dropped = 0

    def record(self, addr: int, ins: Instruction, hfi_enabled: bool,
               speculative: bool = False) -> None:
        (self.spec_mix if speculative else self.mix)[ins.opcode] += 1
        if not self.record_entries:
            return
        if len(self.entries) >= self.capacity:
            self.dropped += 1
            return
        self.entries.append(TraceEntry(addr, ins.opcode, hfi_enabled,
                                       speculative))

    # ------------------------------------------------------------------
    def stats(self) -> TracerStats:
        """Uniform component-stats snapshot (``repro.telemetry``).

        ``tracer.mix`` / ``tracer.spec_mix`` remain the live counters;
        this is the export-friendly view of the same data.
        """
        return TracerStats(
            component="tracer",
            instructions=self.total,
            speculative_instructions=sum(self.spec_mix.values()),
            dropped=self.dropped,
            hfi_instructions=self.hfi_instruction_count(),
            transitions=self.transitions(),
            mix={op.value: n for op, n in self.mix.items()},
            spec_mix={op.value: n for op, n in self.spec_mix.items()})

    @property
    def total(self) -> int:
        return sum(self.mix.values())

    def fraction(self, *opcodes: Opcode) -> float:
        """Share of the trace made up of the given opcodes."""
        if not self.total:
            return 0.0
        return sum(self.mix[op] for op in opcodes) / self.total

    def memory_fraction(self) -> float:
        """Loads/stores (mov with memory operands are not
        distinguishable from the mix alone; hmov always is)."""
        return self.fraction(Opcode.MOV, *HMOV_REGION)

    def hfi_instruction_count(self) -> int:
        return sum(self.mix[op] for op in HFI_OPS)

    def transitions(self) -> int:
        """Sandbox enters + exits observed."""
        return (self.mix[Opcode.HFI_ENTER] + self.mix[Opcode.HFI_EXIT]
                + self.mix[Opcode.HFI_REENTER])

    def summary(self) -> str:
        lines = [f"instructions: {self.total}"]
        for opcode, count in self.mix.most_common(12):
            lines.append(f"  {opcode.value:16s} {count:8d} "
                         f"({100 * count / self.total:.1f}%)")
        if self.dropped:
            lines.append(f"  ... {self.dropped} entries dropped")
        return "\n".join(lines)
