"""Superblock compilation: fuse basic blocks into single callables.

The staged engine (PR 2) pays a fixed per-instruction toll in the
commit loop — rip read, halt/fault checks, decode-table lookup, stats
attribute bumps, tracer check, a try/except, and a closure call — even
though most committed instructions are straight-line fall-throughs.
This module removes that toll for runs of *block-safe* instructions by
compiling each basic block into one generated Python function whose
body is the concatenation of the block's handlers with hot state bound
to locals:

* instruction/cycle/l1i-hit counts accumulate in plain locals and are
  flushed to ``CpuStats``/``Cache`` exactly once per block (in a
  ``finally``, so a mid-block fault observes fully-flushed counters);
* the dominant handler shapes are *inlined* into the generated source —
  no closure call, no ``cpu._speculative`` test (blocks never run
  inside a speculation window).  Register-only shapes (``mov``/ALU/
  ``lea`` reg,reg|imm) additionally get flag stores elided when a later
  instruction in the same block provably overwrites all four flags
  before anything can observe them; memory shapes (``mov``/``hmov``
  with one memory operand, ``push``/``pop``) get the whole access path
  inlined — effective address, HFI implicit check, VMA/pkey check, and
  the dTLB/L1D hit fast paths from ``TimingModel.mem_access`` — with
  only VMA lookup, misses, and the raw byte read/write left as calls;
* every other block-safe handler is called through its precompiled
  ``DecodedOp.run`` closure, pre-bound as a default argument.

What a superblock must preserve bit-for-bit (the golden-cycle fixture
and ``verify.fuzz_isa`` enforce this):

* the per-instruction l1i probe (LRU reinsert on hit, full hierarchy
  walk on miss) — fetch timing is part of the architectural cycle
  count;
* mid-block fault fidelity: handlers set ``rip`` before raising, the
  accumulator flush runs before the machine's fault delivery, and the
  retired-count of a partially executed block is reported through
  ``cpu._block_retired`` so the instruction budget stays exact;
* HFI fetch checks: a block only runs with checks hoisted when a
  *single* enabled code region covers the whole block and no earlier
  region in the list intersects it (first-match semantics); anything
  else falls back to single-step, which faults at the exact pc.

Block boundaries: any opcode not registered ``block_safe=True`` (see
:func:`repro.cpu.decode.decoder`) ends the block — all control flow,
HFI transitions, serializers, ``rdtsc`` (reads absolute cycles), and
``hlt``.  Speculation windows never enter blocks: the wrong-path loop
dispatches single-step only, and :meth:`SpeculationJournal.open`
asserts it.  ``CodeMap`` write-invalidation drops every compiled block
covering the patched address, keeping self-modifying code coherent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.checks import implicit_data_check
from ..isa.opcodes import HMOV_REGION, Opcode
from ..isa.operands import Imm, Mem
from ..isa.registers import MASK64, Reg
from ..os.address_space import AccessKind, PageFault
from ..telemetry.stats import SuperblockStats
from .decode import BLOCK_SAFE, DecodedOp

#: Block formation limits: a block shorter than MIN_BLOCK_OPS is not
#: worth the dispatch check (a None sentinel is cached instead); longer
#: runs than MAX_BLOCK_OPS are split (bounds compile time and keeps the
#: budget-fit dispatch condition cheap to satisfy).
MIN_BLOCK_OPS = 2
MAX_BLOCK_OPS = 64

#: JIT-style warmup: an entry pc must be dispatched HOT_THRESHOLD
#: times before the (cheap) formation walk even runs, and
#: ``HOT_THRESHOLD + COMPILE_VISIT_BUDGET // block_length`` times
#: before the (expensive) ``compile()`` runs — cold visits
#: single-step.  Rationale: ``compile()`` costs milliseconds and
#: scales with block length, while each block execution saves
#: microseconds *per instruction*, so the break-even execution count
#: is roughly constant-over-length: long blocks compile after a few
#: dozen visits, short ones must prove they are genuinely hot.  Code
#: with a flat profile (many blocks, each executed a handful of
#: times — e.g. gobmk) never compiles and never pays the toll.
HOT_THRESHOLD = 4
COMPILE_VISIT_BUDGET = 2000

_M = MASK64
_SIGN = 1 << 63
_TWO64 = 1 << 64

# Fragment classification for the generated source.
_GENERIC = "generic"        # call the DecodedOp.run closure
_INLINE_NONE = "none"       # inline body, writes no flags, cannot fault
_INLINE_ALL = "all"         # inline body, writes all four flags
_INLINE_MEM = "mem"         # inline body with a data access: may fault

_ALU_BINOPS = {Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
               Opcode.CMP, Opcode.TEST, Opcode.SHL, Opcode.SHR, Opcode.SAR}
_ALU_UNOPS = {Opcode.INC, Opcode.DEC, Opcode.NEG, Opcode.NOT}
_HMOV_OPS = frozenset(HMOV_REGION)


def _classify(ins) -> str:
    """Which fragment shape the inliner can use for this instruction.

    Mirrors the fast-path conditions in the exec units exactly: only
    the shapes those handlers fully inline are inlined here, so the
    generated code is a transcription of the handler body (minus the
    speculation branch and the per-instruction ``rip`` store).
    """
    op = ins.opcode
    ops = ins.operands
    if op is Opcode.NOP:
        return _INLINE_NONE
    if op is Opcode.MOV:
        if type(ops[0]) is Reg:
            if type(ops[1]) in (Reg, Imm):
                return _INLINE_NONE
            if isinstance(ops[1], Mem):
                return _INLINE_MEM
            return _GENERIC
        if isinstance(ops[0], Mem) and type(ops[1]) in (Reg, Imm):
            return _INLINE_MEM
        return _GENERIC
    if op in _HMOV_OPS:
        if type(ops[0]) is Reg and isinstance(ops[1], Mem):
            return _INLINE_MEM              # load form
        if isinstance(ops[0], Mem) and type(ops[1]) in (Reg, Imm):
            return _INLINE_MEM              # store form
        return _GENERIC
    if op is Opcode.PUSH:
        return _INLINE_MEM if type(ops[0]) in (Reg, Imm) else _GENERIC
    if op is Opcode.POP:
        return _INLINE_MEM if type(ops[0]) is Reg else _GENERIC
    if op is Opcode.LEA:
        if type(ops[0]) is Reg and isinstance(ops[1], Mem):
            return _INLINE_NONE
        return _GENERIC
    if op in _ALU_BINOPS:
        if type(ops[0]) is Reg and type(ops[1]) in (Reg, Imm):
            return _INLINE_ALL
        return _GENERIC
    if op in _ALU_UNOPS:
        if type(ops[0]) is Reg:
            return _INLINE_NONE if op is Opcode.NOT else _INLINE_ALL
        return _GENERIC
    return _GENERIC


class _SourceBuilder:
    """Accumulates generated source lines plus the binding namespace."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.bindings: Dict[str, object] = {}
        self._regs: Dict[Reg, str] = {}
        #: Machine constants baked into memory-path fragments
        #: (page/line geometry, hit latencies, hmov surcharge).
        self.consts: Dict[str, int] = {}

    def bind(self, name: str, obj) -> str:
        self.bindings[name] = obj
        return name

    def reg(self, reg: Reg) -> str:
        name = self._regs.get(reg)
        if name is None:
            name = self.bind(f"g_{reg.name}", reg)
            self._regs[reg] = name
        return name


def _src_expr(b: _SourceBuilder, operand) -> str:
    """Source text for a register-or-immediate source operand."""
    if type(operand) is Reg:
        return f"R[{b.reg(operand)}]"
    return repr(operand.value & _M)


def _ea_expr(b: _SourceBuilder, mem: Mem) -> str:
    """Source text computing the effective address (``make_ea``)."""
    if mem.base is None and mem.index is None:
        return repr(mem.disp & _M)
    terms = [repr(mem.disp)]
    if mem.base is not None:
        terms.append(f"R[{b.reg(mem.base)}]")
    if mem.index is not None:
        terms.append(f"R[{b.reg(mem.index)}] * {mem.scale}")
    return f"({' + '.join(terms)}) & {_M}"


def _emit_access_checks(b: _SourceBuilder, out: List[str], size: int,
                        is_write: bool, implicit: bool) -> None:
    """HFI implicit check (non-hmov paths) + VMA/pkey check, transcribed
    from ``make_reader``/``make_writer`` and ``Cpu._load_ea``/``_store_ea``.
    """
    if implicit:
        out.append("if HREGS.enabled:")
        out.append(f"    HCHECK(HREGS.data, ea, {size}, {is_write})")
    kind = "AK_WR" if is_write else "AK_RD"
    out.append(f"vma = CHK(ea, {size}, {kind})")
    # ``enforce_pkeys`` is fixed at construction (process-attached
    # cores only), so a False value elides the whole pkey test — like
    # every baked constant, it is compile-time state (see module doc).
    if b.consts["EPK"]:
        # (pkru >> 2k) & 0b11 & 0b01  ==  (pkru >> 2k) & 1, and the
        # write path denies on either bit: the mask folds to a constant.
        pk_mask = 0b11 if is_write else 0b01
        out.append("if vma.pkey:")
        out.append("    process = cpu.process")
        out.append("    if process is not None and process.pkru:")
        out.append(f"        if (process.pkru >> (2 * vma.pkey))"
                   f" & {pk_mask}:")
        out.append('            raise PF(ea, ' + kind
                   + ', f"pkey {vma.pkey} denied")')


def _emit_mem_timing(b: _SourceBuilder, out: List[str]) -> None:
    """dTLB + L1D probe, transcribed from ``TimingModel.mem_access``
    (hit fast paths inlined, miss paths through the bound slow calls;
    latency accumulates in ``c`` — blocks never run speculatively)."""
    k = b.consts
    out.append(f"page = ea // {k['PB']}")
    out.append("if page in PAGES:")
    out.append("    del PAGES[page]")
    out.append("    PAGES[page] = True")
    out.append("    tlbh += 1")
    out.append("    tc = 0")
    out.append("else:")
    out.append("    tc = TLBACC(ea)")
    out.append(f"dl = ea // {k['LB']}")
    out.append(f"dw = L1DS[dl % {k['NS']}]")
    out.append(f"dt = dl // {k['NS']}")
    out.append("if dt in dw:")
    out.append("    del dw[dt]")
    out.append("    dw[dt] = True")
    out.append("    dh += 1")
    out.append(f"    c += tc + {k['DH']}")
    out.append("else:")
    out.append("    c += tc + DACC(ea)")


def _emit_load(b: _SourceBuilder, out: List[str], dst: Reg, size: int,
               implicit: bool) -> None:
    _emit_access_checks(b, out, size, is_write=False, implicit=implicit)
    _emit_mem_timing(b, out)
    out.append("ld += 1")
    out.append(f"R[{b.reg(dst)}] = MEMRD(ea, {size}, check=False)")


def _emit_store(b: _SourceBuilder, out: List[str], size: int,
                implicit: bool) -> None:
    """Store of local ``val`` to local ``ea``."""
    _emit_access_checks(b, out, size, is_write=True, implicit=implicit)
    _emit_mem_timing(b, out)
    out.append("st += 1")
    out.append(f"MEMWR(ea, val, {size}, check=False)")


def _emit_mem(b: _SourceBuilder, dop: DecodedOp) -> List[str]:
    """Transcribe one inlined memory-touching handler body.

    Unlike the pure-register fragments these can fault (HFI data trap,
    VMA/pkey page fault), so each fragment stores ``rip`` *first* —
    exactly as every handler does — keeping the architectural rip at
    the faulting instruction's successor when the block unwinds.
    """
    ins = dop.ins
    op = ins.opcode
    ops = ins.operands
    out: List[str] = [f"RF.rip = {dop.next_rip}"]
    if op is Opcode.MOV:
        if type(ops[0]) is Reg:                  # reg <- [mem]
            mem = ops[1]
            out.append(f"ea = {_ea_expr(b, mem)}")
            _emit_load(b, out, ops[0], mem.size, implicit=True)
        else:                                     # [mem] <- reg/imm
            mem = ops[0]
            out.append(f"val = {_src_expr(b, ops[1])}")
            out.append(f"ea = {_ea_expr(b, mem)}")
            _emit_store(b, out, mem.size, implicit=True)
        return out
    if op in _HMOV_OPS:
        region = HMOV_REGION[op]
        extra = b.consts["HX"]
        if extra:                # commit-only charge; blocks never
            out.append(f"c += {extra}")           # run speculatively
        if isinstance(ops[1], Mem):               # load form
            mem = ops[1]
            iv = (f"R[{b.reg(mem.index)}]"
                  if mem.index is not None else "0")
            out.append(f"ea = HMOVA({region}, {iv}, {mem.scale}, "
                       f"{mem.disp}, {mem.size}, False)")
            _emit_load(b, out, ops[0], mem.size, implicit=False)
        else:                                     # store form
            mem = ops[0]
            out.append(f"val = {_src_expr(b, ops[1])}")
            iv = (f"R[{b.reg(mem.index)}]"
                  if mem.index is not None else "0")
            out.append(f"ea = HMOVA({region}, {iv}, {mem.scale}, "
                       f"{mem.disp}, {mem.size}, True)")
            _emit_store(b, out, mem.size, implicit=False)
        return out
    if op is Opcode.PUSH:
        rsp = b.reg(Reg.RSP)
        out.append(f"val = {_src_expr(b, ops[0])}")
        out.append(f"sp = (R[{rsp}] - 8) & {_M}")
        out.append(f"R[{rsp}] = sp")
        out.append("ea = sp")
        _emit_store(b, out, 8, implicit=True)
        return out
    if op is Opcode.POP:
        rsp = b.reg(Reg.RSP)
        out.append(f"ea = R[{rsp}]")
        _emit_access_checks(b, out, 8, is_write=False, implicit=True)
        _emit_mem_timing(b, out)
        out.append("ld += 1")
        out.append("val = MEMRD(ea, 8, check=False)")
        # rsp bump before the destination write, as in the handler
        # (so ``pop rsp`` keeps the loaded value).
        out.append(f"R[{rsp}] = (R[{rsp}] + 8) & {_M}")
        out.append(f"R[{b.reg(ops[0])}] = val")
        return out
    raise AssertionError(f"no mem fragment for {op}")  # pragma: no cover


def _emit_inline(b: _SourceBuilder, ins, flags_live: bool) -> List[str]:
    """Transcribe one inlined handler body (flags elided when dead)."""
    op = ins.opcode
    ops = ins.operands
    out: List[str] = []
    if op is Opcode.NOP:
        return out
    if op is Opcode.MOV:
        d = b.reg(ops[0])
        out.append(f"R[{d}] = {_src_expr(b, ops[1])}")
        return out
    if op is Opcode.LEA:
        d = b.reg(ops[0])
        mem = ops[1]
        terms = [repr(mem.disp)]
        if mem.base is not None:
            terms.append(f"R[{b.reg(mem.base)}]")
        if mem.index is not None:
            terms.append(f"R[{b.reg(mem.index)}] * {mem.scale}")
        if mem.base is None and mem.index is None:
            out.append(f"R[{d}] = {mem.disp & _M}")
        else:
            out.append(f"R[{d}] = ({' + '.join(terms)}) & {_M}")
        return out
    if op in (Opcode.ADD, Opcode.SUB, Opcode.CMP):
        d = b.reg(ops[0])
        src = _src_expr(b, ops[1])
        sub = op is not Opcode.ADD
        if not flags_live:
            if op is Opcode.CMP:
                return out                     # compare with dead flags
            sign = "-" if sub else "+"
            out.append(f"R[{d}] = (R[{d}] {sign} {src}) & {_M}")
            return out
        out.append(f"a = R[{d}]")
        out.append(f"b = {src}")
        if sub:
            out.append(f"res = (a - b) & {_M}")
            out.append("F.zf = res == 0")
            out.append("F.sf = res >> 63 != 0")
            out.append("F.cf = a < b")
            out.append(f"F.of = (a ^ b) & (a ^ res) & {_SIGN} != 0")
        else:
            out.append("wide = a + b")
            out.append(f"res = wide & {_M}")
            out.append("F.zf = res == 0")
            out.append("F.sf = res >> 63 != 0")
            out.append(f"F.cf = wide > {_M}")
            out.append(f"F.of = ~(a ^ b) & (a ^ res) & {_SIGN} != 0")
        if op is not Opcode.CMP:
            out.append(f"R[{d}] = res")
        return out
    if op in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.TEST):
        d = b.reg(ops[0])
        src = _src_expr(b, ops[1])
        sym = {Opcode.AND: "&", Opcode.TEST: "&",
               Opcode.OR: "|", Opcode.XOR: "^"}[op]
        if not flags_live:
            if op is Opcode.TEST:
                return out                     # test with dead flags
            out.append(f"R[{d}] = R[{d}] {sym} {src}")
            return out
        out.append(f"res = R[{d}] {sym} {src}")
        out.append("F.zf = res == 0")
        out.append("F.sf = res >> 63 != 0")
        out.append("F.cf = False")
        out.append("F.of = False")
        if op is not Opcode.TEST:
            out.append(f"R[{d}] = res")
        return out
    if op in (Opcode.SHL, Opcode.SHR, Opcode.SAR):
        d = b.reg(ops[0])
        if type(ops[1]) is Imm:
            count = repr(ops[1].value & _M & 63)
        else:
            count = f"R[{b.reg(ops[1])}] & 63"
        if op is Opcode.SHL:
            expr = f"(R[{d}] << ({count})) & {_M}"
        elif op is Opcode.SHR:
            expr = f"R[{d}] >> ({count})"
        else:
            out.append(f"a = R[{d}]")
            out.append(f"sa = a - {_TWO64} if a & {_SIGN} else a")
            expr = f"(sa >> ({count})) & {_M}"
        if not flags_live:
            out.append(f"R[{d}] = {expr}")
            return out
        out.append(f"res = {expr}")
        out.append("F.zf = res == 0")
        out.append("F.sf = res >> 63 != 0")
        out.append("F.cf = False")
        out.append("F.of = False")
        out.append(f"R[{d}] = res")
        return out
    if op in (Opcode.INC, Opcode.DEC):
        d = b.reg(ops[0])
        sub = op is Opcode.DEC
        if not flags_live:
            sign = "-" if sub else "+"
            out.append(f"R[{d}] = (R[{d}] {sign} 1) & {_M}")
            return out
        out.append(f"a = R[{d}]")
        if sub:
            out.append(f"res = (a - 1) & {_M}")
            out.append("F.zf = res == 0")
            out.append("F.sf = res >> 63 != 0")
            out.append("F.cf = a < 1")
            out.append(f"F.of = (a ^ 1) & (a ^ res) & {_SIGN} != 0")
        else:
            out.append("wide = a + 1")
            out.append(f"res = wide & {_M}")
            out.append("F.zf = res == 0")
            out.append("F.sf = res >> 63 != 0")
            out.append(f"F.cf = wide > {_M}")
            out.append(f"F.of = ~(a ^ 1) & (a ^ res) & {_SIGN} != 0")
        out.append(f"R[{d}] = res")
        return out
    if op is Opcode.NEG:
        d = b.reg(ops[0])
        if not flags_live:
            out.append(f"R[{d}] = -R[{d}] & {_M}")
            return out
        out.append(f"res = -R[{d}] & {_M}")
        out.append("F.zf = res == 0")
        out.append("F.sf = res >> 63 != 0")
        out.append("F.cf = res != 0")
        out.append("F.of = False")
        out.append(f"R[{d}] = res")
        return out
    if op is Opcode.NOT:
        d = b.reg(ops[0])
        out.append(f"R[{d}] = ~R[{d}] & {_M}")
        return out
    raise AssertionError(f"no inline fragment for {op}")  # pragma: no cover


class Superblock:
    """One compiled basic block: a generated callable plus metadata."""

    __slots__ = ("run", "n", "first", "last", "source")

    def __init__(self, run, n: int, first: int, last: int, source: str):
        self.run = run          # run(cpu) — the generated function
        self.n = n              # instruction count
        self.first = first      # pc of the first instruction
        self.last = last        # pc of the last instruction
        self.source = source    # generated text (debugging aid)

    def covered(self, regions) -> bool:
        """May HFI fetch checks be hoisted over this whole block?

        True only when the *first* region (in list order, matching
        §4.1's first-match semantics) that intersects
        ``[first, last]`` covers both endpoints — implicit code
        regions are aligned contiguous intervals, so covering the
        endpoints covers every pc between — and grants execute.  Any
        partial overlap, no match, or exec-denied match returns False
        and the caller single-steps, reproducing the exact per-pc
        fault the hoisted check cannot.
        """
        lo = self.first
        hi = self.last
        for region in regions:
            if region is None:
                continue
            mask = region.lsb_mask
            base = region.base_prefix
            if (lo & ~mask) == base and (hi & ~mask) == base:
                return region.permission_exec
            if base <= hi and base + mask >= lo:
                return False        # partial overlap: per-pc semantics
        return False                # no match: single-step will fault

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Superblock [{self.first:#x}..{self.last:#x}] "
                f"n={self.n}>")


def compile_superblock(cpu, dops: List[DecodedOp]) -> Superblock:
    """Generate and compile the fused callable for one basic block."""
    b = _SourceBuilder()
    b.bind("R", cpu.regs.regs)
    b.bind("F", cpu.regs.flags)
    b.bind("RF", cpu.regs)
    b.bind("S", cpu.stats)
    b.bind("FETCH", cpu.timing.fetch)
    l1i = cpu.caches.l1i
    b.bind("L1I", l1i)
    base_cycles = cpu.params.base_cycles
    hit_plus_base = cpu.params.l1i_hit_cycles + base_cycles

    kinds = [_classify(dop.ins) for dop in dops]
    uses_mem = any(kind is _INLINE_MEM for kind in kinds)
    if uses_mem:
        l1d = cpu.caches.l1d
        b.bind("CHK", cpu.mem.check_access)
        b.bind("MEMRD", cpu.mem.read)
        b.bind("MEMWR", cpu.mem.write)
        b.bind("PAGES", cpu.tlb._pages)     # shootdown clears in place
        b.bind("TLBO", cpu.tlb)
        b.bind("TLBACC", cpu.tlb.access)
        b.bind("L1DS", l1d._sets)           # flush clears in place
        b.bind("L1D", l1d)
        b.bind("DACC", cpu.caches.data_access)
        b.bind("HREGS", cpu.hfi.regs)       # identity journal-preserved
        b.bind("HCHECK", implicit_data_check)
        b.bind("HMOVA", cpu.hfi.hmov_address)
        b.bind("PF", PageFault)
        b.bind("AK_RD", AccessKind.READ)
        b.bind("AK_WR", AccessKind.WRITE)
        b.consts = {
            "PB": cpu.params.page_bytes,
            "LB": l1d.line_bytes,
            "NS": l1d.n_sets,
            "DH": cpu.params.l1d_hit_cycles,
            "HX": cpu.params.hmov_extra_cycles,
            "EPK": 1 if cpu.enforce_pkeys else 0,
        }

    # Dead-flag elimination, backward: flags written by instruction i
    # are live unless a later *inlined* instruction overwrites all four
    # before anything can observe them.  Generic and memory fragments
    # are barriers (they may fault, exposing the pre-fault flag state),
    # and flags are always live at the block exit (typically a jcc).
    live = True
    flags_live = [True] * len(dops)
    for i in range(len(dops) - 1, -1, -1):
        kind = kinds[i]
        if kind is _GENERIC or kind is _INLINE_MEM:
            live = True
        else:
            flags_live[i] = live
            if kind is _INLINE_ALL:
                live = False

    # Segment the block for fetch-probe batching.  Consecutive
    # instructions sharing an l1i line need only ONE probe: after the
    # first touch the line is MRU and nothing i-side intervenes before
    # the next instruction, so the remaining accesses are guaranteed
    # hits — batching k same-line probes into one (hit: ``h += k``;
    # miss: one hierarchy walk plus k-1 hit latencies) leaves the
    # cache state, hit counters, and cycle total bit-identical to the
    # staged loop's per-instruction probes.  A fragment that can fault
    # (generic call or inlined memory access) ends its segment, so
    # ``n`` and ``c`` are exact whenever an exception can unwind the
    # block mid-flight.
    faulting = [kind is _GENERIC or kind is _INLINE_MEM for kind in kinds]
    ilines = [dop.addr // l1i.line_bytes for dop in dops]
    segments: List[Tuple[int, int]] = []
    start = 0
    for i in range(len(dops)):
        if (i + 1 == len(dops) or faulting[i]
                or ilines[i + 1] != ilines[i]):
            segments.append((start, i))
            start = i + 1

    lines = ["    n = 0", "    cpu._in_block = True", "    c = 0",
             "    h = 0"]
    if uses_mem:
        lines.append("    ld = 0; st = 0; tlbh = 0; dh = 0")
    lines.append("    try:")
    ways_names: Dict[int, str] = {}
    for seg_start, seg_end in segments:
        k = seg_end - seg_start + 1
        names = " ".join(dop.ins.opcode.name
                         for dop in dops[seg_start:seg_end + 1])
        lines.append(f"        # {dops[seg_start].addr:#x} {names}")
        lines.append(f"        n = {seg_end + 1}")
        # One l1i probe for the whole segment, transcribed from the
        # commit loop (LRU reinsert on hit; hierarchy walk on miss).
        line = ilines[seg_start]
        set_index = line % l1i.n_sets
        tag = line // l1i.n_sets
        w = ways_names.get(set_index)
        if w is None:
            w = b.bind(f"w{set_index}", l1i._sets[set_index])
            ways_names[set_index] = w
        lines.append(f"        if {tag} in {w}:")
        lines.append(f"            del {w}[{tag}]")
        lines.append(f"            {w}[{tag}] = True")
        lines.append(f"            h += {k}")
        lines.append(f"            c += {k * hit_plus_base}")
        lines.append("        else:")
        lines.append(f"            c += FETCH({dops[seg_start].addr})"
                     f" + {base_cycles + (k - 1) * hit_plus_base}")
        if k > 1:
            lines.append(f"            h += {k - 1}")
        for i in range(seg_start, seg_end + 1):
            dop = dops[i]
            if kinds[i] is _GENERIC:
                r = b.bind(f"r{i}", dop.run)
                lines.append(f"        {r}(cpu)")
            elif kinds[i] is _INLINE_MEM:
                for frag in _emit_mem(b, dop):
                    lines.append(f"        {frag}")
            else:
                for frag in _emit_inline(b, dop.ins, flags_live[i]):
                    lines.append(f"        {frag}")
    # Pure-register inlined fragments defer the rip store; generic
    # handlers and memory fragments (which can fault) write it
    # themselves, so only a pure-inlined *last* instruction needs the
    # block-exit rip (mid-block rip is never observable: pure inlined
    # fragments cannot fault and nothing block-safe reads rip).
    if kinds[-1] in (_INLINE_NONE, _INLINE_ALL):
        lines.append(f"        RF.rip = {dops[-1].next_rip}")
    lines.extend([
        "    finally:",
        "        cpu._in_block = False",
        "        cpu._block_retired = n",
        "        S.instructions += n",
        "        S.cycles += c",
        "        L1I._hits += h",
    ])
    if uses_mem:
        lines.extend([
            "        S.loads += ld",
            "        S.stores += st",
            "        TLBO._hits += tlbh",
            "        L1D._hits += dh",
        ])

    params = ", ".join(f"{name}={name}" for name in b.bindings)
    source = (f"def _superblock(cpu, {params}):\n" + "\n".join(lines)
              + "\n")
    namespace = dict(b.bindings)
    exec(compile(source, f"<superblock {dops[0].addr:#x}>", "exec"),
         namespace)
    return Superblock(namespace["_superblock"], len(dops), dops[0].addr,
                      dops[-1].addr, source)


class BlockCache:
    """Per-core table of compiled superblocks, keyed by entry pc.

    ``table`` maps an entry pc to its :class:`Superblock`, or to
    ``None`` when formation at that pc was attempted and produced a
    run shorter than :data:`MIN_BLOCK_OPS` (a negative cache, so hot
    ender-adjacent pcs don't re-walk every visit).  ``owners`` maps
    every address a compilation visited back to the entry pcs whose
    blocks cover it, which is what :meth:`invalidate` consumes when
    :class:`~repro.cpu.decode.CodeMap` reports a code write.
    """

    __slots__ = ("cpu", "table", "owners", "heat", "goal", "compiled",
                 "invalidated", "executions", "block_instructions",
                 "fallbacks")

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        self.table: Dict[int, Optional[Superblock]] = {}
        self.owners: Dict[int, List[int]] = {}
        self.heat: Dict[int, int] = {}
        self.goal: Dict[int, int] = {}
        self.compiled = 0
        self.invalidated = 0
        self.executions = 0
        self.block_instructions = 0
        self.fallbacks = 0

    # ------------------------------------------------------------------
    # formation
    # ------------------------------------------------------------------
    def _walk(self, pc: int):
        """The maximal block-safe run starting at ``pc`` (no compile)."""
        cpu = self.cpu
        decoded = cpu._decoded
        dops: List[DecodedOp] = []
        visited: List[int] = []
        addr = pc
        while len(dops) < MAX_BLOCK_OPS:
            dop = decoded.get(addr)
            if dop is None:
                dop = cpu._decode_at(addr)
                if dop is None:
                    break
            if dop.ins.opcode not in BLOCK_SAFE:
                break
            dops.append(dop)
            visited.append(addr)
            addr = dop.next_rip
        return dops, visited

    def compile_at(self, pc: int) -> Optional[Superblock]:
        """Warm up, then compile the maximal safe run from ``pc``.

        Cold pcs just count visits: the formation walk runs once at
        :data:`HOT_THRESHOLD` visits to size the run (setting the
        length-scaled compile goal), and ``compile()`` runs only when
        the goal is reached — until then the caller single-steps, so
        code that never gets hot never pays the compile toll.
        """
        heat = self.heat
        count = heat.get(pc, 0) + 1
        goal = self.goal.get(pc)
        if goal is None:
            if count < HOT_THRESHOLD:
                heat[pc] = count
                return None
            run_len = len(self._walk(pc)[0])
            if run_len < MIN_BLOCK_OPS:
                heat.pop(pc, None)
                self.table[pc] = None           # negative cache
                self.owners.setdefault(pc, []).append(pc)
                return None
            goal = HOT_THRESHOLD + COMPILE_VISIT_BUDGET // run_len
            self.goal[pc] = goal
        if count < goal:
            heat[pc] = count
            return None
        heat.pop(pc, None)
        self.goal.pop(pc, None)
        dops, visited = self._walk(pc)
        if len(dops) < MIN_BLOCK_OPS:           # code changed under us
            self.table[pc] = None
            self.owners.setdefault(pc, []).append(pc)
            return None
        blk = compile_superblock(self.cpu, dops)
        self.table[pc] = blk
        for covered_addr in visited:
            self.owners.setdefault(covered_addr, []).append(pc)
        self.compiled += 1
        return blk

    # ------------------------------------------------------------------
    # coherence (driven by CodeMap)
    # ------------------------------------------------------------------
    def invalidate(self, addr: int) -> None:
        """A code write at ``addr``: drop every block covering it."""
        entries = self.owners.pop(addr, None)
        if not entries:
            return
        table = self.table
        for entry in entries:
            if entry in table:
                del table[entry]
                self.invalidated += 1

    def clear(self) -> None:
        self.table.clear()
        self.owners.clear()
        self.heat.clear()
        self.goal.clear()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> SuperblockStats:
        """Uniform component-stats snapshot (``repro.telemetry``)."""
        return SuperblockStats(
            component="blocks", compiled=self.compiled,
            invalidated=self.invalidated, executions=self.executions,
            block_instructions=self.block_instructions,
            fallbacks=self.fallbacks, cached=len(self.table))
