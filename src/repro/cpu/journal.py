"""Undo-log journal for the speculation engine.

The old interpreter squashed a wrong path by deep-copying the whole
architectural state up front (``RegisterFile.copy()`` plus
``copy.deepcopy(self.hfi)``) and swapping the copies back afterwards.
That is O(state) per misprediction and rebinds ``cpu.regs`` /
``cpu.hfi`` object identity on every window.

The journal inverts the cost: entering a window records only a handful
of scalars (rip, flags, pkru), and every *write* performed on the wrong
path logs an ``(location, old_value)`` undo entry.  Squash replays the
log backwards, so a window that writes three registers undoes three
dictionary stores — independent of how big the register file or the
HFI bank is.  Object identity of ``cpu.regs``, ``cpu.hfi`` and
``Process.hfi_state`` is preserved across speculation.

HFI state is journaled copy-on-first-write: the first mutating
``HfiState`` method executed inside a window (they all call
:meth:`snapshot_hfi` via their ``_journal`` hook) banks the register
file and lifecycle counters once; most windows never touch HFI state
and pay nothing.

What deliberately does **not** roll back — cache fills, TLB fills, and
predictor updates — is exactly the paper's Spectre channel; the journal
never records those structures.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..telemetry.stats import SpeculationJournalStats


class SpeculationJournal:
    """Per-core undo log, recorded only while ``cpu._speculative``."""

    __slots__ = ("entries", "windows", "rollbacks", "reg_entries",
                 "hfi_snapshots", "_rip", "_flags", "_pkru", "_hfi_undo",
                 "probe")

    def __init__(self) -> None:
        #: Wrong-path GPR writes as ``(Reg, old_value)``; writer
        #: closures append here directly (hot path).
        self.entries: List[Tuple[object, int]] = []
        self.windows = 0
        self.rollbacks = 0
        self.reg_entries = 0
        self.hfi_snapshots = 0
        self._rip = 0
        self._flags = (False, False, False, False)
        self._pkru = 0
        self._hfi_undo: Optional[tuple] = None
        #: Optional sanitizer probe (verify.invariants); checks that
        #: squash preserves object identity of the architectural state.
        self.probe = None

    # ------------------------------------------------------------------
    # window lifecycle
    # ------------------------------------------------------------------
    def open(self, cpu) -> None:
        """Record the pre-window scalars and arm the HFI hook."""
        if cpu._in_block:
            # Superblocks elide the speculation branch in their inlined
            # fragments, so undo-log correctness depends on windows
            # never opening mid-block.  Every speculation-capable
            # opcode is a block ender; this guard turns any future
            # violation of that invariant into a loud failure instead
            # of silent wrong-path state corruption.
            raise RuntimeError(
                "speculation window opened inside a compiled superblock")
        self.windows += 1
        self.entries.clear()
        regs = cpu.regs
        flags = regs.flags
        self._rip = regs.rip
        self._flags = (flags.zf, flags.sf, flags.cf, flags.of)
        self._pkru = cpu.process.pkru if cpu.process is not None else 0
        self._hfi_undo = None
        cpu.hfi._journal = self
        if self.probe is not None:
            self.probe.on_open(cpu)

    def snapshot_hfi(self, hfi) -> None:
        """Copy-on-first-write bank of the HFI state for this window.

        Called by every mutating ``HfiState`` method while a window is
        open; only the first call per window does any work.
        """
        if self._hfi_undo is None:
            self.hfi_snapshots += 1
            self._hfi_undo = (hfi.regs.snapshot(), hfi._shadow,
                              hfi._reenter_bank, hfi.serializations,
                              hfi.enters, hfi.exits, hfi.region_installs)

    def rollback(self, cpu) -> None:
        """Squash: replay the undo log backwards, in place."""
        entries = self.entries
        self.reg_entries += len(entries)
        regs = cpu.regs.regs
        while entries:
            reg, old = entries.pop()
            regs[reg] = old
        flags = cpu.regs.flags
        flags.zf, flags.sf, flags.cf, flags.of = self._flags
        cpu.regs.rip = self._rip
        if cpu.process is not None:
            cpu.process.pkru = self._pkru
        hfi = cpu.hfi
        undo = self._hfi_undo
        if undo is not None:
            bank, shadow, reenter, serializations, enters, exits, \
                installs = undo
            hfi.regs.restore(bank)
            hfi._shadow = shadow
            hfi._reenter_bank = reenter
            hfi.serializations = serializations
            hfi.enters = enters
            hfi.exits = exits
            hfi.region_installs = installs
            self._hfi_undo = None
        hfi._journal = None
        self.rollbacks += 1
        if self.probe is not None:
            self.probe.on_rollback(cpu)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> SpeculationJournalStats:
        """Uniform component-stats snapshot (``repro.telemetry``)."""
        return SpeculationJournalStats(
            component="journal", windows=self.windows,
            rollbacks=self.rollbacks, reg_entries=self.reg_entries,
            hfi_snapshots=self.hfi_snapshots)
