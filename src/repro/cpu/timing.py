"""The timing seam: every cycle charged by the exec layer flows here.

The staged engine keeps instruction *semantics* (the ``exec_*``
modules) separate from instruction *cost* so the two can evolve
independently — the gem5 split between functional and timing models.
A future fast-functional mode swaps this object for one whose charge
methods are no-ops while leaving the handlers untouched.

Three charging disciplines exist in the machine model and each has a
named method, because mixing them up is exactly the kind of silent
timing drift the golden-cycle fixture exists to catch:

* :meth:`charge` — commit-only cost.  Squashed with the wrong path
  (ALU latencies, transition costs, mispredict penalties).
* :meth:`charge_always` — paid even speculatively (``rdtsc`` reads the
  real cycle counter on the wrong path too).
* :meth:`mem_access` — the subtle one: TLB and data-cache *side
  effects* always happen (that persistence is the Spectre channel),
  but their latency is charged at commit only.

``fetch`` is the bound i-side access used by both the commit loop and
the speculation loop; fetch latency policy lives in the callers (the
commit loop charges it, the wrong path does not).
"""

from __future__ import annotations

from typing import Optional


class TimingModel:
    """Cycle accounting for one core, bound to its stats block."""

    __slots__ = ("cpu", "stats", "params", "fetch", "_tlb", "_dcache",
                 "_l1d", "_tlb_obj", "_page_bytes")

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        self.stats = cpu.stats          # never rebound after Cpu.__init__
        self.params = cpu.params
        #: i-side access (cache side effects + returned latency).
        self.fetch = cpu.caches.fetch_access
        self._tlb = cpu.tlb.access
        self._tlb_obj = cpu.tlb
        self._page_bytes = cpu.params.page_bytes
        self._dcache = cpu.caches.data_access
        self._l1d = cpu.caches.l1d

    def charge(self, cycles: int) -> None:
        """Commit-only cost: squashed along with the wrong path."""
        if not self.cpu._speculative:
            self.stats.cycles += cycles

    def charge_always(self, cycles: int) -> None:
        """Cost paid even on the wrong path."""
        self.stats.cycles += cycles

    def mem_access(self, ea: int) -> None:
        """One data-side access: fills always, latency at commit only."""
        # dTLB hit fast path, inlined; misses take the full LRU+evict
        # path in Tlb.access.
        tlb = self._tlb_obj
        pages = tlb._pages
        page = ea // self._page_bytes
        if page in pages:
            del pages[page]
            pages[page] = True
            tlb._hits += 1
            tlb_cost = 0
        else:
            tlb_cost = self._tlb(ea)
        # l1d hit fast path, inlined (runs on every load and store);
        # misses fall back to the full hierarchy walk.
        l1d = self._l1d
        line = ea // l1d.line_bytes
        n_sets = l1d.n_sets
        ways = l1d._sets[line % n_sets]
        tag = line // n_sets
        if tag in ways:
            del ways[tag]
            ways[tag] = True
            l1d._hits += 1
            cache_cost = self.params.l1d_hit_cycles
        else:
            cache_cost = self._dcache(ea)
        if not self.cpu._speculative:
            self.stats.cycles += tlb_cost + cache_cost

    def mispredict(self) -> None:
        """Pipeline flush on a resolved misprediction (commit path)."""
        self.stats.cycles += self.params.branch_mispredict_penalty

    def serialize_drain(self, cost: Optional[int] = None) -> None:
        """Full (or partial, for ``lfence``) pipeline drain at commit."""
        self.stats.cycles += (cost if cost is not None
                              else self.params.serialize_drain_cycles)
        self.stats.serializations += 1
