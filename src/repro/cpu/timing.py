"""The timing seam: every cycle charged by the exec layer flows here.

The staged engine keeps instruction *semantics* (the ``exec_*``
modules) separate from instruction *cost* so the two can evolve
independently — the gem5 split between functional and timing models.
Timing is a pluggable axis, exactly like the execution-engine axis in
:mod:`.machine`: a :class:`TimingBackend` is selected per-``Cpu`` via
``Cpu(timing=...)`` and process-wide via :func:`set_default_timing` /
:func:`default_timing`.  Two conforming backends ship:

* ``inorder`` (:class:`InOrderTiming`, the fast default) — the charge
  stream is accumulated directly into ``stats.cycles`` as each
  instruction commits, and the commit loop adds fetch+base cost inline
  (``inline_commit`` is True).
* ``ooo`` (:class:`repro.cpu.ooo.OutOfOrderTiming`) — a scoreboarded
  out-of-order model (register renaming, issue queue, ROB with
  in-order retirement, LSQ) driven by the same commit stream through
  the :meth:`~TimingBackend.issue` / :meth:`~TimingBackend.retire`
  hooks.  Architectural state is bit-identical to ``inorder`` (the
  verify matrix sweeps both); only ``stats.cycles`` differs.

Three charging disciplines exist in the machine model and each has a
named method, because mixing them up is exactly the kind of silent
timing drift the golden-cycle fixture exists to catch:

* :meth:`~TimingBackend.charge` — commit-only cost.  Squashed with the
  wrong path (ALU latencies, transition costs, mispredict penalties).
* :meth:`~TimingBackend.charge_always` — paid even speculatively
  (``rdtsc`` reads the real cycle counter on the wrong path too).
* :meth:`~TimingBackend.mem_access` — the subtle one: TLB and
  data-cache *side effects* always happen (that persistence is the
  Spectre channel), but their latency is charged at commit only.

``fetch`` is the bound i-side access used by both the commit loop and
the speculation loop; fetch latency policy lives in the callers (the
commit loop charges it, the wrong path does not).
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Protocol, runtime_checkable

#: Timing backends accepted by ``Cpu(timing=...)`` and ``--timing``.
TIMING_MODELS = ("inorder", "ooo")

#: Process-wide default, changed with :func:`set_default_timing`.
DEFAULT_TIMING = "inorder"


def _validate_timing(name: str) -> str:
    if name not in TIMING_MODELS:
        raise ValueError(
            f"unknown timing model {name!r}; expected one of "
            f"{', '.join(TIMING_MODELS)}")
    return name


def set_default_timing(name: str) -> str:
    """Set the process-wide default timing model; returns the old one."""
    global DEFAULT_TIMING
    previous = DEFAULT_TIMING
    DEFAULT_TIMING = _validate_timing(name)
    return previous


@contextlib.contextmanager
def default_timing(name: str) -> Iterator[str]:
    """Scope the process-wide default timing model to a ``with`` block."""
    previous = set_default_timing(name)
    try:
        yield DEFAULT_TIMING
    finally:
        set_default_timing(previous)


def create_timing(name: Optional[str], cpu) -> "TimingBackend":
    """Instantiate the named timing backend bound to ``cpu``."""
    resolved = _validate_timing(name if name is not None else DEFAULT_TIMING)
    if resolved == "ooo":
        from .ooo import OutOfOrderTiming   # deferred: ooo imports isa
        return OutOfOrderTiming(cpu)
    return InOrderTiming(cpu)


@runtime_checkable
class TimingBackend(Protocol):
    """The contract every timing model satisfies.

    The exec layer only ever talks to these members; the commit loop
    in :meth:`Cpu._run` additionally consults :attr:`inline_commit` to
    decide whether to add fetch+base cycles itself (the in-order fast
    path) or to hand each instruction to :meth:`issue` / :meth:`retire`.
    """

    #: Registry name ("inorder", "ooo", ...).
    name: str
    #: True if the commit loop may add fetch+base cost inline and skip
    #: the per-instruction issue/retire protocol.
    inline_commit: bool

    def charge(self, cycles: int) -> None: ...
    def charge_always(self, cycles: int) -> None: ...
    def mem_access(self, ea: int) -> None: ...
    def hmov_check(self, extra: int) -> None: ...
    def mispredict(self) -> None: ...
    def serialize_drain(self, cost: Optional[int] = None,
                        count: bool = True) -> None: ...
    def issue(self, dop, fetch_cycles: int) -> None: ...
    def retire(self, dop) -> None: ...
    def drain_pending(self) -> None: ...
    def audit(self) -> List[str]: ...


class InOrderTiming:
    """Cycle accounting for one in-order core, bound to its stats block.

    This is the conforming fast default: every charge lands directly in
    ``stats.cycles`` at the call site, the commit loop adds fetch+base
    cost inline (``inline_commit``), and the issue/retire/drain hooks
    are no-ops.
    """

    name = "inorder"
    inline_commit = True

    __slots__ = ("cpu", "stats", "params", "fetch", "_tlb", "_dcache",
                 "_l1d", "_tlb_obj", "_page_bytes")

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        self.stats = cpu.stats          # never rebound after Cpu.__init__
        self.params = cpu.params
        #: i-side access (cache side effects + returned latency).
        self.fetch = cpu.caches.fetch_access
        self._tlb = cpu.tlb.access
        self._tlb_obj = cpu.tlb
        self._page_bytes = cpu.params.page_bytes
        self._dcache = cpu.caches.data_access
        self._l1d = cpu.caches.l1d

    def charge(self, cycles: int) -> None:
        """Commit-only cost: squashed along with the wrong path."""
        if not self.cpu._speculative:
            self.stats.cycles += cycles

    def charge_always(self, cycles: int) -> None:
        """Cost paid even on the wrong path."""
        self.stats.cycles += cycles

    def _side_effects(self, ea: int) -> int:
        """dTLB + L1D fills for one data access; returns the latency.

        The side effects (LRU refresh, fills, hit counters) always
        happen — that persistence is the Spectre channel — while the
        caller decides what to do with the returned latency.
        """
        # dTLB hit fast path, inlined; misses take the full LRU+evict
        # path in Tlb.access.
        tlb = self._tlb_obj
        pages = tlb._pages
        page = ea // self._page_bytes
        if page in pages:
            del pages[page]
            pages[page] = True
            tlb._hits += 1
            tlb_cost = 0
        else:
            tlb_cost = self._tlb(ea)
        # l1d hit fast path, inlined (runs on every load and store);
        # misses fall back to the full hierarchy walk.
        l1d = self._l1d
        line = ea // l1d.line_bytes
        n_sets = l1d.n_sets
        ways = l1d._sets[line % n_sets]
        tag = line // n_sets
        if tag in ways:
            del ways[tag]
            ways[tag] = True
            l1d._hits += 1
            return tlb_cost + self.params.l1d_hit_cycles
        return tlb_cost + self._dcache(ea)

    def mem_access(self, ea: int) -> None:
        """One data-side access: fills always, latency at commit only."""
        cost = self._side_effects(ea)
        if not self.cpu._speculative:
            self.stats.cycles += cost

    def hmov_check(self, extra: int) -> None:
        """The hmov bounds check.  In-order it is a serial charge; the
        OoO model overlaps it with the access's own translation."""
        if not self.cpu._speculative:
            self.stats.cycles += extra

    def mispredict(self) -> None:
        """Pipeline flush on a resolved misprediction (commit path)."""
        self.stats.cycles += self.params.branch_mispredict_penalty

    def serialize_drain(self, cost: Optional[int] = None,
                        count: bool = True) -> None:
        """Full (or partial, for ``lfence``) pipeline drain at commit.

        ``count=False`` charges the drain cost without bumping
        ``stats.serializations`` — for sites (hfi exit, syscall) whose
        lifecycle counters are tracked elsewhere.
        """
        self.stats.cycles += (cost if cost is not None
                              else self.params.serialize_drain_cycles)
        if count:
            self.stats.serializations += 1

    # -- issue/retire protocol: no-ops for the inline in-order model --

    def issue(self, dop, fetch_cycles: int) -> None:
        """Generic (non-inline) entry: fetch + base cost up front."""
        self.stats.cycles += fetch_cycles + self.params.base_cycles

    def retire(self, dop) -> None:
        return None

    def drain_pending(self) -> None:
        return None

    def audit(self) -> List[str]:
        return []


#: Backwards-compatible alias — PR-2 .. PR-8 code and docs refer to the
#: in-order model by its original name.
TimingModel = InOrderTiming
