"""The cycle-level CPU simulator — this reproduction's gem5 analogue.

One in-order commit stream with a bounded wrong-path speculation window
(paper Table 2's ROB becomes :attr:`MachineParams.speculation_window`).
The model keeps exactly the properties the paper's evaluation rests on:

* **Timing**: per-instruction base cost plus cache/TLB latencies,
  branch-misprediction penalties, pipeline-drain costs for serializing
  instructions (``cpuid``, serialized ``hfi_enter``/``hfi_exit``), and
  syscall ring-transition costs.
* **Speculation**: on a mispredicted branch (PHT), indirect jump (BTB),
  or return (RSB), the *wrong* path executes for up to the speculation
  window with register writes and stores sandboxed in shadow state —
  but cache fills persist, which is the Spectre channel.
* **HFI hooks**: when HFI mode is on, every fetch is prefix-checked
  before decode, every load/store is checked before any cache or TLB
  update (speculative or not), ``hmov`` resolves through explicit
  regions, and syscalls in native sandboxes become jumps to the exit
  handler (§4).

Since the staged-engine refactor this module holds only the pipeline
*skeleton*: the commit loop, the speculation window, fault delivery,
and the data-memory path.  Instruction semantics live in the exec
units (:mod:`.exec_alu`, :mod:`.exec_mem`, :mod:`.exec_control`,
:mod:`.exec_system`, :mod:`.exec_hfi`), reached through predecoded
handlers (:mod:`.decode`); cycle charging flows through the timing
seam (:mod:`.timing`); and wrong-path squash is an undo log
(:mod:`.journal`) rather than a deepcopy snapshot.
"""

from __future__ import annotations

import contextlib

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Tuple, runtime_checkable

from ..core.checks import implicit_code_check
from ..core.faults import FaultCause, HfiFault
from ..core.regions import RegionError
from ..core.state import HfiState
from ..isa.instruction import Instruction, Program
from ..isa.operands import Imm, Mem
from ..isa.registers import MASK64, Reg, RegisterFile
from ..os.address_space import AccessKind, AddressSpace, PageFault
from ..os.kernel import Kernel
from ..os.process import Process
from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.sink import Telemetry, coalesce
from ..telemetry.stats import DecodeCacheStats
from .blocks import BlockCache
from .cache import CacheHierarchy
from .decode import CodeMap, DecodedOp, _StopSpeculation, decode_one, \
    decode_program
from .journal import SpeculationJournal
from .predictors import BranchTargetBuffer, PatternHistoryTable, ReturnStackBuffer
from . import timing as timing_seam
from .timing import (  # noqa: F401  (re-exported: the timing axis mirrors
    TIMING_MODELS,     # the engine axis for CLI/verify convenience)
    TimingBackend,
    TimingModel,
    create_timing,
    default_timing,
    set_default_timing,
    _validate_timing,
)
from .tlb import Tlb

_READ = AccessKind.READ
_WRITE = AccessKind.WRITE

# Importing the exec units populates the decode.DECODERS table.
from . import exec_alu     # noqa: F401  (registers ALU handlers)
from . import exec_control  # noqa: F401  (registers branch handlers)
from . import exec_hfi     # noqa: F401  (registers HFI handlers)
from . import exec_mem     # noqa: F401  (registers data-movement handlers)
from . import exec_system  # noqa: F401  (registers system handlers)


@dataclass
class CpuStats:
    """Counters accumulated over a run."""

    instructions: int = 0
    cycles: int = 0
    branches: int = 0
    mispredicts: int = 0
    speculative_instructions: int = 0
    loads: int = 0
    stores: int = 0
    syscalls: int = 0
    interposed_syscalls: int = 0
    hfi_faults: int = 0
    page_faults: int = 0
    serializations: int = 0


@dataclass
class FaultInfo:
    """What went wrong when a run stops with reason='fault'."""

    kind: str                    # "hfi" or "page"
    addr: int = 0
    hfi_cause: FaultCause = FaultCause.NONE
    detail: str = ""


@dataclass
class RunResult:
    reason: str                  # "hlt" | "fault" | "instruction_limit" |
                                 # "no_instruction"
    stats: CpuStats
    fault: Optional[FaultInfo] = None
    rip: int = 0

    @property
    def cycles(self) -> int:
        return self.stats.cycles


@runtime_checkable
class ExecutionBackend(Protocol):
    """What every execution engine must provide.

    Three conforming backends ship today, all selected through
    ``Cpu(engine=...)`` (or the ``--engine`` CLI flag):

    * ``"staged"`` — the per-instruction commit loop over predecoded
      :class:`~repro.cpu.decode.DecodedOp` closures (the default);
    * ``"blocks"`` — the staged loop plus superblock compilation of
      basic blocks (:mod:`repro.cpu.blocks`);
    * ``"reference"`` — the deliberately naive differential oracle
      (:class:`repro.verify.reference.ReferenceCpu`).

    A backend must expose the architectural surface the verify layer
    digests (``regs``, ``hfi``, ``mem``, ``stats``) and the program
    lifecycle below.  Timing parity beyond the architectural contract
    is *not* required of every backend (the reference oracle charges a
    simplified cost model); ``staged`` and ``blocks`` are additionally
    held bit-identical by the golden-cycle fixture.
    """

    engine: str

    def load_program(self, program: Program) -> None: ...

    def run(self, entry: int, max_instructions: int = ...) -> RunResult: ...

    def attach_telemetry(self, telemetry: Optional[Telemetry]) -> None: ...


#: Engines selectable via ``Cpu(engine=...)`` / ``--engine``.
ENGINES = ("staged", "blocks", "reference")

#: Process-wide default, used when ``engine`` is not passed explicitly.
#: The CLI/golden runner thread their ``--engine`` flag through
#: :func:`default_engine` so deeply nested construction sites (wasm
#: runtime, workloads, attacks) pick it up without plumbing.
DEFAULT_ENGINE = "staged"


def _validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


def set_default_engine(engine: str) -> str:
    """Set the process-wide default engine; returns the previous one."""
    global DEFAULT_ENGINE
    previous = DEFAULT_ENGINE
    DEFAULT_ENGINE = _validate_engine(engine)
    return previous


@contextlib.contextmanager
def default_engine(engine: str):
    """Scope the process-wide default engine to a ``with`` block."""
    previous = set_default_engine(engine)
    try:
        yield
    finally:
        set_default_engine(previous)


def create_backend(engine: Optional[str] = None,
                   timing: Optional[str] = None,
                   **kwargs) -> "ExecutionBackend":
    """Construct a conforming backend by name (the verify-layer seam).

    ``engine`` picks the execution backend, ``timing`` the timing
    backend (:data:`repro.cpu.timing.TIMING_MODELS`); both default to
    the process-wide settings.
    """
    return Cpu(engine=engine, timing=timing, **kwargs)


class Cpu:
    """A single simulated core."""

    def __new__(cls, params: MachineParams = DEFAULT_PARAMS,
                memory: Optional[AddressSpace] = None,
                process: Optional[Process] = None,
                kernel: Optional[Kernel] = None,
                telemetry: Optional[Telemetry] = None,
                engine: Optional[str] = None,
                timing: Optional[str] = None):
        # ``Cpu(engine="reference")`` hands back the differential
        # oracle so every construction site gets engine selection for
        # free.  ReferenceCpu is not a Cpu subclass (it shares only the
        # ExecutionBackend surface), so ``__init__`` below is skipped.
        resolved = _validate_engine(engine or DEFAULT_ENGINE)
        if resolved == "reference" and cls is Cpu:
            from ..verify.reference import ReferenceCpu
            return ReferenceCpu(params=params, memory=memory,
                                process=process, kernel=kernel,
                                telemetry=telemetry, timing=timing)
        return super().__new__(cls)

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 memory: Optional[AddressSpace] = None,
                 process: Optional[Process] = None,
                 kernel: Optional[Kernel] = None,
                 telemetry: Optional[Telemetry] = None,
                 engine: Optional[str] = None,
                 timing: Optional[str] = None):
        self.engine = _validate_engine(engine or DEFAULT_ENGINE)
        self.timing_model = _validate_timing(
            timing if timing is not None else timing_seam.DEFAULT_TIMING)
        self.params = params
        if process is not None:
            self.mem = process.address_space
        else:
            self.mem = memory if memory is not None else AddressSpace(params)
        self.process = process
        self.kernel = kernel
        self.regs = RegisterFile()
        self.hfi = HfiState(params)
        if process is not None:
            process.hfi_state = self.hfi
        self.caches = CacheHierarchy(params)
        self.tlb = Tlb(params)
        self.pht = PatternHistoryTable()
        self.btb = BranchTargetBuffer()
        self.rsb = ReturnStackBuffer()
        self.stats = CpuStats()
        #: Ready-to-run predecoded ops, keyed by mapped address.
        self._decoded: Dict[int, DecodedOp] = {}
        #: Superblock cache (``blocks`` engine only); CodeMap routes
        #: code-write invalidations through it so compiled blocks stay
        #: coherent with self-modifying code.  Compiled blocks bake the
        #: in-order accounting into generated source, so a non-inline
        #: timing backend degrades ``blocks`` to the staged loop
        #: (architectural behavior is identical either way).
        self._blocks = (BlockCache(self)
                        if self.engine == "blocks"
                        and self.timing_model == "inorder" else None)
        #: Raw instruction map; writes invalidate ``_decoded`` entries.
        self._code: Dict[int, Instruction] = CodeMap(self._decoded,
                                                    blocks=self._blocks)
        self._predecoded = 0
        self._lazy_decodes = 0
        #: Superblock execution bookkeeping: ``_in_block`` guards the
        #: speculation journal (windows must never open inside a
        #: compiled block); ``_block_retired`` reports how many of a
        #: block's instructions committed (exact even on a mid-block
        #: fault) so the run budget stays instruction-accurate.
        self._in_block = False
        self._block_retired = 0
        #: The timing seam — all cycle charging by the exec layer.
        self.timing = create_timing(self.timing_model, self)
        #: Undo log for wrong-path squash (no deepcopy anywhere).
        self._journal = SpeculationJournal()
        self._speculative = False
        self._store_buffer: Dict[int, int] = {}
        self._xsave_areas: Dict[int, Tuple[RegisterFile, object, int]] = {}
        self._halted = False
        self._fault: Optional[FaultInfo] = None
        #: If set, committed faults redirect here instead of halting
        #: (models a runtime whose SIGSEGV handler resumes execution).
        self.fault_resume_address: Optional[int] = None
        #: Optional committed/speculative instruction tracer.
        self.tracer = None
        #: MPK enforcement happens only when a process is attached.
        self.enforce_pkeys = process is not None
        #: Telemetry sink (defaults to the shared no-op null sink).
        self.telemetry = coalesce(None)
        self.attach_telemetry(telemetry)

    def attach_telemetry(self, telemetry: Optional[Telemetry]) -> None:
        """Point this core at a sink and register its component stats.

        Telemetry only *reads* simulator state — cycle accounting is
        identical whether the sink is real or the default null sink.
        """
        self.telemetry = coalesce(telemetry)
        if self.telemetry.enabled:
            for name, fn in (("l1d", self.caches.l1d.stats),
                             ("l1i", self.caches.l1i.stats),
                             ("l2", self.caches.l2.stats),
                             ("dtlb", self.tlb.stats),
                             ("pht", self.pht.stats),
                             ("btb", self.btb.stats),
                             ("rsb", self.rsb.stats),
                             ("decode", self.decode_stats),
                             ("journal", self._journal.stats)):
                self.telemetry.register_component(name, fn)
            if self._blocks is not None:
                self.telemetry.register_component("blocks",
                                                  self._blocks.stats)
            if self.timing_model == "ooo":
                self.telemetry.register_component("ooo",
                                                  self.timing.ooo_stats)

    def install_invariant_probe(self, probe) -> None:
        """Arm a sanitizer probe on the speculation journal.

        The probe (see :mod:`repro.verify.invariants`) is notified at
        window open and after squash so it can assert that rollback
        preserves object identity of ``cpu.regs``/``cpu.hfi``/
        ``process.hfi_state``.  Pass ``None`` to disarm.
        """
        self._journal.probe = probe

    def decode_stats(self) -> DecodeCacheStats:
        """Predecode-cache counters (``repro.telemetry`` surface)."""
        executed = (self.stats.instructions
                    + self.stats.speculative_instructions)
        return DecodeCacheStats(
            component="decode", predecoded=self._predecoded,
            lazy_decodes=self._lazy_decodes,
            invalidations=self._code.invalidations,
            cached_ops=len(self._decoded), executed=executed)

    # ------------------------------------------------------------------
    # program loading
    # ------------------------------------------------------------------
    def load_program(self, program: Program) -> None:
        """Map a program's instructions at their laid-out addresses.

        The program is predecoded once (cached on the Program object),
        so repeated loads — and multiple cores sharing a program —
        reuse the same DecodedOps.
        """
        decoded = decode_program(program)
        for ins in program.instructions:
            self._code[ins.addr] = ins
        self._decoded.update(decoded)
        self._predecoded += len(decoded)

    def _decode_at(self, pc: int) -> Optional[DecodedOp]:
        """Lazy decode for instructions patched in via ``_code``."""
        ins = self._code.get(pc)
        if ins is None:
            return None
        dop = decode_one(ins, pc)
        self._decoded[pc] = dop
        self._lazy_decodes += 1
        return dop

    # ------------------------------------------------------------------
    # top-level run loop
    # ------------------------------------------------------------------
    def run(self, entry: int, max_instructions: int = 5_000_000) -> RunResult:
        self.telemetry.begin_span("cpu.run", self.stats.cycles, entry=entry)
        result = self._run(entry, max_instructions)
        self.telemetry.end_span(self.stats.cycles, name="cpu.run",
                                reason=result.reason,
                                instructions=self.stats.instructions)
        return result

    def _run(self, entry: int, max_instructions: int) -> RunResult:
        self.regs.rip = entry
        self._halted = False
        self._fault = None
        executed = 0
        # Hot-loop bindings: none of these objects are ever rebound on
        # a live core (regs/hfi identity is stable since the journal
        # replaced snapshot-swap speculation).
        regs = self.regs
        stats = self.stats
        decoded = self._decoded
        timing = self.timing
        fetch = timing.fetch
        #: Inline timing backends (in-order) let this loop add
        #: fetch+base cost directly; scoreboarded backends take every
        #: committed instruction through issue/retire instead.
        inline = timing.inline_commit
        hfi_regs = self.hfi.regs
        tracer = self.tracer
        base_cycles = self.params.base_cycles
        # l1i hit fast path, inlined (the one cache probe made on every
        # single instruction); misses fall back to the full hierarchy.
        l1i = self.caches.l1i
        l1i_sets = l1i._sets
        l1i_line = l1i.line_bytes
        l1i_nsets = l1i.n_sets
        l1i_hit_cycles = self.params.l1i_hit_cycles
        # Superblock dispatch (blocks engine only).  A tracer forces
        # single-step for the whole run: per-instruction trace records
        # must interleave with commits exactly.
        blocks = self._blocks
        btable = (blocks.table
                  if blocks is not None and tracer is None else None)
        while executed < max_instructions:
            if self._halted:
                return RunResult("hlt", stats, rip=regs.rip)
            if self._fault is not None:
                fault, self._fault = self._fault, None
                if self.fault_resume_address is not None:
                    regs.rip = self.fault_resume_address
                    continue
                return RunResult("fault", stats, fault=fault, rip=regs.rip)
            pc = regs.rip
            if btable is not None:
                blk = btable.get(pc, False)
                if blk is False:
                    blk = blocks.compile_at(pc)
                if blk is not None:
                    # A block runs whole or not at all: it must fit the
                    # remaining budget, and (when HFI is on) a single
                    # code region must cover every pc so the per-fetch
                    # check can hoist.  Otherwise single-step below
                    # reproduces the exact per-instruction semantics.
                    if (executed + blk.n <= max_instructions
                            and (not hfi_regs.enabled
                                 or blk.covered(hfi_regs.code))):
                        try:
                            blk.run(self)
                        except HfiFault as fault:
                            self._raise_fault(fault)
                        except PageFault as fault:
                            self._raise_page_fault(fault)
                        except RegionError as err:
                            self._raise_fault(HfiFault(
                                FaultCause.HARDWARE_TRAP, detail=str(err)))
                        executed += self._block_retired
                        blocks.executions += 1
                        blocks.block_instructions += self._block_retired
                        continue
                    blocks.fallbacks += 1
            # HFI code-region check happens at decode, before execution
            # and before any micro-op enters the pipeline (§4.1).
            # (``hfi_regs.code`` is re-read per fetch: enter/restore
            # rebind the list.)
            if hfi_regs.enabled:
                try:
                    implicit_code_check(hfi_regs.code, pc)
                except HfiFault as fault:
                    self._raise_fault(fault)
                    executed += 1
                    continue
            line = pc // l1i_line
            ways = l1i_sets[line % l1i_nsets]
            tag = line // l1i_nsets
            if tag in ways:
                del ways[tag]
                ways[tag] = True
                l1i._hits += 1
                fetch_cycles = l1i_hit_cycles
            else:
                fetch_cycles = fetch(pc)
            dop = decoded.get(pc)
            if dop is None:
                dop = self._decode_at(pc)
                if dop is None:
                    if not inline:
                        timing.drain_pending()
                    stats.cycles += fetch_cycles
                    return RunResult("no_instruction", stats, rip=pc)
            stats.instructions += 1
            if inline:
                stats.cycles += fetch_cycles + base_cycles
            else:
                timing.issue(dop, fetch_cycles)
            if tracer is not None:
                tracer.record(pc, dop.ins, hfi_regs.enabled)
            try:
                dop.run(self)
            except HfiFault as fault:
                self._raise_fault(fault)
            except PageFault as fault:
                self._raise_page_fault(fault)
            except RegionError as err:
                self._raise_fault(HfiFault(FaultCause.HARDWARE_TRAP,
                                           detail=str(err)))
            else:
                if not inline:
                    timing.retire(dop)
            executed += 1
        # The budget ran out with the last instruction's outcome still
        # pending — resolve it instead of silently dropping it (a halt
        # is a halt, and a fault must not vanish into a limit result).
        if self._halted:
            return RunResult("hlt", stats, rip=regs.rip)
        if self._fault is not None:
            fault, self._fault = self._fault, None
            if self.fault_resume_address is not None:
                regs.rip = self.fault_resume_address
                return RunResult("instruction_limit", stats, rip=regs.rip)
            return RunResult("fault", stats, fault=fault, rip=regs.rip)
        return RunResult("instruction_limit", stats, rip=regs.rip)

    # ------------------------------------------------------------------
    # fault delivery
    # ------------------------------------------------------------------
    def _raise_fault(self, fault: HfiFault) -> None:
        """An HFI violation at commit: disable sandbox, set MSR, SIGSEGV."""
        # Precise exception: the faulting instruction and everything
        # younger is flushed, the window drains before delivery.
        self.timing.drain_pending()
        self.stats.hfi_faults += 1
        if self.hfi.enabled:
            outcome = self.hfi.fault(fault.cause, fault.addr)
            self.stats.cycles += outcome.cycles
        else:
            self.hfi.regs.cause_msr = fault.cause
        if self.telemetry.enabled:
            self.telemetry.count("cpu.hfi_fault")
            self.telemetry.event("hfi.fault", self.stats.cycles,
                                 cause=fault.cause.name, addr=fault.addr)
            self.telemetry.end_span(self.stats.cycles, name="hfi.sandbox",
                                    reason="fault")
        self._deliver_segv(fault.addr, int(fault.cause), str(fault))
        self._fault = FaultInfo("hfi", fault.addr, fault.cause, fault.detail)

    def _raise_page_fault(self, fault: PageFault) -> None:
        self.timing.drain_pending()
        self.stats.page_faults += 1
        if self.hfi.enabled:
            outcome = self.hfi.fault(FaultCause.HARDWARE_TRAP, fault.addr)
            self.stats.cycles += outcome.cycles
            if self.telemetry.enabled:
                self.telemetry.end_span(self.stats.cycles,
                                        name="hfi.sandbox", reason="fault")
        if self.telemetry.enabled:
            self.telemetry.count("cpu.page_fault")
        self._deliver_segv(fault.addr, 0, str(fault))
        self._fault = FaultInfo("page", fault.addr, FaultCause.NONE,
                                fault.reason)

    def _deliver_segv(self, addr: int, hfi_cause: int, detail: str) -> None:
        if self.kernel is not None and self.process is not None:
            self.stats.cycles += self.kernel.deliver_segv(
                self.process, addr, hfi_cause, detail)

    # ------------------------------------------------------------------
    # speculation
    # ------------------------------------------------------------------
    def _speculate(self, wrong_path: int) -> None:
        """Run the mispredicted path in shadow state, then squash.

        Register writes and stores are discarded (via the undo journal
        and the store buffer); cache and TLB fills are not — faithfully
        creating (and letting HFI close) the Spectre channel.
        """
        journal = self._journal
        journal.open(self)
        self._speculative = True
        self._store_buffer = {}
        regs = self.regs
        stats = self.stats
        decoded = self._decoded
        fetch = self.timing.fetch
        hfi_regs = self.hfi.regs
        check_fetch = self.hfi.check_code_fetch
        tracer = self.tracer
        regs.rip = wrong_path
        try:
            for _ in range(self.params.speculation_window):
                pc = regs.rip
                if hfi_regs.enabled:
                    try:
                        check_fetch(pc)
                    except HfiFault:
                        # decode turns the micro-ops into a faulting
                        # NOP; nothing out-of-bounds executes (§4.1).
                        break
                fetch(pc)
                dop = decoded.get(pc)
                if dop is None:
                    dop = self._decode_at(pc)
                    if dop is None:
                        break
                stats.speculative_instructions += 1
                if tracer is not None:
                    tracer.record(pc, dop.ins, hfi_regs.enabled,
                                  speculative=True)
                try:
                    dop.run(self)
                except (HfiFault, PageFault, RegionError):
                    break  # squashed fault: no architectural effect
        except _StopSpeculation:
            pass
        finally:
            self._speculative = False
            self._store_buffer = {}
            journal.rollback(self)

    # ------------------------------------------------------------------
    # memory path
    # ------------------------------------------------------------------
    def _effective_address(self, mem: Mem) -> int:
        ea = mem.disp
        if mem.base is not None:
            ea += self.regs.read(mem.base)
        if mem.index is not None:
            ea += self.regs.read(mem.index) * mem.scale
        return ea & MASK64

    def _charge_mem(self, ea: int) -> None:
        self.timing.mem_access(ea)

    def _check_pkey(self, ea: int, size: int, kind: AccessKind):
        vma = self.mem.check_access(ea, size, kind)
        if (self.enforce_pkeys and self.process is not None
                and self.process.pkru and vma.pkey):
            bits = (self.process.pkru >> (2 * vma.pkey)) & 0b11
            if bits & 0b01 or (kind is AccessKind.WRITE and bits & 0b10):
                raise PageFault(ea, kind, f"pkey {vma.pkey} denied")
        return vma

    def _load_ea(self, ea: int, size: int) -> int:
        """Data load at a resolved (and HFI-checked) address."""
        # _check_pkey, inlined (once per load): the common case is no
        # pkey restriction on the touched VMA.
        vma = self.mem.check_access(ea, size, _READ)
        if self.enforce_pkeys and vma.pkey:
            process = self.process
            if process is not None and process.pkru:
                bits = (process.pkru >> (2 * vma.pkey)) & 0b11
                if bits & 0b01:
                    raise PageFault(ea, _READ, f"pkey {vma.pkey} denied")
        self.timing.mem_access(ea)
        self.stats.loads += 1
        value = self.mem.read(ea, size, check=False)
        if self._speculative and self._store_buffer:
            data = bytearray(value.to_bytes(size, "little"))
            buffer = self._store_buffer
            for i in range(size):
                buffered = buffer.get(ea + i)
                if buffered is not None:
                    data[i] = buffered
            value = int.from_bytes(bytes(data), "little")
        return value

    def _store_ea(self, ea: int, size: int, value: int) -> None:
        """Data store at a resolved (and HFI-checked) address."""
        vma = self.mem.check_access(ea, size, _WRITE)
        if self.enforce_pkeys and vma.pkey:
            process = self.process
            if process is not None and process.pkru:
                bits = (process.pkru >> (2 * vma.pkey)) & 0b11
                if bits & 0b11:
                    raise PageFault(ea, _WRITE,
                                    f"pkey {vma.pkey} denied")
        self.timing.mem_access(ea)
        self.stats.stores += 1
        if self._speculative:
            data = (value & ((1 << (8 * size)) - 1)).to_bytes(
                size, "little")
            buffer = self._store_buffer
            for i, byte in enumerate(data):
                buffer[ea + i] = byte
        else:
            self.mem.write(ea, value, size, check=False)

    def _wreg(self, reg: Reg, value: int) -> None:
        """Journaled GPR write — the exec layer's only register-write
        path besides the decode-time writer closures."""
        if self._speculative:
            self._journal.entries.append((reg, self.regs.regs[reg]))
        self.regs.regs[reg] = value & MASK64

    # Operand-level compat wrappers (the exec layer uses decode-time
    # accessor closures instead; these remain for external callers).
    def _load(self, mem: Mem, hmov_region: Optional[int] = None) -> int:
        if hmov_region is not None:
            index_val = (self.regs.read(mem.index)
                         if mem.index is not None else 0)
            ea = self.hfi.hmov_address(hmov_region, index_val, mem.scale,
                                       mem.disp, mem.size, is_write=False)
        else:
            ea = self._effective_address(mem)
            self.hfi.check_data_access(ea, mem.size, is_write=False)
        return self._load_ea(ea, mem.size)

    def _store(self, mem: Mem, value: int,
               hmov_region: Optional[int] = None) -> None:
        if hmov_region is not None:
            index_val = (self.regs.read(mem.index)
                         if mem.index is not None else 0)
            ea = self.hfi.hmov_address(hmov_region, index_val, mem.scale,
                                       mem.disp, mem.size, is_write=True)
        else:
            ea = self._effective_address(mem)
            self.hfi.check_data_access(ea, mem.size, is_write=True)
        self._store_ea(ea, mem.size, value)

    def _read_operand(self, op, hmov_region: Optional[int] = None) -> int:
        if isinstance(op, Reg):
            return self.regs.read(op)
        if isinstance(op, Imm):
            return op.value & MASK64
        if isinstance(op, Mem):
            return self._load(op, hmov_region)
        raise TypeError(f"unreadable operand {op!r}")

    def _write_operand(self, op, value: int,
                       hmov_region: Optional[int] = None) -> None:
        if isinstance(op, Reg):
            self.regs.write(op, value)
        elif isinstance(op, Mem):
            self._store(op, value, hmov_region)
        else:
            raise TypeError(f"unwritable operand {op!r}")

    def _dispatch(self, ins: Instruction, pc: int) -> None:
        """Compat shim: decode (cached) and execute one instruction."""
        decode_one(ins, pc).run(self)
