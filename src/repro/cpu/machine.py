"""The cycle-level CPU simulator — this reproduction's gem5 analogue.

One in-order commit stream with a bounded wrong-path speculation window
(paper Table 2's ROB becomes :attr:`MachineParams.speculation_window`).
The model keeps exactly the properties the paper's evaluation rests on:

* **Timing**: per-instruction base cost plus cache/TLB latencies,
  branch-misprediction penalties, pipeline-drain costs for serializing
  instructions (``cpuid``, serialized ``hfi_enter``/``hfi_exit``), and
  syscall ring-transition costs.
* **Speculation**: on a mispredicted branch (PHT), indirect jump (BTB),
  or return (RSB), the *wrong* path executes for up to the speculation
  window with register writes and stores sandboxed in shadow state —
  but cache fills persist, which is the Spectre channel.
* **HFI hooks**: when HFI mode is on, every fetch is prefix-checked
  before decode, every load/store is checked before any cache or TLB
  update (speculative or not), ``hmov`` resolves through explicit
  regions, and syscalls in native sandboxes become jumps to the exit
  handler (§4).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.encoding import decode_region, decode_sandbox, encode_region
from ..core.faults import FaultCause, HfiFault
from ..core.regions import RegionError
from ..core.state import HfiState
from ..isa.instruction import Instruction, Program
from ..isa.opcodes import (
    CONDITIONAL_JUMPS,
    HMOV_REGION,
    Opcode,
)
from ..isa.operands import Imm, Mem
from ..isa.registers import MASK64, Reg, RegisterFile, to_signed
from ..os.address_space import AccessKind, AddressSpace, PageFault
from ..os.kernel import Kernel
from ..os.process import Process
from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.sink import Telemetry, coalesce
from .cache import CacheHierarchy
from .predictors import BranchTargetBuffer, PatternHistoryTable, ReturnStackBuffer
from .tlb import Tlb


@dataclass
class CpuStats:
    """Counters accumulated over a run."""

    instructions: int = 0
    cycles: int = 0
    branches: int = 0
    mispredicts: int = 0
    speculative_instructions: int = 0
    loads: int = 0
    stores: int = 0
    syscalls: int = 0
    interposed_syscalls: int = 0
    hfi_faults: int = 0
    page_faults: int = 0
    serializations: int = 0


@dataclass
class FaultInfo:
    """What went wrong when a run stops with reason='fault'."""

    kind: str                    # "hfi" or "page"
    addr: int = 0
    hfi_cause: FaultCause = FaultCause.NONE
    detail: str = ""


@dataclass
class RunResult:
    reason: str                  # "hlt" | "fault" | "instruction_limit" |
                                 # "no_instruction"
    stats: CpuStats
    fault: Optional[FaultInfo] = None
    rip: int = 0

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class _StopSpeculation(Exception):
    """Internal: the wrong path hit a squash point."""


class Cpu:
    """A single simulated core."""

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 memory: Optional[AddressSpace] = None,
                 process: Optional[Process] = None,
                 kernel: Optional[Kernel] = None,
                 telemetry: Optional[Telemetry] = None):
        self.params = params
        if process is not None:
            self.mem = process.address_space
        else:
            self.mem = memory if memory is not None else AddressSpace(params)
        self.process = process
        self.kernel = kernel
        self.regs = RegisterFile()
        self.hfi = HfiState(params)
        if process is not None:
            process.hfi_state = self.hfi
        self.caches = CacheHierarchy(params)
        self.tlb = Tlb(params)
        self.pht = PatternHistoryTable()
        self.btb = BranchTargetBuffer()
        self.rsb = ReturnStackBuffer()
        self.stats = CpuStats()
        self._code: Dict[int, Instruction] = {}
        self._speculative = False
        self._store_buffer: Dict[int, int] = {}
        self._xsave_areas: Dict[int, Tuple[RegisterFile, object, int]] = {}
        self._halted = False
        self._fault: Optional[FaultInfo] = None
        #: If set, committed faults redirect here instead of halting
        #: (models a runtime whose SIGSEGV handler resumes execution).
        self.fault_resume_address: Optional[int] = None
        #: Optional committed/speculative instruction tracer.
        self.tracer = None
        #: MPK enforcement happens only when a process is attached.
        self.enforce_pkeys = process is not None
        #: Telemetry sink (defaults to the shared no-op null sink).
        self.telemetry = coalesce(None)
        self.attach_telemetry(telemetry)

    def attach_telemetry(self, telemetry: Optional[Telemetry]) -> None:
        """Point this core at a sink and register its component stats.

        Telemetry only *reads* simulator state — cycle accounting is
        identical whether the sink is real or the default null sink.
        """
        self.telemetry = coalesce(telemetry)
        if self.telemetry.enabled:
            for name, fn in (("l1d", self.caches.l1d._snapshot),
                             ("l1i", self.caches.l1i._snapshot),
                             ("l2", self.caches.l2._snapshot),
                             ("dtlb", self.tlb.stats),
                             ("pht", self.pht.stats),
                             ("btb", self.btb.stats),
                             ("rsb", self.rsb.stats)):
                self.telemetry.register_component(name, fn)

    # ------------------------------------------------------------------
    # program loading
    # ------------------------------------------------------------------
    def load_program(self, program: Program) -> None:
        """Map a program's instructions at their laid-out addresses."""
        for ins in program.instructions:
            self._code[ins.addr] = ins

    # ------------------------------------------------------------------
    # top-level run loop
    # ------------------------------------------------------------------
    def run(self, entry: int, max_instructions: int = 5_000_000) -> RunResult:
        self.telemetry.begin_span("cpu.run", self.stats.cycles, entry=entry)
        result = self._run(entry, max_instructions)
        self.telemetry.end_span(self.stats.cycles, name="cpu.run",
                                reason=result.reason,
                                instructions=self.stats.instructions)
        return result

    def _run(self, entry: int, max_instructions: int) -> RunResult:
        self.regs.rip = entry
        self._halted = False
        self._fault = None
        executed = 0
        while executed < max_instructions:
            if self._halted:
                return RunResult("hlt", self.stats, rip=self.regs.rip)
            if self._fault is not None:
                fault, self._fault = self._fault, None
                if self.fault_resume_address is not None:
                    self.regs.rip = self.fault_resume_address
                    continue
                return RunResult("fault", self.stats, fault=fault,
                                 rip=self.regs.rip)
            status = self._commit_one()
            if status is not None:
                return status
            executed += 1
        return RunResult("instruction_limit", self.stats, rip=self.regs.rip)

    # ------------------------------------------------------------------
    # committed execution
    # ------------------------------------------------------------------
    def _commit_one(self) -> Optional[RunResult]:
        pc = self.regs.rip
        # HFI code-region check happens at decode, before execution and
        # before any micro-op enters the pipeline (§4.1).
        try:
            self.hfi.check_code_fetch(pc)
        except HfiFault as fault:
            self._raise_fault(fault)
            return None
        self.stats.cycles += self.caches.fetch_access(pc)
        ins = self._code.get(pc)
        if ins is None:
            return RunResult("no_instruction", self.stats, rip=pc)
        self.stats.instructions += 1
        self.stats.cycles += self.params.base_cycles
        if self.tracer is not None:
            self.tracer.record(pc, ins, self.hfi.enabled)
        try:
            self._dispatch(ins, pc)
        except HfiFault as fault:
            self._raise_fault(fault)
        except PageFault as fault:
            self._raise_page_fault(fault)
        except RegionError as err:
            self._raise_fault(HfiFault(FaultCause.HARDWARE_TRAP,
                                       detail=str(err)))
        return None

    def _raise_fault(self, fault: HfiFault) -> None:
        """An HFI violation at commit: disable sandbox, set MSR, SIGSEGV."""
        self.stats.hfi_faults += 1
        if self.hfi.enabled:
            outcome = self.hfi.fault(fault.cause, fault.addr)
            self.stats.cycles += outcome.cycles
        else:
            self.hfi.regs.cause_msr = fault.cause
        if self.telemetry.enabled:
            self.telemetry.count("cpu.hfi_fault")
            self.telemetry.event("hfi.fault", self.stats.cycles,
                                 cause=fault.cause.name, addr=fault.addr)
            self.telemetry.end_span(self.stats.cycles, name="hfi.sandbox",
                                    reason="fault")
        self._deliver_segv(fault.addr, int(fault.cause), str(fault))
        self._fault = FaultInfo("hfi", fault.addr, fault.cause, fault.detail)

    def _raise_page_fault(self, fault: PageFault) -> None:
        self.stats.page_faults += 1
        if self.hfi.enabled:
            outcome = self.hfi.fault(FaultCause.HARDWARE_TRAP, fault.addr)
            self.stats.cycles += outcome.cycles
            if self.telemetry.enabled:
                self.telemetry.end_span(self.stats.cycles,
                                        name="hfi.sandbox", reason="fault")
        if self.telemetry.enabled:
            self.telemetry.count("cpu.page_fault")
        self._deliver_segv(fault.addr, 0, str(fault))
        self._fault = FaultInfo("page", fault.addr, FaultCause.NONE,
                                fault.reason)

    def _deliver_segv(self, addr: int, hfi_cause: int, detail: str) -> None:
        if self.kernel is not None and self.process is not None:
            self.stats.cycles += self.kernel.deliver_segv(
                self.process, addr, hfi_cause, detail)

    # ------------------------------------------------------------------
    # speculation
    # ------------------------------------------------------------------
    def _speculate(self, wrong_path: int) -> None:
        """Run the mispredicted path in shadow state, then squash.

        Register writes and stores are discarded; cache and TLB fills
        are not — faithfully creating (and letting HFI close) the
        Spectre channel.
        """
        saved_regs = self.regs.copy()
        saved_hfi = copy.deepcopy(self.hfi)
        saved_pkru = self.process.pkru if self.process else 0
        self._speculative = True
        self._store_buffer = {}
        self.regs.rip = wrong_path
        try:
            for _ in range(self.params.speculation_window):
                pc = self.regs.rip
                try:
                    self.hfi.check_code_fetch(pc)
                except HfiFault:
                    # decode turns the micro-ops into a faulting NOP;
                    # nothing out-of-bounds executes, even here (§4.1).
                    break
                self.caches.fetch_access(pc)
                ins = self._code.get(pc)
                if ins is None:
                    break
                self.stats.speculative_instructions += 1
                if self.tracer is not None:
                    self.tracer.record(pc, ins, self.hfi.enabled,
                                       speculative=True)
                try:
                    self._dispatch(ins, pc)
                except (HfiFault, PageFault, RegionError):
                    break  # squashed fault: no architectural effect
        except _StopSpeculation:
            pass
        finally:
            self._speculative = False
            self._store_buffer = {}
            self.regs = saved_regs
            self.hfi = saved_hfi
            if self.process is not None:
                self.process.pkru = saved_pkru
                self.process.hfi_state = self.hfi

    # ------------------------------------------------------------------
    # memory path
    # ------------------------------------------------------------------
    def _effective_address(self, mem: Mem) -> int:
        ea = mem.disp
        if mem.base is not None:
            ea += self.regs.read(mem.base)
        if mem.index is not None:
            ea += self.regs.read(mem.index) * mem.scale
        return ea & MASK64

    def _charge_mem(self, ea: int) -> None:
        tlb_cost = self.tlb.access(ea)
        cache_cost = self.caches.data_access(ea)
        if not self._speculative:
            self.stats.cycles += tlb_cost + cache_cost

    def _check_pkey(self, ea: int, size: int, kind: AccessKind):
        vma = self.mem.check_access(ea, size, kind)
        if (self.enforce_pkeys and self.process is not None
                and self.process.pkru and vma.pkey):
            bits = (self.process.pkru >> (2 * vma.pkey)) & 0b11
            if bits & 0b01 or (kind is AccessKind.WRITE and bits & 0b10):
                raise PageFault(ea, kind, f"pkey {vma.pkey} denied")
        return vma

    def _load(self, mem: Mem, hmov_region: Optional[int] = None) -> int:
        if hmov_region is not None:
            index_val = (self.regs.read(mem.index)
                         if mem.index is not None else 0)
            ea = self.hfi.hmov_address(hmov_region, index_val, mem.scale,
                                       mem.disp, mem.size, is_write=False)
        else:
            ea = self._effective_address(mem)
            self.hfi.check_data_access(ea, mem.size, is_write=False)
        self._check_pkey(ea, mem.size, AccessKind.READ)
        self._charge_mem(ea)
        self.stats.loads += 1
        value = self.mem.read(ea, mem.size, check=False)
        if self._speculative and self._store_buffer:
            data = bytearray(value.to_bytes(mem.size, "little"))
            for i in range(mem.size):
                buffered = self._store_buffer.get(ea + i)
                if buffered is not None:
                    data[i] = buffered
            value = int.from_bytes(bytes(data), "little")
        return value

    def _store(self, mem: Mem, value: int,
               hmov_region: Optional[int] = None) -> None:
        if hmov_region is not None:
            index_val = (self.regs.read(mem.index)
                         if mem.index is not None else 0)
            ea = self.hfi.hmov_address(hmov_region, index_val, mem.scale,
                                       mem.disp, mem.size, is_write=True)
        else:
            ea = self._effective_address(mem)
            self.hfi.check_data_access(ea, mem.size, is_write=True)
        self._check_pkey(ea, mem.size, AccessKind.WRITE)
        self._charge_mem(ea)
        self.stats.stores += 1
        if self._speculative:
            data = (value & ((1 << (8 * mem.size)) - 1)).to_bytes(
                mem.size, "little")
            for i, byte in enumerate(data):
                self._store_buffer[ea + i] = byte
        else:
            self.mem.write(ea, value, mem.size, check=False)

    def _read_operand(self, op, hmov_region: Optional[int] = None) -> int:
        if isinstance(op, Reg):
            return self.regs.read(op)
        if isinstance(op, Imm):
            return op.value & MASK64
        if isinstance(op, Mem):
            return self._load(op, hmov_region)
        raise TypeError(f"unreadable operand {op!r}")

    def _write_operand(self, op, value: int,
                       hmov_region: Optional[int] = None) -> None:
        if isinstance(op, Reg):
            self.regs.write(op, value)
        elif isinstance(op, Mem):
            self._store(op, value, hmov_region)
        else:
            raise TypeError(f"unwritable operand {op!r}")

    # ------------------------------------------------------------------
    # ALU helpers
    # ------------------------------------------------------------------
    def _set_logic_flags(self, result: int) -> None:
        flags = self.regs.flags
        flags.zf = result == 0
        flags.sf = bool(result >> 63)
        flags.cf = False
        flags.of = False

    def _set_add_flags(self, a: int, b: int, result_wide: int) -> None:
        flags = self.regs.flags
        result = result_wide & MASK64
        flags.zf = result == 0
        flags.sf = bool(result >> 63)
        flags.cf = result_wide > MASK64
        flags.of = (to_signed(a) + to_signed(b)) != to_signed(result)

    def _set_sub_flags(self, a: int, b: int) -> None:
        flags = self.regs.flags
        result = (a - b) & MASK64
        flags.zf = result == 0
        flags.sf = bool(result >> 63)
        flags.cf = a < b
        flags.of = (to_signed(a) - to_signed(b)) != to_signed(result)

    def _cond(self, opcode: Opcode) -> bool:
        flags = self.regs.flags
        if opcode is Opcode.JE:
            return flags.zf
        if opcode is Opcode.JNE:
            return not flags.zf
        if opcode is Opcode.JL:
            return flags.sf != flags.of
        if opcode is Opcode.JGE:
            return flags.sf == flags.of
        if opcode is Opcode.JLE:
            return flags.zf or flags.sf != flags.of
        if opcode is Opcode.JG:
            return not flags.zf and flags.sf == flags.of
        if opcode is Opcode.JB:
            return flags.cf
        if opcode is Opcode.JAE:
            return not flags.cf
        if opcode is Opcode.JBE:
            return flags.cf or flags.zf
        if opcode is Opcode.JA:
            return not flags.cf and not flags.zf
        raise ValueError(f"not a condition: {opcode}")

    # ------------------------------------------------------------------
    # the big dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, ins: Instruction, pc: int) -> None:
        opcode = ins.opcode
        next_rip = pc + ins.length
        self.regs.rip = next_rip
        ops = ins.operands

        # --- data movement ---
        if opcode is Opcode.MOV:
            value = self._read_operand(ops[1])
            self._write_operand(ops[0], value)
            return
        if opcode in HMOV_REGION:
            region = HMOV_REGION[opcode]
            if self.params.hmov_extra_cycles and not self._speculative:
                self.stats.cycles += self.params.hmov_extra_cycles
            if isinstance(ops[1], Mem):       # load
                value = self._read_operand(ops[1], hmov_region=region)
                self._write_operand(ops[0], value)
            else:                             # store
                value = self._read_operand(ops[1])
                self._write_operand(ops[0], value, hmov_region=region)
            return
        if opcode is Opcode.LEA:
            self.regs.write(ops[0], self._effective_address(ops[1]))
            return
        if opcode is Opcode.PUSH:
            value = self._read_operand(ops[0])
            rsp = (self.regs.read(Reg.RSP) - 8) & MASK64
            self.regs.write(Reg.RSP, rsp)
            self._store(Mem(base=Reg.RSP, size=8), value)
            return
        if opcode is Opcode.POP:
            value = self._load(Mem(base=Reg.RSP, size=8))
            self.regs.write(Reg.RSP, (self.regs.read(Reg.RSP) + 8) & MASK64)
            self._write_operand(ops[0], value)
            return

        # --- ALU ---
        if opcode is Opcode.ADD:
            a = self._read_operand(ops[0])
            b = self._read_operand(ops[1])
            wide = a + b
            self._set_add_flags(a, b, wide)
            self._write_operand(ops[0], wide & MASK64)
            return
        if opcode is Opcode.SUB:
            a = self._read_operand(ops[0])
            b = self._read_operand(ops[1])
            self._set_sub_flags(a, b)
            self._write_operand(ops[0], (a - b) & MASK64)
            return
        if opcode in (Opcode.AND, Opcode.OR, Opcode.XOR):
            a = self._read_operand(ops[0])
            b = self._read_operand(ops[1])
            if opcode is Opcode.AND:
                result = a & b
            elif opcode is Opcode.OR:
                result = a | b
            else:
                result = a ^ b
            self._set_logic_flags(result)
            self._write_operand(ops[0], result)
            return
        if opcode is Opcode.NOT:
            self._write_operand(ops[0], ~self._read_operand(ops[0]) & MASK64)
            return
        if opcode is Opcode.NEG:
            value = (-self._read_operand(ops[0])) & MASK64
            self._set_logic_flags(value)
            self.regs.flags.cf = value != 0
            self._write_operand(ops[0], value)
            return
        if opcode in (Opcode.SHL, Opcode.SHR, Opcode.SAR):
            a = self._read_operand(ops[0])
            count = self._read_operand(ops[1]) & 63
            if opcode is Opcode.SHL:
                result = (a << count) & MASK64
            elif opcode is Opcode.SHR:
                result = a >> count
            else:
                result = (to_signed(a) >> count) & MASK64
            self._set_logic_flags(result)
            self._write_operand(ops[0], result)
            return
        if opcode is Opcode.IMUL:
            a = self._read_operand(ops[0])
            b = self._read_operand(ops[1])
            result = (to_signed(a) * to_signed(b)) & MASK64
            self._set_logic_flags(result)
            self._write_operand(ops[0], result)
            if not self._speculative:
                self.stats.cycles += self.params.mul_cycles - 1
            return
        if opcode in (Opcode.IDIV, Opcode.IMOD):
            a = to_signed(self._read_operand(ops[0]))
            b = to_signed(self._read_operand(ops[1]))
            if b == 0:
                raise PageFault(pc, AccessKind.EXEC, "division by zero")
            quotient = int(a / b)          # truncate toward zero (x86)
            remainder = a - quotient * b
            result = (quotient if opcode is Opcode.IDIV else remainder)
            result &= MASK64
            self._set_logic_flags(result)
            self._write_operand(ops[0], result)
            if not self._speculative:
                self.stats.cycles += self.params.div_cycles - 1
            return
        if opcode is Opcode.CMP:
            a = self._read_operand(ops[0])
            b = self._read_operand(ops[1])
            self._set_sub_flags(a, b)
            return
        if opcode is Opcode.TEST:
            self._set_logic_flags(self._read_operand(ops[0])
                                  & self._read_operand(ops[1]))
            return
        if opcode is Opcode.INC:
            a = self._read_operand(ops[0])
            self._set_add_flags(a, 1, a + 1)
            self._write_operand(ops[0], (a + 1) & MASK64)
            return
        if opcode is Opcode.DEC:
            a = self._read_operand(ops[0])
            self._set_sub_flags(a, 1)
            self._write_operand(ops[0], (a - 1) & MASK64)
            return

        # --- control flow ---
        if opcode in CONDITIONAL_JUMPS:
            self._conditional_jump(ins, pc, next_rip)
            return
        if opcode is Opcode.JMP:
            self._jump(ins, pc)
            return
        if opcode is Opcode.CALL:
            self._call(ins, pc, next_rip)
            return
        if opcode is Opcode.RET:
            self._ret(pc)
            return

        # --- system ---
        if opcode in (Opcode.SYSCALL, Opcode.INT80):
            self._syscall(opcode is Opcode.INT80, next_rip)
            return
        if opcode is Opcode.CPUID:
            self._serialize()
            return
        if opcode is Opcode.LFENCE:
            self._serialize(cost=self.params.serialize_drain_cycles // 2)
            return
        if opcode is Opcode.CLFLUSH:
            ea = self._effective_address(ops[0])
            self.caches.flush_line(ea)
            if not self._speculative:
                self.stats.cycles += self.params.clflush_cycles
            return
        if opcode is Opcode.RDTSC:
            self.stats.cycles += self.params.rdtsc_cycles
            self.regs.write(Reg.RAX, self.stats.cycles & MASK64)
            self.regs.write(Reg.RDX, 0)
            return
        if opcode is Opcode.NOP:
            return
        if opcode is Opcode.HLT:
            if self._speculative:
                raise _StopSpeculation()
            self._halted = True
            return
        if opcode is Opcode.XSAVE:
            self._xsave(ops[0])
            return
        if opcode is Opcode.XRSTOR:
            self._xrstor(ops[0])
            return
        if opcode is Opcode.WRPKRU:
            if self._speculative:
                raise _StopSpeculation()  # wrpkru is not speculated past
            if self.process is not None:
                self.process.pkru = self.regs.read(Reg.RAX) & 0xFFFF_FFFF
            self.stats.cycles += self.params.wrpkru_cycles
            return
        if opcode is Opcode.RDPKRU:
            pkru = self.process.pkru if self.process is not None else 0
            self.regs.write(Reg.RAX, pkru)
            if not self._speculative:
                self.stats.cycles += self.params.rdpkru_cycles
            return

        # --- HFI ---
        if opcode is Opcode.HFI_ENTER:
            self._hfi_enter(ops[0])
            return
        if opcode is Opcode.HFI_EXIT:
            self._hfi_exit()
            return
        if opcode is Opcode.HFI_REENTER:
            cost = self.hfi.reenter()
            if not self._speculative:
                self.stats.cycles += cost
                if self.telemetry.enabled:
                    self.telemetry.count("cpu.hfi_reenter")
                    self.telemetry.begin_span("hfi.sandbox",
                                              self.stats.cycles,
                                              reenter=True)
            return
        if opcode is Opcode.HFI_SET_REGION:
            self._hfi_set_region(ops[0].value, ops[1])
            return
        if opcode is Opcode.HFI_GET_REGION:
            self._hfi_get_region(ops[0].value, ops[1])
            return
        if opcode is Opcode.HFI_CLEAR_REGION:
            cost = self.hfi.clear_region(ops[0].value)
            if not self._speculative:
                self.stats.cycles += cost
            return
        if opcode is Opcode.HFI_CLEAR_ALL_REGIONS:
            cost = self.hfi.clear_all_regions()
            if not self._speculative:
                self.stats.cycles += cost
            return

        raise NotImplementedError(f"opcode {opcode} not implemented")

    # ------------------------------------------------------------------
    # control flow with prediction
    # ------------------------------------------------------------------
    def _conditional_jump(self, ins: Instruction, pc: int,
                          next_rip: int) -> None:
        taken = self._cond(ins.opcode)
        target = ins.operands[0].value
        if self._speculative:
            # No nested speculation windows; resolve architecturally.
            self.regs.rip = target if taken else next_rip
            return
        self.stats.branches += 1
        predicted = self.pht.predict(pc)
        self.pht.update(pc, taken)
        if predicted != taken:
            self.stats.mispredicts += 1
            self.stats.cycles += self.params.branch_mispredict_penalty
            wrong_path = target if predicted else next_rip
            self.regs.rip = wrong_path
            self._speculate(wrong_path)
            # _speculate restored self.regs
        self.regs.rip = target if taken else next_rip

    def _jump(self, ins: Instruction, pc: int) -> None:
        op = ins.operands[0]
        if isinstance(op, Imm):
            self.regs.rip = op.value
            return
        # indirect jump: BTB-predicted
        actual = self.regs.read(op)
        if self._speculative:
            self.regs.rip = actual
            return
        self.stats.branches += 1
        predicted = self.btb.predict(pc)
        self.btb.update(pc, actual)
        if predicted is None or predicted != actual:
            self.stats.mispredicts += 1
            self.stats.cycles += self.params.branch_mispredict_penalty
            if predicted is not None:
                self.regs.rip = predicted
                self._speculate(predicted)
        self.regs.rip = actual

    def _call(self, ins: Instruction, pc: int, next_rip: int) -> None:
        op = ins.operands[0]
        rsp = (self.regs.read(Reg.RSP) - 8) & MASK64
        self.regs.write(Reg.RSP, rsp)
        self._store(Mem(base=Reg.RSP, size=8), next_rip)
        if not self._speculative:
            self.rsb.push(next_rip)
        if isinstance(op, Imm):
            self.regs.rip = op.value
            return
        actual = self.regs.read(op)
        if self._speculative:
            self.regs.rip = actual
            return
        self.stats.branches += 1
        predicted = self.btb.predict(pc)
        self.btb.update(pc, actual)
        if predicted is None or predicted != actual:
            self.stats.mispredicts += 1
            self.stats.cycles += self.params.branch_mispredict_penalty
            if predicted is not None:
                self.regs.rip = predicted
                self._speculate(predicted)
        self.regs.rip = actual

    def _ret(self, pc: int) -> None:
        actual = self._load(Mem(base=Reg.RSP, size=8))
        self.regs.write(Reg.RSP, (self.regs.read(Reg.RSP) + 8) & MASK64)
        if self._speculative:
            self.regs.rip = actual
            return
        self.stats.branches += 1
        predicted = self.rsb.pop()
        if predicted is None or predicted != actual:
            self.stats.mispredicts += 1
            self.stats.cycles += self.params.branch_mispredict_penalty
            if predicted is not None:
                self.regs.rip = predicted
                self._speculate(predicted)
        self.regs.rip = actual

    # ------------------------------------------------------------------
    # system interactions
    # ------------------------------------------------------------------
    def _serialize(self, cost: Optional[int] = None) -> None:
        if self._speculative:
            raise _StopSpeculation()
        self.stats.cycles += (cost if cost is not None
                              else self.params.serialize_drain_cycles)
        self.stats.serializations += 1
        self.telemetry.count("cpu.serialization")

    def _syscall(self, legacy: bool, next_rip: int) -> None:
        if self._speculative:
            raise _StopSpeculation()
        nr = self.regs.read(Reg.RAX)
        outcome = self.hfi.syscall_attempt(nr, legacy=legacy)
        if outcome is not None:
            # Native sandbox: the syscall became a jump to the exit
            # handler (§4.4); the cause MSR already says which call.
            self.stats.interposed_syscalls += 1
            self.stats.cycles += outcome.cycles
            if self.telemetry.enabled:
                self.telemetry.count("cpu.syscall.interposed")
                self.telemetry.event("syscall.interposed",
                                     self.stats.cycles, nr=nr)
                self.telemetry.end_span(self.stats.cycles,
                                        name="hfi.sandbox",
                                        reason="syscall")
            if outcome.redirect_to is not None:
                self.regs.rip = outcome.redirect_to
            return
        self.stats.syscalls += 1
        if self.telemetry.enabled:
            self.telemetry.count("cpu.syscall")
        if self.kernel is not None and self.process is not None:
            result = self.kernel.syscall(
                self.process, nr,
                self.regs.read(Reg.RDI), self.regs.read(Reg.RSI),
                self.regs.read(Reg.RDX))
            self.regs.write(Reg.RAX, result.value & MASK64)
            self.stats.cycles += result.cycles
        else:
            self.stats.cycles += self.params.syscall_cycles

    def _xsave(self, mem: Mem) -> None:
        ea = self._effective_address(mem)
        if not self._speculative:
            pkru = self.process.pkru if self.process is not None else 0
            self._xsave_areas[ea] = (self.regs.copy(), self.hfi.snapshot(),
                                     pkru)
            self.stats.cycles += (self.params.xsave_cycles
                                  + self.params.xsave_hfi_extra_cycles)

    def _xrstor(self, mem: Mem) -> None:
        if self._speculative:
            raise _StopSpeculation()
        ea = self._effective_address(mem)
        area = self._xsave_areas.get(ea)
        if area is None:
            raise PageFault(ea, AccessKind.READ, "xrstor from bad area")
        saved_regs, hfi_bank, pkru = area
        # Traps inside a native sandbox (§3.3.3).
        self.hfi.restore(hfi_bank)
        rip = self.regs.rip
        self.regs = saved_regs.copy()
        self.regs.rip = rip
        if self.process is not None:
            self.process.pkru = pkru
        self.stats.cycles += (self.params.xrstor_cycles
                              + self.params.xsave_hfi_extra_cycles)

    # ------------------------------------------------------------------
    # HFI instructions
    # ------------------------------------------------------------------
    def _descriptor_read(self, ptr: int, nbytes: int) -> bytes:
        """Microcode loads of descriptor words (charged as L1 hits)."""
        if not self._speculative:
            self.stats.cycles += (nbytes // 8) * (
                self.params.base_cycles + self.params.l1d_hit_cycles)
        return self.mem.read_bytes(ptr, nbytes, check=False)

    def _hfi_enter(self, descriptor_reg: Reg) -> None:
        ptr = self.regs.read(descriptor_reg)
        from ..core.encoding import SANDBOX_DESCRIPTOR_BYTES
        flags, handler = decode_sandbox(
            self._descriptor_read(ptr, SANDBOX_DESCRIPTOR_BYTES))
        if self._speculative and flags.is_serialized:
            raise _StopSpeculation()
        cost = self.hfi.enter(flags, handler)
        if not self._speculative:
            self.stats.cycles += cost
            self.stats.serializations += 1 if flags.is_serialized else 0
            if self.telemetry.enabled:
                self.telemetry.count("cpu.hfi_enter")
                self.telemetry.begin_span(
                    "hfi.sandbox", self.stats.cycles,
                    serialized=flags.is_serialized,
                    hybrid=flags.is_hybrid)

    def _hfi_exit(self) -> None:
        if self._speculative and self.hfi.flags.is_serialized:
            # A serialized exit cannot be speculated past (§3.4).
            raise _StopSpeculation()
        outcome = self.hfi.exit()
        if not self._speculative:
            self.stats.cycles += outcome.cycles
            if self.telemetry.enabled:
                self.telemetry.count("cpu.hfi_exit")
                self.telemetry.end_span(self.stats.cycles,
                                        name="hfi.sandbox",
                                        reason="exit")
        if outcome.redirect_to is not None:
            self.regs.rip = outcome.redirect_to

    def _hfi_set_region(self, number: int, descriptor_reg: Reg) -> None:
        from ..core.encoding import REGION_DESCRIPTOR_BYTES
        ptr = self.regs.read(descriptor_reg)
        region = decode_region(
            self._descriptor_read(ptr, REGION_DESCRIPTOR_BYTES))
        cost = self.hfi.set_region(number, region)
        if not self._speculative:
            self.stats.cycles += cost
            if self.telemetry.enabled:
                self.telemetry.count("cpu.region_install")
                self.telemetry.event("hfi.set_region", self.stats.cycles,
                                     region=number)

    def _hfi_get_region(self, number: int, descriptor_reg: Reg) -> None:
        region, cost = self.hfi.get_region(number)
        ptr = self.regs.read(descriptor_reg)
        if region is not None and not self._speculative:
            self.mem.write_bytes(ptr, encode_region(region), check=False)
        if not self._speculative:
            self.stats.cycles += cost
