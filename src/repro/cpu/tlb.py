"""A small fully-associative data TLB with LRU replacement.

HFI's region checks run *in parallel* with the dtb lookup (paper
Fig. 1), so an HFI-checked access pays no extra latency over the TLB
path — the simulator models this by charging the TLB cost identically
whether or not HFI is enabled.

``tlb.stats()`` returns a :class:`repro.telemetry.TlbStats` snapshot
(the legacy ``tlb.hits`` / ``tlb.misses`` raw attributes are gone;
the underscored counters remain plain ints on the hot path).
"""

from __future__ import annotations

from typing import Dict

from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.stats import TlbStats


class Tlb:
    """Page-granular translation cache."""

    def __init__(self, params: MachineParams = DEFAULT_PARAMS):
        self.params = params
        self.entries = params.dtlb_entries
        self._pages: Dict[int, bool] = {}
        self._hits = 0
        self._misses = 0
        self._shootdowns = 0

    # ------------------------------------------------------------------
    # uniform stats API
    # ------------------------------------------------------------------
    def stats(self) -> TlbStats:
        return TlbStats(component="dtlb", hits=self._hits,
                        misses=self._misses, shootdowns=self._shootdowns)

    def access(self, addr: int) -> int:
        """Translate; returns added latency (0 on hit, walk cost on miss)."""
        page = addr // self.params.page_bytes
        if page in self._pages:
            del self._pages[page]
            self._pages[page] = True
            self._hits += 1
            return 0
        if len(self._pages) >= self.entries:
            victim = next(iter(self._pages))
            del self._pages[victim]
        self._pages[page] = True
        self._misses += 1
        return self.params.dtlb_miss_cycles

    def shootdown(self) -> None:
        """Invalidate everything (munmap/madvise in concurrent mode)."""
        self._pages.clear()
        self._shootdowns += 1
