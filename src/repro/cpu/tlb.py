"""A small fully-associative data TLB with LRU replacement.

HFI's region checks run *in parallel* with the dtb lookup (paper
Fig. 1), so an HFI-checked access pays no extra latency over the TLB
path — the simulator models this by charging the TLB cost identically
whether or not HFI is enabled.
"""

from __future__ import annotations

from typing import Dict

from ..params import DEFAULT_PARAMS, MachineParams


class Tlb:
    """Page-granular translation cache."""

    def __init__(self, params: MachineParams = DEFAULT_PARAMS):
        self.params = params
        self.entries = params.dtlb_entries
        self._pages: Dict[int, bool] = {}
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> int:
        """Translate; returns added latency (0 on hit, walk cost on miss)."""
        page = addr // self.params.page_bytes
        if page in self._pages:
            del self._pages[page]
            self._pages[page] = True
            self.hits += 1
            return 0
        if len(self._pages) >= self.entries:
            victim = next(iter(self._pages))
            del self._pages[victim]
        self._pages[page] = True
        self.misses += 1
        return self.params.dtlb_miss_cycles

    def shootdown(self) -> None:
        """Invalidate everything (munmap/madvise in concurrent mode)."""
        self._pages.clear()
