"""Exec unit: data movement (mov, hmov, lea, push, pop).

hmov's load-vs-store form and its explicit-region number are resolved
at decode time; the per-access region arithmetic and trap rules stay
in :meth:`HfiState.hmov_address` (paper §3.2), reached through the
accessor closures.
"""

from __future__ import annotations

from ..isa.opcodes import HMOV_REGION, Opcode
from ..isa.operands import Imm, Mem
from ..isa.registers import MASK64, Reg
from .decode import (
    STACK_READ,
    STACK_WRITE,
    decoder,
    make_ea,
    make_hmov_reader,
    make_hmov_writer,
    make_reader,
    make_writer,
)


@decoder(Opcode.MOV, block_safe=True)
def _mov(ins, addr, next_rip):
    dst, src = ins.operands[0], ins.operands[1]
    # Fully inlined fast paths for the dominant register-destination
    # shapes (no accessor-closure indirection on the hot loop).
    if type(dst) is Reg:
        if type(src) is Reg:
            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                regs = rf.regs
                if cpu._speculative:
                    cpu._journal.entries.append((dst, regs[dst]))
                regs[dst] = regs[src]
            return run
        if type(src) is Imm:
            const = src.value & MASK64

            def run(cpu):
                rf = cpu.regs
                rf.rip = next_rip
                regs = rf.regs
                if cpu._speculative:
                    cpu._journal.entries.append((dst, regs[dst]))
                regs[dst] = const
            return run

    read_src = make_reader(src)
    write_dst = make_writer(dst)

    def run(cpu):
        cpu.regs.rip = next_rip
        write_dst(cpu, read_src(cpu))
    return run


@decoder(Opcode.HMOV0, Opcode.HMOV1, Opcode.HMOV2, Opcode.HMOV3, block_safe=True)
def _hmov(ins, addr, next_rip):
    region = HMOV_REGION[ins.opcode]
    ops = ins.operands
    if isinstance(ops[1], Mem):           # load form
        read_src = make_hmov_reader(ops[1], region)
        write_dst = make_writer(ops[0])
    else:                                 # store form
        read_src = make_reader(ops[1])
        if isinstance(ops[0], Mem):
            write_dst = make_hmov_writer(ops[0], region)
        else:
            write_dst = make_writer(ops[0])

    def run(cpu):
        cpu.regs.rip = next_rip
        timing = cpu.timing
        extra = cpu.params.hmov_extra_cycles
        # §4.2: the bounds check is its own micro-op.  In-order backends
        # only pay when a calibration makes it non-free; the OoO
        # backend always routes it through ``hmov_check`` so the check
        # can overlap the access's dTLB lookup structurally.
        if extra or not timing.inline_commit:
            timing.hmov_check(extra)
        write_dst(cpu, read_src(cpu))
    return run


@decoder(Opcode.LEA, block_safe=True)
def _lea(ins, addr, next_rip):
    ea_of = make_ea(ins.operands[1])
    write_dst = make_writer(ins.operands[0])

    def run(cpu):
        cpu.regs.rip = next_rip
        write_dst(cpu, ea_of(cpu))
    return run


@decoder(Opcode.PUSH, block_safe=True)
def _push(ins, addr, next_rip):
    read_src = make_reader(ins.operands[0])

    def run(cpu):
        cpu.regs.rip = next_rip
        value = read_src(cpu)
        cpu._wreg(Reg.RSP, cpu.regs.regs[Reg.RSP] - 8)
        STACK_WRITE(cpu, value)
    return run


@decoder(Opcode.POP, block_safe=True)
def _pop(ins, addr, next_rip):
    write_dst = make_writer(ins.operands[0])

    def run(cpu):
        cpu.regs.rip = next_rip
        value = STACK_READ(cpu)
        cpu._wreg(Reg.RSP, cpu.regs.regs[Reg.RSP] + 8)
        write_dst(cpu, value)
    return run
