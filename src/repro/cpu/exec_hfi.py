"""Exec unit: the eight HFI instructions (paper appendix A.1).

Descriptor loads are microcode reads charged as L1 hits; all state
transitions go through :class:`~repro.core.state.HfiState`, whose
mutating methods record themselves in the speculation journal when a
window is open (copy-on-first-write), so wrong-path enters/exits and
region installs roll back without any deepcopy.
"""

from __future__ import annotations

from ..core.encoding import (
    REGION_DESCRIPTOR_BYTES,
    SANDBOX_DESCRIPTOR_BYTES,
    decode_region,
    decode_sandbox,
    encode_region,
)
from ..isa.opcodes import Opcode
from .decode import _StopSpeculation, decoder


def _descriptor_read(cpu, ptr: int, nbytes: int) -> bytes:
    """Microcode loads of descriptor words (charged as L1 hits)."""
    cpu.timing.charge((nbytes // 8) * (cpu.params.base_cycles
                                       + cpu.params.l1d_hit_cycles))
    return cpu.mem.read_bytes(ptr, nbytes, check=False)


@decoder(Opcode.HFI_ENTER)
def _hfi_enter(ins, addr, next_rip):
    descriptor_reg = ins.operands[0]

    def run(cpu):
        cpu.regs.rip = next_rip
        ptr = cpu.regs.regs[descriptor_reg]
        flags, handler = decode_sandbox(
            _descriptor_read(cpu, ptr, SANDBOX_DESCRIPTOR_BYTES))
        if cpu._speculative and flags.is_serialized:
            raise _StopSpeculation()
        cost = cpu.hfi.enter(flags, handler)
        if not cpu._speculative:
            # A serialized enter is a pipeline drain (§3.4); unserialized
            # enters are plain transition cost.
            if flags.is_serialized:
                cpu.timing.serialize_drain(cost)
            else:
                cpu.timing.charge(cost)
            stats = cpu.stats
            telemetry = cpu.telemetry
            if telemetry.enabled:
                telemetry.count("cpu.hfi_enter")
                telemetry.begin_span(
                    "hfi.sandbox", stats.cycles,
                    serialized=flags.is_serialized,
                    hybrid=flags.is_hybrid)
    return run


@decoder(Opcode.HFI_EXIT)
def _hfi_exit(ins, addr, next_rip):
    def run(cpu):
        cpu.regs.rip = next_rip
        serialized = cpu.hfi.flags.is_serialized
        if cpu._speculative and serialized:
            # A serialized exit cannot be speculated past (§3.4).
            raise _StopSpeculation()
        outcome = cpu.hfi.exit()
        if not cpu._speculative:
            # Exit drains like enter when serialized, but the
            # ``serializations`` lifecycle counter only counts enters
            # (count=False keeps it architecturally comparable).
            if serialized:
                cpu.timing.serialize_drain(outcome.cycles, count=False)
            else:
                cpu.timing.charge(outcome.cycles)
            stats = cpu.stats
            telemetry = cpu.telemetry
            if telemetry.enabled:
                telemetry.count("cpu.hfi_exit")
                telemetry.end_span(stats.cycles, name="hfi.sandbox",
                                   reason="exit")
        if outcome.redirect_to is not None:
            cpu.regs.rip = outcome.redirect_to
    return run


@decoder(Opcode.HFI_REENTER)
def _hfi_reenter(ins, addr, next_rip):
    def run(cpu):
        cpu.regs.rip = next_rip
        cost = cpu.hfi.reenter()
        if not cpu._speculative:
            cpu.timing.charge(cost)
            stats = cpu.stats
            telemetry = cpu.telemetry
            if telemetry.enabled:
                telemetry.count("cpu.hfi_reenter")
                telemetry.begin_span("hfi.sandbox", stats.cycles,
                                     reenter=True)
    return run


@decoder(Opcode.HFI_SET_REGION)
def _hfi_set_region(ins, addr, next_rip):
    number = ins.operands[0].value
    descriptor_reg = ins.operands[1]

    def run(cpu):
        cpu.regs.rip = next_rip
        ptr = cpu.regs.regs[descriptor_reg]
        region = decode_region(
            _descriptor_read(cpu, ptr, REGION_DESCRIPTOR_BYTES))
        cost = cpu.hfi.set_region(number, region)
        if not cpu._speculative:
            cpu.timing.charge(cost)
            stats = cpu.stats
            telemetry = cpu.telemetry
            if telemetry.enabled:
                telemetry.count("cpu.region_install")
                telemetry.event("hfi.set_region", stats.cycles,
                                region=number)
    return run


@decoder(Opcode.HFI_GET_REGION)
def _hfi_get_region(ins, addr, next_rip):
    number = ins.operands[0].value
    descriptor_reg = ins.operands[1]

    def run(cpu):
        cpu.regs.rip = next_rip
        region, cost = cpu.hfi.get_region(number)
        ptr = cpu.regs.regs[descriptor_reg]
        if region is not None and not cpu._speculative:
            cpu.mem.write_bytes(ptr, encode_region(region), check=False)
        cpu.timing.charge(cost)
    return run


@decoder(Opcode.HFI_CLEAR_REGION)
def _hfi_clear_region(ins, addr, next_rip):
    number = ins.operands[0].value

    def run(cpu):
        cpu.regs.rip = next_rip
        cost = cpu.hfi.clear_region(number)
        cpu.timing.charge(cost)
    return run


@decoder(Opcode.HFI_CLEAR_ALL_REGIONS)
def _hfi_clear_all(ins, addr, next_rip):
    def run(cpu):
        cpu.regs.rip = next_rip
        cost = cpu.hfi.clear_all_regions()
        cpu.timing.charge(cost)
    return run
