"""Cycle-level CPU simulator with HFI hooks — the gem5 analogue."""

from .cache import Cache, CacheHierarchy, CacheStats
from .machine import Cpu, CpuStats, FaultInfo, RunResult
from .predictors import (
    BranchTargetBuffer,
    PatternHistoryTable,
    ReturnStackBuffer,
)
from .tlb import Tlb
from .trace import TraceEntry, Tracer

__all__ = [
    "Cpu", "CpuStats", "FaultInfo", "RunResult", "Cache", "CacheHierarchy",
    "CacheStats", "Tlb", "PatternHistoryTable", "BranchTargetBuffer",
    "ReturnStackBuffer", "Tracer", "TraceEntry",
]
