"""Cycle-level CPU simulator with HFI hooks — the gem5 analogue.

The staged execution engine splits the old monolithic interpreter into
:mod:`.decode` (predecode cache + handler-table dispatch), the exec
units (:mod:`.exec_alu`, :mod:`.exec_mem`, :mod:`.exec_control`,
:mod:`.exec_system`, :mod:`.exec_hfi`), the :mod:`.timing` seam, and
the :mod:`.journal` undo log that squashes wrong-path speculation
without deepcopy.  :mod:`.machine` keeps the pipeline skeleton.
"""

from .cache import Cache, CacheHierarchy, CacheStats
from .decode import CodeMap, DecodedOp, decode_one, decode_program
from .journal import SpeculationJournal
from .machine import Cpu, CpuStats, FaultInfo, RunResult
from .predictors import (
    BranchTargetBuffer,
    PatternHistoryTable,
    ReturnStackBuffer,
)
from .timing import (
    TIMING_MODELS,
    InOrderTiming,
    TimingBackend,
    TimingModel,
    create_timing,
    default_timing,
    set_default_timing,
)
from .tlb import Tlb
from .trace import TraceEntry, Tracer

__all__ = [
    "Cpu", "CpuStats", "FaultInfo", "RunResult", "Cache", "CacheHierarchy",
    "CacheStats", "Tlb", "PatternHistoryTable", "BranchTargetBuffer",
    "ReturnStackBuffer", "Tracer", "TraceEntry", "CodeMap", "DecodedOp",
    "decode_one", "decode_program", "SpeculationJournal", "TimingModel",
    "InOrderTiming", "TimingBackend", "TIMING_MODELS", "create_timing",
    "default_timing", "set_default_timing",
]
