"""Exec unit: control flow with branch prediction and speculation.

Condition predicates and branch targets bind at decode time.  The
prediction protocol is preserved exactly from the old interpreter:

* conditional jumps consult/update the PHT *before* any speculation
  window opens; on the wrong path they resolve architecturally (no
  nested windows, no predictor updates);
* indirect jumps and calls update the BTB before the mispredict check,
  so a first encounter (``predicted is None``) pays the penalty but
  cannot speculate anywhere;
* returns pop the RSB only at commit, after the stack load (which may
  fault first).
"""

from __future__ import annotations

from ..isa.opcodes import Opcode
from ..isa.operands import Imm
from ..isa.registers import Reg
from .decode import STACK_READ, STACK_WRITE, decoder


#: Condition predicates over the flags word (x86 semantics).
CONDITIONS = {
    Opcode.JE: lambda f: f.zf,
    Opcode.JNE: lambda f: not f.zf,
    Opcode.JL: lambda f: f.sf != f.of,
    Opcode.JGE: lambda f: f.sf == f.of,
    Opcode.JLE: lambda f: f.zf or f.sf != f.of,
    Opcode.JG: lambda f: not f.zf and f.sf == f.of,
    Opcode.JB: lambda f: f.cf,
    Opcode.JAE: lambda f: not f.cf,
    Opcode.JBE: lambda f: f.cf or f.zf,
    Opcode.JA: lambda f: not f.cf and not f.zf,
}


@decoder(*CONDITIONS)
def _jcc(ins, addr, next_rip):
    cond = CONDITIONS[ins.opcode]
    target = ins.operands[0].value

    def run(cpu):
        regs = cpu.regs
        regs.rip = next_rip
        taken = cond(regs.flags)
        if cpu._speculative:
            # No nested speculation windows; resolve architecturally.
            regs.rip = target if taken else next_rip
            return
        stats = cpu.stats
        stats.branches += 1
        predicted = cpu.pht.predict(addr)
        cpu.pht.update(addr, taken)
        if predicted != taken:
            stats.mispredicts += 1
            cpu.timing.mispredict()
            wrong_path = target if predicted else next_rip
            regs.rip = wrong_path
            cpu._speculate(wrong_path)
        regs.rip = target if taken else next_rip
    return run


@decoder(Opcode.JMP)
def _jmp(ins, addr, next_rip):
    op = ins.operands[0]
    if isinstance(op, Imm):
        target = op.value

        def run(cpu):
            cpu.regs.rip = target
        return run

    # indirect jump: BTB-predicted
    def run(cpu):
        regs = cpu.regs
        regs.rip = next_rip
        actual = regs.regs[op]
        if cpu._speculative:
            regs.rip = actual
            return
        stats = cpu.stats
        stats.branches += 1
        predicted = cpu.btb.predict(addr)
        cpu.btb.update(addr, actual)
        if predicted is None or predicted != actual:
            stats.mispredicts += 1
            cpu.timing.mispredict()
            if predicted is not None:
                regs.rip = predicted
                cpu._speculate(predicted)
        regs.rip = actual
    return run


@decoder(Opcode.CALL)
def _call(ins, addr, next_rip):
    op = ins.operands[0]
    direct = isinstance(op, Imm)
    target = op.value if direct else None

    def run(cpu):
        regs = cpu.regs
        regs.rip = next_rip
        cpu._wreg(Reg.RSP, regs.regs[Reg.RSP] - 8)
        STACK_WRITE(cpu, next_rip)
        if not cpu._speculative:
            cpu.rsb.push(next_rip)
        if direct:
            regs.rip = target
            return
        actual = regs.regs[op]
        if cpu._speculative:
            regs.rip = actual
            return
        stats = cpu.stats
        stats.branches += 1
        predicted = cpu.btb.predict(addr)
        cpu.btb.update(addr, actual)
        if predicted is None or predicted != actual:
            stats.mispredicts += 1
            cpu.timing.mispredict()
            if predicted is not None:
                regs.rip = predicted
                cpu._speculate(predicted)
        regs.rip = actual
    return run


@decoder(Opcode.RET)
def _ret(ins, addr, next_rip):
    def run(cpu):
        regs = cpu.regs
        regs.rip = next_rip
        actual = STACK_READ(cpu)
        cpu._wreg(Reg.RSP, regs.regs[Reg.RSP] + 8)
        if cpu._speculative:
            regs.rip = actual
            return
        stats = cpu.stats
        stats.branches += 1
        predicted = cpu.rsb.pop()
        if predicted is None or predicted != actual:
            stats.mispredicts += 1
            cpu.timing.mispredict()
            if predicted is not None:
                regs.rip = predicted
                cpu._speculate(predicted)
        regs.rip = actual
    return run
