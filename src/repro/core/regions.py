"""HFI regions: the paper's mechanism for controlling memory access.

Two kinds (paper §3.2):

* **Implicit regions** check *every* memory access (or instruction
  fetch) by prefix matching: ``lsb_mask`` strips the low bits of the
  address and the remainder is compared against ``base_prefix``.  They
  are therefore power-of-two sized and aligned — granularity traded
  for a check that is four AND gates and an equality compare (§4).
  HFI provides two code regions and four data regions.

* **Explicit regions** are (base, bound) handles accessed through
  ``hmov``.  *Large* regions are 64 KiB-aligned and reach up to 2^48
  bytes; *small* regions are byte-granular up to 4 GiB but must not
  span a 4 GiB boundary.  These constraints let hardware bounds-check
  with a single 32-bit comparator (§4.2).  HFI provides four.

Region numbering follows the paper's appendix: 0-1 code, 2-5 implicit
data, 6-9 explicit data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

KIB64 = 1 << 16
GIB4 = 1 << 32
LARGE_MAX_BOUND = 1 << 48
SMALL_MAX_BOUND = 1 << 32

NUM_CODE_REGIONS = 2
NUM_IMPLICIT_DATA_REGIONS = 4
NUM_EXPLICIT_REGIONS = 4

#: First region number of each class (paper appendix A.1).
CODE_BASE_NUMBER = 0
IMPLICIT_DATA_BASE_NUMBER = 2
EXPLICIT_BASE_NUMBER = 6
NUM_REGIONS = (NUM_CODE_REGIONS + NUM_IMPLICIT_DATA_REGIONS
               + NUM_EXPLICIT_REGIONS)


class RegionError(ValueError):
    """A region descriptor violates HFI's structural constraints."""


def _validate_prefix(base_prefix: int, lsb_mask: int) -> None:
    if lsb_mask < 0 or base_prefix < 0:
        raise RegionError("prefix fields must be non-negative")
    if lsb_mask & (lsb_mask + 1):
        raise RegionError(
            f"lsb_mask {lsb_mask:#x} must be contiguous low bits (2^k - 1)")
    if base_prefix & lsb_mask:
        raise RegionError(
            f"base_prefix {base_prefix:#x} not aligned to mask {lsb_mask:#x}")


@dataclass(frozen=True)
class ImplicitCodeRegion:
    """Prefix-matched region bounding instruction fetch (execute perm)."""

    base_prefix: int
    lsb_mask: int
    permission_exec: bool = True

    def __post_init__(self) -> None:
        _validate_prefix(self.base_prefix, self.lsb_mask)

    def matches(self, addr: int) -> bool:
        return (addr & ~self.lsb_mask) == self.base_prefix

    @property
    def size(self) -> int:
        return self.lsb_mask + 1

    @classmethod
    def covering(cls, base: int, size: int,
                 execute: bool = True) -> "ImplicitCodeRegion":
        """Build the smallest aligned region covering ``[base, base+size)``."""
        mask = _covering_mask(base, size)
        return cls(base_prefix=base & ~mask, lsb_mask=mask,
                   permission_exec=execute)


@dataclass(frozen=True)
class ImplicitDataRegion:
    """Prefix-matched region checked on every load/store (except hmov)."""

    base_prefix: int
    lsb_mask: int
    permission_read: bool = False
    permission_write: bool = False

    def __post_init__(self) -> None:
        _validate_prefix(self.base_prefix, self.lsb_mask)

    def matches(self, addr: int) -> bool:
        return (addr & ~self.lsb_mask) == self.base_prefix

    @property
    def size(self) -> int:
        return self.lsb_mask + 1

    @classmethod
    def covering(cls, base: int, size: int, read: bool = True,
                 write: bool = True) -> "ImplicitDataRegion":
        mask = _covering_mask(base, size)
        return cls(base_prefix=base & ~mask, lsb_mask=mask,
                   permission_read=read, permission_write=write)


def _covering_mask(base: int, size: int) -> int:
    """Smallest ``2^k - 1`` mask so an aligned region covers the range."""
    if size <= 0:
        raise RegionError("size must be positive")
    mask = 1
    while True:
        prefix = base & ~(mask - 1)
        if base + size <= prefix + mask:
            return mask - 1
        mask <<= 1


@dataclass(frozen=True)
class ExplicitDataRegion:
    """A (base, bound) handle addressed relatively via ``hmov`` (§3.2).

    ``bound`` is the region *size* in bytes; valid offsets are
    ``[0, bound)`` relative to ``base_address``.
    """

    base_address: int
    bound: int
    permission_read: bool = False
    permission_write: bool = False
    is_large_region: bool = True

    def __post_init__(self) -> None:
        if self.base_address < 0 or self.bound < 0:
            raise RegionError("base/bound must be non-negative")
        if self.is_large_region:
            if self.base_address % KIB64:
                raise RegionError(
                    f"large region base {self.base_address:#x} must be "
                    f"64 KiB aligned")
            if self.bound % KIB64:
                raise RegionError(
                    f"large region bound {self.bound:#x} must be a "
                    f"multiple of 64 KiB")
            if self.bound > LARGE_MAX_BOUND:
                raise RegionError("large region bound exceeds 2^48")
        else:
            if self.bound > SMALL_MAX_BOUND:
                raise RegionError("small region bound exceeds 4 GiB")
            if self.bound and (self.base_address // GIB4
                               != (self.base_address + self.bound - 1) // GIB4):
                raise RegionError(
                    "small region must not span a 4 GiB boundary (§3.2)")

    @property
    def end(self) -> int:
        return self.base_address + self.bound

    def resize(self, new_bound: int) -> "ExplicitDataRegion":
        """Return a copy with a new bound — HFI heap growth (§6.1) is
        exactly this single register update."""
        return ExplicitDataRegion(
            base_address=self.base_address, bound=new_bound,
            permission_read=self.permission_read,
            permission_write=self.permission_write,
            is_large_region=self.is_large_region)


Region = Union[ImplicitCodeRegion, ImplicitDataRegion, ExplicitDataRegion]


def region_class(number: int) -> str:
    """Map a region number to its class name (paper appendix A.1)."""
    if not 0 <= number < NUM_REGIONS:
        raise RegionError(f"region number {number} out of range")
    if number < IMPLICIT_DATA_BASE_NUMBER:
        return "code"
    if number < EXPLICIT_BASE_NUMBER:
        return "implicit_data"
    return "explicit_data"


def check_region_type(number: int, region: Region) -> None:
    """Trap if a descriptor's type doesn't match its register slot."""
    cls = region_class(number)
    ok = (
        (cls == "code" and isinstance(region, ImplicitCodeRegion))
        or (cls == "implicit_data" and isinstance(region, ImplicitDataRegion))
        or (cls == "explicit_data" and isinstance(region, ExplicitDataRegion))
    )
    if not ok:
        raise RegionError(
            f"region {number} is a {cls} slot; got {type(region).__name__}")
