"""High-level HFI facade — the public API a sandboxing runtime uses.

Wraps :class:`HfiState` with cycle accounting and with the descriptor
convention the paper's runtimes follow: a sandbox is described by a
flags word, an exit handler, and a set of (region number, descriptor)
pairs which the runtime installs with ``hfi_set_region`` before entry
(§3.3.1).  Region descriptors live in memory, so each ``hfi_set_region``
additionally pays descriptor-load cycles — the per-transition metadata
cost visible in Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.sink import Telemetry, coalesce
from .faults import ExitInfo, FaultCause
from .regions import Region
from .registers import SandboxFlags
from .state import ExitOutcome, HfiState

#: 64-bit words a region descriptor occupies in memory (base/mask-or-
#: bound/permissions+type) — loaded by hfi_set_region.
_DESCRIPTOR_WORDS = 3


@dataclass
class SandboxDescriptor:
    """Everything needed to start a sandbox (paper appendix A.1)."""

    flags: SandboxFlags = field(default_factory=SandboxFlags)
    exit_handler: int = 0
    regions: List[Tuple[int, Region]] = field(default_factory=list)

    @classmethod
    def native(cls, exit_handler: int, regions, *,
               serialized: bool = True,
               switch_on_exit: bool = False) -> "SandboxDescriptor":
        """A native sandbox: untrusted code, syscalls interposed."""
        return cls(SandboxFlags(is_hybrid=False, is_serialized=serialized,
                                switch_on_exit=switch_on_exit),
                   exit_handler, list(regions))

    @classmethod
    def hybrid(cls, regions, *, exit_handler: int = 0,
               serialized: bool = False,
               switch_on_exit: bool = False) -> "SandboxDescriptor":
        """A hybrid sandbox: trusted (compiler-verified) code, e.g. Wasm."""
        return cls(SandboxFlags(is_hybrid=True, is_serialized=serialized,
                                switch_on_exit=switch_on_exit),
                   exit_handler, list(regions))


class Hfi:
    """One core's HFI device, with a cycle ledger.

    This is the façade used by the runtime layer and the analytic
    models; the cycle-level CPU simulator drives :class:`HfiState`
    directly instead, so both paths share one semantics.
    """

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 telemetry: Optional[Telemetry] = None):
        self.params = params
        self.state = HfiState(params)
        self.cycles = 0
        #: Telemetry sink; the facade (not HfiState) reports into it
        #: because facade calls are always architectural, never
        #: wrong-path (see core/state.py).
        self.telemetry = coalesce(telemetry)
        if self.telemetry.enabled:
            self.telemetry.register_component("hfi", self.state.stats)

    # ------------------------------------------------------------------
    def install_regions(self, regions) -> int:
        """Run ``hfi_set_region`` for each (number, region) pair.

        Charges the instruction cost plus the descriptor loads from
        memory (assumed L1-resident: the runtime just wrote them).
        """
        cost = 0
        load = self.params.base_cycles + self.params.l1d_hit_cycles
        for number, region in regions:
            cost += self.state.set_region(number, region)
            cost += _DESCRIPTOR_WORDS * load
        self.cycles += cost
        if self.telemetry.enabled and regions:
            self.telemetry.count("hfi.region_install", len(regions))
            self.telemetry.add_cycles("hfi.region_install", cost)
        return cost

    def enter(self, descriptor: SandboxDescriptor) -> int:
        """Install regions then ``hfi_enter``; returns total cycle cost."""
        cost = self.install_regions(descriptor.regions)
        cost += self._charge(self.state.enter(descriptor.flags,
                                              descriptor.exit_handler))
        if self.telemetry.enabled:
            self.telemetry.count("hfi.enter")
            self.telemetry.add_cycles("hfi.transition", cost)
            self.telemetry.begin_span(
                "hfi.sandbox", self.cycles,
                serialized=descriptor.flags.is_serialized,
                hybrid=descriptor.flags.is_hybrid)
        return cost

    def exit(self) -> ExitOutcome:
        outcome = self.state.exit()
        self.cycles += outcome.cycles
        if self.telemetry.enabled:
            self.telemetry.count("hfi.exit")
            self.telemetry.add_cycles("hfi.transition", outcome.cycles)
            self.telemetry.end_span(self.cycles, name="hfi.sandbox",
                                    cause=outcome.cause.name)
        return outcome

    def fault(self, cause: FaultCause, addr: int = 0) -> ExitOutcome:
        """An HFI violation while sandboxed (§3.3.2): disable the
        sandbox, record the cause MSR, leave via the OS signal path."""
        outcome = self.state.fault(cause, addr)
        self.cycles += outcome.cycles
        if self.telemetry.enabled:
            self.telemetry.count("hfi.fault")
            self.telemetry.add_cycles("hfi.transition", outcome.cycles)
            self.telemetry.end_span(self.cycles, name="hfi.sandbox",
                                    cause=outcome.cause.name)
        return outcome

    def reenter(self) -> int:
        return self._charge(self.state.reenter())

    def syscall(self, nr: int = 0) -> Optional[ExitOutcome]:
        outcome = self.state.syscall_attempt(nr)
        if outcome is not None:
            self.cycles += outcome.cycles
        return outcome

    def set_region(self, number: int, region: Optional[Region]) -> int:
        load = _DESCRIPTOR_WORDS * (self.params.base_cycles
                                    + self.params.l1d_hit_cycles)
        return self._charge(self.state.set_region(number, region) + load)

    def clear_region(self, number: int) -> int:
        return self._charge(self.state.clear_region(number))

    def clear_all_regions(self) -> int:
        return self._charge(self.state.clear_all_regions())

    def resize_region(self, number: int, new_bound: int) -> int:
        """Grow/shrink an explicit region — HFI heap growth (§6.1)."""
        region, _ = self.state.get_region(number)
        if region is None:
            raise ValueError(f"region {number} not configured")
        return self.set_region(number, region.resize(new_bound))

    def exit_info(self) -> ExitInfo:
        return self.state.exit_info()

    @property
    def cause_msr(self) -> FaultCause:
        return self.state.cause_msr

    def _charge(self, cost: int) -> int:
        self.cycles += cost
        return cost
