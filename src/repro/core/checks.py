"""The HFI check logic: prefix matching and the hmov comparator.

Two implementations of the explicit-region bounds check are provided:

* :func:`hmov_effective_address` — the *golden* architectural
  semantics (what the ISA manual would specify).
* :func:`hmov_check_hardware` — the paper's §4.2 comparator: a single
  32-bit compare plus sign-bit and overflow checks, made sufficient by
  the large/small region alignment constraints.

The ablation benchmark proves the two agree on the entire legal
descriptor space; the golden model is what the simulator executes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.registers import to_signed
from .faults import FaultCause, HfiFault
from .regions import (
    KIB64,
    ExplicitDataRegion,
    ImplicitCodeRegion,
    ImplicitDataRegion,
)

MASK64 = (1 << 64) - 1
VA_BITS = 48


def implicit_data_check(regions: List[Optional[ImplicitDataRegion]],
                        addr: int, size: int, is_write: bool) -> None:
    """First-match implicit region check for a load/store (§3.2).

    Every accessed byte must land in a region whose *first* prefix
    match grants the needed permission; otherwise HFI traps.
    """
    for byte_addr in (addr, addr + size - 1) if size > 1 else (addr,):
        matched = None
        for region in regions:
            if region is not None and region.matches(byte_addr):
                matched = region
                break
        if matched is None:
            raise HfiFault(FaultCause.DATA_OUT_OF_BOUNDS, byte_addr)
        allowed = (matched.permission_write if is_write
                   else matched.permission_read)
        if not allowed:
            raise HfiFault(FaultCause.DATA_PERMISSION, byte_addr,
                           "write" if is_write else "read")


def implicit_code_check(regions: List[Optional[ImplicitCodeRegion]],
                        addr: int) -> None:
    """Bound the program counter via prefix matching (§4.1).

    Runs in parallel with decode; a failure turns the decoded micro-ops
    into a faulting NOP so out-of-bounds code never executes, even
    speculatively.
    """
    for region in regions:
        if region is not None and region.matches(addr):
            if region.permission_exec:
                return
            raise HfiFault(FaultCause.CODE_OUT_OF_BOUNDS, addr,
                           "no execute permission")
    raise HfiFault(FaultCause.CODE_OUT_OF_BOUNDS, addr)


def hmov_effective_address(region: Optional[ExplicitDataRegion],
                           index: int, scale: int, disp: int,
                           size: int, is_write: bool) -> int:
    """Golden hmov semantics (§3.2): returns the effective address.

    The base operand is *replaced* by the region base; the remaining
    operands must be non-negative; the effective-address computation
    must not overflow; and every accessed byte must fall inside
    ``[base, base + bound)``.
    """
    if region is None:
        raise HfiFault(FaultCause.HMOV_REGION_CLEAR)
    if to_signed(disp) < 0:
        raise HfiFault(FaultCause.HMOV_NEGATIVE_OPERAND, detail="disp < 0")
    if to_signed(index) < 0:
        raise HfiFault(FaultCause.HMOV_NEGATIVE_OPERAND, detail="index < 0")
    offset = index * scale + disp
    ea = region.base_address + offset
    if ea + size - 1 > MASK64:
        raise HfiFault(FaultCause.HMOV_OVERFLOW, detail="EA overflow")
    if offset + size > region.bound:
        raise HfiFault(FaultCause.HMOV_OUT_OF_BOUNDS, ea)
    allowed = region.permission_write if is_write else region.permission_read
    if not allowed:
        raise HfiFault(FaultCause.HMOV_PERMISSION, ea,
                       "write" if is_write else "read")
    return ea


def hmov_check_hardware(region: ExplicitDataRegion, index: int, scale: int,
                        disp: int, size: int = 1) -> Tuple[bool, int]:
    """The §4.2 hardware comparator: (in_bounds, effective_address).

    Checks, using only cheap logic:
      1. disp and index sign bits are zero,
      2. the EA computation does not overflow,
      3. a *single 32-bit comparison* of the access's **last byte**
         against the bound:
         - large regions: LAST[47:16] < (base+bound)[47:16]
           (base and bound are 64 KiB aligned, so this is exact), or
         - small regions: LAST[31:0] < (base+bound)[31:0]
           (the region cannot span a 4 GiB boundary, so the low
           32 bits order correctly).

    The comparator operates on the address of the access's last byte
    (``EA + size - 1``), not its first: an x86 access is 1-8 bytes
    wide, and comparing only the first byte would admit an access
    whose tail wraps past 2^64 (where the golden semantics raise
    ``HMOV_OVERFLOW``) or dangles past the bound (``HMOV_OUT_OF_BOUNDS``).
    ``size`` defaults to 1 for byte-granular sweeps; the verify layer's
    comparator fuzzer exercises the full 1/2/4/8 space.

    Out of scope, by design (classified by ``verify.fuzz_checks``):
    permissions (checked by the permission bits, not the bounds
    comparator) and large regions extending past 2^48 (the comparator
    is bits [47:16] wide; such descriptors are outside the installable
    architectural space).
    """
    if to_signed(disp) < 0 or to_signed(index) < 0:
        return False, 0
    ea = region.base_address + index * scale + disp
    last = ea + size - 1
    if last > MASK64:
        return False, 0
    end = region.base_address + region.bound
    if region.is_large_region:
        ok = (last >> 16) < (end >> 16) if region.bound else False
        # the comparator is 32 bits wide: bits [47:16]
        ok = ok and (last >> VA_BITS) == 0
    else:
        if region.bound == 0:
            ok = False
        else:
            low_last = last & 0xFFFF_FFFF
            low_end = end - (region.base_address & ~0xFFFF_FFFF)
            same_block = (last >> 32) == (region.base_address >> 32)
            ok = same_block and low_last < low_end
    return ok, ea
