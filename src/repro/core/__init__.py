"""HFI core: regions, register file, state machine, and public facade.

This package is the paper's primary contribution (§3-§4): the HFI ISA
extension's architectural semantics, independent of any particular CPU
pipeline model.
"""

from .checks import (
    hmov_check_hardware,
    hmov_effective_address,
    implicit_code_check,
    implicit_data_check,
)
from .faults import ExitInfo, FaultCause, HfiFault
from .interface import Hfi, SandboxDescriptor
from .regions import (
    CODE_BASE_NUMBER,
    EXPLICIT_BASE_NUMBER,
    GIB4,
    IMPLICIT_DATA_BASE_NUMBER,
    KIB64,
    LARGE_MAX_BOUND,
    NUM_CODE_REGIONS,
    NUM_EXPLICIT_REGIONS,
    NUM_IMPLICIT_DATA_REGIONS,
    NUM_REGIONS,
    SMALL_MAX_BOUND,
    ExplicitDataRegion,
    ImplicitCodeRegion,
    ImplicitDataRegion,
    Region,
    RegionError,
    region_class,
)
from .registers import REGISTER_COUNT, HfiRegisterFile, SandboxFlags
from .state import ExitOutcome, HfiState

__all__ = [
    "Hfi", "SandboxDescriptor", "HfiState", "ExitOutcome",
    "HfiRegisterFile", "SandboxFlags", "REGISTER_COUNT",
    "ExplicitDataRegion", "ImplicitCodeRegion", "ImplicitDataRegion",
    "Region", "RegionError", "region_class", "ExitInfo", "FaultCause",
    "HfiFault", "implicit_code_check", "implicit_data_check",
    "hmov_effective_address", "hmov_check_hardware",
    "KIB64", "GIB4", "LARGE_MAX_BOUND", "SMALL_MAX_BOUND",
    "NUM_CODE_REGIONS", "NUM_IMPLICIT_DATA_REGIONS",
    "NUM_EXPLICIT_REGIONS", "NUM_REGIONS", "CODE_BASE_NUMBER",
    "IMPLICIT_DATA_BASE_NUMBER", "EXPLICIT_BASE_NUMBER",
]
