"""HFI fault causes, exit reasons, and the cause MSR.

Paper §3.3.2: on any sandbox exit (``hfi_exit``, an interposed system
call, an access violation, or a hardware trap) HFI records the cause in
a model-specific register that the trusted runtime's exit handler or
SIGSEGV handler reads to disambiguate what happened.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultCause(enum.IntEnum):
    """Values of the HFI cause MSR (nonzero values are HFI-originated)."""

    NONE = 0
    # exits
    EXIT_INSTRUCTION = 1      # sandbox executed hfi_exit
    SYSCALL = 2               # native sandbox executed syscall
    INT80 = 3                 # native sandbox executed int 0x80
    # faults
    DATA_OUT_OF_BOUNDS = 16   # load/store matched no implicit region
    DATA_PERMISSION = 17      # first-match region lacked the permission
    CODE_OUT_OF_BOUNDS = 18   # fetch outside code regions
    HMOV_OUT_OF_BOUNDS = 19   # hmov effective address >= bound
    HMOV_NEGATIVE_OPERAND = 20  # hmov disp or index negative (§3.2)
    HMOV_OVERFLOW = 21        # effective-address computation overflowed
    HMOV_PERMISSION = 22
    HMOV_REGION_CLEAR = 23    # hmov through an unconfigured region
    REGION_LOCKED = 24        # region update inside a native sandbox
    XRSTOR_IN_SANDBOX = 25    # xrstor w/ save-hfi-regs inside sandbox (§3.3.3)
    NO_CODE_REGION = 26       # hfi_enter with no code region mapped (§3.3.1)
    HARDWARE_TRAP = 27        # non-HFI trap while sandboxed (e.g. page fault)
    BAD_REENTER = 28          # hfi_reenter with no exited sandbox

    @property
    def is_exit(self) -> bool:
        return 0 < self < 16

    @property
    def is_fault(self) -> bool:
        return self >= 16


class HfiFault(Exception):
    """An HFI check failed.

    Architecturally this disables the sandbox, stores the cause in the
    MSR, and raises a trap delivered as SIGSEGV (§3.3.2).  The CPU
    simulator and runtime layers catch it and do exactly that.
    """

    def __init__(self, cause: FaultCause, addr: int = 0, detail: str = ""):
        super().__init__(f"{cause.name} at {addr:#x}" +
                         (f": {detail}" if detail else ""))
        self.cause = cause
        self.addr = addr
        self.detail = detail


@dataclass
class ExitInfo:
    """What the exit handler learns after a sandbox exit."""

    cause: FaultCause
    fault_addr: int = 0
    syscall_nr: int = 0

    @property
    def was_fault(self) -> bool:
        return self.cause.is_fault
