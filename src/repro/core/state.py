"""The per-core HFI state machine.

This is the architectural heart of the reproduction: enter/exit with
native/hybrid sandbox types, region-register updates with locking and
serialization rules (§4.3), system-call interposition (§4.4), and the
switch-on-exit Spectre extension (§3.4, §4.5).

All methods return cycle *costs* alongside their semantic effect so
both the cycle-level simulator and the analytic models charge the same
prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..telemetry.stats import HfiDeviceStats
from ..params import DEFAULT_PARAMS, MachineParams
from .checks import (
    hmov_effective_address,
    implicit_code_check,
    implicit_data_check,
)
from .faults import ExitInfo, FaultCause, HfiFault
from .regions import Region
from .registers import HfiRegisterFile, SandboxFlags


@dataclass
class ExitOutcome:
    """Result of leaving a sandbox (hfi_exit / syscall / fault)."""

    cause: FaultCause
    #: True if switch-on-exit restored the trusted-runtime bank instead
    #: of disabling HFI.
    switched_back: bool = False
    #: Branch target if control is redirected (exit handler), else None.
    redirect_to: Optional[int] = None
    #: Cycle cost of the transition, including serialization if any.
    cycles: int = 0


class HfiState:
    """HFI state for one core: register file + shadow bank + MSR."""

    def __init__(self, params: MachineParams = DEFAULT_PARAMS):
        self.params = params
        self.regs = HfiRegisterFile()
        #: Shadow bank used by switch-on-exit (§4.5) — doubles the
        #: internal register count when the extension is in use.
        self._shadow: Optional[HfiRegisterFile] = None
        #: Last-exited configuration, for hfi_reenter.
        self._reenter_bank: Optional[HfiRegisterFile] = None
        #: Count of pipeline serializations performed (observability).
        self.serializations = 0
        #: Lifecycle counters sampled by :meth:`stats`.  These live on
        #: the state object itself (not a telemetry sink) deliberately:
        #: the CPU snapshots/restores HfiState around speculation
        #: windows, so counters here are squashed with the wrong path,
        #: while a shared sink would leak wrong-path events.  Sink
        #: hooks therefore live one layer up, in the commit-path
        #: callers (cpu.machine, core.interface).
        self.enters = 0
        self.exits = 0
        self.region_installs = 0
        #: When a CPU speculation window is open, this points at its
        #: undo journal; mutating methods save this state on first
        #: write so the wrong path rolls back without any deepcopy.
        self._journal = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.regs.enabled

    @property
    def flags(self) -> SandboxFlags:
        return self.regs.flags

    @property
    def cause_msr(self) -> FaultCause:
        return self.regs.cause_msr

    def read_cause_msr(self) -> FaultCause:
        """The exit handler / signal handler reads this to learn why it
        was invoked (§3.3.2)."""
        return self.regs.cause_msr

    def stats(self) -> HfiDeviceStats:
        """Uniform component-stats snapshot (``repro.telemetry``)."""
        return HfiDeviceStats(
            component="hfi", enabled=self.regs.enabled,
            is_hybrid=self.regs.flags.is_hybrid,
            serializations=self.serializations, enters=self.enters,
            exits=self.exits, region_installs=self.region_installs)

    def snapshot(self) -> HfiRegisterFile:
        """For xsave with the save-hfi-regs flag (§3.3.3)."""
        return self.regs.snapshot()

    def restore(self, saved: HfiRegisterFile) -> None:
        """For xrstor.  Traps if executed inside a native sandbox."""
        if self._journal is not None:
            self._journal.snapshot_hfi(self)
        if self.regs.locked:
            raise HfiFault(FaultCause.XRSTOR_IN_SANDBOX)
        self.regs.restore(saved)

    # ------------------------------------------------------------------
    # region management (§4.3)
    # ------------------------------------------------------------------
    def set_region(self, number: int, region: Optional[Region]) -> int:
        """hfi_set_region: write a region register; returns cycle cost.

        Locked inside native sandboxes.  Serializes when executed in a
        hybrid sandbox (to keep in-flight operations correct); when HFI
        is disabled no serialization is needed because an hfi_enter
        (which may serialize) always follows before checks take effect.
        """
        if self._journal is not None:
            self._journal.snapshot_hfi(self)
        if self.regs.locked:
            raise HfiFault(FaultCause.REGION_LOCKED)
        self.regs.set(number, region)
        self.region_installs += 1
        cost = self.params.hfi_set_region_cycles
        if self.regs.enabled and not self.params.hfi_region_rename:
            # hybrid sandbox: serialize so in-flight operations see a
            # consistent region set (§4.3) — unless the metadata
            # registers are renamed like GPRs (the §4.3 extension).
            cost += self.params.serialize_drain_cycles
            self.serializations += 1
        return cost

    def get_region(self, number: int) -> Tuple[Optional[Region], int]:
        if self.regs.locked:
            raise HfiFault(FaultCause.REGION_LOCKED)
        return self.regs.get(number), self.params.hfi_clear_region_cycles

    def clear_region(self, number: int) -> int:
        if self._journal is not None:
            self._journal.snapshot_hfi(self)
        if self.regs.locked:
            raise HfiFault(FaultCause.REGION_LOCKED)
        self.regs.set(number, None)
        cost = self.params.hfi_clear_region_cycles
        if self.regs.enabled:  # hybrid sandbox: serialize (§4.3)
            cost += self.params.serialize_drain_cycles
            self.serializations += 1
        return cost

    def clear_all_regions(self) -> int:
        if self._journal is not None:
            self._journal.snapshot_hfi(self)
        if self.regs.locked:
            raise HfiFault(FaultCause.REGION_LOCKED)
        self.regs.clear_all()
        cost = self.params.hfi_clear_region_cycles
        if self.regs.enabled:
            cost += self.params.serialize_drain_cycles
            self.serializations += 1
        return cost

    # ------------------------------------------------------------------
    # enter / exit / reenter (§3.3, §4.4)
    # ------------------------------------------------------------------
    def enter(self, flags: SandboxFlags, exit_handler: int = 0) -> int:
        """hfi_enter: enable sandboxing; returns cycle cost.

        With ``switch_on_exit`` the current register bank (the trusted
        runtime's sandbox) is preserved in the shadow bank before the
        new configuration takes effect (§4.5), and entry need not
        serialize; otherwise ``is_serialized`` adds a full pipeline
        drain (§3.4).
        """
        if self._journal is not None:
            self._journal.snapshot_hfi(self)
        cost = self.params.hfi_enter_cycles
        self.enters += 1
        if flags.switch_on_exit:
            self._shadow = self.regs.snapshot()
        if flags.is_serialized:
            cost += self.params.serialize_drain_cycles
            self.serializations += 1
        self.regs.flags = flags
        self.regs.exit_handler = exit_handler
        self.regs.enabled = True
        self.regs.cause_msr = FaultCause.NONE
        return cost

    def exit(self) -> ExitOutcome:
        """hfi_exit: leave the sandbox (or switch back, §4.5)."""
        if not self.regs.enabled:
            # hfi_exit outside a sandbox is a no-op fall-through.
            return ExitOutcome(FaultCause.NONE, cycles=1)
        return self._leave(FaultCause.EXIT_INSTRUCTION)

    def syscall_attempt(self, nr: int = 0,
                        legacy: bool = False) -> Optional[ExitOutcome]:
        """Called when sandboxed code executes a syscall instruction.

        Hybrid sandboxes may call the OS directly (trusted code, §3.3);
        native sandboxes have the syscall converted into a jump to the
        exit handler by a one-cycle microcode check (§4.4).  Returns
        None when the syscall should proceed to the kernel.
        """
        if not self.regs.enabled or self.regs.flags.is_hybrid:
            return None
        cause = FaultCause.INT80 if legacy else FaultCause.SYSCALL
        outcome = self._leave(cause)
        outcome.cycles += self.params.hfi_syscall_check_cycles
        return outcome

    def fault(self, cause: FaultCause, addr: int = 0) -> ExitOutcome:
        """An HFI violation or hardware trap while sandboxed (§3.3.2).

        Disables the sandbox, records the cause, and (architecturally)
        raises the trap the OS turns into SIGSEGV.  Returns the exit
        outcome so callers can model the signal path.
        """
        outcome = self._leave(cause)
        outcome.redirect_to = None  # faults go via the OS signal path
        return outcome

    def _leave(self, cause: FaultCause) -> ExitOutcome:
        if self._journal is not None:
            self._journal.snapshot_hfi(self)
        flags = self.regs.flags
        self.exits += 1
        self.regs.cause_msr = cause
        self._reenter_bank = self.regs.snapshot()
        cost = self.params.hfi_exit_cycles
        if flags.switch_on_exit and self._shadow is not None:
            # Atomically switch back to the trusted runtime's bank;
            # HFI stays enabled, no serialization needed (§4.5).
            cause_now = cause
            self.regs.restore(self._shadow)
            self.regs.cause_msr = cause_now
            self._shadow = None
            return ExitOutcome(cause, switched_back=True, cycles=cost)
        if flags.is_serialized:
            cost += self.params.serialize_drain_cycles
            self.serializations += 1
        self.regs.enabled = False
        redirect = self.regs.exit_handler or None
        if cause.is_fault:
            redirect = None
        return ExitOutcome(cause, redirect_to=redirect, cycles=cost)

    def reenter(self) -> int:
        """hfi_reenter: resume the sandbox that was just exited.

        Like ``hfi_set_region``, the instruction is locked inside a
        native sandbox: restoring the last-exited bank would rewrite
        the (frozen) region registers from inside untrusted code.
        """
        if self._journal is not None:
            self._journal.snapshot_hfi(self)
        if self.regs.locked:
            raise HfiFault(FaultCause.REGION_LOCKED)
        if self._reenter_bank is None:
            raise HfiFault(FaultCause.BAD_REENTER)
        # The shadow bank pairs with the enter that saved it; installing
        # the last-exited bank breaks that pairing, so a pending shadow
        # must not survive into the restored sandbox's next exit (it
        # would swap in another bank's regions while still enabled).
        self._shadow = None
        bank = self._reenter_bank
        flags = bank.flags
        self.enters += 1
        cost = self.params.hfi_enter_cycles
        if flags.is_serialized:
            cost += self.params.serialize_drain_cycles
            self.serializations += 1
        self.regs.restore(bank)
        self.regs.enabled = True
        self.regs.cause_msr = FaultCause.NONE
        return cost

    def exit_info(self) -> ExitInfo:
        return ExitInfo(cause=self.regs.cause_msr)

    # ------------------------------------------------------------------
    # access checks (§4.1, §4.2) — called by the CPU's data/fetch paths
    # ------------------------------------------------------------------
    def check_data_access(self, addr: int, size: int, is_write: bool) -> None:
        """Implicit data-region check for a non-hmov load/store."""
        if not self.regs.enabled:
            return
        implicit_data_check(self.regs.data, addr, size, is_write)

    def check_code_fetch(self, addr: int) -> None:
        """Implicit code-region check on the program counter."""
        if not self.regs.enabled:
            return
        implicit_code_check(self.regs.code, addr)

    def hmov_address(self, region_index: int, index: int, scale: int,
                     disp: int, size: int, is_write: bool) -> int:
        """Resolve an hmov effective address through explicit region
        ``region_index`` (0-3), enforcing §3.2's trap rules.

        hmov outside HFI mode is an invalid-opcode-style fault — we
        model it as an HFI fault with the region-clear cause.
        """
        if not self.regs.enabled:
            raise HfiFault(FaultCause.HMOV_REGION_CLEAR,
                           detail="hmov with HFI disabled")
        region = self.regs.explicit[region_index]
        return hmov_effective_address(region, index, scale, disp,
                                      size, is_write)

    def implicit_regions_cover(self, addr: int, size: int,
                               is_write: bool) -> bool:
        """Non-trapping variant of :meth:`check_data_access`."""
        try:
            implicit_data_check(self.regs.data, addr, size, is_write)
            return True
        except HfiFault:
            return False
