"""The HFI register file: 22 internal 64-bit registers per core.

Paper §4: 10 regions x 2 registers each, one exit-handler register and
one configuration register — plus an optional duplicate bank for the
switch-on-exit extension (§4.5).  Only the *currently executing*
sandbox's state is on-chip, which is what makes HFI scale to an
unbounded number of sandboxes (§3 property 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .faults import FaultCause
from .regions import (
    CODE_BASE_NUMBER,
    EXPLICIT_BASE_NUMBER,
    IMPLICIT_DATA_BASE_NUMBER,
    NUM_CODE_REGIONS,
    NUM_EXPLICIT_REGIONS,
    NUM_IMPLICIT_DATA_REGIONS,
    NUM_REGIONS,
    ExplicitDataRegion,
    ImplicitCodeRegion,
    ImplicitDataRegion,
    Region,
    check_region_type,
)

#: Registers per region (base+mask or base+bound).
_REGS_PER_REGION = 2

#: Total internal 64-bit registers, matching the paper's count (§4).
REGISTER_COUNT = NUM_REGIONS * _REGS_PER_REGION + 2  # == 22


@dataclass(frozen=True)
class SandboxFlags:
    """``hfi_enter`` option flags (paper appendix A.1)."""

    is_hybrid: bool = False
    is_serialized: bool = False
    switch_on_exit: bool = False


@dataclass
class HfiRegisterFile:
    """Architectural HFI state for one core."""

    code: List[Optional[ImplicitCodeRegion]] = field(
        default_factory=lambda: [None] * NUM_CODE_REGIONS)
    data: List[Optional[ImplicitDataRegion]] = field(
        default_factory=lambda: [None] * NUM_IMPLICIT_DATA_REGIONS)
    explicit: List[Optional[ExplicitDataRegion]] = field(
        default_factory=lambda: [None] * NUM_EXPLICIT_REGIONS)
    exit_handler: int = 0
    flags: SandboxFlags = field(default_factory=SandboxFlags)
    enabled: bool = False
    cause_msr: FaultCause = FaultCause.NONE

    @property
    def locked(self) -> bool:
        """Region registers are locked inside a *native* sandbox (§3.3.1)."""
        return self.enabled and not self.flags.is_hybrid

    # ------------------------------------------------------------------
    # region slot access by paper region number
    # ------------------------------------------------------------------
    def get(self, number: int) -> Optional[Region]:
        slot, idx = self._slot(number)
        return slot[idx]

    def set(self, number: int, region: Optional[Region]) -> None:
        if region is not None:
            check_region_type(number, region)
        slot, idx = self._slot(number)
        slot[idx] = region

    def _slot(self, number: int):
        if number < 0 or number >= NUM_REGIONS:
            raise IndexError(f"region number {number} out of range")
        if number < IMPLICIT_DATA_BASE_NUMBER:
            return self.code, number - CODE_BASE_NUMBER
        if number < EXPLICIT_BASE_NUMBER:
            return self.data, number - IMPLICIT_DATA_BASE_NUMBER
        return self.explicit, number - EXPLICIT_BASE_NUMBER

    def clear_all(self) -> None:
        self.code = [None] * NUM_CODE_REGIONS
        self.data = [None] * NUM_IMPLICIT_DATA_REGIONS
        self.explicit = [None] * NUM_EXPLICIT_REGIONS

    def has_code_region(self) -> bool:
        return any(r is not None and r.permission_exec for r in self.code)

    def snapshot(self) -> "HfiRegisterFile":
        """Copy the full register file (xsave / switch-on-exit bank).

        Slot-wise, not deepcopy: regions and flags are frozen
        dataclasses, so fresh lists of shared references make the bank
        fully independent of later writes to this file.
        """
        return HfiRegisterFile(
            code=list(self.code), data=list(self.data),
            explicit=list(self.explicit), exit_handler=self.exit_handler,
            flags=self.flags, enabled=self.enabled,
            cause_msr=self.cause_msr)

    def restore(self, saved: "HfiRegisterFile") -> None:
        """Adopt a saved bank in place (this object's identity persists,
        and ``saved`` stays reusable — its lists are copied)."""
        self.code = list(saved.code)
        self.data = list(saved.data)
        self.explicit = list(saved.explicit)
        self.exit_handler = saved.exit_handler
        self.flags = saved.flags
        self.enabled = saved.enabled
        self.cause_msr = saved.cause_msr
