"""Binary layout of HFI descriptors in memory.

``hfi_set_region`` and ``hfi_enter`` take a pointer to an in-memory
descriptor and move it into HFI's internal registers (§5.2 emulation:
"moving the hfi region metadata from memory to general-purpose
registers"; §6.4.2: "HFI takes a few cycles to move metadata from
memory to HFI registers on each transition").  This module defines the
layout so the cycle simulator performs *real* loads for those moves.

Region descriptor (24 bytes, 3 words):
  word0: type/permission flags
  word1: base_prefix / base_address
  word2: lsb_mask / bound

Sandbox descriptor (16 bytes, 2 words):
  word0: flags (bit0 is_hybrid, bit1 is_serialized, bit2 switch_on_exit)
  word1: exit handler address
"""

from __future__ import annotations

import struct
from typing import Tuple

from .regions import (
    ExplicitDataRegion,
    ImplicitCodeRegion,
    ImplicitDataRegion,
    Region,
)
from .registers import SandboxFlags

REGION_DESCRIPTOR_BYTES = 24
SANDBOX_DESCRIPTOR_BYTES = 16

_TYPE_CODE = 0
_TYPE_IMPLICIT_DATA = 1
_TYPE_EXPLICIT = 2

_F_READ = 1 << 2
_F_WRITE = 1 << 3
_F_EXEC = 1 << 4
_F_LARGE = 1 << 5


def encode_region(region: Region) -> bytes:
    """Pack a region descriptor into its 24-byte memory form."""
    if isinstance(region, ImplicitCodeRegion):
        flags = _TYPE_CODE | (_F_EXEC if region.permission_exec else 0)
        return struct.pack("<QQQ", flags, region.base_prefix,
                           region.lsb_mask)
    if isinstance(region, ImplicitDataRegion):
        flags = _TYPE_IMPLICIT_DATA
        flags |= _F_READ if region.permission_read else 0
        flags |= _F_WRITE if region.permission_write else 0
        return struct.pack("<QQQ", flags, region.base_prefix,
                           region.lsb_mask)
    if isinstance(region, ExplicitDataRegion):
        flags = _TYPE_EXPLICIT
        flags |= _F_READ if region.permission_read else 0
        flags |= _F_WRITE if region.permission_write else 0
        flags |= _F_LARGE if region.is_large_region else 0
        return struct.pack("<QQQ", flags, region.base_address, region.bound)
    raise TypeError(f"not a region: {region!r}")


def decode_region(data: bytes) -> Region:
    """Unpack a 24-byte region descriptor."""
    flags, word1, word2 = struct.unpack("<QQQ", data)
    kind = flags & 0b11
    if kind == _TYPE_CODE:
        return ImplicitCodeRegion(base_prefix=word1, lsb_mask=word2,
                                  permission_exec=bool(flags & _F_EXEC))
    if kind == _TYPE_IMPLICIT_DATA:
        return ImplicitDataRegion(base_prefix=word1, lsb_mask=word2,
                                  permission_read=bool(flags & _F_READ),
                                  permission_write=bool(flags & _F_WRITE))
    if kind == _TYPE_EXPLICIT:
        return ExplicitDataRegion(base_address=word1, bound=word2,
                                  permission_read=bool(flags & _F_READ),
                                  permission_write=bool(flags & _F_WRITE),
                                  is_large_region=bool(flags & _F_LARGE))
    raise ValueError(f"bad region descriptor type {kind}")


def encode_sandbox(flags: SandboxFlags, exit_handler: int = 0) -> bytes:
    """Pack an hfi_enter sandbox descriptor into its 16-byte form."""
    word0 = ((1 if flags.is_hybrid else 0)
             | (2 if flags.is_serialized else 0)
             | (4 if flags.switch_on_exit else 0))
    return struct.pack("<QQ", word0, exit_handler)


def decode_sandbox(data: bytes) -> Tuple[SandboxFlags, int]:
    """Unpack a 16-byte sandbox descriptor."""
    word0, handler = struct.unpack("<QQ", data)
    return SandboxFlags(is_hybrid=bool(word0 & 1),
                        is_serialized=bool(word0 & 2),
                        switch_on_exit=bool(word0 & 4)), handler
