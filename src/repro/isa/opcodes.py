"""Opcode definitions for the reduced x86-64-like ISA with HFI extensions.

The opcode set is the minimum needed to express the paper's workloads
and instrumentation: plain data movement, ALU arithmetic, control flow
(direct, conditional, and indirect), system interaction (``syscall``,
``cpuid``, fences, cache flushes, ``rdtsc``), Intel MPK's ``wrpkru``,
and the eight HFI instructions plus the four ``hmov`` variants
(paper Fig. 6 and §4).
"""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    # --- data movement ---
    MOV = "mov"            # reg<-reg / reg<-imm / load / store
    LEA = "lea"
    PUSH = "push"
    POP = "pop"
    HMOV0 = "hmov0"        # explicit-region relative mov (region 0)
    HMOV1 = "hmov1"
    HMOV2 = "hmov2"
    HMOV3 = "hmov3"

    # --- ALU ---
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    NEG = "neg"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    IMUL = "imul"
    IDIV = "idiv"          # dst = dst / src (truncated signed division)
    IMOD = "imod"          # dst = dst % src (remainder helper)
    CMP = "cmp"
    TEST = "test"
    INC = "inc"
    DEC = "dec"

    # --- control flow ---
    JMP = "jmp"            # direct or indirect (register) jump
    JE = "je"
    JNE = "jne"
    JL = "jl"
    JLE = "jle"
    JG = "jg"
    JGE = "jge"
    JB = "jb"              # unsigned <
    JBE = "jbe"
    JA = "ja"              # unsigned >
    JAE = "jae"
    CALL = "call"
    RET = "ret"

    # --- system ---
    SYSCALL = "syscall"
    INT80 = "int80"        # legacy syscall entry; HFI interposes on it too
    CPUID = "cpuid"        # serializing (used by HFI software emulation)
    LFENCE = "lfence"
    CLFLUSH = "clflush"
    RDTSC = "rdtsc"
    NOP = "nop"
    HLT = "hlt"
    XSAVE = "xsave"
    XRSTOR = "xrstor"
    WRPKRU = "wrpkru"      # MPK domain switch
    RDPKRU = "rdpkru"

    # --- HFI extension (paper appendix A.1) ---
    HFI_ENTER = "hfi_enter"
    HFI_EXIT = "hfi_exit"
    HFI_REENTER = "hfi_reenter"
    HFI_SET_REGION = "hfi_set_region"
    HFI_GET_REGION = "hfi_get_region"
    HFI_CLEAR_REGION = "hfi_clear_region"
    HFI_CLEAR_ALL_REGIONS = "hfi_clear_all_regions"


#: hmov opcode -> explicit region index it addresses.
HMOV_REGION = {
    Opcode.HMOV0: 0,
    Opcode.HMOV1: 1,
    Opcode.HMOV2: 2,
    Opcode.HMOV3: 3,
}

#: Conditional jump opcodes (consult flags + branch predictor).
CONDITIONAL_JUMPS = frozenset({
    Opcode.JE, Opcode.JNE, Opcode.JL, Opcode.JLE, Opcode.JG,
    Opcode.JGE, Opcode.JB, Opcode.JBE, Opcode.JA, Opcode.JAE,
})

#: All control-flow opcodes.
CONTROL_FLOW = CONDITIONAL_JUMPS | {Opcode.JMP, Opcode.CALL, Opcode.RET}

#: Instructions that fully serialize the pipeline.
SERIALIZING = frozenset({Opcode.CPUID, Opcode.LFENCE})

#: System-call entry opcodes HFI interposes on (§4.4: all variations).
SYSCALL_OPS = frozenset({Opcode.SYSCALL, Opcode.INT80})

#: HFI region-management opcodes.
HFI_REGION_OPS = frozenset({
    Opcode.HFI_SET_REGION, Opcode.HFI_GET_REGION,
    Opcode.HFI_CLEAR_REGION, Opcode.HFI_CLEAR_ALL_REGIONS,
})

#: All HFI-extension opcodes.
HFI_OPS = HFI_REGION_OPS | {
    Opcode.HFI_ENTER, Opcode.HFI_EXIT, Opcode.HFI_REENTER,
}
