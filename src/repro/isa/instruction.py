"""Instruction objects and the byte-length encoding model.

Encoded lengths matter for fidelity: the paper attributes 445.gobmk's
small HFI slowdown to the *longer encodings* of ``hmov`` pressuring the
instruction cache (§6.1), and Table 1 reports Swivel's binary bloat.
The length model below follows x86-64 conventions closely enough to
reproduce both effects: REX prefixes, ModRM/SIB bytes, 1/4-byte
displacements and immediates, and a 2-byte prefix for ``hmov``
(§5.2: "a new prefix for x86's mov").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import CONDITIONAL_JUMPS, HMOV_REGION, Opcode
from .operands import Imm, LabelRef, Mem, Operand
from .registers import Reg


@dataclass
class Instruction:
    """A single decoded instruction.

    ``operands`` are in destination-first (Intel) order.  ``addr`` and
    ``length`` are filled in by the assembler during layout.
    """

    opcode: Opcode
    operands: Tuple[Operand, ...] = ()
    label: Optional[str] = None      # label attached *to* this instruction
    addr: int = 0                    # byte address after layout
    length: int = 0                  # encoded byte length
    comment: str = ""
    #: Predecoded handler cache (valid only for the laid-out ``addr``);
    #: owned by :mod:`repro.cpu.decode`, excluded from equality/repr.
    _decoded: Optional[object] = field(default=None, init=False,
                                       repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.length:
            self.length = encoded_length(self.opcode, self.operands)

    @property
    def is_hmov(self) -> bool:
        return self.opcode in HMOV_REGION

    @property
    def mem_operand(self) -> Optional[Mem]:
        for op in self.operands:
            if isinstance(op, Mem):
                return op
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ops = ", ".join(repr(o) for o in self.operands)
        lbl = f"{self.label}: " if self.label else ""
        return f"{lbl}{self.opcode.value} {ops}".strip()


def _disp_len(disp: int) -> int:
    """Displacement encoding size: 0, 1, or 4 bytes."""
    if disp == 0:
        return 0
    if -128 <= disp <= 127:
        return 1
    return 4


def _imm_len(value: int) -> int:
    """Immediate encoding size: 1, 4, or 8 bytes."""
    if -128 <= value <= 127:
        return 1
    if -(1 << 31) <= value < (1 << 32):
        return 4
    return 8


def _mem_len(mem: Mem) -> int:
    """ModRM + optional SIB + displacement bytes for a memory operand."""
    length = 1  # ModRM
    if mem.index is not None or mem.base is None:
        length += 1  # SIB
    if mem.base is None:
        length += 4  # absolute disp32 (RIP-relative or abs)
    else:
        length += _disp_len(mem.disp)
    return length


def encoded_length(opcode: Opcode, operands: Tuple[Operand, ...]) -> int:
    """Return the modelled encoded byte length of an instruction.

    This is a faithful-in-spirit x86-64 length model, not a byte-exact
    encoder; what matters downstream is that relative code sizes across
    isolation strategies are realistic.
    """
    if opcode is Opcode.NOP:
        return 1
    if opcode is Opcode.RET:
        return 1
    if opcode in (Opcode.PUSH, Opcode.POP):
        return 2
    if opcode in (Opcode.SYSCALL, Opcode.CPUID, Opcode.RDTSC,
                  Opcode.INT80, Opcode.HLT):
        return 2
    if opcode in (Opcode.LFENCE, Opcode.CLFLUSH, Opcode.WRPKRU,
                  Opcode.RDPKRU, Opcode.XSAVE, Opcode.XRSTOR):
        return 3
    if opcode in CONDITIONAL_JUMPS:
        return 6  # jcc rel32 (conservative: long form)
    if opcode in (Opcode.JMP, Opcode.CALL):
        target = operands[0] if operands else None
        if isinstance(target, Reg):
            return 3  # jmp/call r64 (REX + FF /4)
        return 5  # rel32
    if opcode in (Opcode.HFI_ENTER, Opcode.HFI_EXIT, Opcode.HFI_REENTER,
                  Opcode.HFI_CLEAR_ALL_REGIONS):
        return 4  # two-byte opcode + REX + modrm-ish
    if opcode in (Opcode.HFI_SET_REGION, Opcode.HFI_GET_REGION,
                  Opcode.HFI_CLEAR_REGION):
        length = 4
        for op in operands:
            if isinstance(op, Mem):
                length += _mem_len(op)
            elif isinstance(op, Imm):
                length += 1  # region number fits a byte
        return length

    # General two-operand forms (mov/alu/lea/hmov/...)
    length = 1  # primary opcode byte
    length += 1  # REX.W prefix (64-bit operand size throughout)
    if opcode in HMOV_REGION:
        # hmov uses an added 2-byte prefix on top of a normal mov
        # encoding (§5.2), giving it the "longer encoding" the paper
        # blames for 445.gobmk's i-cache pressure.
        length += 2

    has_modrm = False
    for op in operands:
        if isinstance(op, Mem):
            length += _mem_len(op)
            has_modrm = True
        elif isinstance(op, Reg):
            if not has_modrm:
                length += 1
                has_modrm = True
        elif isinstance(op, Imm):
            length += _imm_len(op.value)
        elif isinstance(op, LabelRef):
            length += 4
    return length


@dataclass
class Program:
    """An assembled program: laid-out instructions plus label map."""

    instructions: list = field(default_factory=list)
    labels: dict = field(default_factory=dict)   # name -> byte addr
    base: int = 0

    @property
    def size(self) -> int:
        """Total encoded byte size (Swivel bloat / i-cache footprint)."""
        if not self.instructions:
            return 0
        last = self.instructions[-1]
        return last.addr + last.length - self.base

    def at(self, addr: int) -> Optional[Instruction]:
        """Return the instruction at byte address ``addr`` (exact match)."""
        return self._by_addr.get(addr)

    def finalize(self) -> None:
        """Build the address index after layout."""
        self._by_addr = {ins.addr: ins for ins in self.instructions}

    def invalidate_decode_cache(self) -> None:
        """Drop all predecoded handlers (call after relaying-out)."""
        self.__dict__.pop("_decode_cache", None)
        for ins in self.instructions:
            ins._decoded = None

    def __len__(self) -> int:
        return len(self.instructions)
