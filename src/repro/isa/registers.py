"""General-purpose registers and flags for the reduced x86-64-like ISA.

The simulator models the 16 x86-64 general-purpose registers plus the
instruction pointer and a condition-flags word.  Register identity is a
plain :class:`enum.Enum`; architectural state lives in
:class:`RegisterFile`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

MASK64 = (1 << 64) - 1


class Reg(enum.Enum):
    """The sixteen x86-64 general-purpose registers."""

    # Members are singletons, so identity hashing is correct — and it
    # replaces Enum's Python-level ``hash(self._name_)`` with a C slot.
    # Register-file dicts are keyed by Reg on the interpreter hot path,
    # where the default hash shows up as ~5% of total runtime.
    __hash__ = object.__hash__

    RAX = "rax"
    RBX = "rbx"
    RCX = "rcx"
    RDX = "rdx"
    RSI = "rsi"
    RDI = "rdi"
    RBP = "rbp"
    RSP = "rsp"
    R8 = "r8"
    R9 = "r9"
    R10 = "r10"
    R11 = "r11"
    R12 = "r12"
    R13 = "r13"
    R14 = "r14"
    R15 = "r15"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"%{self.value}"


#: Registers a compiler may allocate freely (RSP is the stack pointer).
ALLOCATABLE = [r for r in Reg if r is not Reg.RSP]

#: x86-64 SysV caller-saved registers (used by transition code).
CALLER_SAVED = [
    Reg.RAX, Reg.RCX, Reg.RDX, Reg.RSI, Reg.RDI,
    Reg.R8, Reg.R9, Reg.R10, Reg.R11,
]

#: x86-64 SysV callee-saved registers.
CALLEE_SAVED = [Reg.RBX, Reg.RBP, Reg.R12, Reg.R13, Reg.R14, Reg.R15]


@dataclass
class Flags:
    """Condition flags produced by ALU operations."""

    zf: bool = False  # zero
    sf: bool = False  # sign
    cf: bool = False  # carry (unsigned overflow)
    of: bool = False  # signed overflow

    def copy(self) -> "Flags":
        return Flags(self.zf, self.sf, self.cf, self.of)


@dataclass
class RegisterFile:
    """Architectural register state: 16 GPRs, RIP, and flags.

    Values are stored as unsigned 64-bit integers; helpers convert to and
    from two's-complement signed interpretation where needed.
    """

    regs: Dict[Reg, int] = field(default_factory=lambda: {r: 0 for r in Reg})
    rip: int = 0
    flags: Flags = field(default_factory=Flags)

    def read(self, reg: Reg) -> int:
        return self.regs[reg]

    def write(self, reg: Reg, value: int) -> None:
        self.regs[reg] = value & MASK64

    def copy(self) -> "RegisterFile":
        clone = RegisterFile()
        clone.regs = dict(self.regs)
        clone.rip = self.rip
        clone.flags = self.flags.copy()
        return clone

    def load_from(self, other: "RegisterFile") -> None:
        """Adopt ``other``'s GPRs and flags *in place* (rip untouched).

        Used by ``xrstor``: the live register file's identity must not
        change, since callers (and the speculation journal) hold direct
        references to ``regs`` and ``flags``.
        """
        self.regs.update(other.regs)
        flags, saved = self.flags, other.flags
        flags.zf = saved.zf
        flags.sf = saved.sf
        flags.cf = saved.cf
        flags.of = saved.of


def to_signed(value: int, bits: int = 64) -> int:
    """Interpret ``value`` as a two's-complement signed integer."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def to_unsigned(value: int, bits: int = 64) -> int:
    """Wrap ``value`` into the unsigned ``bits``-wide range."""
    return value & ((1 << bits) - 1)
