"""A small two-pass assembler with a builder-style API.

Usage::

    asm = Assembler(base=0x40_0000)
    asm.mov(Reg.RAX, Imm(0))
    asm.label("loop")
    asm.add(Reg.RAX, Imm(1))
    asm.cmp(Reg.RAX, Imm(10))
    asm.jne("loop")
    asm.hlt()
    program = asm.assemble()

Labels resolve to byte addresses; jump targets may be label names,
:class:`LabelRef`, absolute addresses (``Imm``), or registers (indirect).
"""

from __future__ import annotations

from typing import List, Optional, Union

from .instruction import Instruction, Program
from .opcodes import Opcode
from .operands import Imm, LabelRef, Mem, Operand
from .registers import Reg

Target = Union[str, LabelRef, Imm, Reg]


class AssemblerError(Exception):
    """Raised for unresolved labels or malformed operands."""


def _as_target(target: Target) -> Operand:
    if isinstance(target, str):
        return LabelRef(target)
    return target


class Assembler:
    """Accumulates instructions, then lays them out and resolves labels."""

    def __init__(self, base: int = 0x40_0000):
        self.base = base
        self._instructions: List[Instruction] = []
        self._pending_label: Optional[str] = None

    # ------------------------------------------------------------------
    # emission core
    # ------------------------------------------------------------------
    def emit(self, opcode: Opcode, *operands: Operand,
             comment: str = "") -> Instruction:
        ins = Instruction(opcode, tuple(operands), comment=comment)
        if self._pending_label is not None:
            ins.label = self._pending_label
            self._pending_label = None
        self._instructions.append(ins)
        return ins

    def label(self, name: str) -> None:
        if self._pending_label is not None:
            # Two labels on the same spot: emit a nop to anchor the first.
            self.emit(Opcode.NOP)
        self._pending_label = name

    def extend(self, instructions: List[Instruction]) -> None:
        for ins in instructions:
            if self._pending_label is not None and ins.label is None:
                ins.label = self._pending_label
                self._pending_label = None
            self._instructions.append(ins)

    # ------------------------------------------------------------------
    # mnemonics
    # ------------------------------------------------------------------
    def mov(self, dst, src, **kw):
        return self.emit(Opcode.MOV, dst, src, **kw)

    def lea(self, dst: Reg, src: Mem, **kw):
        return self.emit(Opcode.LEA, dst, src, **kw)

    def push(self, src, **kw):
        return self.emit(Opcode.PUSH, src, **kw)

    def pop(self, dst: Reg, **kw):
        return self.emit(Opcode.POP, dst, **kw)

    def hmov(self, region: int, dst, src, **kw):
        opcode = [Opcode.HMOV0, Opcode.HMOV1, Opcode.HMOV2,
                  Opcode.HMOV3][region]
        return self.emit(opcode, dst, src, **kw)

    def add(self, dst, src, **kw):
        return self.emit(Opcode.ADD, dst, src, **kw)

    def sub(self, dst, src, **kw):
        return self.emit(Opcode.SUB, dst, src, **kw)

    def and_(self, dst, src, **kw):
        return self.emit(Opcode.AND, dst, src, **kw)

    def or_(self, dst, src, **kw):
        return self.emit(Opcode.OR, dst, src, **kw)

    def xor(self, dst, src, **kw):
        return self.emit(Opcode.XOR, dst, src, **kw)

    def not_(self, dst, **kw):
        return self.emit(Opcode.NOT, dst, **kw)

    def neg(self, dst, **kw):
        return self.emit(Opcode.NEG, dst, **kw)

    def shl(self, dst, src, **kw):
        return self.emit(Opcode.SHL, dst, src, **kw)

    def shr(self, dst, src, **kw):
        return self.emit(Opcode.SHR, dst, src, **kw)

    def sar(self, dst, src, **kw):
        return self.emit(Opcode.SAR, dst, src, **kw)

    def imul(self, dst, src, **kw):
        return self.emit(Opcode.IMUL, dst, src, **kw)

    def idiv(self, dst, src, **kw):
        return self.emit(Opcode.IDIV, dst, src, **kw)

    def imod(self, dst, src, **kw):
        return self.emit(Opcode.IMOD, dst, src, **kw)

    def cmp(self, a, b, **kw):
        return self.emit(Opcode.CMP, a, b, **kw)

    def test(self, a, b, **kw):
        return self.emit(Opcode.TEST, a, b, **kw)

    def inc(self, dst, **kw):
        return self.emit(Opcode.INC, dst, **kw)

    def dec(self, dst, **kw):
        return self.emit(Opcode.DEC, dst, **kw)

    def jmp(self, target: Target, **kw):
        return self.emit(Opcode.JMP, _as_target(target), **kw)

    def je(self, target: Target, **kw):
        return self.emit(Opcode.JE, _as_target(target), **kw)

    def jne(self, target: Target, **kw):
        return self.emit(Opcode.JNE, _as_target(target), **kw)

    def jl(self, target: Target, **kw):
        return self.emit(Opcode.JL, _as_target(target), **kw)

    def jle(self, target: Target, **kw):
        return self.emit(Opcode.JLE, _as_target(target), **kw)

    def jg(self, target: Target, **kw):
        return self.emit(Opcode.JG, _as_target(target), **kw)

    def jge(self, target: Target, **kw):
        return self.emit(Opcode.JGE, _as_target(target), **kw)

    def jb(self, target: Target, **kw):
        return self.emit(Opcode.JB, _as_target(target), **kw)

    def jbe(self, target: Target, **kw):
        return self.emit(Opcode.JBE, _as_target(target), **kw)

    def ja(self, target: Target, **kw):
        return self.emit(Opcode.JA, _as_target(target), **kw)

    def jae(self, target: Target, **kw):
        return self.emit(Opcode.JAE, _as_target(target), **kw)

    def call(self, target: Target, **kw):
        return self.emit(Opcode.CALL, _as_target(target), **kw)

    def ret(self, **kw):
        return self.emit(Opcode.RET, **kw)

    def syscall(self, **kw):
        return self.emit(Opcode.SYSCALL, **kw)

    def int80(self, **kw):
        return self.emit(Opcode.INT80, **kw)

    def cpuid(self, **kw):
        return self.emit(Opcode.CPUID, **kw)

    def lfence(self, **kw):
        return self.emit(Opcode.LFENCE, **kw)

    def clflush(self, mem: Mem, **kw):
        return self.emit(Opcode.CLFLUSH, mem, **kw)

    def rdtsc(self, **kw):
        return self.emit(Opcode.RDTSC, **kw)

    def nop(self, **kw):
        return self.emit(Opcode.NOP, **kw)

    def hlt(self, **kw):
        return self.emit(Opcode.HLT, **kw)

    def xsave(self, mem: Mem, **kw):
        return self.emit(Opcode.XSAVE, mem, **kw)

    def xrstor(self, mem: Mem, **kw):
        return self.emit(Opcode.XRSTOR, mem, **kw)

    def wrpkru(self, **kw):
        return self.emit(Opcode.WRPKRU, **kw)

    def rdpkru(self, **kw):
        return self.emit(Opcode.RDPKRU, **kw)

    # HFI instructions (paper appendix A.1).  hfi_enter takes the
    # sandbox-descriptor pointer in a register; hfi_set_region /
    # hfi_get_region take a region number immediate and a descriptor
    # pointer (register or memory), modelling the metadata move from
    # memory into HFI registers (§6.4.2).
    def hfi_enter(self, descriptor: Reg, **kw):
        return self.emit(Opcode.HFI_ENTER, descriptor, **kw)

    def hfi_exit(self, **kw):
        return self.emit(Opcode.HFI_EXIT, **kw)

    def hfi_reenter(self, **kw):
        return self.emit(Opcode.HFI_REENTER, **kw)

    def hfi_set_region(self, number: int, descriptor: Reg, **kw):
        return self.emit(Opcode.HFI_SET_REGION, Imm(number), descriptor, **kw)

    def hfi_get_region(self, number: int, descriptor: Reg, **kw):
        return self.emit(Opcode.HFI_GET_REGION, Imm(number), descriptor, **kw)

    def hfi_clear_region(self, number: int, **kw):
        return self.emit(Opcode.HFI_CLEAR_REGION, Imm(number), **kw)

    def hfi_clear_all_regions(self, **kw):
        return self.emit(Opcode.HFI_CLEAR_ALL_REGIONS, **kw)

    # ------------------------------------------------------------------
    # layout & resolution
    # ------------------------------------------------------------------
    def assemble(self) -> Program:
        """Lay out instructions from ``base`` and resolve label refs."""
        if self._pending_label is not None:
            self.emit(Opcode.NOP)

        program = Program(instructions=list(self._instructions),
                          base=self.base)
        addr = self.base
        for ins in program.instructions:
            ins.addr = addr
            addr += ins.length
            if ins.label is not None:
                if ins.label in program.labels:
                    raise AssemblerError(f"duplicate label {ins.label!r}")
                program.labels[ins.label] = ins.addr

        for ins in program.instructions:
            ins.operands = tuple(
                Imm(self._resolve(program, op)) if isinstance(op, LabelRef)
                else op
                for op in ins.operands
            )
        program.finalize()
        return program

    def _resolve(self, program: Program, ref: LabelRef) -> int:
        try:
            return program.labels[ref.name]
        except KeyError:
            raise AssemblerError(f"undefined label {ref.name!r}") from None
