"""Reduced x86-64-like ISA with the HFI extension.

Public surface: :class:`Reg`, operand types, :class:`Opcode`,
:class:`Instruction`, :class:`Program`, and :class:`Assembler`.
"""

from .assembler import Assembler, AssemblerError
from .disasm import disassemble, format_instruction
from .instruction import Instruction, Program, encoded_length
from .opcodes import (
    CONDITIONAL_JUMPS,
    CONTROL_FLOW,
    HFI_OPS,
    HFI_REGION_OPS,
    HMOV_REGION,
    SERIALIZING,
    SYSCALL_OPS,
    Opcode,
)
from .operands import Imm, LabelRef, Mem, Operand
from .registers import (
    ALLOCATABLE,
    CALLEE_SAVED,
    CALLER_SAVED,
    MASK64,
    Flags,
    Reg,
    RegisterFile,
    to_signed,
    to_unsigned,
)

__all__ = [
    "Assembler", "AssemblerError", "disassemble", "format_instruction",
    "Instruction", "Program",
    "encoded_length", "Opcode", "Imm", "LabelRef", "Mem", "Operand",
    "Reg", "RegisterFile", "Flags", "MASK64", "ALLOCATABLE",
    "CALLER_SAVED", "CALLEE_SAVED", "to_signed", "to_unsigned",
    "CONDITIONAL_JUMPS", "CONTROL_FLOW", "HFI_OPS", "HFI_REGION_OPS",
    "HMOV_REGION", "SERIALIZING", "SYSCALL_OPS",
]
