"""Disassembly listings for assembled programs.

Developer tooling: renders a :class:`~repro.isa.instruction.Program`
as a labelled, addressed listing — useful for inspecting what an
isolation strategy actually emitted around each memory access.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .instruction import Instruction, Program
from .opcodes import HMOV_REGION
from .operands import Imm, Mem
from .registers import Reg


def format_operand(op) -> str:
    if isinstance(op, Reg):
        return f"%{op.value}"
    if isinstance(op, Imm):
        return f"${op.value:#x}" if abs(op.value) > 9 else f"${op.value}"
    if isinstance(op, Mem):
        return repr(op)
    return repr(op)


def format_instruction(ins: Instruction,
                       label_for: Optional[dict] = None) -> str:
    mnemonic = ins.opcode.value
    ops = []
    for op in ins.operands:
        if (label_for and isinstance(op, Imm)
                and op.value in label_for):
            ops.append(f"<{label_for[op.value]}>")
        else:
            ops.append(format_operand(op))
    text = f"{mnemonic} {', '.join(ops)}".strip()
    if ins.comment:
        text = f"{text:40s} ; {ins.comment}"
    return text


def disassemble(program: Program, *, start: Optional[int] = None,
                count: Optional[int] = None) -> str:
    """Render the program (or a window of it) as a listing."""
    label_for = {addr: name for name, addr in program.labels.items()}
    lines = []
    instructions: Iterable[Instruction] = program.instructions
    if start is not None:
        instructions = [i for i in instructions if i.addr >= start]
    if count is not None:
        instructions = list(instructions)[:count]
    for ins in instructions:
        if ins.addr in label_for:
            lines.append(f"{label_for[ins.addr]}:")
        marker = "*" if ins.opcode in HMOV_REGION else " "
        lines.append(f"  {ins.addr:#010x} {marker} "
                     f"[{ins.length:2d}B] "
                     f"{format_instruction(ins, label_for)}")
    return "\n".join(lines)
