"""Instruction operands: immediates, registers, memory references, labels.

Memory operands follow the full x86 addressing form
``[base + index*scale + disp]``; ``hmov`` instructions reuse the same
form but the base is *replaced* by an HFI explicit-region base at
execute time (paper §3.2 / §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from .registers import Reg


@dataclass(frozen=True)
class Imm:
    """An immediate (constant) operand."""

    value: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"${self.value:#x}" if abs(self.value) > 9 else f"${self.value}"


@dataclass(frozen=True)
class Mem:
    """A memory operand ``[base + index*scale + disp]`` of ``size`` bytes."""

    base: Optional[Reg] = None
    index: Optional[Reg] = None
    scale: int = 1
    disp: int = 0
    size: int = 8

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}")
        if self.size not in (1, 2, 4, 8):
            raise ValueError(f"invalid operand size {self.size}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.base is not None:
            parts.append(self.base.value)
        if self.index is not None:
            parts.append(f"{self.index.value}*{self.scale}")
        if self.disp or not parts:
            parts.append(f"{self.disp:#x}")
        return f"[{' + '.join(parts)}]"


@dataclass(frozen=True)
class LabelRef:
    """A symbolic reference to a code label, resolved by the assembler."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"@{self.name}"


Operand = Union[Imm, Reg, Mem, LabelRef]
