"""Plain-text table/series rendering for the benchmark harness.

Each benchmark prints the same rows/series the paper's table or figure
reports, so ``pytest benchmarks/ -s`` regenerates the evaluation in
readable form, and the same text is appended to
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render a fixed-width table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines += [fmt(row) for row in cells]
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float],
                  y_format: str = "{:.2f}") -> str:
    """Render one figure series as `x: y` pairs."""
    pairs = ", ".join(f"{x}={y_format.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def results_dir() -> str:
    """benchmarks/results/, created on demand."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def emit(experiment: str, text: str) -> None:
    """Print the table/series and persist it for EXPERIMENTS.md."""
    banner = f"\n=== {experiment} ===\n{text}\n"
    print(banner)
    path = os.path.join(results_dir(), f"{experiment}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
