"""Plain-text table/series rendering for the benchmark harness.

Each benchmark prints the same rows/series the paper's table or figure
reports, so ``pytest benchmarks/ -s`` regenerates the evaluation in
readable form, and the same text is appended to
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render a fixed-width table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines += [fmt(row) for row in cells]
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float],
                  y_format: str = "{:.2f}") -> str:
    """Render one figure series as `x: y` pairs."""
    pairs = ", ".join(f"{x}={y_format.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def results_dir() -> str:
    """benchmarks/results/, created on demand."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    path = os.path.join(here, "benchmarks", "results")
    os.makedirs(path, exist_ok=True)
    return path


def emit(experiment: str, text: str) -> None:
    """Print the table/series and persist it for EXPERIMENTS.md."""
    banner = f"\n=== {experiment} ===\n{text}\n"
    print(banner)
    path = os.path.join(results_dir(), f"{experiment}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")


def emit_json(experiment: str, payload: Dict) -> str:
    """Persist a machine-readable result next to the text one."""
    path = os.path.join(results_dir(), f"{experiment}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_telemetry(telemetry, *, top_counters: int = 20) -> str:
    """Render a :class:`repro.telemetry.Telemetry` sink as tables.

    Three sections: per-sandbox cycle attribution (with the trusted
    runtime as its own row), event counters, and cycle accumulators.
    """
    snap = telemetry.snapshot()
    sections = []

    attribution = telemetry.attribution()
    if attribution:
        total = sum(attribution.values())
        rows = []
        for key in sorted(attribution, key=lambda k: (k is None, k)):
            label = "runtime" if key is None else f"sandbox {key}"
            cycles = attribution[key]
            rows.append((label, f"{cycles:,}",
                         f"{100 * cycles / total:.1f}%" if total else "-"))
        rows.append(("total", f"{total:,}", "100.0%" if total else "-"))
        sections.append(format_table(
            ["owner", "cycles", "share"], rows,
            title="per-sandbox cycle attribution"))

    counters = snap["counters"]
    if counters:
        ordered = sorted(counters.items(),
                         key=lambda kv: (-kv[1], kv[0]))[:top_counters]
        sections.append(format_table(
            ["counter", "count"],
            [(n, f"{v:,}") for n, v in ordered],
            title="event counters"))

    cycles = snap["cycles"]
    named = {n: a for n, a in cycles.items() if n != "sandbox.cycles"}
    if named:
        sections.append(format_table(
            ["accumulator", "cycles"],
            [(n, f"{a['total']:,}") for n, a in sorted(named.items())],
            title="cycle accumulators"))

    spans = snap["spans"]
    if spans:
        sections.append(
            f"spans recorded: {len(spans)}"
            + (f" (+{snap['spans_dropped']} dropped)"
               if snap["spans_dropped"] else ""))
    return "\n\n".join(sections) if sections else "(no telemetry recorded)"
