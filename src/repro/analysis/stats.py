"""Small statistics helpers used by the benchmark harness."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean — the aggregate Fig. 3 and §6.1 report."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def normalize(values: Dict[str, float], baseline: str) -> Dict[str, float]:
    """Express every entry relative to ``values[baseline]``."""
    base = values[baseline]
    return {name: value / base for name, value in values.items()}


def pct_change(new: float, old: float) -> float:
    """Percent change of ``new`` relative to ``old``."""
    return 100.0 * (new - old) / old


def speedup_pct(new: float, old: float) -> float:
    """How much faster ``new`` is than ``old`` (positive = faster)."""
    return 100.0 * (1.0 - new / old)
