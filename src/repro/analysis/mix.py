"""Workload instruction-mix profiling.

Runs a workload under a strategy with a :class:`~repro.cpu.Tracer`
attached and reports the committed-instruction mix — used in
EXPERIMENTS.md to explain *why* a strategy wins or loses on a workload
(bounds checks show up as extra cmp/lea/ja; HFI as hmov; Swivel as
interlock ALU ops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cpu.trace import Tracer
from ..isa.opcodes import CONDITIONAL_JUMPS, HMOV_REGION, Opcode
from ..params import DEFAULT_PARAMS, MachineParams
from ..wasm import WasmRuntime, make_strategy
from ..wasm.ir import Module


@dataclass
class MixProfile:
    """Summary of one (workload, strategy) run."""

    workload: str
    strategy: str
    cycles: int
    instructions: int
    mix: Dict[str, int]
    memory_ops: int
    branches: int
    hfi_ops: int
    binary_size: int

    @property
    def ipc_proxy(self) -> float:
        """Instructions per cycle (a proxy; the model is in-order)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def top(self, n: int = 8):
        return sorted(self.mix.items(), key=lambda kv: -kv[1])[:n]


def profile(module: Module, strategy_name: str,
            params: MachineParams = DEFAULT_PARAMS) -> MixProfile:
    """Run ``module`` under ``strategy_name`` and profile the mix."""
    runtime = WasmRuntime(params)
    tracer = Tracer(record_entries=False)
    runtime.cpu.tracer = tracer
    instance = runtime.instantiate(module, make_strategy(strategy_name))
    result = runtime.run(instance)
    if result.reason != "hlt":
        raise RuntimeError(
            f"{module.name} under {strategy_name}: {result.reason}")
    memory_ops = (tracer.mix[Opcode.MOV]
                  + sum(tracer.mix[op] for op in HMOV_REGION)
                  + tracer.mix[Opcode.PUSH] + tracer.mix[Opcode.POP])
    branches = sum(tracer.mix[op] for op in CONDITIONAL_JUMPS)
    return MixProfile(
        workload=module.name,
        strategy=strategy_name,
        cycles=result.stats.cycles,
        instructions=result.stats.instructions,
        mix={op.value: count for op, count in tracer.mix.items()},
        memory_ops=memory_ops,
        branches=branches,
        hfi_ops=tracer.hfi_instruction_count(),
        binary_size=instance.compiled.binary_size,
    )


def compare(module: Module, strategy_names,
            params: MachineParams = DEFAULT_PARAMS) -> Dict[str, MixProfile]:
    """Profile one module under several strategies."""
    return {name: profile(module, name, params)
            for name in strategy_names}
