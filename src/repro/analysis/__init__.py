"""Statistics and reporting for the benchmark harness."""

from .mix import MixProfile, compare, profile
from .report import emit, format_series, format_table, results_dir
from .stats import geomean, mean, median, normalize, pct_change, speedup_pct

__all__ = [
    "geomean", "mean", "median", "normalize", "pct_change", "speedup_pct",
    "emit", "format_series", "format_table", "results_dir",
    "MixProfile", "profile", "compare",
]
