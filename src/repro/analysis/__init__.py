"""Statistics and reporting for the benchmark harness."""

from .mix import MixProfile, compare, profile
from .report import (emit, emit_json, format_series, format_table,
                     format_telemetry, results_dir)
from .stats import geomean, mean, median, normalize, pct_change, speedup_pct

__all__ = [
    "geomean", "mean", "median", "normalize", "pct_change", "speedup_pct",
    "emit", "emit_json", "format_series", "format_table",
    "format_telemetry", "results_dir",
    "MixProfile", "profile", "compare",
]
