"""Intel MPK (protection keys) — the hardware baseline of §6.4.2.

Models the pieces ERIM-style sandboxes rely on:

* 16 protection keys; key 0 is the default domain, so **15 are usable
  for sandboxes** — the hard scaling limit the paper contrasts with
  HFI's unbounded sandbox count (§7).
* ``pkey_mprotect`` tags pages with a key (a syscall).
* ``wrpkru`` switches the active domain set from userspace in ~25
  cycles, slightly cheaper than HFI's enter path because HFI must also
  move region metadata from memory into registers (Fig. 5).

Enforcement itself happens in the CPU model: each access checks the
VMA's pkey against the process PKRU (see ``Cpu._check_pkey``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..os.address_space import AddressSpace
from ..os.process import Process
from ..params import DEFAULT_PARAMS, MachineParams

NUM_KEYS = 16
USABLE_KEYS = NUM_KEYS - 1   # key 0 is the default domain

#: PKRU per-key bits.
AD = 0b01   # access disable
WD = 0b10   # write disable


class MpkError(Exception):
    """Key exhaustion or misuse."""


def pkru_allowing(keys: Set[int]) -> int:
    """Build a PKRU value that grants full access to ``keys`` (and key
    0) and denies everything else."""
    pkru = 0
    for key in range(1, NUM_KEYS):
        if key not in keys:
            pkru |= AD << (2 * key)
    return pkru


def pkru_read_only(keys: Set[int], writable: Set[int]) -> int:
    """Grant read access to ``keys``, write access only to ``writable``."""
    pkru = 0
    for key in range(1, NUM_KEYS):
        if key in writable:
            continue
        if key in keys:
            pkru |= WD << (2 * key)
        else:
            pkru |= AD << (2 * key)
    return pkru


@dataclass
class MpkDomain:
    """One allocated protection key and the ranges tagged with it."""

    key: int
    name: str = ""
    ranges: List = field(default_factory=list)   # (addr, length)


class MpkDomainManager:
    """Allocates keys and tags memory — the pkey_alloc/pkey_mprotect API."""

    def __init__(self, space: AddressSpace,
                 params: MachineParams = DEFAULT_PARAMS):
        self.space = space
        self.params = params
        self._domains: Dict[int, MpkDomain] = {}
        self._next_key = 1

    def pkey_alloc(self, name: str = "") -> MpkDomain:
        """Allocate a fresh key; raises :class:`MpkError` past 15 —
        the scaling wall the paper calls out."""
        if self._next_key >= NUM_KEYS:
            raise MpkError(
                f"out of protection keys (MPK supports {USABLE_KEYS} "
                f"sandbox domains)")
        domain = MpkDomain(key=self._next_key, name=name)
        self._domains[domain.key] = domain
        self._next_key += 1
        return domain

    def pkey_free(self, domain: MpkDomain) -> None:
        self._domains.pop(domain.key, None)

    def pkey_mprotect(self, domain: MpkDomain, addr: int,
                      length: int) -> int:
        """Tag pages with the domain's key; returns cycles (a syscall)."""
        cost = self.params.syscall_cycles
        cost += self.space.set_pkey(addr, length, domain.key)
        domain.ranges.append((addr, length))
        return cost

    @property
    def allocated(self) -> List[MpkDomain]:
        return list(self._domains.values())


class MpkSandboxSwitcher:
    """ERIM-style userspace domain switching for a process.

    ``enter``/``exit`` model the wrpkru (+ lfence, to stop the switch
    being speculated past) sequence; costs come from params so Fig. 5's
    HFI-vs-MPK gap is reproducible.
    """

    def __init__(self, process: Process,
                 params: MachineParams = DEFAULT_PARAMS):
        self.process = process
        self.params = params
        self.switches = 0

    def switch_cost(self) -> int:
        # wrpkru + lfence-style speculation barrier
        return self.params.wrpkru_cycles + self.params.serialize_drain_cycles // 4

    def enter(self, allowed_keys: Set[int]) -> int:
        self.process.pkru = pkru_allowing(allowed_keys)
        self.switches += 1
        return self.switch_cost()

    def exit(self) -> int:
        self.process.pkru = pkru_allowing(set(range(1, NUM_KEYS)))
        self.switches += 1
        return self.switch_cost()
