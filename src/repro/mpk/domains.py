"""Intel MPK (protection keys) — the hardware baseline of §6.4.2.

Models the pieces ERIM-style sandboxes rely on:

* 16 protection keys; key 0 is the default domain, so **15 are usable
  for sandboxes** — the hard scaling limit the paper contrasts with
  HFI's unbounded sandbox count (§7).
* ``pkey_mprotect`` tags pages with a key (a syscall).
* ``wrpkru`` switches the active domain set from userspace in ~25
  cycles, slightly cheaper than HFI's enter path because HFI must also
  move region metadata from memory into registers (Fig. 5).

Enforcement itself happens in the CPU model: each access checks the
VMA's pkey against the process PKRU (see ``Cpu._check_pkey``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..os.address_space import AddressSpace
from ..os.process import Process
from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.stats import MpkDomainStats

NUM_KEYS = 16
USABLE_KEYS = NUM_KEYS - 1   # key 0 is the default domain

#: PKRU per-key bits.
AD = 0b01   # access disable
WD = 0b10   # write disable


class MpkError(Exception):
    """Key exhaustion or misuse."""


def pkru_allowing(keys: Set[int]) -> int:
    """Build a PKRU value that grants full access to ``keys`` (and key
    0) and denies everything else."""
    pkru = 0
    for key in range(1, NUM_KEYS):
        if key not in keys:
            pkru |= AD << (2 * key)
    return pkru


def pkru_read_only(keys: Set[int], writable: Set[int]) -> int:
    """Grant read access to ``keys``, write access only to ``writable``."""
    pkru = 0
    for key in range(1, NUM_KEYS):
        if key in writable:
            continue
        if key in keys:
            pkru |= WD << (2 * key)
        else:
            pkru |= AD << (2 * key)
    return pkru


@dataclass
class MpkDomain:
    """One allocated protection key and the ranges tagged with it."""

    key: int
    name: str = ""
    ranges: List = field(default_factory=list)   # (addr, length)


class MpkDomainManager:
    """Allocates keys and tags memory — the pkey_alloc/pkey_mprotect API."""

    def __init__(self, space: AddressSpace,
                 params: MachineParams = DEFAULT_PARAMS):
        self.space = space
        self.params = params
        self._domains: Dict[int, MpkDomain] = {}
        self._free_keys: List[int] = []    # min-heap: lowest key first
        self._next_key = 1
        self._allocs = 0
        self._frees = 0
        self._stale_untags = 0

    def pkey_alloc(self, name: str = "") -> MpkDomain:
        """Allocate a key, preferring recycled ones; raises
        :class:`MpkError` once all 15 are live — the scaling wall the
        paper calls out.  Freed keys return to a free list, so
        alloc/free churn never exhausts the table."""
        if self._free_keys:
            key = heapq.heappop(self._free_keys)
        elif self._next_key < NUM_KEYS:
            key = self._next_key
            self._next_key += 1
        else:
            raise MpkError(
                f"out of protection keys (MPK supports {USABLE_KEYS} "
                f"sandbox domains)")
        domain = MpkDomain(key=key, name=name)
        self._domains[key] = domain
        self._allocs += 1
        return domain

    def pkey_free(self, domain: MpkDomain) -> int:
        """Release a key back to the free pool; returns kernel cycles.

        Any pages still tagged with the key are re-tagged to the
        default domain (``pkey_mprotect(..., 0)``, a syscall per
        range) — Linux's pkey_free leaves tags in place, which is a
        well-known footgun: the next pkey_alloc would hand out a key
        that already grants (or denies) access to a stranger's pages.
        """
        live = self._domains.pop(domain.key, None)
        if live is None:
            return 0                      # double free: no-op, no recycle
        cost = 0
        for addr, length in domain.ranges:
            cost += self.params.syscall_cycles
            cost += self.space.set_pkey(addr, length, 0)
            self._stale_untags += 1
        domain.ranges.clear()
        heapq.heappush(self._free_keys, domain.key)
        self._frees += 1
        return cost

    def pkey_mprotect(self, domain: MpkDomain, addr: int,
                      length: int) -> int:
        """Tag pages with the domain's key; returns cycles (a syscall)."""
        if self._domains.get(domain.key) is not domain:
            raise MpkError(
                f"pkey_mprotect on freed/stale domain key {domain.key}")
        cost = self.params.syscall_cycles
        cost += self.space.set_pkey(addr, length, domain.key)
        domain.ranges.append((addr, length))
        return cost

    @property
    def allocated(self) -> List[MpkDomain]:
        return list(self._domains.values())

    def stats(self) -> MpkDomainStats:
        """Uniform component-stats snapshot (``repro.telemetry``).

        ``leaked_keys`` is the lifecycle invariant: keys handed out
        that are neither live nor on the free list.  It is 0 under the
        recycling allocator; any regression to increment-only key
        handout makes it positive under churn.
        """
        handed_out = self._next_key - 1
        return MpkDomainStats(
            component="mpk-domains",
            allocated=len(self._domains),
            free_keys=len(self._free_keys),
            allocs=self._allocs,
            frees=self._frees,
            stale_untags=self._stale_untags,
            leaked_keys=(handed_out - len(self._domains)
                         - len(self._free_keys)))


class MpkSandboxSwitcher:
    """ERIM-style userspace domain switching for a process.

    ``enter``/``exit`` model the wrpkru (+ lfence, to stop the switch
    being speculated past) sequence; costs come from params so Fig. 5's
    HFI-vs-MPK gap is reproducible.
    """

    def __init__(self, process: Process,
                 params: MachineParams = DEFAULT_PARAMS):
        self.process = process
        self.params = params
        self.switches = 0
        self._saved_pkru: List[int] = []
        # deferred import: repro.runtime pulls in the serving stack
        from ..runtime.transitions import TransitionModel
        self._transitions = TransitionModel(params)

    def switch_cost(self) -> int:
        # one ERIM gate — the shared formula in TransitionModel
        return self._transitions.mpk_switch_cost()

    def enter(self, allowed_keys: Set[int]) -> int:
        """Switch into a sandbox domain, saving the caller's PKRU so
        :meth:`exit` restores the caller's *view*, not a
        grant-everything mask.  Nests like a call stack."""
        self._saved_pkru.append(self.process.pkru)
        self.process.pkru = pkru_allowing(allowed_keys)
        self.switches += 1
        return self.switch_cost()

    def exit(self) -> int:
        """Restore the PKRU saved by the matching :meth:`enter`.

        The old behaviour — resetting to ``pkru_allowing(all keys)`` —
        meant the first exit left the process able to touch *every*
        sandbox domain, the exact confused-deputy hole MPK gates exist
        to close.
        """
        if not self._saved_pkru:
            raise MpkError("MpkSandboxSwitcher.exit without a matching "
                           "enter (no saved PKRU)")
        self.process.pkru = self._saved_pkru.pop()
        self.switches += 1
        return self.switch_cost()

    @property
    def depth(self) -> int:
        """Current enter/exit nesting depth."""
        return len(self._saved_pkru)
