"""MPK protection-key virtualization — what it costs to push the
15-key hardware past its wall (paper §7, Fig. 5's scaling argument).

HFI's contrast claim is not that MPK *cannot* host thousands of
domains but that doing so stops being cheap: with more live domains
than keys, a runtime must virtualize keys libmpk-style (Park et al.,
ATC '19) — treat the 15 usable pkeys as a cache of the domain set and,
on a switch to a non-resident domain, *steal* the least-recently-used
key:

1. untag the evicted domain's pages (``pkey_mprotect(..., 0)`` per
   range — a syscall each, or the evicted domain silently shares the
   thief's access rights),
2. retag the incoming domain's pages with the stolen key (another
   ``pkey_mprotect`` per range), and
3. rewrite PKRU through the usual ERIM gate.

Steps 1-2 are kernel work proportional to the domains' mapped pages;
step 3 is the flat wrpkru cost every switch pays.  Below 16 live
domains every switch is a hit and MPK is a flat ~65-cycle gate; past
16 the miss rate — and with it the mean switch cost — grows with the
domain count, while HFI's per-transition cost never changes.  That
knee is exactly what ``scripts/bench_domain_scaling.py`` gates.

The eviction path deliberately runs through
:meth:`MpkDomainManager.pkey_free`/:meth:`~MpkDomainManager.pkey_alloc`,
so thousands of steals exercise the repaired key-recycling free list:
under the old increment-only allocator the 16th steal raised
:class:`MpkError`, and freed keys kept their stale page tags.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..os.address_space import AddressSpace, Prot
from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.stats import MpkVirtStats
from .domains import USABLE_KEYS, MpkDomain, MpkDomainManager, MpkError


@dataclass
class VirtualDomain:
    """One sandbox domain under virtualization: its memory ranges and,
    when resident, the physical key currently standing in for it."""

    vid: int
    name: str = ""
    ranges: List[Tuple[int, int]] = field(default_factory=list)
    physical: Optional[MpkDomain] = None
    last_used: int = 0

    @property
    def resident(self) -> bool:
        return self.physical is not None


class MpkKeyVirtualizer:
    """Unbounded MPK domains over the 15-key hardware table.

    ``create_domain`` registers a domain (no key consumed until first
    use); ``switch_to`` returns the cycle cost of making the domain
    active — a bare ERIM gate on a residency hit, gate + key steal
    (untag + retag syscalls over real :class:`AddressSpace` pages) on
    a miss.
    """

    def __init__(self, space: AddressSpace,
                 params: MachineParams = DEFAULT_PARAMS):
        self.space = space
        self.params = params
        self.manager = MpkDomainManager(space, params)
        from ..runtime.transitions import TransitionModel
        self._transitions = TransitionModel(params)
        self._domains: Dict[int, VirtualDomain] = {}
        self._next_vid = 1
        self._tick = 0
        self.switches = 0
        self.hits = 0
        self.misses = 0
        self.key_steals = 0
        self.retag_cycles = 0

    # ------------------------------------------------------------------
    def create_domain(self, name: str = "",
                      ranges: Optional[List[Tuple[int, int]]] = None
                      ) -> VirtualDomain:
        """Register a virtual domain over ``ranges`` (addr, length).

        No physical key is consumed until the domain is first switched
        to — that's the whole point of virtualizing.
        """
        domain = VirtualDomain(vid=self._next_vid, name=name,
                               ranges=list(ranges or []))
        self._domains[domain.vid] = domain
        self._next_vid += 1
        return domain

    def destroy_domain(self, domain: VirtualDomain) -> int:
        """Unregister a domain; frees its physical key if resident."""
        cost = 0
        if domain.physical is not None:
            cost += self.manager.pkey_free(domain.physical)
            domain.physical = None
        self._domains.pop(domain.vid, None)
        return cost

    @property
    def domains(self) -> List[VirtualDomain]:
        return list(self._domains.values())

    @property
    def resident(self) -> List[VirtualDomain]:
        return [d for d in self._domains.values() if d.resident]

    # ------------------------------------------------------------------
    def switch_to(self, domain: VirtualDomain) -> int:
        """Make ``domain`` the active sandbox domain; returns cycles.

        Every switch pays the ERIM gate (wrpkru + validation + fence).
        A non-resident domain additionally pays the key steal: evict
        the LRU resident domain (untag its pages), then bind and retag
        the incoming domain under the recycled key.
        """
        if domain.vid not in self._domains:
            raise MpkError(f"switch to destroyed domain {domain.vid}")
        self._tick += 1
        self.switches += 1
        cost = self._transitions.mpk_switch_cost()
        if domain.resident:
            self.hits += 1
        else:
            self.misses += 1
            cost += self._make_resident(domain)
        domain.last_used = self._tick
        return cost

    def _make_resident(self, domain: VirtualDomain) -> int:
        """Bind a physical key to ``domain``, stealing one if the
        hardware table is full; returns the kernel-side cycle cost."""
        cost = 0
        if len(self.manager.allocated) >= USABLE_KEYS:
            victim = min(self.resident, key=lambda d: d.last_used)
            # pkey_free untags the victim's pages (syscalls) and
            # recycles the key through the repaired free list
            cost += self.manager.pkey_free(victim.physical)
            victim.physical = None
            self.key_steals += 1
        physical = self.manager.pkey_alloc(domain.name)
        for addr, length in domain.ranges:
            cost += self.manager.pkey_mprotect(physical, addr, length)
        domain.physical = physical
        self.retag_cycles += cost
        return cost

    # ------------------------------------------------------------------
    def stats(self) -> MpkVirtStats:
        """Uniform component-stats snapshot (``repro.telemetry``)."""
        return MpkVirtStats(
            component="mpk-virtualizer",
            domains=len(self._domains),
            resident=len(self.resident),
            switches=self.switches,
            hits=self.hits,
            misses=self.misses,
            key_steals=self.key_steals,
            retag_cycles=self.retag_cycles)


# ----------------------------------------------------------------------
# the Fig. 5-analogue measurement: cost/transition vs domain count
# ----------------------------------------------------------------------
def measure_switch_costs(n_domains: int, n_switches: int, *,
                         seed: int = 0, pages_per_domain: int = 1,
                         params: MachineParams = DEFAULT_PARAMS) -> Dict:
    """One sweep point: mean per-transition cost over ``n_switches``
    seeded uniform-random switches across ``n_domains`` live domains.

    MPK switches run through :class:`MpkKeyVirtualizer` against a real
    :class:`AddressSpace` (every domain owns mapped pages, every steal
    pays real ``pkey_mprotect`` walks).  The HFI column prices the
    same transitions through
    :class:`~repro.runtime.transitions.TransitionModel` — serialized
    ``hfi_enter``/``hfi_exit`` with the metadata moves — which never
    reads the domain count, so its line is flat by construction *and*
    the sweep verifies it stays flat after any cost-model change.
    """
    from ..runtime.transitions import TransitionModel

    space = AddressSpace(params)
    virt = MpkKeyVirtualizer(space, params)
    span = pages_per_domain * params.page_bytes
    domains = []
    for i in range(n_domains):
        base = space.mmap(span, Prot.rw(), name=f"dom{i}")
        domains.append(virt.create_domain(f"dom{i}", [(base, span)]))
    transitions = TransitionModel(params)
    rng = random.Random((seed << 8) ^ 0xD0A1)
    # warm-up: touch every domain once so the measured phase sees
    # steady state — below the 15-key wall that leaves every domain
    # resident (zero capacity misses); above it the cache stays full
    # and only capacity misses remain.
    for domain in domains:
        virt.switch_to(domain)
    warm_stats = virt.stats()
    warm_retags = virt.retag_cycles
    mpk_total = 0
    hfi_total = 0
    for _ in range(n_switches):
        domain = domains[rng.randrange(n_domains)]
        mpk_total += virt.switch_to(domain)
        hfi_total += (transitions.hfi_enter_cost(serialized=True)
                      + transitions.hfi_exit_cost(serialized=True))
    stats = virt.stats()
    manager = virt.manager.stats()
    gate = transitions.mpk_switch_cost()
    mpk_mean = mpk_total / n_switches
    misses = stats.misses - warm_stats.misses
    return {
        "domains": n_domains,
        "switches": n_switches,
        "mpk_mean_cycles": mpk_mean,
        "mpk_gate_cycles": gate,
        "virtualization_overhead_cycles": mpk_mean - gate,
        "hfi_mean_cycles": hfi_total / n_switches,
        "miss_rate": misses / n_switches,
        "key_steals": stats.key_steals - warm_stats.key_steals,
        "retag_cycles": virt.retag_cycles - warm_retags,
        "key_allocs": manager.allocs,
        "key_frees": manager.frees,
        "leaked_keys": manager.leaked_keys,
    }
