"""Intel MPK baseline (ERIM-style in-process isolation)."""

from .domains import (
    AD,
    NUM_KEYS,
    USABLE_KEYS,
    WD,
    MpkDomain,
    MpkDomainManager,
    MpkError,
    MpkSandboxSwitcher,
    pkru_allowing,
    pkru_read_only,
)
from .virtualize import MpkKeyVirtualizer, VirtualDomain

__all__ = [
    "MpkDomain", "MpkDomainManager", "MpkError", "MpkSandboxSwitcher",
    "MpkKeyVirtualizer", "VirtualDomain",
    "pkru_allowing", "pkru_read_only", "NUM_KEYS", "USABLE_KEYS", "AD",
    "WD",
]
