"""A trusted runtime managing many HFI sandboxes (paper §3.1, §3.3).

:class:`SandboxManager` is the high-level analytic API: it owns one
core's :class:`~repro.core.Hfi` device plus an address space, creates
sandboxes (native or hybrid), and accounts the cycle cost of every
lifecycle operation.  Because HFI keeps no per-sandbox on-chip state,
the manager can hold an arbitrary number of sandboxes and multiplex
them over the single register bank — the scalability property (§3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import (
    ExplicitDataRegion,
    FaultCause,
    Hfi,
    ImplicitCodeRegion,
    ImplicitDataRegion,
    SandboxDescriptor,
)
from ..os.address_space import AddressSpace, Prot
from ..params import DEFAULT_PARAMS, MachineParams
from .transitions import TransitionKind, TransitionModel


@dataclass
class SandboxHandle:
    """The runtime's bookkeeping for one sandbox (all off-chip state)."""

    sandbox_id: int
    descriptor: SandboxDescriptor
    code_base: int
    heap_base: int
    heap_bytes: int
    is_hybrid: bool
    invocations: int = 0
    cycles: int = 0


class SandboxManager:
    """Creates and invokes in-process sandboxes over one HFI core."""

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 space: Optional[AddressSpace] = None):
        self.params = params
        self.space = space if space is not None else AddressSpace(params)
        self.hfi = Hfi(params)
        self.transitions = TransitionModel(params)
        self._handles: Dict[int, SandboxHandle] = {}
        self._next_id = 1
        self.total_cycles = 0

    # ------------------------------------------------------------------
    def create_sandbox(self, *, heap_bytes: int, code_bytes: int = 1 << 20,
                       hybrid: bool = False, serialized: bool = True,
                       switch_on_exit: bool = False,
                       exit_handler: int = 0x7000_0000) -> SandboxHandle:
        """Allocate memory and build the descriptor for a new sandbox.

        Creation is near-zero cost on the HFI side (§3: "near-zero
        overhead on sandbox setup") — the accounted cycles are almost
        entirely the memory mapping the developer asked for.
        """
        align = 1 << max(16, (heap_bytes - 1).bit_length())
        raw = self.space.mmap(heap_bytes + align, Prot.NONE, name="sbx-heap")
        heap_base = (raw + align - 1) & ~(align - 1)
        cost = self.space.mprotect(heap_base, heap_bytes, Prot.rw())
        cost += 2 * self.params.syscall_cycles
        code_base = self.space.mmap(code_bytes, Prot.rx(), name="sbx-code")

        regions = [
            (0, ImplicitCodeRegion.covering(code_base, code_bytes)),
            (2, ImplicitDataRegion.covering(heap_base, heap_bytes)),
            (6, ExplicitDataRegion(heap_base, align,
                                   permission_read=True,
                                   permission_write=True)),
        ]
        if hybrid:
            descriptor = SandboxDescriptor.hybrid(
                regions, serialized=serialized,
                switch_on_exit=switch_on_exit)
        else:
            descriptor = SandboxDescriptor.native(
                exit_handler, regions, serialized=serialized,
                switch_on_exit=switch_on_exit)
        handle = SandboxHandle(
            sandbox_id=self._next_id, descriptor=descriptor,
            code_base=code_base, heap_base=heap_base,
            heap_bytes=heap_bytes, is_hybrid=hybrid)
        self._next_id += 1
        self._handles[handle.sandbox_id] = handle
        handle.cycles += cost
        self.total_cycles += cost
        return handle

    # ------------------------------------------------------------------
    def invoke(self, handle: SandboxHandle, service_cycles: int,
               transition: TransitionKind = TransitionKind.ZERO_COST) -> int:
        """Run one invocation: enter, do ``service_cycles`` of sandboxed
        work, exit.  Returns total cycles."""
        enter = self.hfi.enter(handle.descriptor)
        outcome = self.hfi.exit()
        software = 2 * self.transitions.software_cost(transition)
        total = enter + outcome.cycles + software + service_cycles
        handle.invocations += 1
        handle.cycles += total
        self.total_cycles += total
        return total

    def grow_heap(self, handle: SandboxHandle, new_bytes: int) -> int:
        """Resize the sandbox's explicit region — a register update."""
        for i, (number, region) in enumerate(handle.descriptor.regions):
            if number == 6:
                handle.descriptor.regions[i] = (
                    number, region.resize(new_bytes))
        cost = (self.params.hfi_set_region_cycles
                + 3 * (self.params.base_cycles
                       + self.params.l1d_hit_cycles))
        handle.heap_bytes = new_bytes
        handle.cycles += cost
        self.total_cycles += cost
        return cost

    def destroy_sandbox(self, handle: SandboxHandle,
                        *, discard_memory: bool = True) -> int:
        """Tear down: HFI itself needs nothing; memory discard is the
        developer's choice (§3 footnote: HFI does isolation, not
        resource management)."""
        cost = 0
        if discard_memory:
            cost = (self.params.syscall_cycles
                    + self.space.madvise_dontneed(handle.heap_base,
                                                  handle.heap_bytes))
        del self._handles[handle.sandbox_id]
        self.total_cycles += cost
        return cost

    @property
    def live_sandboxes(self) -> int:
        return len(self._handles)
