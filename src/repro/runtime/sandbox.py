"""A trusted runtime managing many HFI sandboxes (paper §3.1, §3.3).

:class:`SandboxManager` is the high-level analytic API: it owns one
core's :class:`~repro.core.Hfi` device plus an address space, creates
sandboxes (native or hybrid), and accounts the cycle cost of every
lifecycle operation.  Because HFI keeps no per-sandbox on-chip state,
the manager can hold an arbitrary number of sandboxes and multiplex
them over the single register bank — the scalability property (§3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import (
    ExplicitDataRegion,
    FaultCause,
    Hfi,
    ImplicitCodeRegion,
    ImplicitDataRegion,
    SandboxDescriptor,
)
from ..os.address_space import AddressSpace, Prot
from ..os.signals import SigInfo, Signal, SignalTable
from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.sink import Telemetry, coalesce
from ..telemetry.stats import SandboxManagerStats, SandboxStats
from .transitions import TransitionKind, TransitionModel


class SandboxError(RuntimeError):
    """A sandbox lifecycle operation was invalid (unknown handle,
    double destroy, invoke of a destroyed sandbox)."""


@dataclass
class SandboxHandle:
    """The runtime's bookkeeping for one sandbox (all off-chip state)."""

    sandbox_id: int
    descriptor: SandboxDescriptor
    code_base: int
    heap_base: int
    heap_bytes: int
    is_hybrid: bool
    invocations: int = 0
    cycles: int = 0


@dataclass
class InvokeResult:
    """Typed result of one sandbox invocation.

    Field names shared with :class:`repro.cpu.machine.RunResult`
    (``reason``, ``cycles``, ``fault``) so analysis code can consume
    either interchangeably; the extra fields break the total down the
    way Fig. 5 does.  ``int(result)`` and comparisons keep old
    cycle-count call sites working.
    """

    reason: str
    cycles: int
    sandbox_id: int
    invocation: int
    enter_cycles: int = 0
    exit_cycles: int = 0
    software_cycles: int = 0
    service_cycles: int = 0
    fault: Optional[FaultCause] = None
    cause: FaultCause = FaultCause.NONE
    #: Pool bookkeeping, set only by :meth:`SandboxManager.invoke_pooled`.
    slot_index: Optional[int] = None
    recycle_cycles: int = 0

    def __int__(self) -> int:
        return self.cycles

    def __index__(self) -> int:
        return self.cycles

    def __eq__(self, other) -> bool:
        if isinstance(other, (int, float)):
            return self.cycles == other
        return NotImplemented

    def __lt__(self, other):
        return self.cycles < int(other)

    def __le__(self, other):
        return self.cycles <= int(other)

    def __gt__(self, other):
        return self.cycles > int(other)

    def __ge__(self, other):
        return self.cycles >= int(other)

    def __add__(self, other):
        return self.cycles + int(other)

    __radd__ = __add__

    def __sub__(self, other):
        return self.cycles - int(other)

    def __rsub__(self, other):
        return int(other) - self.cycles

    def __hash__(self):
        return hash((self.sandbox_id, self.invocation, self.cycles))

    def as_dict(self) -> dict:
        return {
            "reason": self.reason, "cycles": self.cycles,
            "sandbox_id": self.sandbox_id, "invocation": self.invocation,
            "enter_cycles": self.enter_cycles,
            "exit_cycles": self.exit_cycles,
            "software_cycles": self.software_cycles,
            "service_cycles": self.service_cycles,
            "cause": self.cause.name,
            "fault": self.fault.name if self.fault else None,
            "slot_index": self.slot_index,
            "recycle_cycles": self.recycle_cycles,
        }


class SandboxManager:
    """Creates and invokes in-process sandboxes over one HFI core."""

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 space: Optional[AddressSpace] = None,
                 telemetry: Optional[Telemetry] = None,
                 signals: Optional[SignalTable] = None):
        self.params = params
        self.space = space if space is not None else AddressSpace(params)
        #: Where faulting invocations are delivered as SIGSEGV (§3.3.2);
        #: the supervisor registers its handler here.
        self.signals = signals
        self.telemetry = coalesce(telemetry)
        self.hfi = Hfi(params, telemetry=self.telemetry)
        self.transitions = TransitionModel(params, telemetry=self.telemetry)
        self._handles: Dict[int, SandboxHandle] = {}
        self._next_id = 1
        self.total_cycles = 0
        self.sandboxes_created = 0
        self.invocations = 0
        if self.telemetry.enabled:
            self.telemetry.register_component("sandbox_manager", self.stats)

    def _attribute(self, handle: Optional[SandboxHandle],
                   cycles: int) -> None:
        """Charge cycles to both the manager total and the telemetry
        attribution ledger, so the two always sum identically."""
        self.total_cycles += cycles
        if handle is not None:
            handle.cycles += cycles
        if self.telemetry.enabled:
            self.telemetry.attribute(
                handle.sandbox_id if handle is not None else None, cycles)

    # ------------------------------------------------------------------
    def create_sandbox(self, *, heap_bytes: int, code_bytes: int = 1 << 20,
                       hybrid: bool = False, serialized: bool = True,
                       switch_on_exit: bool = False,
                       exit_handler: int = 0x7000_0000) -> SandboxHandle:
        """Allocate memory and build the descriptor for a new sandbox.

        Creation is near-zero cost on the HFI side (§3: "near-zero
        overhead on sandbox setup") — the accounted cycles are almost
        entirely the memory mapping the developer asked for.
        """
        align = 1 << max(16, (heap_bytes - 1).bit_length())
        raw = self.space.mmap(heap_bytes + align, Prot.NONE, name="sbx-heap")
        heap_base = (raw + align - 1) & ~(align - 1)
        cost = self.space.mprotect(heap_base, heap_bytes, Prot.rw())
        cost += 2 * self.params.syscall_cycles
        code_base = self.space.mmap(code_bytes, Prot.rx(), name="sbx-code")

        regions = [
            (0, ImplicitCodeRegion.covering(code_base, code_bytes)),
            (2, ImplicitDataRegion.covering(heap_base, heap_bytes)),
            (6, ExplicitDataRegion(heap_base, align,
                                   permission_read=True,
                                   permission_write=True)),
        ]
        if hybrid:
            descriptor = SandboxDescriptor.hybrid(
                regions, serialized=serialized,
                switch_on_exit=switch_on_exit)
        else:
            descriptor = SandboxDescriptor.native(
                exit_handler, regions, serialized=serialized,
                switch_on_exit=switch_on_exit)
        handle = SandboxHandle(
            sandbox_id=self._next_id, descriptor=descriptor,
            code_base=code_base, heap_base=heap_base,
            heap_bytes=heap_bytes, is_hybrid=hybrid)
        self._next_id += 1
        self._handles[handle.sandbox_id] = handle
        self.sandboxes_created += 1
        self._attribute(handle, cost)
        if self.telemetry.enabled:
            self.telemetry.count("sandbox.create")
            self.telemetry.event("sandbox.create", self.total_cycles,
                                 sandbox_id=handle.sandbox_id,
                                 heap_bytes=heap_bytes, hybrid=hybrid)
        return handle

    # ------------------------------------------------------------------
    def invoke(self, handle: SandboxHandle, service_cycles: int,
               transition: TransitionKind = TransitionKind.ZERO_COST,
               ) -> InvokeResult:
        """Run one invocation: enter, do ``service_cycles`` of sandboxed
        work, exit.  Returns an :class:`InvokeResult` (which still
        compares/adds like the raw cycle total it used to be)."""
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("sandbox.invoke")
            telemetry.begin_span("sandbox.invoke", self.total_cycles,
                                 sandbox_id=handle.sandbox_id,
                                 transition=transition.value)
        enter = self.hfi.enter(handle.descriptor)
        outcome = self.hfi.exit()
        software = 2 * self.transitions.software_cost(transition)
        total = enter + outcome.cycles + software + service_cycles
        handle.invocations += 1
        self.invocations += 1
        self._attribute(handle, total)
        if telemetry.enabled:
            telemetry.end_span(self.total_cycles, name="sandbox.invoke",
                               cycles=total)
        return InvokeResult(
            reason="hlt", cycles=total, sandbox_id=handle.sandbox_id,
            invocation=handle.invocations, enter_cycles=enter,
            exit_cycles=outcome.cycles, software_cycles=software,
            service_cycles=service_cycles, cause=outcome.cause)

    def invoke_pooled(self, handle: SandboxHandle, pool,
                      service_cycles: int,
                      transition: TransitionKind = TransitionKind.ZERO_COST,
                      ) -> InvokeResult:
        """One invocation scheduled through an
        :class:`~repro.runtime.pool.InstancePool`: acquire a slot,
        run, release (charging the recycle cost to the sandbox)."""
        slot = pool.acquire()
        if slot is None:
            raise RuntimeError("instance pool exhausted")
        result = self.invoke(handle, service_cycles, transition)
        recycle = pool.release(slot)
        self._attribute(handle, recycle)
        result.slot_index = slot.index
        result.recycle_cycles = recycle
        result.cycles += recycle
        return result

    def invoke_faulting(self, handle: SandboxHandle, service_cycles: int,
                        cause: FaultCause = FaultCause.DATA_OUT_OF_BOUNDS,
                        *, fault_addr: int = 0, progress: float = 0.5,
                        ) -> InvokeResult:
        """One invocation that faults partway through the guest's work.

        Architecturally (§3.3.2) the HFI check fails, the sandbox is
        disabled, the cause lands in the MSR, and the trap is delivered
        as SIGSEGV to the trusted runtime — here, into the manager's
        :class:`~repro.os.signals.SignalTable` if one is wired, which
        is how the supervisor observes guest faults.
        """
        if handle.sandbox_id not in self._handles:
            raise SandboxError(
                f"invoke of unknown/destroyed sandbox {handle.sandbox_id}")
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.count("sandbox.fault")
        enter = self.hfi.enter(handle.descriptor)
        outcome = self.hfi.fault(cause, fault_addr)
        done = int(service_cycles * max(0.0, min(1.0, progress)))
        total = (enter + done + outcome.cycles
                 + self.params.signal_delivery_cycles)
        handle.invocations += 1
        self.invocations += 1
        self._attribute(handle, total)
        if self.signals is not None:
            self.signals.deliver(SigInfo(
                Signal.SIGSEGV, fault_addr=fault_addr,
                hfi_cause=int(cause),
                description=f"sandbox {handle.sandbox_id}: {cause.name}"))
        if telemetry.enabled:
            telemetry.event("sandbox.fault", self.total_cycles,
                            sandbox_id=handle.sandbox_id,
                            cause=cause.name)
        return InvokeResult(
            reason="fault", cycles=total, sandbox_id=handle.sandbox_id,
            invocation=handle.invocations, enter_cycles=enter,
            exit_cycles=outcome.cycles, service_cycles=done,
            fault=cause, cause=cause)

    def grow_heap(self, handle: SandboxHandle, new_bytes: int) -> int:
        """Resize the sandbox's explicit region — a register update."""
        for i, (number, region) in enumerate(handle.descriptor.regions):
            if number == 6:
                handle.descriptor.regions[i] = (
                    number, region.resize(new_bytes))
        cost = (self.params.hfi_set_region_cycles
                + 3 * (self.params.base_cycles
                       + self.params.l1d_hit_cycles))
        handle.heap_bytes = new_bytes
        self._attribute(handle, cost)
        if self.telemetry.enabled:
            self.telemetry.count("sandbox.grow_heap")
        return cost

    def destroy_sandbox(self, handle: SandboxHandle,
                        *, discard_memory: bool = True) -> int:
        """Tear down: HFI itself needs nothing; memory discard is the
        developer's choice (§3 footnote: HFI does isolation, not
        resource management).

        Destroying an unknown or already-destroyed handle raises a
        typed :class:`SandboxError` — a double reap is a supervisor
        accounting bug and must not pass silently (or surface as a
        bare ``KeyError``).
        """
        if self._handles.get(handle.sandbox_id) is not handle:
            raise SandboxError(
                f"destroy of unknown or already-destroyed sandbox "
                f"{handle.sandbox_id}")
        cost = 0
        if discard_memory:
            cost = (self.params.syscall_cycles
                    + self.space.madvise_dontneed(handle.heap_base,
                                                  handle.heap_bytes))
        del self._handles[handle.sandbox_id]
        self._attribute(handle, cost)
        if self.telemetry.enabled:
            self.telemetry.count("sandbox.destroy")
            self.telemetry.event("sandbox.destroy", self.total_cycles,
                                 sandbox_id=handle.sandbox_id)
        return cost

    def reap_all(self, *, discard_memory: bool = True) -> int:
        """Destroy every live sandbox; returns the total cycle cost.

        The supervisor's shutdown/abandon path: after a chaos run or a
        serving-loop teardown, no zombie sandboxes may survive."""
        cost = 0
        for handle in list(self._handles.values()):
            cost += self.destroy_sandbox(handle,
                                         discard_memory=discard_memory)
        return cost

    @property
    def live_sandboxes(self) -> int:
        return len(self._handles)

    # ------------------------------------------------------------------
    def stats(self) -> SandboxManagerStats:
        """Uniform component-stats snapshot (``repro.telemetry``)."""
        return SandboxManagerStats(
            component="sandbox_manager",
            sandboxes_created=self.sandboxes_created,
            live_sandboxes=self.live_sandboxes,
            invocations=self.invocations,
            total_cycles=self.total_cycles,
            sandboxes=[
                SandboxStats(component=f"sandbox[{h.sandbox_id}]",
                             sandbox_id=h.sandbox_id,
                             invocations=h.invocations, cycles=h.cycles,
                             heap_bytes=h.heap_bytes,
                             is_hybrid=h.is_hybrid)
                for h in self._handles.values()
            ])
