"""Single-process multiplexing vs multi-process scheduling (paper §2).

"FaaS providers would rather schedule more instances in fewer
processes — ideally one."  This model quantifies why: with HFI, the
runtime multiplexes thousands of sandboxes over one process and pays a
function-call-scale switch per hop; spreading the same work over many
processes pays kernel context switches (plus xsave/xrstor, scheduler
latency) whenever concurrency exceeds the physical cores.

The simulation is a simple round-robin over runnable requests, each
needing ``service_cycles`` of CPU in ``slice_cycles`` quanta — what an
interactive FaaS node does when every request blocks and resumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from ..params import DEFAULT_PARAMS, MachineParams
from .transitions import TransitionKind, TransitionModel


@dataclass
class ScheduleOutcome:
    mechanism: str
    total_cycles: int
    switch_cycles: int
    switches: int
    busy_cycles: int = 0

    @property
    def switch_share(self) -> float:
        """Fraction of *aggregate busy cycles* spent switching, in [0, 1].

        ``switch_cycles`` is summed over every core, while
        ``total_cycles`` is wall-clock (per-core), so dividing by the
        latter inflates the share by the core count and can exceed 1.0.
        """
        denom = self.busy_cycles or self.total_cycles
        if denom <= 0:
            return 0.0
        return min(1.0, max(0.0, self.switch_cycles / denom))


@dataclass
class MultiplexModel:
    """Round-robin execution of concurrent sandboxed requests."""

    params: MachineParams = field(default_factory=lambda: DEFAULT_PARAMS)
    cores: int = 4

    def __post_init__(self):
        self.transitions = TransitionModel(self.params)

    # ------------------------------------------------------------------
    def _simulate(self, n_requests: int, service_cycles: int,
                  slice_cycles: int, switch_cost: int,
                  mechanism: str) -> ScheduleOutcome:
        slices_per_request = math.ceil(service_cycles / slice_cycles)
        total_slices = n_requests * slices_per_request
        work = n_requests * service_cycles
        # every slice boundary is a switch (round-robin among more
        # runnable contexts than cores)
        switches = total_slices
        switch_cycles = switches * switch_cost
        busy = work + switch_cycles
        return ScheduleOutcome(
            mechanism=mechanism,
            total_cycles=math.ceil(busy / self.cores),
            switch_cycles=switch_cycles,
            switches=switches,
            busy_cycles=busy)

    def single_process(self, n_requests: int, service_cycles: int,
                       slice_cycles: int = 50_000,
                       serialized: bool = False) -> ScheduleOutcome:
        """One process, HFI sandbox per request, runtime-multiplexed."""
        cost = self.transitions.round_trip(
            TransitionKind.ZERO_COST, serialized=serialized,
            regions_installed=3)
        return self._simulate(n_requests, service_cycles, slice_cycles,
                              cost, "single-process-hfi")

    def multi_process(self, n_requests: int, service_cycles: int,
                      slice_cycles: int = 50_000) -> ScheduleOutcome:
        """One process per request; the OS context-switches them."""
        cost = (self.params.process_context_switch_cycles
                + self.params.xsave_cycles + self.params.xrstor_cycles)
        return self._simulate(n_requests, service_cycles, slice_cycles,
                              cost, "multi-process")

    # ------------------------------------------------------------------
    def advantage(self, n_requests: int = 512,
                  service_cycles: int = 200_000,
                  slice_cycles: int = 20_000) -> float:
        """Throughput advantage of single-process multiplexing."""
        single = self.single_process(n_requests, service_cycles,
                                     slice_cycles)
        multi = self.multi_process(n_requests, service_cycles,
                                   slice_cycles)
        return multi.total_cycles / single.total_cycles
