"""Single-process multiplexing vs multi-process scheduling (paper §2).

"FaaS providers would rather schedule more instances in fewer
processes — ideally one."  This model quantifies why: with HFI, the
runtime multiplexes thousands of sandboxes over one process and pays a
function-call-scale switch per hop; spreading the same work over many
processes pays kernel context switches (plus xsave/xrstor, scheduler
latency) whenever concurrency exceeds the physical cores.

The simulation is a simple round-robin over runnable requests, each
needing ``service_cycles`` of CPU in ``slice_cycles`` quanta — what an
interactive FaaS node does when every request blocks and resumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from ..params import DEFAULT_PARAMS, MachineParams
from .transitions import TransitionKind, TransitionModel


@dataclass
class ScheduleOutcome:
    mechanism: str
    total_cycles: int
    switch_cycles: int
    switches: int
    busy_cycles: int = 0
    requests: int = 0
    #: Invocations that faulted mid-run: they burned slices (and
    #: switches) but produced nothing — surfaced separately so failure
    #: cost is visible instead of silently inflating throughput.
    failed: int = 0

    @property
    def completed(self) -> int:
        return max(0, self.requests - self.failed)

    @property
    def goodput_per_mcycle(self) -> float:
        """Successful requests per million wall-clock cycles."""
        if self.total_cycles <= 0:
            return 0.0
        return self.completed / (self.total_cycles / 1e6)

    @property
    def switch_share(self) -> float:
        """Fraction of *aggregate busy cycles* spent switching, in [0, 1].

        ``switch_cycles`` is summed over every core, while
        ``total_cycles`` is wall-clock (per-core), so dividing by the
        latter inflates the share by the core count and can exceed 1.0.
        """
        denom = self.busy_cycles or self.total_cycles
        if denom <= 0:
            return 0.0
        return min(1.0, max(0.0, self.switch_cycles / denom))


@dataclass
class MultiplexModel:
    """Round-robin execution of concurrent sandboxed requests."""

    params: MachineParams = field(default_factory=lambda: DEFAULT_PARAMS)
    cores: int = 4

    def __post_init__(self):
        self.transitions = TransitionModel(self.params)

    # ------------------------------------------------------------------
    def _simulate(self, n_requests: int, service_cycles: int,
                  slice_cycles: int, switch_cost: int,
                  mechanism: str, failure_rate: float = 0.0,
                  failure_progress: float = 0.5) -> ScheduleOutcome:
        slices_per_request = math.ceil(service_cycles / slice_cycles)
        failed = min(n_requests, int(round(n_requests * failure_rate)))
        # A failing request runs ``failure_progress`` of its slices
        # before faulting; that partial work still costs slices and
        # switch overhead but yields no completion.
        failed_slices = max(1, math.ceil(
            slices_per_request * failure_progress))
        ok = n_requests - failed
        total_slices = ok * slices_per_request + failed * failed_slices
        work = (ok * service_cycles
                + failed * failed_slices * slice_cycles)
        # every slice boundary is a switch (round-robin among more
        # runnable contexts than cores)
        switches = total_slices
        switch_cycles = switches * switch_cost
        busy = work + switch_cycles
        return ScheduleOutcome(
            mechanism=mechanism,
            total_cycles=math.ceil(busy / self.cores),
            switch_cycles=switch_cycles,
            switches=switches,
            busy_cycles=busy,
            requests=n_requests,
            failed=failed)

    def single_process(self, n_requests: int, service_cycles: int,
                       slice_cycles: int = 50_000,
                       serialized: bool = False,
                       failure_rate: float = 0.0) -> ScheduleOutcome:
        """One process, HFI sandbox per request, runtime-multiplexed."""
        cost = self.transitions.round_trip(
            TransitionKind.ZERO_COST, serialized=serialized,
            regions_installed=3)
        return self._simulate(n_requests, service_cycles, slice_cycles,
                              cost, "single-process-hfi",
                              failure_rate=failure_rate)

    def multi_process(self, n_requests: int, service_cycles: int,
                      slice_cycles: int = 50_000,
                      failure_rate: float = 0.0) -> ScheduleOutcome:
        """One process per request; the OS context-switches them."""
        cost = (self.params.process_context_switch_cycles
                + self.params.xsave_cycles + self.params.xrstor_cycles)
        return self._simulate(n_requests, service_cycles, slice_cycles,
                              cost, "multi-process",
                              failure_rate=failure_rate)

    # ------------------------------------------------------------------
    def advantage(self, n_requests: int = 512,
                  service_cycles: int = 200_000,
                  slice_cycles: int = 20_000) -> float:
        """Throughput advantage of single-process multiplexing."""
        single = self.single_process(n_requests, service_cycles,
                                     slice_cycles)
        multi = self.multi_process(n_requests, service_cycles,
                                   slice_cycles)
        return multi.total_cycles / single.total_cycles
