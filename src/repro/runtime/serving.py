"""Discrete-event production serving simulator (paper §6.3 at scale).

The paper's FaaS/CDN scenario is where HFI's cheap transitions pay
off: one process multiplexes thousands of sandboxed invocations, and
the per-request protection cost (transition round trips, instance
staging, teardown madvise) decides how much offered load the node
sustains before the tail blows up.  :class:`FaasServer` models this as
a closed-form M/G/k loop; this module is the production-shaped
version — an event-heap simulator in the image of the Firecracker
serving architecture and the Faasm cluster setup (SNIPPETS.md):

* **open-loop arrivals** — Poisson, bursty (2-state MMPP), or a
  replayable trace file; the offered load never waits for the server;
* **N worker cores**, each owning a shard of a
  :class:`~repro.runtime.pool.ShardedInstancePool` with work-stealing
  when the local shard runs dry;
* the **supervisor policies** of :mod:`repro.runtime.supervisor` —
  admission control shedding lowest-priority-newest-first (never
  HIGH), per-tenant circuit breakers, watchdog kills — via the same
  ``shed_victims``/``record_breaker_fault`` code and the same
  ``Injection`` fault ledger, so shed/failed requests are accounted
  distinctly from successes;
* **per-scheme cost plumbing** — each isolation scheme's transition
  round trip comes from :class:`~repro.runtime.transitions.TransitionModel`,
  its pooled instance staging from
  :class:`~repro.runtime.startup.StartupModel`, and its teardown from
  the pool's real (batched or immediate) madvise accounting.

Everything inside the loop is integer cycles with a deterministic
event order (``(cycle, kind, seq)`` heap keys, seeded RNG only), so a
seed fully determines a run — the property the golden serving fixture
(tests/golden_serving.json) and the ``repro-hfi verify`` determinism
gate pin down.  Latency percentiles (p50/p99/p999) are computed over
integer cycle latencies with the exact nearest-rank rule of
:func:`repro.runtime.faas.percentile`.
"""

from __future__ import annotations

import heapq
import json
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..os.address_space import AddressSpace
from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.sink import Telemetry, coalesce
from ..telemetry.stats import ServingStats
from ..wasm import make_strategy
from .faas import percentile
from .pool import PoolSlot, ShardedInstancePool
from .startup import StartupModel
from .supervisor import (
    FaultKind,
    Injection,
    Priority,
    Request,
    RequestOutcome,
    TenantBreaker,
    record_breaker_fault,
    shed_victims,
)
from .transitions import TransitionKind, TransitionModel

#: Free-list pop cost of a pooled instance (matches ``StartupModel``'s
#: pooled fast path, minus the HFI descriptor staging).
POOLED_POP_CYCLES = 200


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
class ArrivalProcess:
    """Seeded open-loop interarrival generator (integer cycles)."""

    name = "arrivals"

    def interarrivals(self, n: int) -> Iterator[int]:
        raise NotImplementedError


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a fixed mean rate."""

    mean_interarrival_cycles: float
    seed: int = 0
    name = "poisson"

    def interarrivals(self, n: int) -> Iterator[int]:
        rng = random.Random((self.seed << 12) ^ 0x9015)
        mean = max(1.0, float(self.mean_interarrival_cycles))
        for _ in range(n):
            yield max(1, int(rng.expovariate(1.0 / mean)))


@dataclass
class MmppArrivals(ArrivalProcess):
    """Bursty arrivals: a 2-state Markov-modulated Poisson process.

    The calm state arrives at the base rate; the burst state arrives
    ``burst_factor`` times faster.  State transitions are drawn per
    arrival, so the long-run offered load exceeds the calm rate by the
    stationary burst share — the overload shape that exercises
    admission control and work-stealing.
    """

    mean_interarrival_cycles: float
    burst_factor: float = 8.0
    p_calm_to_burst: float = 0.02
    p_burst_to_calm: float = 0.10
    seed: int = 0
    name = "mmpp"

    def interarrivals(self, n: int) -> Iterator[int]:
        rng = random.Random((self.seed << 12) ^ 0x3117)
        mean = max(1.0, float(self.mean_interarrival_cycles))
        burst = False
        for _ in range(n):
            state_mean = mean / self.burst_factor if burst else mean
            yield max(1, int(rng.expovariate(1.0 / max(1.0, state_mean))))
            draw = rng.random()
            burst = (draw >= self.p_burst_to_calm if burst
                     else draw < self.p_calm_to_burst)


@dataclass
class TraceArrivals(ArrivalProcess):
    """Replay explicit interarrival gaps (e.g. from a recorded trace)."""

    gaps: Sequence[int]
    name = "trace"

    def interarrivals(self, n: int) -> Iterator[int]:
        for i in range(n):
            yield max(0, int(self.gaps[i % len(self.gaps)]))


def build_requests(arrivals: ArrivalProcess, n_requests: int, *,
                   seed: int = 0, tenants: int = 8,
                   service_cycles: Tuple[int, int] = (20_000, 120_000),
                   high_fraction: float = 0.08,
                   low_fraction: float = 0.20) -> List[Request]:
    """Deterministic open-loop tenant traffic over an arrival process."""
    rng = random.Random((seed << 8) ^ 0x5E2F)
    lo, hi = service_cycles
    clock = 0
    requests: List[Request] = []
    for index, gap in enumerate(arrivals.interarrivals(n_requests)):
        clock += gap
        draw = rng.random()
        priority = (Priority.HIGH if draw < high_fraction
                    else Priority.LOW if draw < high_fraction + low_fraction
                    else Priority.NORMAL)
        requests.append(Request(
            index=index, tenant=f"tenant-{rng.randrange(tenants)}",
            service_cycles=rng.randrange(lo, hi), priority=priority,
            arrival_cycle=clock))
    return requests


def save_trace(requests: Sequence[Request], path: str) -> None:
    """Persist a request stream as a replayable JSON trace file."""
    rows = [{"index": r.index, "tenant": r.tenant,
             "service_cycles": r.service_cycles,
             "priority": int(r.priority),
             "arrival_cycle": r.arrival_cycle} for r in requests]
    with open(path, "w") as fh:
        json.dump({"format": "repro-hfi-trace-v1", "requests": rows}, fh,
                  indent=2)
        fh.write("\n")


def load_trace(path: str) -> List[Request]:
    """Load a trace file written by :func:`save_trace`."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") != "repro-hfi-trace-v1":
        raise ValueError(f"{path}: not a repro-hfi trace file")
    return [Request(index=row["index"], tenant=row["tenant"],
                    service_cycles=row["service_cycles"],
                    priority=row["priority"],
                    arrival_cycle=row["arrival_cycle"])
            for row in payload["requests"]]


# ----------------------------------------------------------------------
# per-scheme cost plumbing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchemeCosts:
    """One isolation scheme's per-request serving costs.

    ``transition_cycles`` and ``dispatch_cycles`` are *measured* from
    the transition/startup models; teardown is not a constant here —
    it is whatever the pool's (batched or immediate) madvise
    accounting charges at release time, which is where the §6.3.1
    batching win shows up.

    ``setup_cycles``/``teardown_cycles`` are the *per-request sandbox
    lifecycle* costs for churn-shaped traffic (one sandbox per
    connection, NGINX-style): setup is charged with dispatch, teardown
    with the slot release.  They default to 0 — the FaaS scenario
    reuses pooled instances, so only connection-churn scenarios
    populate them (from :func:`connection_lifecycle_costs`, i.e. real
    ``mprotect``/``madvise_dontneed`` walks, not flat constants).
    """

    name: str
    strategy_name: str          # backs the pool slots' reservations
    transition_cycles: int      # boundary round trip per invocation
    dispatch_cycles: int        # pooled instance staging per dispatch
    batch_teardown: bool
    setup_cycles: int = 0       # per-connection sandbox establishment
    teardown_cycles: int = 0    # per-connection sandbox teardown


#: The schemes the serving benchmark compares.
SERVING_SCHEMES = ("hfi", "guard-pages", "mpk")


def scheme_costs(name: str,
                 params: MachineParams = DEFAULT_PARAMS) -> SchemeCosts:
    """Derive a scheme's serving costs from the runtime cost models."""
    from ..wasm import HfiStrategy

    transitions = TransitionModel(params)
    startup = StartupModel(params)
    if name == "hfi":
        return SchemeCosts(
            name="hfi", strategy_name="hfi",
            transition_cycles=transitions.round_trip(
                TransitionKind.ZERO_COST, serialized=True),
            dispatch_cycles=startup.wasm_instance_cycles(
                HfiStrategy(), pooled=True),
            batch_teardown=True)
    if name == "guard-pages":
        # Stock Wasm: entry/exit is a compiler-proven call; dispatch is
        # a bare free-list pop.  The per-request cost lives in teardown:
        # guard regions make batched discards span the whole pool
        # (§6.3.1), so releases madvise immediately, one syscall each.
        return SchemeCosts(
            name="guard-pages", strategy_name="guard-pages",
            transition_cycles=2 * transitions.software_cost(
                TransitionKind.ZERO_COST),
            dispatch_cycles=POOLED_POP_CYCLES,
            batch_teardown=False)
    if name == "mpk":
        # ERIM-style pkey switching on guard-page-shaped reservations:
        # wrpkru in/out per invocation plus a pkey tag at dispatch.
        return SchemeCosts(
            name="mpk", strategy_name="guard-pages",
            transition_cycles=transitions.mpk_round_trip(),
            dispatch_cycles=POOLED_POP_CYCLES + params.wrpkru_cycles,
            batch_teardown=False)
    raise ValueError(f"unknown serving scheme {name!r}; "
                     f"known: {SERVING_SCHEMES}")


def connection_lifecycle_costs(strategy_name: str, *,
                               heap_bytes: int = 1 << 16,
                               touched_bytes: int = 16 * 1024,
                               tag_pkey: bool = False,
                               params: MachineParams = DEFAULT_PARAMS,
                               ) -> Tuple[int, int]:
    """Measured per-connection sandbox (setup, teardown) cycles.

    Runs the strategy's real reservation against a scratch
    :class:`AddressSpace` — ``mmap`` + ``mprotect`` (plus a
    ``pkey_mprotect`` tag when ``tag_pkey``) for setup — then dirties
    the connection's working set and measures the
    ``madvise_dontneed`` teardown, so present pages pay the zap cost
    and guard-page reservations pay the sparse PTE-range walk the
    paper's §6.3.1 batching argument hinges on.  This is what
    churn-shaped scenarios feed into :class:`SchemeCosts` instead of
    flat constants.
    """
    space = AddressSpace(params)
    strategy = make_strategy(strategy_name)
    base, reserve = strategy.reserve_memory(space, heap_bytes)
    setup = reserve + 2 * params.syscall_cycles
    if tag_pkey:
        setup += params.syscall_cycles + space.set_pkey(base, heap_bytes,
                                                        1)
    page = params.page_bytes
    for off in range(0, min(touched_bytes, heap_bytes), page):
        space.write(base + off, 0xAB, 1, check=False)
    teardown = strategy.teardown_cost(space, base, heap_bytes, params)
    if tag_pkey:
        # the key must be recycled clean: untag before the key is freed
        teardown += params.syscall_cycles + space.set_pkey(base,
                                                           heap_bytes, 0)
    return setup, teardown


# ----------------------------------------------------------------------
# the simulator
# ----------------------------------------------------------------------
@dataclass
class ServingConfig:
    """Knobs for one serving run."""

    n_cores: int = 4
    slots_per_shard: int = 16
    heap_bytes: int = 1 << 16
    #: Admission bound on in-flight requests (queued + executing, each
    #: holding a pool slot).  Overflow sheds lowest-priority-newest.
    max_inflight: int = 64
    no_shed_priority: int = Priority.HIGH
    watchdog_multiplier: float = 4.0
    watchdog_min_cycles: int = 50_000
    breaker_threshold: int = 4
    breaker_cooldown_cycles: int = 2_000_000
    backoff_cycles: int = 20_000
    #: Fraction of service a faulting guest runs before the HFI fault.
    failure_service_fraction: float = 0.5


@dataclass
class ServingMetrics:
    """Results of one serving run (cycle-exact, JSON-ready)."""

    scheme: str
    arrival: str
    n_cores: int
    requests: int
    succeeded: int
    failed: int
    shed: int
    retried: int
    quarantined: int
    killed: int
    breaker_shed: int
    steals: int
    peak_inflight: int
    duration_cycles: int
    busy_cycles: int
    recycle_cycles: int
    p50_cycles: int
    p99_cycles: int
    p999_cycles: int
    mean_latency_cycles: float
    offered_rps: float
    throughput_rps: float
    goodput_rps: float
    utilization: float
    frequency_ghz: float

    def _cycles_to_ms(self, cycles: float) -> float:
        return cycles / (self.frequency_ghz * 1e6)

    @property
    def p50_ms(self) -> float:
        return self._cycles_to_ms(self.p50_cycles)

    @property
    def p99_ms(self) -> float:
        return self._cycles_to_ms(self.p99_cycles)

    @property
    def p999_ms(self) -> float:
        return self._cycles_to_ms(self.p999_cycles)

    @property
    def accounted(self) -> bool:
        """Every request ended in exactly one terminal state."""
        return self.succeeded + self.failed + self.shed == self.requests

    def as_dict(self) -> dict:
        out = {f: getattr(self, f)
               for f in self.__dataclass_fields__}  # noqa: E501 — dataclass introspection
        out["p50_ms"] = self.p50_ms
        out["p99_ms"] = self.p99_ms
        out["p999_ms"] = self.p999_ms
        out["accounted"] = self.accounted
        return out

    def digest(self) -> str:
        """Bit-exact fingerprint for the determinism gate: every
        integer field of the run, in a stable order."""
        ints = {f: getattr(self, f) for f in self.__dataclass_fields__
                if isinstance(getattr(self, f), int)}
        return json.dumps(ints, sort_keys=True)


# event kinds — completions drain before same-cycle arrivals so a
# freed slot is visible to the arrival that needs it
_COMPLETE = 0
_ARRIVAL = 1


@dataclass
class _InFlight:
    """One admitted request holding a pool slot."""

    request: Request
    slot: PoolSlot
    owner_shard: int
    core: int
    injection: Optional[Injection] = None
    started: bool = False


class _Core:
    __slots__ = ("queue", "running", "busy_until", "busy_cycles")

    def __init__(self):
        self.queue: deque = deque()
        self.running: Optional[_InFlight] = None
        self.busy_until = 0
        self.busy_cycles = 0


class ServingSimulator:
    """Event-heap serving loop over sharded pools for one scheme."""

    def __init__(self, scheme="hfi",
                 config: Optional[ServingConfig] = None,
                 params: Optional[MachineParams] = None, *,
                 seed: int = 0,
                 telemetry: Optional[Telemetry] = None):
        self.params = params if params is not None else MachineParams()
        self.config = config if config is not None else ServingConfig()
        self.scheme = (scheme if isinstance(scheme, SchemeCosts)
                       else scheme_costs(scheme, self.params))
        self.telemetry = coalesce(telemetry)
        self.rng = random.Random((seed << 16) ^ 0x5EE5)
        self.space = AddressSpace(self.params)
        self.pool = ShardedInstancePool(
            self.space, make_strategy(self.scheme.strategy_name),
            shards=self.config.n_cores,
            slots_per_shard=self.config.slots_per_shard,
            heap_bytes=self.config.heap_bytes, params=self.params,
            batch_teardown=self.scheme.batch_teardown)
        self.breakers: Dict[str, TenantBreaker] = {}
        self.counters = ServingStats(component="serving")
        self.outcomes: List[RequestOutcome] = []
        self.latencies: List[int] = []
        self.clock = 0
        self._inflight = 0
        self._seq = 0
        if self.telemetry.enabled:
            self.telemetry.register_component("serving", self.stats)

    # ------------------------------------------------------------------
    def run(self, requests: Sequence[Request],
            injector=None) -> ServingMetrics:
        """Drive ``requests`` (sorted by arrival) through the node."""
        heap: List[tuple] = []
        for request in requests:
            self._push(heap, request.arrival_cycle, _ARRIVAL, request)
        last_arrival = max((r.arrival_cycle for r in requests), default=0)
        self._cores = [_Core() for _ in range(self.config.n_cores)]
        while heap:
            cycle, kind, _, payload = heapq.heappop(heap)
            self.clock = max(self.clock, cycle)
            if kind == _ARRIVAL:
                self._on_arrival(heap, payload, injector)
            else:
                self._on_complete(heap, payload)
        duration = max(self.clock, last_arrival)
        return self._metrics(requests, duration)

    def _push(self, heap, cycle: int, kind: int, payload) -> None:
        self._seq += 1
        heapq.heappush(heap, (cycle, kind, self._seq, payload))

    # ------------------------------------------------------------------
    # arrivals: breaker -> admission -> slot -> enqueue
    # ------------------------------------------------------------------
    def _on_arrival(self, heap, request: Request, injector) -> None:
        self.counters.requests += 1
        injection = request.injection or (
            injector.injection_for(request.index) if injector else None)
        breaker = self.breakers.setdefault(request.tenant, TenantBreaker())
        if breaker.state == "open":
            if self.clock < breaker.open_until:
                self.counters.breaker_shed += 1
                self._shed(request, injection, "breaker")
                return
            breaker.state = "half-open"
        # --- admission control: bounded in-flight ---------------------
        if self._inflight >= self.config.max_inflight:
            if not self._make_room(request, injection):
                return                      # the newcomer was the victim
        # --- slot acquisition (work-stealing shard pool) --------------
        core_index = request.index % self.config.n_cores
        slot, owner, cycles = self.pool.acquire(core_index)
        if (slot is None
                and request.priority >= self.config.no_shed_priority):
            # a no-shed request found every slot held: evict a queued
            # lower-priority record and take its slot
            if self._evict_one_queued():
                slot, owner, extra = self.pool.acquire(core_index)
                cycles += extra
        core = self._cores[core_index]
        core.busy_until = max(core.busy_until, self.clock) + cycles
        core.busy_cycles += cycles
        self.counters.recycle_cycles += cycles
        if slot is None:
            self._shed(request, injection, "capacity")
            return
        record = _InFlight(request, slot, owner, core_index, injection)
        self._inflight += 1
        self.counters.peak_inflight = max(self.counters.peak_inflight,
                                          self._inflight)
        core.queue.append(record)
        self._maybe_start(heap, core_index)

    def _make_room(self, newcomer: Request,
                   injection: Optional[Injection]) -> bool:
        """Shed one victim to admit ``newcomer``; False if the
        newcomer itself was shed.  Victims come from the queued
        (not-yet-started) population plus the newcomer, chosen by the
        supervisor's policy: lowest priority first, newest first,
        never ``no_shed_priority``.  With no sheddable victim (all
        HIGH) the newcomer is admitted anyway — HIGH is never dropped.
        """
        candidates: List[tuple] = []
        queued: Dict[int, tuple] = {}
        for core_index, core in enumerate(self._cores):
            for record in core.queue:
                order = record.request.index
                queued[order] = (core_index, record)
                candidates.append((order, record.request))
        newcomer_key = newcomer.index
        candidates.append((newcomer_key, newcomer))
        victims = shed_victims(candidates, 1,
                               self.config.no_shed_priority)
        if not victims:
            return True                     # all HIGH: admit regardless
        victim = victims[0]
        if victim == newcomer_key and victim not in queued:
            self._shed(newcomer, injection, "admission")
            return False
        core_index, record = queued[victim]
        self._cores[core_index].queue.remove(record)
        self._release_record(record, quarantine=False)
        self._shed(record.request, record.injection, "admission")
        return True

    def _evict_one_queued(self) -> bool:
        """Shed one queued (not yet started) record below the no-shed
        priority and free its slot; False if nothing is evictable."""
        candidates: List[tuple] = []
        queued: Dict[int, tuple] = {}
        for core_index, core in enumerate(self._cores):
            for record in core.queue:
                queued[record.request.index] = (core_index, record)
                candidates.append((record.request.index, record.request))
        victims = shed_victims(candidates, 1,
                               self.config.no_shed_priority)
        if not victims:
            return False
        core_index, record = queued[victims[0]]
        self._cores[core_index].queue.remove(record)
        self._release_record(record, quarantine=False)
        self._shed(record.request, record.injection, "evicted")
        return True

    def _shed(self, request: Request, injection: Optional[Injection],
              why: str) -> None:
        self.counters.shed += 1
        self._account(injection, "shed")
        if self.telemetry.enabled:
            self.telemetry.count("serving.shed")
        self.outcomes.append(RequestOutcome(request, "shed", detail=why))

    def _account(self, injection: Optional[Injection],
                 classification: str) -> None:
        if injection is None or injection.classified is not None:
            return
        injection.classified = classification
        if self.telemetry.enabled:
            self.telemetry.count(f"serving.fault[{classification}]")

    # ------------------------------------------------------------------
    # dispatch and completion
    # ------------------------------------------------------------------
    def _maybe_start(self, heap, core_index: int) -> None:
        core = self._cores[core_index]
        if core.running is not None or not core.queue:
            return
        record = core.queue.popleft()
        core.running = record
        record.started = True
        start = max(self.clock, core.busy_until)
        duration = self._invocation_cycles(record)
        core.busy_until = start + duration
        core.busy_cycles += duration
        self._push(heap, start + duration, _COMPLETE, record)

    def _invocation_cycles(self, record: _InFlight) -> int:
        """Cycles the core is held for this invocation, fault-adjusted.

        The one-shot pending fault (if any) is consumed here; its
        classification and slot consequences land at completion so the
        ledger is stamped exactly once.
        """
        scheme, config, request = self.scheme, self.config, record.request
        base = (scheme.dispatch_cycles + scheme.transition_cycles
                + scheme.setup_cycles)
        pending = (record.injection.kind
                   if (record.injection is not None
                       and record.injection.classified is None
                       and record.injection.kind
                       is not FaultKind.BURST_OVERLOAD) else None)
        if pending is FaultKind.TRANSIENT_KERNEL:
            # failed pre-invoke kernel call: backoff, then a clean retry
            return (self.params.syscall_cycles + config.backoff_cycles
                    + 2 * base + request.service_cycles)
        if pending is FaultKind.HEAP_OOM:
            flushed = self.pool.flush_all()
            self.counters.recycle_cycles += flushed
            return (self.params.syscall_cycles + flushed
                    + config.backoff_cycles + 2 * base
                    + request.service_cycles)
        if pending is FaultKind.GUEST_HANG:
            budget = max(config.watchdog_min_cycles,
                         int(config.watchdog_multiplier
                             * request.service_cycles))
            return base + budget + self.params.signal_delivery_cycles
        if pending is FaultKind.GUEST_FAULT:
            held = int(request.service_cycles
                       * config.failure_service_fraction)
            return base + held + self.params.signal_delivery_cycles
        return base + request.service_cycles

    def _on_complete(self, heap, record: _InFlight) -> None:
        core = self._cores[record.core]
        core.running = None
        request, injection = record.request, record.injection
        breaker = self.breakers.setdefault(request.tenant,
                                           TenantBreaker())
        pending = (injection.kind
                   if (injection is not None
                       and injection.classified is None
                       and injection.kind is not FaultKind.BURST_OVERLOAD)
                   else None)
        if pending is FaultKind.GUEST_HANG:
            self._release_record(record, quarantine=True)
            self._account(injection, "killed")
            self.counters.killed += 1
            self.counters.failed += 1
            self._breaker_fault(breaker)
            self.outcomes.append(RequestOutcome(
                request, "failed", attempts=1, detail="watchdog"))
        elif pending is FaultKind.GUEST_FAULT:
            self._release_record(record, quarantine=True)
            self._account(injection, "quarantined")
            self.counters.quarantined += 1
            self.counters.failed += 1
            self._breaker_fault(breaker)
            self.outcomes.append(RequestOutcome(
                request, "failed", attempts=1, detail="guest-fault"))
        else:
            attempts = 1
            if pending in (FaultKind.TRANSIENT_KERNEL, FaultKind.HEAP_OOM):
                self._account(injection, "retried")
                self.counters.retried += 1
                attempts = 2
            if pending is FaultKind.SLOT_CORRUPTION:
                # the answer stands, but the slot never recycles
                # unscrubbed and the tenant counts a breaker fault
                self._release_record(record, quarantine=True)
                self._account(injection, "quarantined")
                self.counters.quarantined += 1
                self._breaker_fault(breaker)
            else:
                self._release_record(record, quarantine=False)
                breaker.consecutive_faults = 0
                breaker.state = "closed"
            latency = self.clock - request.arrival_cycle
            self.latencies.append(latency)
            self.counters.succeeded += 1
            if self.telemetry.enabled:
                self.telemetry.observe("serving.latency_cycles", latency)
            self.outcomes.append(RequestOutcome(
                request, "ok", attempts=attempts, cycles=latency))
        self._maybe_start(heap, record.core)

    def _release_record(self, record: _InFlight,
                        quarantine: bool) -> None:
        self._inflight -= 1
        if quarantine:
            self.pool.quarantine(record.slot, record.owner_shard)
            return
        cost = (self.pool.release(record.slot, record.owner_shard)
                + self.scheme.teardown_cycles)
        core = self._cores[record.core]
        core.busy_until = max(core.busy_until, self.clock) + cost
        core.busy_cycles += cost
        self.counters.recycle_cycles += cost

    def _breaker_fault(self, breaker: TenantBreaker) -> None:
        record_breaker_fault(breaker, self.clock,
                             self.config.breaker_threshold,
                             self.config.breaker_cooldown_cycles)

    # ------------------------------------------------------------------
    def _metrics(self, requests: Sequence[Request],
                 duration: int) -> ServingMetrics:
        counters = self.counters
        counters.steals = self.pool.steals
        counters.duration_cycles = duration
        counters.busy_cycles = sum(c.busy_cycles for c in self._cores)
        counters.p50_cycles = int(percentile(self.latencies, 50))
        counters.p99_cycles = int(percentile(self.latencies, 99))
        counters.p999_cycles = int(percentile(self.latencies, 99.9))
        n = len(requests)
        seconds = self.params.cycles_to_seconds(duration) or 1e-12
        gaps = [b.arrival_cycle - a.arrival_cycle
                for a, b in zip(requests, requests[1:])]
        mean_gap = (sum(gaps) / len(gaps)) if gaps else 0.0
        offered_rps = (1.0 / self.params.cycles_to_seconds(mean_gap)
                       if mean_gap else 0.0)
        done = counters.succeeded + counters.failed
        return ServingMetrics(
            scheme=self.scheme.name,
            arrival="trace",
            n_cores=self.config.n_cores,
            requests=n,
            succeeded=counters.succeeded,
            failed=counters.failed,
            shed=counters.shed,
            retried=counters.retried,
            quarantined=counters.quarantined,
            killed=counters.killed,
            breaker_shed=counters.breaker_shed,
            steals=counters.steals,
            peak_inflight=counters.peak_inflight,
            duration_cycles=duration,
            busy_cycles=counters.busy_cycles,
            recycle_cycles=counters.recycle_cycles,
            p50_cycles=counters.p50_cycles,
            p99_cycles=counters.p99_cycles,
            p999_cycles=counters.p999_cycles,
            mean_latency_cycles=(sum(self.latencies) / len(self.latencies)
                                 if self.latencies else 0.0),
            offered_rps=offered_rps,
            throughput_rps=done / seconds,
            goodput_rps=counters.succeeded / seconds,
            utilization=(counters.busy_cycles
                         / (duration * self.config.n_cores)
                         if duration else 0.0),
            frequency_ghz=self.params.frequency_ghz)

    def stats(self) -> ServingStats:
        """Uniform component-stats snapshot (``repro.telemetry``)."""
        snapshot = ServingStats(**{
            f: getattr(self.counters, f)
            for f in self.counters.__dataclass_fields__})
        snapshot.component = "serving"
        snapshot.steals = self.pool.steals
        return snapshot


# ----------------------------------------------------------------------
# convenience front door (CLI, bench, verify gate)
# ----------------------------------------------------------------------
def mean_service_cycles(scheme: SchemeCosts,
                        service_cycles: Tuple[int, int]) -> float:
    """Expected per-request core occupancy under a scheme."""
    return ((service_cycles[0] + service_cycles[1]) / 2.0
            + scheme.transition_cycles + scheme.dispatch_cycles)


def simulate_serving(scheme: str = "hfi", *, n_requests: int = 2000,
                     seed: int = 0, arrival: str = "poisson",
                     offered_load: float = 0.8,
                     service_cycles: Tuple[int, int] = (20_000, 120_000),
                     config: Optional[ServingConfig] = None,
                     params: Optional[MachineParams] = None,
                     requests: Optional[Sequence[Request]] = None,
                     injector=None,
                     telemetry: Optional[Telemetry] = None,
                     ) -> ServingMetrics:
    """One serving run: build traffic (unless given), simulate, report.

    ``offered_load`` is relative to the scheme-adjusted node capacity:
    1.0 offers exactly ``n_cores / mean_service`` requests per cycle.
    """
    params = params if params is not None else MachineParams()
    config = config if config is not None else ServingConfig()
    costs = scheme_costs(scheme, params) if isinstance(scheme, str) \
        else scheme
    sim = ServingSimulator(costs, config, params, seed=seed,
                           telemetry=telemetry)
    arrival_name = arrival
    if requests is None:
        mean_interarrival = (mean_service_cycles(costs, service_cycles)
                             / (max(1e-9, offered_load) * config.n_cores))
        if arrival == "poisson":
            process: ArrivalProcess = PoissonArrivals(
                mean_interarrival, seed=seed)
        elif arrival == "mmpp":
            # calm-state rate scaled so the long-run offered load
            # (including burst episodes) stays near the target
            process = MmppArrivals(mean_interarrival * 2.2, seed=seed)
        else:
            raise ValueError(f"unknown arrival process {arrival!r}; "
                             "pass requests= for trace replay")
        requests = build_requests(process, n_requests, seed=seed,
                                  service_cycles=service_cycles)
    else:
        arrival_name = "trace"
    metrics = sim.run(requests, injector=injector)
    metrics.arrival = arrival_name
    return metrics
