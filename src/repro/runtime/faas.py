"""A discrete-event FaaS platform model (paper §6.3, §6.5 / Table 1).

Requests arrive (Poisson), each is served by a fresh Wasm sandbox
invocation whose *service time* comes from the cycle simulator, plus
the per-request protection costs of the scheme under test.  The server
is an M/D/c queue; we measure average latency, p99 tail latency, and
throughput — the Table 1 columns.

The mechanism behind the paper's headline result falls out naturally:
Swivel inflates service time by tens of percent, which at a fixed
offered load pushes utilization up and queueing delay — hence *tail*
latency — up disproportionately; HFI only adds two serialized
transitions per request, which the workload amortizes to 0-2%.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional

from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.sink import NULL_TELEMETRY, Telemetry


@dataclass
class FaasMetrics:
    """Results of one simulated run.

    Latency stats (``avg``/``p99``) cover *successful* requests only —
    a failed invocation has no completion latency to report, and
    folding its (shorter) abort time into the percentiles would make a
    failing scheme look faster.  Failures show up in ``failed`` and in
    the gap between ``throughput_rps`` (everything that left the
    system) and ``goodput_rps`` (successful completions per second).
    """

    scheme: str
    requests: int
    avg_latency_s: float
    p99_latency_s: float
    throughput_rps: float
    utilization: float
    binary_size: int = 0
    failed: int = 0
    goodput_rps: float = 0.0

    @property
    def succeeded(self) -> int:
        return self.requests - self.failed

    def latency_ms(self) -> float:
        return self.avg_latency_s * 1e3

    def tail_ms(self) -> float:
        return self.p99_latency_s * 1e3


def percentile(values: List[float], pct: float) -> float:
    """Nearest-rank percentile (no numpy dependency in the hot path).

    The rank is computed in exact (rational) arithmetic: the naive
    ``ceil(pct / 100.0 * n)`` rounds the wrong way whenever the binary
    product ``pct / 100 * n`` lands just above the true integer — e.g.
    ``pct=7, n=100`` gives ``ceil(7.000000000000001) = 8`` and returns
    the 8th-ranked element instead of the 7th.  Caught by the property
    suite (``tests/test_percentile_properties.py``) against a
    Fraction-based oracle.  ``pct`` at or below 0 clamps to the
    minimum, at or above 100 to the maximum — the nearest-rank rule is
    only defined on (0, 100].
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if pct <= 0:
        return ordered[0]
    if pct >= 100:
        return ordered[-1]
    rank = math.ceil(Fraction(pct) * len(ordered) / 100)
    return ordered[max(0, min(len(ordered) - 1, rank - 1))]


@dataclass
class FaasServer:
    """An ``n_workers``-core FaaS node serving sandboxed requests."""

    params: MachineParams = field(default_factory=lambda: DEFAULT_PARAMS)
    n_workers: int = 2
    seed: int = 2023
    #: Optional sink; each simulate() run is spanned and its request
    #: count / latency distribution recorded.
    telemetry: Telemetry = field(default=NULL_TELEMETRY, repr=False)

    def simulate(self, scheme: str, service_cycles: int,
                 n_requests: int = 2000,
                 arrival_rate_rps: Optional[float] = None,
                 offered_utilization: float = 0.7,
                 per_request_overhead_cycles: int = 0,
                 binary_size: int = 0,
                 failure_rate: float = 0.0,
                 failure_service_fraction: float = 0.5) -> FaasMetrics:
        """Simulate ``n_requests`` through the node.

        ``service_cycles`` is the sandboxed work per request (measured
        on the cycle simulator); ``per_request_overhead_cycles`` adds
        the scheme's transition/setup costs.  If ``arrival_rate_rps``
        is None it is derived from ``offered_utilization`` relative to
        the *given* service time — pass an absolute rate to compare
        schemes under identical offered load (as the paper does).

        ``failure_rate`` makes that fraction of invocations fault; a
        failed request holds its worker for
        ``failure_service_fraction`` of the service time (the guest
        faults partway through) and is reported separately — it never
        contributes a sample to the success-latency distribution.
        """
        service_s = self.params.cycles_to_seconds(
            service_cycles + per_request_overhead_cycles)
        if arrival_rate_rps is None:
            arrival_rate_rps = (offered_utilization * self.n_workers
                                / service_s)
        rng = random.Random(self.seed)

        # generate Poisson arrivals
        t = 0.0
        arrivals = []
        for _ in range(n_requests):
            t += rng.expovariate(arrival_rate_rps)
            arrivals.append(t)

        # m-server queue: worker free-at times in a heap
        workers = [0.0] * self.n_workers
        heapq.heapify(workers)
        latencies = []
        failed = 0
        busy_time = 0.0
        last_finish = 0.0
        failed_service_s = service_s * failure_service_fraction
        for arrival in arrivals:
            free_at = heapq.heappop(workers)
            start = max(arrival, free_at)
            faults = failure_rate > 0 and rng.random() < failure_rate
            held = failed_service_s if faults else service_s
            finish = start + held
            heapq.heappush(workers, finish)
            if faults:
                failed += 1
            else:
                latencies.append(finish - arrival)
            busy_time += held
            last_finish = max(last_finish, finish)

        makespan = max(last_finish, arrivals[-1]) or 1e-12
        if self.telemetry.enabled:
            self.telemetry.count("faas.requests", n_requests)
            if failed:
                self.telemetry.count("faas.failed", failed)
            self.telemetry.count(f"faas.runs[{scheme}]")
            histogram = self.telemetry.observe
            cycles_per_s = 1.0 / self.params.cycles_to_seconds(1)
            for latency in latencies:
                histogram("faas.latency_cycles",
                          int(latency * cycles_per_s))
            self.telemetry.event(
                "faas.simulate", 0, scheme=scheme, requests=n_requests,
                utilization=round(busy_time / (makespan * self.n_workers),
                                  4))
        n_ok = len(latencies)
        return FaasMetrics(
            scheme=scheme,
            requests=n_requests,
            avg_latency_s=sum(latencies) / n_ok if n_ok else 0.0,
            p99_latency_s=percentile(latencies, 99.0),
            throughput_rps=n_requests / makespan,
            utilization=busy_time / (makespan * self.n_workers),
            binary_size=binary_size,
            failed=failed,
            goodput_rps=n_ok / makespan,
        )
