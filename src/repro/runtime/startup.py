"""Sandbox startup economics — the paper's §1 motivation.

"Production FaaS systems can spin up a new Wasm instance in 30 us,
instead of the tens to hundreds of milliseconds it takes to spin up a
container or VM."  This model makes those magnitudes concrete and
comparable under one clock: Wasm/HFI instance creation is measured
from the actual reservation costs in this library; process, container,
and microVM costs are literature-calibrated constants expressed in
cycles so everything scales with the configured core frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..os.address_space import AddressSpace
from ..params import DEFAULT_PARAMS, MachineParams
from ..wasm.strategies import IsolationStrategy


@dataclass
class StartupModel:
    """Start-up cost of one execution context, per mechanism."""

    params: MachineParams = field(default_factory=lambda: DEFAULT_PARAMS)
    #: fork+exec, page-table setup, loader (≈ a few hundred us).
    process_spawn_us: float = 400.0
    #: namespace + cgroup + overlayfs + runtime handshake (≈ 50-300 ms).
    container_spawn_us: float = 120_000.0
    #: firecracker-class microVM boot (≈ 125 ms+).
    microvm_spawn_us: float = 150_000.0

    # ------------------------------------------------------------------
    def wasm_instance_cycles(self, strategy: IsolationStrategy,
                             heap_bytes: int = 1 << 20, *,
                             pooled: bool = False) -> int:
        """Measured cost of creating one sandbox under ``strategy``.

        ``pooled=True`` models a pre-reserved slot (free-list pop plus
        HFI descriptor staging) — the fast path FaaS providers use.
        """
        if pooled:
            # free-list pop + descriptor staging + region installs
            return 200 + 3 * (self.params.hfi_set_region_cycles
                              + 3 * (self.params.base_cycles
                                     + self.params.l1d_hit_cycles))
        space = AddressSpace(self.params)
        _, cost = strategy.reserve_memory(space, heap_bytes)
        return cost + 2 * self.params.syscall_cycles

    def wasm_instance_us(self, strategy: IsolationStrategy,
                         heap_bytes: int = 1 << 20, *,
                         pooled: bool = False) -> float:
        return self.params.cycles_to_us(
            self.wasm_instance_cycles(strategy, heap_bytes,
                                      pooled=pooled))

    # ------------------------------------------------------------------
    def compare(self, strategy: IsolationStrategy) -> Dict[str, float]:
        """Start-up latency (us) per mechanism — the §1 table."""
        return {
            "wasm-instance-pooled": self.wasm_instance_us(strategy,
                                                          pooled=True),
            "wasm-instance-cold": self.wasm_instance_us(strategy),
            "process": self.process_spawn_us,
            "container": self.container_spawn_us,
            "microvm": self.microvm_spawn_us,
        }

    def advantage(self, strategy: IsolationStrategy,
                  versus: str = "container") -> float:
        """How many times faster a cold Wasm instance starts."""
        table = self.compare(strategy)
        return table[versus] / table["wasm-instance-cold"]
