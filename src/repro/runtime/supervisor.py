"""A supervised serving loop over the sandbox runtime (robustness layer).

The paper's FaaS/CDN scenario (§6.3) assumes the host *survives* its
guests: Gobi-style graceful recovery from sandboxed-library faults is a
first-class requirement once one process multiplexes thousands of
tenants.  :class:`Supervisor` wraps a
:class:`~repro.runtime.sandbox.SandboxManager` and an
:class:`~repro.runtime.pool.InstancePool` in a state machine that
turns every guest misbehavior into a bounded, accounted recovery
action:

* **watchdog** — every invocation gets a cycle budget
  (``watchdog_multiplier``× the declared service time); a guest that
  spins past it is killed, its sandbox reaped and rebuilt, its pool
  slot quarantined.
* **quarantine** — any slot a fault touched leaves circulation until
  :meth:`~repro.runtime.pool.InstancePool.scrub` poison-verifies the
  mapping (§3.3.2 made mechanical).
* **retry with backoff** — transient kernel-call failures and
  heap-grow OOM retry up to ``max_retries`` times under exponential
  backoff with deterministic, seeded jitter.
* **circuit breaker** — per tenant: ``breaker_threshold`` consecutive
  faults open the circuit for ``breaker_cooldown_cycles``; a half-open
  probe closes it again.
* **admission control / load shedding** — a bounded arrival backlog;
  overflow sheds the *lowest-priority, newest* requests first and
  never sheds ``Priority.HIGH`` (graceful degradation).

Guest faults reach the supervisor the way the paper says they must:
as SIGSEGV through :class:`~repro.os.signals.SignalTable`, with the
HFI cause MSR in the payload.  The supervisor masks SIGSEGV during
its reap critical section, so a fault raised mid-recovery queues and
is drained in order (see ``os/signals.py``).

Every injected or observed fault is stamped with exactly one
classification — ``retried`` / ``shed`` / ``quarantined`` / ``killed``
— which is the ledger the chaos soak gate audits.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core import FaultCause
from ..os.signals import SigInfo, Signal, SignalTable
from ..telemetry.sink import Telemetry, coalesce
from ..telemetry.stats import RobustnessStats
from .pool import InstancePool, PoolSlot
from .sandbox import SandboxError, SandboxHandle, SandboxManager
from .transitions import TransitionKind


class FaultKind(str, enum.Enum):
    """The chaos injector catalog (docs/architecture.md)."""

    GUEST_FAULT = "guest-fault"          # HFI violation mid-invoke
    GUEST_HANG = "guest-hang"            # infinite loop / budget overrun
    SLOT_CORRUPTION = "slot-corruption"  # guest scribbled outside its heap
    TRANSIENT_KERNEL = "transient-kernel"  # kernel call failed transiently
    HEAP_OOM = "heap-oom"                # heap grow denied (memory pressure)
    BURST_OVERLOAD = "burst-overload"    # arrival burst beyond capacity


#: The only admissible classifications for an injected fault.
CLASSIFICATIONS = ("retried", "shed", "quarantined", "killed")


def shed_victims(candidates, overflow: int,
                 no_shed_priority: int) -> List[int]:
    """Admission-control victim selection, shared by the synchronous
    :class:`Supervisor` loop and the discrete-event serving simulator
    (:mod:`repro.runtime.serving`).

    ``candidates`` are ``(order_key, request)`` pairs where a larger
    ``order_key`` means *newer*; victims are the lowest-priority
    requests first, newest first within a priority, and requests at or
    above ``no_shed_priority`` are never chosen.  Returns the chosen
    order keys, at most ``overflow`` of them.
    """
    if overflow <= 0:
        return []
    sheddable = [(key, request) for key, request in candidates
                 if request.priority < no_shed_priority]
    ranked = sorted(sheddable, key=lambda kr: (kr[1].priority, -kr[0]))
    return [key for key, _ in ranked[:overflow]]


def record_breaker_fault(breaker: "TenantBreaker", clock: int,
                         threshold: int, cooldown_cycles: int) -> bool:
    """Advance a tenant breaker through one observed fault.

    A failed half-open probe re-opens the circuit without counting a
    new trip; crossing ``threshold`` consecutive faults opens it and
    counts one.  Returns True exactly when a new trip occurred, so
    callers can keep their own trip counters/telemetry.
    """
    breaker.consecutive_faults += 1
    if breaker.state == "half-open":
        # the probe failed: straight back to open
        breaker.state = "open"
        breaker.open_until = clock + cooldown_cycles
        return False
    if breaker.consecutive_faults >= threshold:
        breaker.state = "open"
        breaker.open_until = clock + cooldown_cycles
        breaker.trips += 1
        return True
    return False


@dataclass
class Injection:
    """One planned fault, stamped by the supervisor when handled."""

    injection_id: int
    request_index: int
    kind: FaultKind
    classified: Optional[str] = None
    detail: Dict[str, object] = field(default_factory=dict)


class Priority(enum.IntEnum):
    LOW = 0
    NORMAL = 1
    HIGH = 2


@dataclass
class Request:
    """One unit of tenant traffic through the supervised loop."""

    index: int
    tenant: str
    service_cycles: int
    priority: int = Priority.NORMAL
    arrival_cycle: int = 0
    #: Set on synthetic burst traffic: the parent burst injection.
    injection: Optional[Injection] = None


@dataclass
class RequestOutcome:
    request: Request
    status: str                 # "ok" | "shed" | "failed"
    attempts: int = 0
    cycles: int = 0
    detail: str = ""


@dataclass
class SupervisorConfig:
    #: Watchdog budget = max(min_cycles, multiplier × declared service).
    watchdog_multiplier: float = 4.0
    watchdog_min_cycles: int = 50_000
    max_retries: int = 3
    backoff_base_cycles: int = 20_000
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.25
    breaker_threshold: int = 4
    breaker_cooldown_cycles: int = 2_000_000
    #: Admission control: arrived-but-unserved requests beyond this are
    #: shed, lowest priority first.
    queue_limit: int = 32
    #: Priorities at or above this are never shed by admission control.
    no_shed_priority: int = Priority.HIGH
    #: Per-tenant sandbox heap.
    heap_bytes: int = 1 << 20
    transition: TransitionKind = TransitionKind.ZERO_COST


@dataclass
class TenantBreaker:
    """Per-tenant circuit breaker state."""

    consecutive_faults: int = 0
    state: str = "closed"       # closed | open | half-open
    open_until: int = 0
    trips: int = 0


#: Written at the top of an acquired slot's heap; checked after every
#: invocation.  A mismatch means the guest escaped its heap bounds (or
#: chaos said it did) — the slot is quarantined, never trusted again
#: until scrubbed.
CANARY_BYTES = 8


class Supervisor:
    """Supervised serving loop: watchdogs, quarantine, retry, shedding."""

    def __init__(self, manager: SandboxManager, pool: InstancePool,
                 config: Optional[SupervisorConfig] = None, *,
                 seed: int = 0,
                 telemetry: Optional[Telemetry] = None):
        self.manager = manager
        self.pool = pool
        self.config = config if config is not None else SupervisorConfig()
        self.params = manager.params
        self.telemetry = coalesce(telemetry)
        self.rng = random.Random((seed << 16) ^ 0xC4A05)
        self.clock = 0
        #: Fault delivery: the manager raises SIGSEGV into this table;
        #: our handler files it in the inbox for the recovery path.
        self.signals = (manager.signals if manager.signals is not None
                        else SignalTable())
        manager.signals = self.signals
        self.signals.register(Signal.SIGSEGV, self._on_segv)
        self._fault_inbox: List[SigInfo] = []
        self._tenants: Dict[str, SandboxHandle] = {}
        self._breakers: Dict[str, TenantBreaker] = {}
        self.outcomes: List[RequestOutcome] = []
        self.counters = RobustnessStats(component="supervisor")
        if self.telemetry.enabled:
            self.telemetry.register_component("supervisor", self.stats)

    # ------------------------------------------------------------------
    # signal plumbing (os layer -> supervisor)
    # ------------------------------------------------------------------
    def _on_segv(self, info: SigInfo) -> None:
        self._fault_inbox.append(info)
        self.counters.signals_handled += 1

    def _drain_fault(self) -> Optional[SigInfo]:
        return self._fault_inbox.pop(0) if self._fault_inbox else None

    # ------------------------------------------------------------------
    # fault ledger
    # ------------------------------------------------------------------
    def _account(self, injection: Optional[Injection],
                 classification: str) -> None:
        assert classification in CLASSIFICATIONS, classification
        if injection is None or injection.classified is not None:
            return
        injection.classified = classification
        if self.telemetry.enabled:
            self.telemetry.count(f"supervisor.fault[{classification}]")

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[Request],
              injector=None) -> List[RequestOutcome]:
        """Run ``requests`` (arrival order) through the state machine.

        ``injector`` is an optional chaos planner exposing
        ``injection_for(request_index) -> Optional[Injection]``; None
        means production mode.
        """
        requests = list(requests)
        shed_indices: set = set()
        outcomes: List[RequestOutcome] = []
        n = len(requests)
        for i, request in enumerate(requests):
            if i in shed_indices:
                continue
            self.clock = max(self.clock, request.arrival_cycle)
            # --- admission control -------------------------------------
            backlog = [j for j in range(i, n)
                       if j not in shed_indices
                       and requests[j].arrival_cycle <= self.clock]
            overflow = len(backlog) - self.config.queue_limit
            if overflow > 0:
                victims = shed_victims(
                    [(j, requests[j]) for j in backlog], overflow,
                    self.config.no_shed_priority)
                for j in victims:
                    shed_indices.add(j)
                    victim = requests[j]
                    outcomes.append(self._shed(victim, "admission",
                                               injector))
            if i in shed_indices:
                continue
            outcomes.append(self._submit(request, injector))
        self.outcomes.extend(outcomes)
        return outcomes

    def _shed(self, request: Request, why: str,
              injector=None) -> RequestOutcome:
        self.counters.requests += 1
        self.counters.shed += 1
        injection = request.injection or (
            injector.injection_for(request.index) if injector else None)
        self._account(injection, "shed")
        if self.telemetry.enabled:
            self.telemetry.count("supervisor.shed")
        return RequestOutcome(request, "shed", detail=why)

    # ------------------------------------------------------------------
    def _submit(self, request: Request, injector=None) -> RequestOutcome:
        self.counters.requests += 1
        breaker = self._breakers.setdefault(request.tenant,
                                            TenantBreaker())
        injection = request.injection or (
            injector.injection_for(request.index) if injector else None)
        # --- circuit breaker ------------------------------------------
        if breaker.state == "open":
            if self.clock < breaker.open_until:
                self.counters.shed += 1
                self.counters.breaker_shed += 1
                self._account(injection, "shed")
                return RequestOutcome(request, "shed", detail="breaker")
            breaker.state = "half-open"      # cooldown over: one probe
        # --- slot acquisition -----------------------------------------
        slot = self._acquire_slot()
        if slot is None:
            self.counters.shed += 1
            self._account(injection, "shed")
            return RequestOutcome(request, "shed", detail="capacity")
        handle = self._tenant_sandbox(request.tenant)
        # One-shot pending fault: consumed by the attempt it hits.
        pending = injection.kind if (
            injection is not None
            and injection.classified is None
            and injection.kind is not FaultKind.BURST_OVERLOAD) else None

        attempts = 0
        spent = 0
        while attempts <= self.config.max_retries:
            attempts += 1
            self.counters.retry_attempts += attempts > 1
            if pending is FaultKind.TRANSIENT_KERNEL:
                # The pre-invoke kernel interaction (e.g. the slot's
                # madvise) failed with a transient error.
                spent += self.params.syscall_cycles
                pending = None
                self._account(injection, "retried")
                self.counters.retried += 1
                spent += self._backoff(attempts)
                continue
            if pending is FaultKind.HEAP_OOM:
                # Heap grow denied under memory pressure: remediate by
                # flushing deferred discards, back off, retry.
                spent += self.params.syscall_cycles
                spent += self.pool.flush_discards()
                pending = None
                self._account(injection, "retried")
                self.counters.retried += 1
                spent += self._backoff(attempts)
                continue
            if pending is FaultKind.GUEST_HANG:
                # The guest never yields: the watchdog fires at the
                # budget and the supervisor kills the whole sandbox.
                budget = self._watchdog_budget(request)
                result = self.manager.invoke(handle, budget,
                                             self.config.transition)
                spent += result.cycles
                spent += self.params.signal_delivery_cycles
                handle, slot, cost = self._kill_and_replace(
                    request.tenant, handle, slot)
                spent += cost
                pending = None
                self._account(injection, "killed")
                self.counters.killed += 1
                self.counters.watchdog_kills += 1
                self._breaker_fault(breaker)
                if slot is None:
                    self.counters.shed += 1
                    return self._finish(request, "shed", attempts, spent,
                                        "capacity-after-kill")
                continue
            if pending is FaultKind.GUEST_FAULT:
                cause = self.rng.choice((
                    FaultCause.DATA_OUT_OF_BOUNDS,
                    FaultCause.DATA_PERMISSION,
                    FaultCause.HMOV_OUT_OF_BOUNDS))
                result = self.manager.invoke_faulting(
                    handle, request.service_cycles, cause,
                    fault_addr=slot.heap_base + slot.heap_bytes)
                spent += result.cycles
                info = self._drain_fault()
                seen = (FaultCause(info.hfi_cause) if info is not None
                        else result.cause)
                handle, slot, cost = self._kill_and_replace(
                    request.tenant, handle, slot)
                spent += cost
                pending = None
                self._account(injection, "quarantined")
                self.counters.quarantined += 1
                self._breaker_fault(breaker, cause=seen)
                if slot is None:
                    self.counters.shed += 1
                    return self._finish(request, "shed", attempts, spent,
                                        "capacity-after-fault")
                continue
            # --- clean attempt (possibly with slot corruption) --------
            canary_addr = slot.heap_base + slot.heap_bytes - CANARY_BYTES
            canary = 0xC0DE_0000_0000 | (slot.index << 8) | (attempts & 0xFF)
            self.manager.space.write(canary_addr, canary, check=False)
            result = self.manager.invoke(handle, request.service_cycles,
                                         self.config.transition)
            spent += result.cycles
            if pending is FaultKind.SLOT_CORRUPTION:
                # The guest scribbled past its heap during this invoke.
                self.manager.space.write(
                    canary_addr, self.rng.getrandbits(63), check=False)
                pending = None
            if self.manager.space.read(canary_addr, check=False) != canary:
                # Integrity breach: never recycle this slot unscrubbed.
                # The request's answer was produced, but the tenant
                # counts a fault toward its breaker.
                self.pool.quarantine(slot)
                self._account(injection, "quarantined")
                self.counters.quarantined += 1
                self._breaker_fault(breaker)
            else:
                self.manager.space.write(canary_addr, 0, check=False)
                spent += self.pool.release(slot)
                breaker.consecutive_faults = 0
                breaker.state = "closed"
            self.counters.succeeded += 1
            return self._finish(request, "ok", attempts, spent)
        # retries exhausted
        if slot is not None:
            spent += self.pool.release(slot)
        self.counters.failed += 1
        self._breaker_fault(breaker)
        return self._finish(request, "failed", attempts, spent,
                            "retries-exhausted")

    def _finish(self, request: Request, status: str, attempts: int,
                spent: int, detail: str = "") -> RequestOutcome:
        self.clock += spent
        self.counters.total_cycles += spent
        if self.telemetry.enabled:
            self.telemetry.count(f"supervisor.request[{status}]")
            self.telemetry.observe("supervisor.request_cycles", spent)
        return RequestOutcome(request, status, attempts, spent, detail)

    # ------------------------------------------------------------------
    # recovery machinery
    # ------------------------------------------------------------------
    def _watchdog_budget(self, request: Request) -> int:
        return max(self.config.watchdog_min_cycles,
                   int(self.config.watchdog_multiplier
                       * request.service_cycles))

    def _kill_and_replace(self, tenant: str, handle: SandboxHandle,
                          slot: PoolSlot):
        """Reap a misbehaving sandbox and quarantine its slot.

        SIGSEGV is masked for the duration: a fault delivered while we
        tear state down queues on the signal table and is drained — in
        arrival order — once the runtime is consistent again.
        """
        self.signals.block(Signal.SIGSEGV)
        try:
            cost = self.manager.destroy_sandbox(handle)
            self.counters.sandboxes_reaped += 1
            self.pool.quarantine(slot)
            fresh = self._make_sandbox(tenant)
            self._tenants[tenant] = fresh
        finally:
            self.signals.unblock(Signal.SIGSEGV)
        replacement = self._acquire_slot()
        return fresh, replacement, cost

    def _backoff(self, attempt: int) -> int:
        """Exponential backoff with deterministic jitter, in cycles."""
        config = self.config
        delay = (config.backoff_base_cycles
                 * config.backoff_multiplier ** max(0, attempt - 1))
        delay *= 1.0 + config.backoff_jitter * (2 * self.rng.random() - 1)
        cycles = int(delay)
        self.counters.backoff_cycles += cycles
        return cycles

    def _breaker_fault(self, breaker: TenantBreaker,
                       cause: FaultCause = FaultCause.NONE) -> None:
        if record_breaker_fault(breaker, self.clock,
                                self.config.breaker_threshold,
                                self.config.breaker_cooldown_cycles):
            self.counters.breaker_trips += 1
            if self.telemetry.enabled:
                self.telemetry.count("supervisor.breaker_trip")

    def _acquire_slot(self) -> Optional[PoolSlot]:
        slot = self.pool.acquire()
        if slot is None:
            self.clock += self.pool.flush_discards()
            slot = self.pool.acquire()
        if slot is None and self.pool.quarantined:
            cost = self.pool.scrub_all()
            self.counters.scrub_cycles += cost
            self.clock += cost
            slot = self.pool.acquire()
        return slot

    def _tenant_sandbox(self, tenant: str) -> SandboxHandle:
        handle = self._tenants.get(tenant)
        if handle is None:
            handle = self._make_sandbox(tenant)
            self._tenants[tenant] = handle
        return handle

    def _make_sandbox(self, tenant: str) -> SandboxHandle:
        return self.manager.create_sandbox(
            heap_bytes=self.config.heap_bytes, hybrid=True,
            serialized=False)

    # ------------------------------------------------------------------
    def shutdown(self) -> int:
        """Quiesce: scrub quarantine, flush discards, reap every
        sandbox.  Returns the cycle cost; afterwards the pool must be
        fully available and the manager must hold zero live sandboxes
        (the chaos soak's leak gate)."""
        cost = self.pool.scrub_all()
        self.counters.scrub_cycles += cost
        cost += self.pool.flush_discards()
        reaped = len(self._tenants)
        try:
            cost += self.manager.reap_all()
        except SandboxError:
            raise  # double-destroy here is a supervisor bug: surface it
        self.counters.sandboxes_reaped += reaped
        self._tenants.clear()
        self.clock += cost
        self.counters.total_cycles += cost
        return cost

    # ------------------------------------------------------------------
    def breaker(self, tenant: str) -> TenantBreaker:
        return self._breakers.setdefault(tenant, TenantBreaker())

    def stats(self) -> RobustnessStats:
        """Uniform component-stats snapshot (``repro.telemetry``)."""
        snapshot = RobustnessStats(**{
            f.name: getattr(self.counters, f.name)
            for f in self.counters.__dataclass_fields__.values()})
        snapshot.component = "supervisor"
        return snapshot
