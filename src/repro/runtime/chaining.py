"""Function chaining: in-process calls vs IPC (paper §2).

FaaS applications compose multiple functions.  In one address space a
hop between sandboxed functions is a (possibly HFI-protected) function
call plus zero-copy buffer handoff — HFI can even pass the buffer as an
explicit region.  Across processes each hop pays two kernel context
switches, pipe syscalls, and a payload copy.  The paper's §2 claim is
that the in-process hop is "easily 1000x to 10000x" cheaper; this
model makes the arithmetic explicit and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..params import DEFAULT_PARAMS, MachineParams
from .transitions import TransitionKind, TransitionModel


@dataclass
class ChainHop:
    """Cost breakdown of one function-to-function hop."""

    mechanism: str
    cycles: int
    copies: int


@dataclass
class ChainModel:
    """Compares chaining mechanisms for an n-function pipeline."""

    params: MachineParams = field(default_factory=lambda: DEFAULT_PARAMS)

    def __post_init__(self):
        self.transitions = TransitionModel(self.params)

    # ------------------------------------------------------------------
    def in_process_hop(self, *, hfi_protected: bool = True,
                       serialized: bool = False) -> ChainHop:
        """One hop inside a single address space.

        The payload is handed off by retargeting an explicit region —
        no copy.  With HFI the hop is a sandbox switch; without it,
        a plain call.
        """
        if hfi_protected:
            cycles = self.transitions.round_trip(
                TransitionKind.ZERO_COST, serialized=serialized,
                regions_installed=1)
        else:
            cycles = 2 * self.params.base_cycles
        return ChainHop("in-process", cycles, copies=0)

    def ipc_hop(self, payload_bytes: int = 4096) -> ChainHop:
        """One hop across a process boundary via a pipe.

        write syscall + copy in, scheduler switch to the consumer,
        read syscall + copy out, and eventually a switch back.
        """
        copy = 2 * (payload_bytes // 8)   # in and out of the kernel
        cycles = (2 * self.params.syscall_cycles
                  + 2 * self.params.process_context_switch_cycles
                  + copy)
        return ChainHop("ipc", cycles, copies=2)

    # ------------------------------------------------------------------
    def chain_cycles(self, n_functions: int, *, mechanism: str,
                     payload_bytes: int = 4096,
                     per_function_cycles: int = 0) -> int:
        """Total cost of an n-function pipeline (n-1 hops)."""
        hops = n_functions - 1
        if mechanism == "in-process":
            hop = self.in_process_hop()
        elif mechanism == "in-process-serialized":
            hop = self.in_process_hop(serialized=True)
        elif mechanism == "ipc":
            hop = self.ipc_hop(payload_bytes)
        else:
            raise ValueError(f"unknown mechanism {mechanism!r}")
        return hops * hop.cycles + n_functions * per_function_cycles

    def speedup(self, n_functions: int = 4,
                payload_bytes: int = 4096) -> float:
        """How much cheaper in-process chaining is than IPC."""
        ipc = self.chain_cycles(n_functions, mechanism="ipc",
                                payload_bytes=payload_bytes)
        in_proc = self.chain_cycles(n_functions, mechanism="in-process")
        return ipc / in_proc

    def report(self, n_functions: int = 4) -> List[ChainHop]:
        return [self.in_process_hop(),
                self.in_process_hop(serialized=True),
                self.ipc_hop()]
