"""Context-switch (transition) cost models — paper §3.3.1.

HFI leaves save/restore entirely to software, so runtimes choose:

* **Springboards/trampolines** (untrusted native code): clear and save
  registers, switch stacks — NaCl-style assembly stubs.
* **Zero-cost transitions** (Wasm, trusted compiler): the compiler
  guarantees the sandbox can't misuse stack or scratch registers, so
  entry/exit is essentially a function call.

Costs are expressed in cycles from :class:`MachineParams` so the same
numbers feed the analytic models and the benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.sink import NULL_TELEMETRY, Telemetry

#: Registers a springboard saves/clears (SysV caller+callee saved).
_SPRINGBOARD_REG_OPS = 30   # save 15 + restore 15
_STACK_SWITCH_OPS = 4

#: ERIM call-gate work beyond the bare wrpkru: the inspect-PKRU
#: compare (the gate must verify the value it just wrote, or a jump
#: into the middle of the gate forges a domain) plus the scratch
#: scrub around it.
_MPK_GATE_VALIDATE_CYCLES = 20


class TransitionKind(enum.Enum):
    #: Full register save/clear + stack switch (native sandboxes).
    SPRINGBOARD = "springboard"
    #: Compiler-proven safe: function-call-like (Wasm sandboxes).
    ZERO_COST = "zero-cost"


@dataclass
class TransitionModel:
    """Cycle costs of crossing a sandbox boundary, one way."""

    params: MachineParams = None
    #: Optional sink; round-trip queries are counted/charged so the
    #: telemetry report can break transition cost out of totals.
    telemetry: Telemetry = field(default=NULL_TELEMETRY, repr=False)

    def __post_init__(self):
        if self.params is None:
            self.params = DEFAULT_PARAMS
        if self.telemetry is None:
            self.telemetry = NULL_TELEMETRY

    def software_cost(self, kind: TransitionKind) -> int:
        """The save/restore work, excluding HFI instructions."""
        if kind is TransitionKind.SPRINGBOARD:
            return ((_SPRINGBOARD_REG_OPS + _STACK_SWITCH_OPS)
                    * self.params.base_cycles
                    + _SPRINGBOARD_REG_OPS // 2
                    * self.params.l1d_hit_cycles)
        return 2 * self.params.base_cycles

    def hfi_enter_cost(self, *, serialized: bool,
                       regions_installed: int = 3) -> int:
        """hfi_set_region x N (with descriptor loads) + hfi_enter."""
        per_region = (self.params.hfi_set_region_cycles
                      + 3 * (self.params.base_cycles
                             + self.params.l1d_hit_cycles))
        cost = regions_installed * per_region + self.params.hfi_enter_cycles
        if serialized:
            cost += self.params.serialize_drain_cycles
        return cost

    def hfi_exit_cost(self, *, serialized: bool) -> int:
        cost = self.params.hfi_exit_cycles
        if serialized:
            cost += self.params.serialize_drain_cycles
        return cost

    def round_trip(self, kind: TransitionKind, *, serialized: bool,
                   regions_installed: int = 3) -> int:
        """Full enter + exit cost for one sandbox invocation."""
        cost = (2 * self.software_cost(kind)
                + self.hfi_enter_cost(serialized=serialized,
                                      regions_installed=regions_installed)
                + self.hfi_exit_cost(serialized=serialized))
        if self.telemetry.enabled:
            self.telemetry.count("transitions.round_trip")
            self.telemetry.add_cycles("transitions.round_trip", cost)
        return cost

    def mpk_switch_cost(self) -> int:
        """One ERIM-style switch gate, one way: wrpkru + the gate's
        PKRU-value validation + an lfence-class speculation barrier.

        This is the *single source of truth* for the MPK switch
        formula — :class:`repro.mpk.MpkSandboxSwitcher` and
        :class:`repro.workloads.NginxModel` both read it, so the
        baseline cannot drift between the domain model and the
        workload models (it previously did: ``//4`` vs ``//2 + 20``).
        """
        return (self.params.wrpkru_cycles
                + self.params.serialize_drain_cycles // 2
                + _MPK_GATE_VALIDATE_CYCLES)

    def mpk_round_trip(self) -> int:
        """ERIM-style wrpkru in + out (with speculation barriers)."""
        switch = self.mpk_switch_cost()
        cost = 2 * (switch + self.software_cost(
            TransitionKind.SPRINGBOARD) // 2)
        if self.telemetry.enabled:
            self.telemetry.count("transitions.mpk_round_trip")
            self.telemetry.add_cycles("transitions.mpk_round_trip", cost)
        return cost
