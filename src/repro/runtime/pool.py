"""A Wasmtime-style pooling instance allocator.

Production FaaS runtimes pre-reserve a pool of instance slots and
recycle them between requests: acquiring a slot is a free-list pop;
releasing it discards the dirtied memory with madvise (or, with the
HFI batching optimization of §5.1, defers and batches the discards).
This is the machinery behind the paper's §6.3.1 experiment, exposed as
a reusable component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from typing import Tuple

from ..os.address_space import AddressSpace
from ..params import DEFAULT_PARAMS, MachineParams
from ..telemetry.sink import Telemetry, coalesce
from ..telemetry.stats import PoolStats, ShardedPoolStats
from ..wasm.strategies import IsolationStrategy

#: Bytes written/read back by the scrub's poison-verify pass.
SCRUB_PROBE_BYTES = 256
SCRUB_POISON = 0x5A


@dataclass
class PoolSlot:
    index: int
    heap_base: int
    heap_bytes: int
    in_use: bool = False
    dirty: bool = False
    quarantined: bool = False


class InstancePool:
    """Fixed-capacity pool of sandbox memory slots."""

    def __init__(self, space: AddressSpace,
                 strategy: IsolationStrategy, *, slots: int,
                 heap_bytes: int,
                 params: MachineParams = DEFAULT_PARAMS,
                 batch_teardown: bool = False,
                 telemetry: Optional[Telemetry] = None):
        self.space = space
        self.strategy = strategy
        self.params = params
        self.batch_teardown = batch_teardown
        self.telemetry = coalesce(telemetry)
        self.slots: List[PoolSlot] = []
        self._free: List[int] = []
        self._pending_discard: List[PoolSlot] = []
        self._quarantined: List[int] = []
        # Optional sanitizer probe (repro.verify.invariants.PoolInvariants);
        # None in production runs so the hot paths stay branch-cheap.
        self.invariants = None
        self.setup_cycles = 0
        self.recycle_cycles = 0
        self.acquires = 0
        self.releases = 0
        self.batched_flushes = 0
        self.quarantines = 0
        self.scrubs = 0
        self.scrub_failures = 0
        for i in range(slots):
            base, cost = strategy.reserve_memory(
                space, heap_bytes, name=f"pool-slot{i}")
            self.setup_cycles += cost + 2 * params.syscall_cycles
            self.slots.append(PoolSlot(i, base, heap_bytes))
            self._free.append(i)
        if self.telemetry.enabled:
            self.telemetry.register_component("pool", self.stats)
            self.telemetry.add_cycles("pool.setup", self.setup_cycles)

    # ------------------------------------------------------------------
    @property
    def available(self) -> int:
        return len(self._free)

    def acquire(self) -> Optional[PoolSlot]:
        """Pop a clean slot; None if the pool is exhausted."""
        if not self._free:
            if self.telemetry.enabled:
                self.telemetry.count("pool.exhausted")
            return None
        slot = self.slots[self._free.pop()]
        slot.in_use = True
        self.acquires += 1
        if self.telemetry.enabled:
            self.telemetry.count("pool.acquire")
        if self.invariants is not None:
            self.invariants.on_acquire(self, slot)
        return slot

    def release(self, slot: PoolSlot) -> int:
        """Return a slot; discards (or defers discarding) its memory.

        Returns the cycles charged *now* — with batching enabled the
        zap is deferred to :meth:`flush_discards`."""
        if not slot.in_use:
            raise ValueError(f"slot {slot.index} not in use")
        slot.in_use = False
        slot.dirty = True
        self.releases += 1
        if self.telemetry.enabled:
            self.telemetry.count("pool.release")
        if self.batch_teardown:
            # The slot stays OFF the free list until flush_discards has
            # actually zapped its memory.  Handing it out earlier lets a
            # re-acquired live instance's heap be discarded by a later
            # flush — the dirty-slot recycling bug.
            self._pending_discard.append(slot)
            if self.invariants is not None:
                self.invariants.on_release(self, slot, batched=True)
            return 0
        cost = (self.params.syscall_cycles
                + self.space.madvise_dontneed(slot.heap_base,
                                              slot.heap_bytes))
        slot.dirty = False
        self._free.append(slot.index)
        self.recycle_cycles += cost
        if self.telemetry.enabled:
            self.telemetry.add_cycles("pool.recycle", cost)
        if self.invariants is not None:
            self.invariants.on_release(self, slot, batched=False)
        return cost

    def flush_discards(self) -> int:
        """One batched madvise across all pending slots (§5.1).

        Spans from the lowest to the highest pending heap — with guard
        pages between slots the span necessarily covers them, which is
        what makes batching unprofitable without HFI."""
        if not self._pending_discard:
            return 0
        begin = min(s.heap_base for s in self._pending_discard)
        end = max(s.heap_base + s.heap_bytes
                  + self.strategy.guard_bytes
                  for s in self._pending_discard)
        cost = (self.params.syscall_cycles
                + self.space.madvise_dontneed(begin, end - begin))
        flushed = self._pending_discard
        self._pending_discard = []
        for slot in flushed:
            slot.dirty = False
            self._free.append(slot.index)
        if self.invariants is not None:
            self.invariants.on_flush(self, flushed)
        self.recycle_cycles += cost
        self.batched_flushes += 1
        if self.telemetry.enabled:
            self.telemetry.count("pool.batched_flush")
            self.telemetry.add_cycles("pool.recycle", cost)
        return cost

    # ------------------------------------------------------------------
    # quarantine: the supervised runtime's fault containment path
    # ------------------------------------------------------------------
    @property
    def quarantined(self) -> int:
        return len(self._quarantined)

    def quarantine(self, slot: PoolSlot) -> None:
        """Pull a slot out of circulation after a fault touched it.

        A quarantined slot sits on neither the free list nor the
        pending-discard batch; it only returns to service through
        :meth:`scrub`, which poison-verifies the mapping first.
        Idempotent, and accepts slots in any state (in-use at fault
        time, already released, or pending a batched discard).
        """
        if slot.quarantined:
            return
        slot.in_use = False
        slot.dirty = True
        slot.quarantined = True
        if slot.index in self._free:
            self._free.remove(slot.index)
        self._pending_discard = [s for s in self._pending_discard
                                 if s is not slot]
        self._quarantined.append(slot.index)
        self.quarantines += 1
        if self.telemetry.enabled:
            self.telemetry.count("pool.quarantine")
        if self.invariants is not None:
            self.invariants.on_quarantine(self, slot)

    def scrub(self, slot: PoolSlot) -> int:
        """Poison-verify a quarantined slot and return it to the free
        list.  Returns the cycles charged.

        The verify pass is the §3.3.2 trust boundary made mechanical:
        discard the (possibly corrupted) contents, write a poison
        pattern and read it back to prove the mapping is still sane
        RW memory, then discard again so the next instance observes a
        zero-filled heap.  A slot that fails verification stays
        quarantined (``scrub_failures``) rather than re-entering
        service.
        """
        if not slot.quarantined:
            raise ValueError(f"slot {slot.index} is not quarantined")
        probe = min(SCRUB_PROBE_BYTES, slot.heap_bytes)
        pattern = bytes([SCRUB_POISON]) * probe
        cost = (self.params.syscall_cycles
                + self.space.madvise_dontneed(slot.heap_base,
                                              slot.heap_bytes))
        self.space.write_bytes(slot.heap_base, pattern, check=False)
        verified = (self.space.read_bytes(slot.heap_base, probe,
                                          check=False) == pattern)
        cost += (self.params.syscall_cycles
                 + self.space.madvise_dontneed(slot.heap_base,
                                               slot.heap_bytes))
        verified = verified and (self.space.read_bytes(
            slot.heap_base, probe, check=False) == bytes(probe))
        cost += 4 * probe // 64  # the two write+read probe sweeps
        if not verified:
            self.scrub_failures += 1
            if self.telemetry.enabled:
                self.telemetry.count("pool.scrub_failure")
            return cost
        self._quarantined.remove(slot.index)
        slot.quarantined = False
        slot.dirty = False
        self._free.append(slot.index)
        self.scrubs += 1
        self.recycle_cycles += cost
        if self.telemetry.enabled:
            self.telemetry.count("pool.scrub")
            self.telemetry.add_cycles("pool.recycle", cost)
        if self.invariants is not None:
            self.invariants.on_scrub(self, slot)
        return cost

    def scrub_all(self) -> int:
        """Scrub every quarantined slot; returns total cycles."""
        total = 0
        for index in list(self._quarantined):
            total += self.scrub(self.slots[index])
        return total

    # ------------------------------------------------------------------
    def stats(self) -> PoolStats:
        """Uniform component-stats snapshot (``repro.telemetry``)."""
        return PoolStats(
            component="pool", slots=len(self.slots),
            available=self.available, acquires=self.acquires,
            releases=self.releases, batched_flushes=self.batched_flushes,
            setup_cycles=self.setup_cycles,
            recycle_cycles=self.recycle_cycles,
            pending_discards=len(self._pending_discard),
            quarantined=self.quarantined,
            quarantines=self.quarantines,
            scrubs=self.scrubs,
            scrub_failures=self.scrub_failures)


class ShardedInstancePool:
    """Per-core pool shards with work-stealing (ROADMAP item 1).

    Production serving runtimes shard the instance pool per worker
    core so the hot acquire/release path touches only core-local state
    (no cross-core contention in the real system; here, a faithful
    accounting of where slots come from).  When a core's shard runs
    dry it *steals* a slot from the richest other shard — the
    Firecracker/Faasm serving shape the discrete-event simulator in
    :mod:`repro.runtime.serving` drives at load.

    Every slot keeps the :class:`InstancePool` lifecycle (batched
    discards, quarantine, poison-verify scrub); this class adds the
    placement policy on top and accounts the cycles the rebalancing
    costs (flushes and scrubs triggered by a dry acquire are charged
    to the acquiring core).
    """

    def __init__(self, space: AddressSpace, strategy: IsolationStrategy,
                 *, shards: int, slots_per_shard: int, heap_bytes: int,
                 params: MachineParams = DEFAULT_PARAMS,
                 batch_teardown: bool = False,
                 telemetry: Optional[Telemetry] = None):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.space = space
        self.params = params
        self.telemetry = coalesce(telemetry)
        self.shards: List[InstancePool] = [
            InstancePool(space, strategy, slots=slots_per_shard,
                         heap_bytes=heap_bytes, params=params,
                         batch_teardown=batch_teardown)
            for _ in range(shards)]
        self.local_acquires = 0
        self.steals = 0
        self.exhausted = 0
        self.dry_flushes = 0
        self.scrub_rescues = 0
        if self.telemetry.enabled:
            self.telemetry.register_component("sharded-pool", self.stats)

    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def total_slots(self) -> int:
        return sum(len(s.slots) for s in self.shards)

    @property
    def available(self) -> int:
        return sum(s.available for s in self.shards)

    @property
    def quarantined(self) -> int:
        return sum(s.quarantined for s in self.shards)

    def shard_available(self) -> List[int]:
        return [s.available for s in self.shards]

    # ------------------------------------------------------------------
    def acquire(self, shard: int) -> Tuple[Optional[PoolSlot], int, int]:
        """Acquire a slot for core ``shard``.

        Returns ``(slot, owner_shard, cycles)`` — ``owner_shard`` is
        where the slot must be released back to, and ``cycles`` is the
        rebalancing work charged now (batched-discard flushes or
        quarantine scrubs a dry pool forced).  ``slot`` is None only
        when every shard is exhausted beyond rescue.
        """
        cycles = 0
        local = self.shards[shard]
        slot = local.acquire()
        if slot is None and local._pending_discard:
            cycles += local.flush_discards()
            self.dry_flushes += 1
            slot = local.acquire()
        if slot is not None:
            self.local_acquires += 1
            return slot, shard, cycles
        # local shard dry: steal from the richest other shard
        victim = self._richest_other(shard)
        if victim is not None:
            slot = self.shards[victim].acquire()
            if slot is not None:
                self.steals += 1
                if self.telemetry.enabled:
                    self.telemetry.count("pool.steal")
                return slot, victim, cycles
        # everything dry: flush every pending discard, then steal again
        for index, other in enumerate(self.shards):
            if other._pending_discard:
                cycles += other.flush_discards()
                self.dry_flushes += 1
        order = [shard] + [i for i in range(self.n_shards) if i != shard]
        for index in order:
            slot = self.shards[index].acquire()
            if slot is not None:
                if index == shard:
                    self.local_acquires += 1
                else:
                    self.steals += 1
                return slot, index, cycles
        # last resort: scrub quarantined slots back into service
        for index in order:
            pool = self.shards[index]
            if pool.quarantined:
                cycles += pool.scrub_all()
                self.scrub_rescues += 1
                slot = pool.acquire()
                if slot is not None:
                    return slot, index, cycles
        self.exhausted += 1
        if self.telemetry.enabled:
            self.telemetry.count("pool.sharded_exhausted")
        return None, shard, cycles

    def _richest_other(self, shard: int) -> Optional[int]:
        best, best_avail = None, 0
        for index, pool in enumerate(self.shards):
            if index == shard:
                continue
            if pool.available > best_avail:
                best, best_avail = index, pool.available
        return best

    # ------------------------------------------------------------------
    def release(self, slot: PoolSlot, owner: int) -> int:
        return self.shards[owner].release(slot)

    def quarantine(self, slot: PoolSlot, owner: int) -> None:
        self.shards[owner].quarantine(slot)

    def flush_all(self) -> int:
        return sum(s.flush_discards() for s in self.shards)

    def scrub_all(self) -> int:
        return sum(s.scrub_all() for s in self.shards)

    # ------------------------------------------------------------------
    def stats(self) -> ShardedPoolStats:
        """Uniform component-stats snapshot (``repro.telemetry``)."""
        return ShardedPoolStats(
            component="sharded-pool",
            shards=self.n_shards,
            slots=self.total_slots,
            available=self.available,
            local_acquires=self.local_acquires,
            steals=self.steals,
            exhausted=self.exhausted,
            dry_flushes=self.dry_flushes,
            scrub_rescues=self.scrub_rescues,
            quarantined=sum(s.quarantined for s in self.shards),
            recycle_cycles=sum(s.recycle_cycles for s in self.shards),
            setup_cycles=sum(s.setup_cycles for s in self.shards))
