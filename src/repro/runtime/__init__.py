"""Trusted runtimes: sandbox management, transitions, FaaS serving,
and the supervised (robustness) serving loop."""

from .chaining import ChainHop, ChainModel
from .faas import FaasMetrics, FaasServer, percentile
from .pool import InstancePool, PoolSlot
from .sandbox import (
    InvokeResult,
    SandboxError,
    SandboxHandle,
    SandboxManager,
)
from .scheduling import MultiplexModel, ScheduleOutcome
from .startup import StartupModel
from .supervisor import (
    CLASSIFICATIONS,
    FaultKind,
    Injection,
    Priority,
    Request,
    RequestOutcome,
    Supervisor,
    SupervisorConfig,
    TenantBreaker,
)
from .transitions import TransitionKind, TransitionModel

__all__ = [
    "FaasMetrics", "FaasServer", "percentile", "InvokeResult",
    "SandboxError", "SandboxHandle", "SandboxManager", "TransitionKind",
    "TransitionModel", "ChainHop", "ChainModel", "InstancePool",
    "PoolSlot", "StartupModel", "MultiplexModel", "ScheduleOutcome",
    "Supervisor", "SupervisorConfig", "Request",
    "RequestOutcome", "Priority", "FaultKind", "Injection",
    "TenantBreaker", "CLASSIFICATIONS",
]
