"""Trusted runtimes: sandbox management, transitions, FaaS serving,
and the supervised (robustness) serving loop."""

from .chaining import ChainHop, ChainModel
from .faas import FaasMetrics, FaasServer, percentile
from .pool import InstancePool, PoolSlot, ShardedInstancePool
from .sandbox import (
    InvokeResult,
    SandboxError,
    SandboxHandle,
    SandboxManager,
)
from .scheduling import MultiplexModel, ScheduleOutcome
from .serving import (
    SERVING_SCHEMES,
    ArrivalProcess,
    MmppArrivals,
    PoissonArrivals,
    SchemeCosts,
    ServingConfig,
    ServingMetrics,
    ServingSimulator,
    TraceArrivals,
    build_requests,
    connection_lifecycle_costs,
    load_trace,
    save_trace,
    scheme_costs,
    simulate_serving,
)
from .startup import StartupModel
from .supervisor import (
    CLASSIFICATIONS,
    FaultKind,
    Injection,
    Priority,
    Request,
    RequestOutcome,
    Supervisor,
    SupervisorConfig,
    TenantBreaker,
    record_breaker_fault,
    shed_victims,
)
from .transitions import TransitionKind, TransitionModel

__all__ = [
    "FaasMetrics", "FaasServer", "percentile", "InvokeResult",
    "SandboxError", "SandboxHandle", "SandboxManager", "TransitionKind",
    "TransitionModel", "ChainHop", "ChainModel", "InstancePool",
    "PoolSlot", "StartupModel", "MultiplexModel", "ScheduleOutcome",
    "Supervisor", "SupervisorConfig", "Request",
    "RequestOutcome", "Priority", "FaultKind", "Injection",
    "TenantBreaker", "CLASSIFICATIONS", "shed_victims",
    "record_breaker_fault", "ShardedInstancePool", "ArrivalProcess",
    "PoissonArrivals", "MmppArrivals", "TraceArrivals",
    "build_requests", "save_trace", "load_trace", "SchemeCosts",
    "scheme_costs", "SERVING_SCHEMES", "ServingConfig",
    "ServingMetrics", "ServingSimulator", "simulate_serving",
    "connection_lifecycle_costs",
]
