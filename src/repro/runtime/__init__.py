"""Trusted runtimes: sandbox management, transitions, FaaS serving."""

from .chaining import ChainHop, ChainModel
from .faas import FaasMetrics, FaasServer, percentile
from .pool import InstancePool, PoolSlot
from .sandbox import InvokeResult, SandboxHandle, SandboxManager
from .scheduling import MultiplexModel, ScheduleOutcome
from .startup import StartupModel
from .transitions import TransitionKind, TransitionModel

__all__ = [
    "FaasMetrics", "FaasServer", "percentile", "InvokeResult",
    "SandboxHandle", "SandboxManager", "TransitionKind",
    "TransitionModel", "ChainHop", "ChainModel", "InstancePool",
    "PoolSlot", "StartupModel", "MultiplexModel", "ScheduleOutcome",
]
